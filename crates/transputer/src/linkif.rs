//! The processor side of a link interface (§2.3).
//!
//! Each transputer has four bi-directional links; each link provides one
//! occam channel in each direction. A message is transmitted as a
//! sequence of single-byte communications, "requiring only the presence
//! of a single byte buffer in the receiving transputer to ensure that no
//! information is lost" (§2.3). The wire itself — packet timing, the
//! acknowledge protocol — is modelled by the `transputer-link` crate;
//! this module keeps the per-link state the *processor* sees: the active
//! transfer, the one-byte receive buffer, deferred acknowledges, and any
//! ALT guard watching the channel.

use crate::process::ProcDesc;

/// Number of links on the first transputers (§3.1: "four bi-directional
/// communications links").
pub const LINK_COUNT: usize = 4;

/// An in-progress block transfer on behalf of a descheduled process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// The descheduled process to wake on completion.
    pub process: ProcDesc,
    /// Next byte address to read (output) or write (input).
    pub pointer: u32,
    /// Bytes still to transfer.
    pub remaining: u32,
}

/// Verdict on an incoming acknowledge under the robust link protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckCheck {
    /// Sequence mismatch (or nothing in flight): a duplicate of an
    /// acknowledge already acted on. Ignore it.
    Stale,
    /// The acknowledge for the in-flight byte. Carries the process to
    /// wake if this completed the message.
    Fresh(Option<ProcDesc>),
}

/// Verdict on an incoming data byte's sequence bit under the robust
/// link protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqCheck {
    /// The expected byte: deliver it.
    Accept,
    /// A duplicate whose acknowledge was evidently lost: re-acknowledge,
    /// do not deliver again.
    DupReAck,
    /// A duplicate whose acknowledge has not yet been *released* (the
    /// byte sits in the buffer, or the deferred acknowledge is still
    /// queued): tell the sender the interface is busy so it backs off
    /// instead of counting the resend against its retry budget.
    DupBusy,
}

/// Output half of a link: one occam channel out of the transputer.
#[derive(Debug, Clone, Default)]
pub struct LinkOut {
    transfer: Option<Transfer>,
    /// A byte has been handed to the wire and its acknowledge is still
    /// outstanding. "After transmitting a data byte, the sender waits
    /// until an acknowledge is received" (§2.3).
    in_flight: bool,
    /// Alternating sequence bit of the current/next outgoing byte
    /// (robust protocol; flips on each fresh acknowledge).
    tx_seq: bool,
}

impl LinkOut {
    /// Begin an output transfer (the `output message` instruction on an
    /// external channel). The process must already be descheduled.
    pub fn begin(&mut self, t: Transfer) {
        debug_assert!(
            self.transfer.is_none(),
            "link output channel already in use"
        );
        self.transfer = Some(t);
    }

    /// Whether the wire may fetch a byte now.
    pub fn byte_available(&self) -> bool {
        matches!(&self.transfer, Some(t) if t.remaining > 0) && !self.in_flight
    }

    /// Address of the next byte to transmit, if one is available.
    /// The caller reads memory and then calls [`LinkOut::byte_taken`].
    pub fn next_byte_addr(&self) -> Option<u32> {
        if self.byte_available() {
            self.transfer.map(|t| t.pointer)
        } else {
            None
        }
    }

    /// Mark the next byte as handed to the wire.
    pub fn byte_taken(&mut self) {
        let t = self.transfer.as_mut().expect("no transfer in progress");
        debug_assert!(!self.in_flight && t.remaining > 0);
        self.in_flight = true;
    }

    /// An acknowledge arrived for the in-flight byte. Returns the process
    /// to wake if this was the final byte of the message ("the sending
    /// process may proceed only after the acknowledge for the final byte
    /// of the message has been received", §2.3).
    pub fn acknowledged(&mut self) -> Option<ProcDesc> {
        debug_assert!(self.in_flight, "acknowledge with no byte in flight");
        self.in_flight = false;
        let t = self
            .transfer
            .as_mut()
            .expect("acknowledge with no transfer");
        t.pointer = t.pointer.wrapping_add(1);
        t.remaining -= 1;
        if t.remaining == 0 {
            let done = *t;
            self.transfer = None;
            Some(done.process)
        } else {
            None
        }
    }

    /// Whether a transfer is active (for diagnostics).
    pub fn is_busy(&self) -> bool {
        self.transfer.is_some()
    }

    /// Whether a byte has been handed to the wire and its acknowledge is
    /// still outstanding. Used by the network scheduler's lookahead: an
    /// in-flight byte means the peer will owe an acknowledge.
    pub fn awaiting_ack(&self) -> bool {
        self.in_flight
    }

    /// Sequence bit to transmit with the current/next byte (robust
    /// protocol).
    pub fn seq(&self) -> bool {
        self.tx_seq
    }

    /// An acknowledge with sequence bit `seq` arrived (robust protocol).
    /// Only a fresh acknowledge — matching the in-flight byte — advances
    /// the transfer and flips the sequence bit; duplicates of an earlier
    /// acknowledge are reported [`AckCheck::Stale`] and change nothing.
    pub fn acknowledged_robust(&mut self, seq: bool) -> AckCheck {
        if !self.in_flight || seq != self.tx_seq {
            return AckCheck::Stale;
        }
        self.tx_seq = !self.tx_seq;
        AckCheck::Fresh(self.acknowledged())
    }
}

/// What a delivered byte did on the input side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcome {
    /// Byte consumed by a waiting process; acknowledge may be sent.
    /// `completed` carries the process to wake when the whole message has
    /// arrived.
    Consumed { completed: Option<ProcDesc> },
    /// No process was waiting; the byte went into the single-byte buffer
    /// and the acknowledge is deferred until a process takes it.
    Buffered { alting: Option<ProcDesc> },
}

/// Input half of a link: one occam channel into the transputer.
#[derive(Debug, Clone, Default)]
pub struct LinkIn {
    transfer: Option<Transfer>,
    /// The single byte buffer of §2.3.
    buffer: Option<u8>,
    /// An acknowledge owed to the remote sender, to be transmitted when
    /// the wire is free.
    ack_due: bool,
    /// An alternative construct is watching this channel (§3.2.10:
    /// "instructions for enabling and disabling channels provide support
    /// for an implementation of alternative input without polling").
    alting: Option<ProcDesc>,
    /// Sequence bit the next fresh byte must carry (robust protocol;
    /// flips on each accepted byte).
    rx_seq: bool,
}

impl LinkIn {
    /// Does the interface currently hold a buffered byte?
    pub fn has_buffered_byte(&self) -> bool {
        self.buffer.is_some()
    }

    /// Is a receiving process already waiting? Used by the wire to decide
    /// whether an *early* acknowledge may be sent as soon as reception
    /// starts (§2.3: "An acknowledge is transmitted as soon as reception
    /// of a data byte starts (if there is a process waiting for it...)").
    pub fn early_ack_possible(&self) -> bool {
        self.transfer.is_some() && self.buffer.is_none()
    }

    /// Register a receiving transfer. Returns a byte to consume
    /// immediately if one was buffered; the caller stores it to memory,
    /// then calls [`LinkIn::byte_stored`].
    pub fn begin(&mut self, t: Transfer) -> Option<u8> {
        debug_assert!(self.transfer.is_none(), "link input channel already in use");
        self.transfer = Some(t);
        self.buffer.take()
    }

    /// Register an ALT guard on this channel. Returns whether the guard
    /// is already ready (a byte is buffered).
    pub fn enable_alt(&mut self, p: ProcDesc) -> bool {
        self.alting = Some(p);
        self.buffer.is_some()
    }

    /// Remove an ALT guard. Returns whether the channel was ready.
    pub fn disable_alt(&mut self) -> bool {
        self.alting = None;
        self.buffer.is_some()
    }

    /// Account for one byte written to the waiting process's memory.
    /// Returns the process to wake if the message is complete, and sets
    /// the deferred acknowledge if the byte came from the buffer.
    pub fn byte_stored(&mut self, from_buffer: bool) -> Option<ProcDesc> {
        if from_buffer {
            self.ack_due = true;
        }
        let t = self.transfer.as_mut().expect("no transfer in progress");
        t.pointer = t.pointer.wrapping_add(1);
        t.remaining -= 1;
        if t.remaining == 0 {
            let done = *t;
            self.transfer = None;
            Some(done.process)
        } else {
            None
        }
    }

    /// Address the next received byte should be stored at, if a transfer
    /// is waiting.
    pub fn store_addr(&self) -> Option<u32> {
        self.transfer.map(|t| t.pointer)
    }

    /// A byte arrived from the wire. If a process is waiting the caller
    /// must store it at [`LinkIn::store_addr`] and then call
    /// [`LinkIn::byte_stored`] with `from_buffer = false`; otherwise it is
    /// buffered here.
    pub fn deliver(&mut self, byte: u8) -> RxOutcome {
        if self.transfer.is_some() {
            RxOutcome::Consumed { completed: None }
        } else {
            debug_assert!(self.buffer.is_none(), "protocol violation: buffer overrun");
            self.buffer = Some(byte);
            RxOutcome::Buffered {
                alting: self.alting.take(),
            }
        }
    }

    /// Take a deferred acknowledge, if one is owed.
    pub fn take_ack_due(&mut self) -> bool {
        std::mem::take(&mut self.ack_due)
    }

    /// Classify an incoming data byte by its sequence bit (robust
    /// protocol). Call *before* [`LinkIn::deliver`]; only
    /// [`SeqCheck::Accept`] should reach `deliver`.
    pub fn check_seq(&mut self, seq: bool) -> SeqCheck {
        if seq == self.rx_seq {
            self.rx_seq = !self.rx_seq;
            SeqCheck::Accept
        } else if self.buffer.is_some() || self.ack_due {
            SeqCheck::DupBusy
        } else {
            SeqCheck::DupReAck
        }
    }

    /// Sequence bit of the last accepted byte — the bit every
    /// acknowledge (immediate, deferred or repeated) must carry.
    pub fn last_seq(&self) -> bool {
        !self.rx_seq
    }

    /// Whether a transfer is active (for diagnostics).
    pub fn is_busy(&self) -> bool {
        self.transfer.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Priority;

    fn proc1() -> ProcDesc {
        ProcDesc::new(0x8000_0100, Priority::Low)
    }

    #[test]
    fn output_wakes_after_final_ack() {
        let mut out = LinkOut::default();
        out.begin(Transfer {
            process: proc1(),
            pointer: 0x8000_0200,
            remaining: 2,
        });
        assert!(out.byte_available());
        assert_eq!(out.next_byte_addr(), Some(0x8000_0200));
        out.byte_taken();
        assert!(!out.byte_available()); // waits for the acknowledge
        assert_eq!(out.acknowledged(), None);
        assert_eq!(out.next_byte_addr(), Some(0x8000_0201));
        out.byte_taken();
        assert_eq!(out.acknowledged(), Some(proc1()));
        assert!(!out.is_busy());
    }

    #[test]
    fn input_buffers_one_byte_when_no_process() {
        let mut li = LinkIn::default();
        assert!(!li.early_ack_possible());
        match li.deliver(0xAB) {
            RxOutcome::Buffered { alting: None } => {}
            other => panic!("expected Buffered, got {other:?}"),
        }
        assert!(li.has_buffered_byte());
        // A process arrives and takes the buffered byte: ack becomes due.
        let got = li.begin(Transfer {
            process: proc1(),
            pointer: 0x8000_0300,
            remaining: 1,
        });
        assert_eq!(got, Some(0xAB));
        assert_eq!(li.byte_stored(true), Some(proc1()));
        assert!(li.take_ack_due());
        assert!(!li.take_ack_due());
    }

    #[test]
    fn input_with_waiting_process_allows_early_ack() {
        let mut li = LinkIn::default();
        li.begin(Transfer {
            process: proc1(),
            pointer: 0x8000_0300,
            remaining: 2,
        });
        assert!(li.early_ack_possible());
        match li.deliver(1) {
            RxOutcome::Consumed { .. } => {}
            other => panic!("expected Consumed, got {other:?}"),
        }
        assert_eq!(li.store_addr(), Some(0x8000_0300));
        assert_eq!(li.byte_stored(false), None);
        assert_eq!(li.store_addr(), Some(0x8000_0301));
        li.deliver(2);
        assert_eq!(li.byte_stored(false), Some(proc1()));
    }

    #[test]
    fn robust_output_ignores_stale_acks() {
        let mut out = LinkOut::default();
        out.begin(Transfer {
            process: proc1(),
            pointer: 0x8000_0200,
            remaining: 2,
        });
        assert!(!out.seq());
        out.byte_taken();
        // A stale acknowledge (wrong sequence bit) changes nothing.
        assert_eq!(out.acknowledged_robust(true), AckCheck::Stale);
        assert!(out.awaiting_ack());
        // The fresh one advances and flips the sequence bit.
        assert_eq!(out.acknowledged_robust(false), AckCheck::Fresh(None));
        assert!(out.seq());
        out.byte_taken();
        // A duplicate of the *first* acknowledge is now stale.
        assert_eq!(out.acknowledged_robust(false), AckCheck::Stale);
        assert_eq!(
            out.acknowledged_robust(true),
            AckCheck::Fresh(Some(proc1()))
        );
        // Nothing in flight: any acknowledge is stale.
        assert_eq!(out.acknowledged_robust(false), AckCheck::Stale);
    }

    #[test]
    fn robust_input_classifies_duplicates() {
        let mut li = LinkIn::default();
        li.begin(Transfer {
            process: proc1(),
            pointer: 0x8000_0300,
            remaining: 2,
        });
        assert_eq!(li.check_seq(false), SeqCheck::Accept);
        assert!(!li.last_seq());
        li.deliver(1);
        li.byte_stored(false);
        // The acknowledge was released immediately (process waiting), so
        // a resend of the same byte just needs re-acknowledging.
        assert_eq!(li.check_seq(false), SeqCheck::DupReAck);
        assert_eq!(li.check_seq(true), SeqCheck::Accept);
        assert!(li.last_seq());
    }

    #[test]
    fn robust_input_reports_busy_while_ack_is_held() {
        let mut li = LinkIn::default();
        // No process waiting: byte goes to the buffer, ack deferred.
        assert_eq!(li.check_seq(false), SeqCheck::Accept);
        li.deliver(7);
        // Resend while the byte is buffered: busy, not re-ack.
        assert_eq!(li.check_seq(false), SeqCheck::DupBusy);
        // Process takes the byte; the deferred ack is due but unsent.
        let got = li.begin(Transfer {
            process: proc1(),
            pointer: 0x8000_0300,
            remaining: 1,
        });
        assert_eq!(got, Some(7));
        li.byte_stored(true);
        assert_eq!(li.check_seq(false), SeqCheck::DupBusy);
        // Ack released: further duplicates are re-acknowledged.
        assert!(li.take_ack_due());
        assert_eq!(li.check_seq(false), SeqCheck::DupReAck);
    }

    #[test]
    fn alt_guard_sees_buffered_byte() {
        let mut li = LinkIn::default();
        assert!(!li.enable_alt(proc1()));
        match li.deliver(9) {
            RxOutcome::Buffered { alting: Some(p) } => assert_eq!(p, proc1()),
            other => panic!("expected alting wake, got {other:?}"),
        }
        // Guard disabled: channel reports ready because the byte is held.
        assert!(li.disable_alt());
    }
}
