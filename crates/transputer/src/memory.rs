//! Byte-addressed memory with the transputer's signed linear address
//! space (§3.2.2).
//!
//! Memory starts at the most negative integer ("MostNeg") and runs
//! upwards. The first words are reserved for the link channels, the event
//! channel and the timer queue pointers, exactly as on the first parts;
//! user memory begins at [`Memory::mem_start`]. The instruction
//! architecture does not differentiate between on-chip and off-chip
//! memory (§3.2.2); the emulator models the *timing* difference with a
//! configurable per-access penalty used by the off-chip ablation.

use crate::error::HaltReason;
use crate::word::WordLength;

/// Number of reserved words at the bottom of memory: 4 link output
/// channels, 4 link input channels, the event channel, two timer queue
/// pointers, and 7 further reserved words (mirroring the first parts'
/// layout, where the reserved area also shadows state during analyse).
pub const RESERVED_WORDS: u32 = 18;

/// Word offset of the first link output channel.
pub const LINK_OUT_BASE: u32 = 0;
/// Word offset of the first link input channel.
pub const LINK_IN_BASE: u32 = 4;
/// Word offset of the event channel.
pub const EVENT_CHANNEL: u32 = 8;
/// Word offset of the high-priority timer queue pointer (TPtrLoc0).
pub const TPTR_LOC: [u32; 2] = [9, 10];

/// Default on-chip memory of the T424: 4K bytes (§3.1).
pub const T424_ON_CHIP_BYTES: u32 = 4 * 1024;

/// Log2 of the decode-cache block size: the granularity at which code
/// generations are tracked for the predecoded-instruction cache.
pub(crate) const CODE_BLOCK_SHIFT: usize = 6;
/// Bytes per decode-cache block.
pub(crate) const CODE_BLOCK_BYTES: usize = 1 << CODE_BLOCK_SHIFT;

/// Memory configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Bytes of on-chip memory (single-cycle access).
    pub on_chip_bytes: u32,
    /// Bytes of external memory appended above the on-chip block.
    pub off_chip_bytes: u32,
    /// Extra processor cycles charged per access falling in external
    /// memory. Zero reproduces the paper's on-chip figures.
    pub off_chip_penalty: u32,
}

impl MemoryConfig {
    /// The T424 with no external memory.
    pub fn t424() -> MemoryConfig {
        MemoryConfig {
            on_chip_bytes: T424_ON_CHIP_BYTES,
            off_chip_bytes: 0,
            off_chip_penalty: 0,
        }
    }

    /// A development configuration with generous external memory attached
    /// through a zero-wait-state interface.
    pub fn with_external(self, bytes: u32, penalty: u32) -> MemoryConfig {
        MemoryConfig {
            off_chip_bytes: bytes,
            off_chip_penalty: penalty,
            ..self
        }
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        // Default to a comfortable development part: 4K on chip plus
        // 60K external with no penalty.
        MemoryConfig::t424().with_external(60 * 1024, 0)
    }
}

/// The memory of one transputer.
#[derive(Debug, Clone)]
pub struct Memory {
    word: WordLength,
    bytes: Vec<u8>,
    on_chip_bytes: u32,
    off_chip_penalty: u32,
    /// Cycles accrued from off-chip accesses since last drained.
    penalty_accrued: u32,
    /// Bytes below this offset can be fetched without penalty
    /// bookkeeping: the whole memory when no off-chip penalty is
    /// configured, otherwise just the on-chip block.
    fast_bytes: usize,
    /// Per-block code generation, bumped on a write into a block that
    /// the decode cache has marked cached. Cache lines snapshot the
    /// generation at fill time; a mismatch means stale.
    code_gen: Vec<u32>,
    /// Write gate: only blocks the decode cache actually holds pay the
    /// generation bump, so ordinary data writes stay one branch.
    code_cached: Vec<bool>,
    /// Monotonic counter bumped alongside *every* `code_gen` bump, in
    /// any block. A translated block snapshots it on entry; a mid-block
    /// mismatch means some cached code somewhere was overwritten, so
    /// the block deoptimises and re-validates its own covers. One u64
    /// compare per operation instead of one gen compare per covered
    /// block.
    code_epoch: u64,
    /// A write landed in the reserved words (link channels, timer queue
    /// heads) since the flag was last taken. The CPU uses this to keep
    /// its cached timer-queue-empty knowledge honest.
    reserved_dirty: bool,
    /// Byte size of the reserved region, precomputed.
    reserved_bytes: usize,
}

impl Memory {
    /// Create a memory for the given word length.
    pub fn new(word: WordLength, config: MemoryConfig) -> Memory {
        let total = (config.on_chip_bytes + config.off_chip_bytes) as usize;
        let blocks = total.div_ceil(CODE_BLOCK_BYTES);
        Memory {
            word,
            bytes: vec![0; total],
            on_chip_bytes: config.on_chip_bytes,
            off_chip_penalty: config.off_chip_penalty,
            penalty_accrued: 0,
            fast_bytes: if config.off_chip_penalty == 0 {
                total
            } else {
                config.on_chip_bytes as usize
            },
            code_gen: vec![0; blocks],
            code_cached: vec![false; blocks],
            code_epoch: 0,
            reserved_dirty: true,
            reserved_bytes: (RESERVED_WORDS * word.bytes_per_word()) as usize,
        }
    }

    /// The word length this memory serves.
    pub fn word_length(&self) -> WordLength {
        self.word
    }

    /// Total bytes of memory.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Lowest address: MostNeg.
    pub fn base(&self) -> u32 {
        self.word.most_neg()
    }

    /// First address available to programs, above the reserved words.
    pub fn mem_start(&self) -> u32 {
        self.word.mask(
            self.base()
                .wrapping_add(RESERVED_WORDS * self.word.bytes_per_word()),
        )
    }

    /// One-past-the-last valid address.
    pub fn limit(&self) -> u32 {
        self.word.mask(self.base().wrapping_add(self.size()))
    }

    /// Address of a reserved word (link channel, timer pointer).
    pub fn reserved_addr(&self, word_offset: u32) -> u32 {
        self.word.index_word(self.base(), word_offset)
    }

    /// Whether `addr` denotes an external channel (a reserved link or
    /// event channel word). The `input message` and `output message`
    /// instructions "use the address of a channel to determine whether
    /// the channel is internal or external" (§3.2.10).
    pub fn is_external_channel(&self, addr: u32) -> bool {
        let off = self.word.mask(addr.wrapping_sub(self.base()));
        off < (EVENT_CHANNEL + 1) * self.word.bytes_per_word()
    }

    /// Classify an external channel address: `(link, is_output)`.
    /// Link 4 with `is_output == false` is the event channel.
    pub fn external_channel_id(&self, addr: u32) -> Option<(u32, bool)> {
        if !self.is_external_channel(addr) {
            return None;
        }
        let w = self.word.mask(addr.wrapping_sub(self.base())) / self.word.bytes_per_word();
        Some(if w < LINK_IN_BASE {
            (w, true)
        } else if w < EVENT_CHANNEL {
            (w - LINK_IN_BASE, false)
        } else {
            (4, false)
        })
    }

    #[inline]
    fn offset(&self, addr: u32) -> Result<usize, HaltReason> {
        let off = self.word.mask(addr.wrapping_sub(self.base())) as usize;
        if off < self.bytes.len() {
            Ok(off)
        } else {
            Err(HaltReason::MemoryFault { address: addr })
        }
    }

    #[inline]
    fn note_access(&mut self, off: usize) {
        if off >= self.on_chip_bytes as usize {
            self.penalty_accrued += self.off_chip_penalty;
        }
    }

    /// Drain the off-chip penalty cycles accrued since the last call.
    pub fn take_penalty_cycles(&mut self) -> u32 {
        std::mem::take(&mut self.penalty_accrued)
    }

    /// Write gate for the decode cache: bump the generation of a block
    /// that holds cached code, and flag writes into the reserved words.
    #[inline]
    fn note_write(&mut self, off: usize) {
        let b = off >> CODE_BLOCK_SHIFT;
        if self.code_cached[b] {
            self.code_cached[b] = false;
            self.code_gen[b] = self.code_gen[b].wrapping_add(1);
            self.code_epoch += 1;
        }
        if off < self.reserved_bytes {
            self.reserved_dirty = true;
        }
    }

    /// [`Memory::note_write`] over a byte range (bulk loads).
    fn note_write_range(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = off >> CODE_BLOCK_SHIFT;
        let last = (off + len - 1) >> CODE_BLOCK_SHIFT;
        for b in first..=last {
            if self.code_cached[b] {
                self.code_cached[b] = false;
                self.code_gen[b] = self.code_gen[b].wrapping_add(1);
                self.code_epoch += 1;
            }
        }
        if off < self.reserved_bytes {
            self.reserved_dirty = true;
        }
    }

    /// Current generation of a code block.
    #[inline]
    pub(crate) fn code_block_gen(&self, block: usize) -> u32 {
        self.code_gen[block]
    }

    /// Mark a block as held by the decode cache, arming the write gate.
    #[inline]
    pub(crate) fn note_code_cached(&mut self, block: usize) {
        self.code_cached[block] = true;
    }

    /// Global write-into-cached-code epoch (see the field's docs).
    #[inline]
    pub(crate) fn code_epoch(&self) -> u64 {
        self.code_epoch
    }

    /// Number of 64-byte code blocks tracked by the write gate.
    #[inline]
    pub(crate) fn code_blocks(&self) -> usize {
        self.code_gen.len()
    }

    /// Take the reserved-words-written flag.
    #[inline]
    pub(crate) fn take_reserved_dirty(&mut self) -> bool {
        // Checked on the hot path: branch on the common (clean) case
        // rather than storing `false` unconditionally.
        if self.reserved_dirty {
            self.reserved_dirty = false;
            true
        } else {
            false
        }
    }

    /// Whether reads of the reserved words never accrue a penalty (they
    /// sit on chip, or no off-chip penalty is configured). When true,
    /// the per-tick timer-queue-head reads are provably side-effect
    /// free, so runs of idle ticks may be processed in bulk.
    pub(crate) fn reserved_reads_free(&self) -> bool {
        self.off_chip_penalty == 0 || self.reserved_bytes <= self.on_chip_bytes as usize
    }

    /// Whether *no* read anywhere can accrue a penalty, i.e. reads are
    /// pure observations. Allows eliding provably no-op timer-queue
    /// scans wholesale.
    pub(crate) fn timing_pure(&self) -> bool {
        self.off_chip_penalty == 0
    }

    /// One past the highest offset [`Memory::fetch_byte_fast`] serves.
    #[inline]
    pub(crate) fn fast_limit(&self) -> usize {
        self.fast_bytes
    }

    /// Read a machine word. The address is word-aligned first, as on the
    /// hardware.
    pub fn read_word(&mut self, addr: u32) -> Result<u32, HaltReason> {
        let addr = self.word.align_word(addr);
        let off = self.offset(addr)?;
        self.note_access(off);
        // Memory is sized in whole words, so an in-range aligned offset
        // has the full word behind it; a single little-endian load
        // replaces the byte loop (one bounds check instead of four).
        let v = match self.word {
            WordLength::Bits32 => {
                let b: [u8; 4] = self.bytes[off..off + 4]
                    .try_into()
                    .expect("aligned word in range");
                u32::from_le_bytes(b)
            }
            WordLength::Bits16 => {
                let b: [u8; 2] = self.bytes[off..off + 2]
                    .try_into()
                    .expect("aligned word in range");
                u32::from(u16::from_le_bytes(b))
            }
        };
        Ok(v)
    }

    /// Write a machine word (address word-aligned first).
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), HaltReason> {
        let addr = self.word.align_word(addr);
        let off = self.offset(addr)?;
        self.note_access(off);
        self.note_write(off);
        let v = self.word.mask(value);
        match self.word {
            WordLength::Bits32 => {
                self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
            }
            WordLength::Bits16 => {
                self.bytes[off..off + 2].copy_from_slice(&(v as u16).to_le_bytes());
            }
        }
        Ok(())
    }

    /// Instruction-fetch fast path: read one byte with neither `Result`
    /// plumbing nor penalty bookkeeping. Returns `None` when the address
    /// is out of range or would accrue an off-chip penalty, in which case
    /// the caller must fall back to [`Memory::read_byte`].
    #[inline]
    pub fn fetch_byte_fast(&self, addr: u32) -> Option<u8> {
        let off = self.word.mask(addr.wrapping_sub(self.base())) as usize;
        if off < self.fast_bytes {
            Some(self.bytes[off])
        } else {
            None
        }
    }

    /// Read one byte.
    pub fn read_byte(&mut self, addr: u32) -> Result<u8, HaltReason> {
        let off = self.offset(self.word.mask(addr))?;
        self.note_access(off);
        Ok(self.bytes[off])
    }

    /// Write one byte.
    pub fn write_byte(&mut self, addr: u32, value: u8) -> Result<(), HaltReason> {
        let off = self.offset(self.word.mask(addr))?;
        self.note_access(off);
        self.note_write(off);
        self.bytes[off] = value;
        Ok(())
    }

    /// Bulk load bytes (no timing effects): program loading, test setup.
    pub fn load(&mut self, addr: u32, data: &[u8]) -> Result<(), HaltReason> {
        let off = self.offset(addr)?;
        if off + data.len() > self.bytes.len() {
            return Err(HaltReason::MemoryFault {
                address: addr.wrapping_add(data.len() as u32),
            });
        }
        self.note_write_range(off, data.len());
        self.bytes[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read a machine word without timing effects (observer access for
    /// harnesses; does not accrue off-chip penalties).
    pub fn peek_word(&self, addr: u32) -> Result<u32, HaltReason> {
        let addr = self.word.align_word(addr);
        let off = self.word.mask(addr.wrapping_sub(self.base())) as usize;
        if off + self.word.bytes_per_word() as usize > self.bytes.len() {
            return Err(HaltReason::MemoryFault { address: addr });
        }
        let mut v: u32 = 0;
        for i in (0..self.word.bytes_per_word() as usize).rev() {
            v = (v << 8) | u32::from(self.bytes[off + i]);
        }
        Ok(self.word.mask(v))
    }

    /// Bulk read bytes (no timing effects): result extraction in tests.
    pub fn dump(&self, addr: u32, len: usize) -> Result<Vec<u8>, HaltReason> {
        let off = self.word.mask(addr.wrapping_sub(self.base())) as usize;
        if off + len > self.bytes.len() {
            return Err(HaltReason::MemoryFault { address: addr });
        }
        Ok(self.bytes[off..off + len].to_vec())
    }

    /// Fill all of memory with a byte (diagnostic).
    pub fn fill(&mut self, value: u8) {
        self.note_write_range(0, self.bytes.len());
        self.bytes.fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem32() -> Memory {
        Memory::new(WordLength::Bits32, MemoryConfig::t424())
    }

    #[test]
    fn word_roundtrip_little_endian() {
        let mut m = mem32();
        let a = m.mem_start();
        m.write_word(a, 0x1234_5678).unwrap();
        assert_eq!(m.read_word(a).unwrap(), 0x1234_5678);
        assert_eq!(m.read_byte(a).unwrap(), 0x78); // little-endian bytes
        assert_eq!(m.read_byte(a + 3).unwrap(), 0x12);
    }

    #[test]
    fn unaligned_word_access_aligns() {
        let mut m = mem32();
        let a = m.mem_start();
        m.write_word(a, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_word(a + 3).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn mem_start_is_18_words_up() {
        let m = mem32();
        assert_eq!(m.mem_start(), 0x8000_0048);
        let m16 = Memory::new(WordLength::Bits16, MemoryConfig::t424());
        assert_eq!(m16.mem_start(), 0x8000 + 36);
    }

    #[test]
    fn external_channel_classification() {
        let m = mem32();
        // Link 0 output channel at MostNeg.
        assert!(m.is_external_channel(0x8000_0000));
        assert_eq!(m.external_channel_id(0x8000_0000), Some((0, true)));
        // Link 2 input channel.
        assert_eq!(m.external_channel_id(m.reserved_addr(6)), Some((2, false)));
        // Event channel.
        assert_eq!(m.external_channel_id(m.reserved_addr(8)), Some((4, false)));
        // First user word is internal.
        assert_eq!(m.external_channel_id(m.mem_start()), None);
        assert!(!m.is_external_channel(m.mem_start()));
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = mem32();
        let past_end = m.limit();
        assert!(matches!(
            m.read_word(past_end),
            Err(HaltReason::MemoryFault { .. })
        ));
        assert!(m.write_byte(past_end, 1).is_err());
        // Positive addresses are far outside a 4K part.
        assert!(m.read_word(0x0000_0000).is_err());
    }

    #[test]
    fn off_chip_penalty_accrues() {
        let cfg = MemoryConfig::t424().with_external(4096, 3);
        let mut m = Memory::new(WordLength::Bits32, cfg);
        let external = m.base().wrapping_add(T424_ON_CHIP_BYTES);
        m.read_word(external).unwrap();
        m.write_word(external + 4, 1).unwrap();
        assert_eq!(m.take_penalty_cycles(), 6);
        assert_eq!(m.take_penalty_cycles(), 0);
        // On-chip accesses are free.
        let on = m.mem_start();
        m.read_word(on).unwrap();
        assert_eq!(m.take_penalty_cycles(), 0);
    }

    #[test]
    fn load_and_dump() {
        let mut m = mem32();
        let a = m.mem_start();
        m.load(a, &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(m.dump(a, 5).unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn code_generations_bump_only_when_cached() {
        let mut m = mem32();
        let a = m.mem_start();
        let block = m.word.mask(a.wrapping_sub(m.base())) as usize >> CODE_BLOCK_SHIFT;
        let g0 = m.code_block_gen(block);
        // Un-gated: ordinary writes leave the generation alone.
        m.write_word(a, 1).unwrap();
        assert_eq!(m.code_block_gen(block), g0);
        // Gated: a write into a cached block bumps the generation once
        // and disarms the gate.
        m.note_code_cached(block);
        m.write_byte(a, 2).unwrap();
        m.write_byte(a, 3).unwrap();
        assert_eq!(m.code_block_gen(block), g0.wrapping_add(1));
        // Bulk loads hit every touched block.
        m.note_code_cached(block);
        m.note_code_cached(block + 1);
        m.load(a, &[0u8; 2 * CODE_BLOCK_BYTES]).unwrap();
        assert_eq!(m.code_block_gen(block), g0.wrapping_add(2));
        assert_eq!(m.code_block_gen(block + 1), 1);
    }

    #[test]
    fn reserved_dirty_tracks_reserved_writes() {
        let mut m = mem32();
        assert!(m.take_reserved_dirty(), "starts dirty");
        assert!(!m.take_reserved_dirty());
        m.write_word(m.reserved_addr(TPTR_LOC[0]), 7).unwrap();
        assert!(m.take_reserved_dirty());
        m.write_word(m.mem_start(), 7).unwrap();
        assert!(!m.take_reserved_dirty(), "user writes do not flag");
    }

    #[test]
    fn word16_masking() {
        let mut m = Memory::new(WordLength::Bits16, MemoryConfig::t424());
        let a = m.mem_start();
        m.write_word(a, 0xFFFF_1234).unwrap();
        assert_eq!(m.read_word(a).unwrap(), 0x1234);
    }
}
