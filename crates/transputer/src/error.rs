//! Error types for the emulator.

use std::fmt;

/// Why a transputer stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// The program executed the reserved halt pseudo-operation used by
    /// hosted programs to terminate a simulation run.
    Stopped,
    /// The error flag was set while `HaltOnError` mode was active.
    ErrorFlag,
    /// An address outside the configured memory was touched.
    MemoryFault { address: u32 },
    /// An undefined operation code was executed.
    IllegalInstruction { opcode: u32 },
}

impl fmt::Display for HaltReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaltReason::Stopped => write!(f, "program stopped"),
            HaltReason::ErrorFlag => write!(f, "error flag set in halt-on-error mode"),
            HaltReason::MemoryFault { address } => {
                write!(f, "memory fault at address {address:#010x}")
            }
            HaltReason::IllegalInstruction { opcode } => {
                write!(f, "illegal operation code {opcode:#x}")
            }
        }
    }
}

/// Error raised by emulator configuration and loading APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Program bytes do not fit in the configured memory.
    ProgramTooLarge { program: usize, memory: usize },
    /// A load or poke referenced an address outside memory.
    AddressOutOfRange { address: u32 },
    /// A run exceeded the supplied cycle budget without satisfying its
    /// stopping condition.
    CycleBudgetExhausted { budget: u64 },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::ProgramTooLarge { program, memory } => {
                write!(
                    f,
                    "program of {program} bytes does not fit in {memory} bytes of memory"
                )
            }
            CpuError::AddressOutOfRange { address } => {
                write!(f, "address {address:#010x} is outside configured memory")
            }
            CpuError::CycleBudgetExhausted { budget } => {
                write!(f, "run did not complete within {budget} cycles")
            }
        }
    }
}

impl std::error::Error for CpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for r in [
            HaltReason::Stopped,
            HaltReason::ErrorFlag,
            HaltReason::MemoryFault { address: 4 },
            HaltReason::IllegalInstruction { opcode: 0x99 },
        ] {
            assert!(!r.to_string().is_empty());
        }
        assert!(!CpuError::ProgramTooLarge {
            program: 9,
            memory: 4
        }
        .to_string()
        .is_empty());
        assert!(!CpuError::CycleBudgetExhausted { budget: 7 }
            .to_string()
            .is_empty());
    }
}
