//! Predecoded instruction cache with prefix fusion.
//!
//! Every instruction byte costs the interpreter a fetch, a nibble
//! split, and a 16-way dispatch — and a `pfix`/`nfix` chain pays that
//! per prefix byte. Real transputer programs re-execute the same code
//! constantly, so the emulator predecodes each operation *once* into a
//! fixed-size record (terminal function, fused operand, byte length)
//! and thereafter executes the whole chain from the record.
//!
//! The cache is an instrument of the host, invisible to the simulation:
//!
//! * **Timing** is charged exactly as the byte path charges it — one
//!   cycle per prefix byte (batched into a single `advance_time64`,
//!   legal because fusion only runs while both timer queues are empty,
//!   so no tick in the batch can wake or preempt anything), then the
//!   terminal's own cycles via the shared [`Cpu::exec_direct`].
//! * **Stats** count each byte (`instructions`) and the true encoded
//!   length (`record_operation`), exactly as before.
//! * **Invalidation** is write-gated on the memory side: a cache line
//!   snapshots its 64-byte block's generation counter, and any store
//!   landing in a block that holds cached code bumps the generation,
//!   so self-modifying code and boot loading re-decode naturally.
//! * **Bypass**: entries whose execution can interact mid-instruction —
//!   `j` (a timeslice point), `lend`, and the resumable long operations
//!   (block moves, messages, long arithmetic) — are recorded as bypass
//!   markers and always run through the byte-at-a-time path, as do
//!   entries outside penalty-free memory or abutting the slice budget.

use super::{Cpu, SliceOutcome};
use crate::instr::{Direct, Op};
use crate::memory::{Memory, CODE_BLOCK_BYTES, CODE_BLOCK_SHIFT};
use crate::process::Priority;
use crate::stats::Stats;
use crate::word::WordLength;

/// Longest byte chain the cache will fuse. Minimal encodings never
/// exceed `2 * bytes_per_word` bytes; longer (redundant) chains fall
/// back to the byte path.
const MAX_FUSED_LEN: u32 = 16;

/// Entry holds a decoded operation.
pub(crate) const F_VALID: u8 = 1;
/// Entry must execute through the byte-at-a-time path.
pub(crate) const F_BYPASS: u8 = 2;
/// Entry's byte chain spills into the next 64-byte block.
pub(crate) const F_SPANS: u8 = 4;

/// One predecoded operation: the whole `pfix`/`nfix` chain plus its
/// terminal function, fused.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DecEntry {
    /// Fused operand (prefix chain folded in, as `oreg | data` would be).
    pub operand: u32,
    /// Terminal function nibble.
    pub fun: u8,
    /// Total encoded length in bytes, including prefixes.
    pub len: u8,
    /// `F_VALID` / `F_BYPASS` / `F_SPANS`.
    pub flags: u8,
}

/// Per-block bookkeeping flag: the block's entries have been filled at
/// least once (distinguishes a true invalidation from a cold line).
const B_FILLED: u8 = 1;
/// Per-block bookkeeping flag: some entry in the block carries
/// `F_SPANS`.
const B_HAS_SPANS: u8 = 2;

/// The per-processor decode cache: one entry per code byte in flat,
/// directly mapped storage (the memory offset *is* the key, so there
/// are no tags and no aliasing), plus per-64-byte-block generation
/// snapshots. Flat contiguous arrays keep the hit path to three dense
/// loads — sequential code walks sequential entries, so the host's own
/// cache prefetches them. Storage grows geometrically with the highest
/// code offset actually executed, so short-lived processors never pay
/// for the full address range.
#[derive(Debug, Clone, Default)]
pub(crate) struct DecodeCache {
    /// Decoded entries indexed by the operation's first-byte offset.
    entries: Vec<DecEntry>,
    /// Per-block generation observed when the block's entries filled;
    /// entries are stale whenever this differs from the memory side.
    gens: Vec<u32>,
    /// Per-block generation of the *next* block observed when a
    /// spilling entry filled; guards chains crossing the boundary.
    spill_gens: Vec<u32>,
    /// Per-block `B_FILLED` / `B_HAS_SPANS`.
    block_flags: Vec<u8>,
}

impl DecodeCache {
    pub(crate) fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// The decoded entry for the operation whose first byte is at
    /// memory offset `off` (`== mask(iptr - base)`, already checked
    /// `< fast_limit`), filling or refreshing it as needed. The hit
    /// path is branch-minimal and inlined into the fused loop; misses,
    /// growth, and invalidations take the cold path.
    #[inline(always)]
    pub(crate) fn entry_at(
        &mut self,
        mem: &mut Memory,
        stats: &mut Stats,
        word: WordLength,
        iptr: u32,
        off: usize,
    ) -> DecEntry {
        let block = off >> CODE_BLOCK_SHIFT;
        let e = match self.entries.get(off) {
            Some(&e) => e,
            None => return self.fill(mem, stats, word, iptr, off),
        };
        if e.flags & F_VALID != 0
            && self.gens[block] == mem.code_block_gen(block)
            && (e.flags & F_SPANS == 0 || self.spill_gens[block] == mem.code_block_gen(block + 1))
        {
            stats.decode_hits += 1;
            return e;
        }
        self.fill(mem, stats, word, iptr, off)
    }

    /// Cold path of [`DecodeCache::entry_at`]: grow the arrays to
    /// cover the block if needed, refresh the block's bookkeeping,
    /// decode the operation, and store the entry.
    #[cold]
    fn fill(
        &mut self,
        mem: &mut Memory,
        stats: &mut Stats,
        word: WordLength,
        iptr: u32,
        off: usize,
    ) -> DecEntry {
        let block = off >> CODE_BLOCK_SHIFT;
        if block >= self.gens.len() {
            // Double (at least) so growth cost amortises to O(1) per
            // block; new blocks arrive zeroed, i.e. all-invalid.
            let target = (block + 1).next_power_of_two().max(self.gens.len() * 2);
            self.entries
                .resize(target * CODE_BLOCK_BYTES, DecEntry::default());
            self.gens.resize(target, 0);
            self.spill_gens.resize(target, 0);
            self.block_flags.resize(target, 0);
        }
        if self.gens[block] != mem.code_block_gen(block) {
            // The block was written since its entries filled.
            if self.block_flags[block] & B_FILLED != 0 {
                stats.decode_invalidations += 1;
            }
            self.wipe_block(block);
            self.gens[block] = mem.code_block_gen(block);
        } else if self.entries[off].flags & (F_VALID | F_SPANS) == F_VALID | F_SPANS {
            // Reached on the hit path's spill mismatch: the
            // spilled-into block was written, so every spanning entry
            // in this block is suspect.
            stats.decode_invalidations += 1;
            self.wipe_spans(block);
        }
        stats.decode_misses += 1;
        let e = decode_entry(mem, word, iptr);
        self.entries[off] = e;
        self.block_flags[block] |= B_FILLED;
        mem.note_code_cached(block);
        if e.flags & F_SPANS != 0 {
            let next_gen = mem.code_block_gen(block + 1);
            if self.block_flags[block] & B_HAS_SPANS != 0 && self.spill_gens[block] != next_gen {
                // A previously observed next-block generation went
                // stale; older spanning entries must not survive under
                // the new spill_gen.
                self.wipe_spans(block);
                self.entries[off] = e;
            }
            self.spill_gens[block] = next_gen;
            self.block_flags[block] |= B_HAS_SPANS;
            mem.note_code_cached(block + 1);
        }
        e
    }

    fn block_entries(&mut self, block: usize) -> &mut [DecEntry] {
        &mut self.entries[block << CODE_BLOCK_SHIFT..][..CODE_BLOCK_BYTES]
    }

    fn wipe_block(&mut self, block: usize) {
        self.block_entries(block).fill(DecEntry::default());
        self.spill_gens[block] = 0;
        self.block_flags[block] &= !B_HAS_SPANS;
    }

    fn wipe_spans(&mut self, block: usize) {
        for e in self.block_entries(block) {
            if e.flags & F_SPANS != 0 {
                *e = DecEntry::default();
            }
        }
        self.block_flags[block] &= !B_HAS_SPANS;
    }
}

/// Decode one operation starting at `iptr` into a cache entry,
/// replaying the `pfix`/`nfix` operand construction of §3.2.7. Also
/// used by the translation tier (`cpu/translate.rs`) to walk a basic
/// block without touching this cache's storage.
pub(super) fn decode_entry(mem: &Memory, word: WordLength, iptr: u32) -> DecEntry {
    let base = word.most_neg();
    let start = word.mask(iptr.wrapping_sub(base)) as usize;
    let mut oreg: u32 = 0;
    let mut len: u32 = 0;
    loop {
        if len >= MAX_FUSED_LEN {
            return bypass_entry(len);
        }
        let addr = word.mask(iptr.wrapping_add(len));
        // Chains that wrap the address space or leave penalty-free
        // memory cannot be fused.
        if word.mask(addr.wrapping_sub(base)) as usize != start + len as usize {
            return bypass_entry(len + 1);
        }
        let byte = match mem.fetch_byte_fast(addr) {
            Some(b) => b,
            None => return bypass_entry(len + 1),
        };
        let fun = Direct::from_nibble(byte >> 4);
        let data = u32::from(byte & 0xF);
        len += 1;
        match fun {
            Direct::Prefix => oreg = word.mask((oreg | data) << 4),
            Direct::NegativePrefix => oreg = word.mask(!(oreg | data) << 4),
            _ => {
                let operand = oreg | data;
                let mut flags = F_VALID;
                if bypasses(fun, operand) {
                    flags |= F_BYPASS;
                }
                if (start + len as usize - 1) >> CODE_BLOCK_SHIFT != start >> CODE_BLOCK_SHIFT {
                    flags |= F_SPANS;
                }
                return DecEntry {
                    operand,
                    fun: fun.nibble(),
                    len: len as u8,
                    flags,
                };
            }
        }
    }
}

fn bypass_entry(len: u32) -> DecEntry {
    DecEntry {
        operand: 0,
        fun: 0,
        len: len.min(u32::from(u8::MAX)) as u8,
        flags: F_VALID | F_BYPASS,
    }
}

/// Whether a decoded operation must run through the byte-at-a-time
/// path. Every legal operation — including timeslice points (`j`,
/// `lend`) and the operations that suspend into a [`super::Resume`]
/// continuation — executes through the same [`Cpu::exec_direct`] the
/// byte path uses, and the fused loop's post-execution checks hand any
/// descheduling, resumption, or interaction outcome straight back to
/// the outer loop. Only unknown opcodes bypass, so the slow path
/// raises the illegal-instruction fault with byte-exact state.
fn bypasses(fun: Direct, operand: u32) -> bool {
    fun == Direct::Operate && Op::from_code(operand).is_none()
}

impl Cpu {
    /// The fused fast loop of [`Cpu::run_slice`]: execute predecoded
    /// operations back to back while nothing can interact. Returns
    /// `(made_progress, outcome)`; `outcome == None` hands control back
    /// to the outer loop (which re-evaluates scheduling boundaries when
    /// progress was made, or takes one byte-at-a-time micro-step when
    /// none was).
    ///
    /// Entry preconditions (established by `run_slice`): not halted, a
    /// process is current, no pending preemption, `resume` is `None`
    /// and `op_len == 0` (an operation boundary).
    pub(crate) fn run_decoded(&mut self, limit: u64) -> (bool, Option<SliceOutcome>) {
        let mut progress = false;
        // Loop invariants hoisted out of the per-operation path. The
        // timer-head flags are refreshed once here and thereafter by
        // the post-execution `advance_time` of every iteration, which
        // observes any write the executed operation made.
        self.refresh_timer_heads();
        let base = self.mem.base();
        let fast_limit = self.mem.fast_limit();
        loop {
            // Fusion batches the prefix cycles of an operation into one
            // time advance, which is only legal while no clock tick can
            // wake a process: both timer queues must be known empty.
            if !(self.timer_head_empty[0] && self.timer_head_empty[1]) {
                return (progress, None);
            }
            if self.priority() == Priority::Low && self.fptr[0] != self.magic.not_process {
                // A high-priority wake is pending: preempt via the
                // outer loop.
                return (progress, None);
            }
            debug_assert!(self.resume.is_none() && self.op_len == 0 && self.oreg == 0);
            let off = self.word.mask(self.iptr.wrapping_sub(base)) as usize;
            if off >= fast_limit {
                // Off-chip (penalised) or out-of-range code: the byte
                // path owns the penalty bookkeeping and faulting.
                self.stats.decode_bypasses += 1;
                return (progress, None);
            }
            let e = self
                .dcache
                .entry_at(&mut self.mem, &mut self.stats, self.word, self.iptr, off);
            let len = u64::from(e.len);
            if e.flags & F_BYPASS != 0 {
                self.stats.decode_bypasses += 1;
                return (progress, None);
            }
            if self.cycles + (len - 1) >= limit {
                // Some byte of this operation would start at or past the
                // budget limit; the byte path handles the partial chain.
                return (progress, None);
            }
            progress = true;

            // Execute the fused operation in the exact order of the
            // byte path: count bytes, record the operation, advance
            // past it, charge one cycle per prefix byte, then run the
            // terminal through the shared executor.
            let fun = Direct::from_nibble(e.fun);
            self.op_start = self.iptr;
            self.iptr = self.word.mask(self.iptr.wrapping_add(u32::from(e.len)));
            self.stats.instructions += len;
            self.stats.record_operation(fun, e.len as usize);
            // One cycle per prefix byte, as a bare addition: with both
            // timer queues empty (checked above, maintained by the
            // post-exec advance) every elided tick is a pure clock bump
            // that `clock_now` reconstructs, so this is exactly what
            // `advance_time64` would do.
            self.cycles += len - 1;
            self.slice_mark = self.cycles;
            if self.trace.is_some() {
                self.pending_trace = Some((fun, e.operand));
            }
            match self.exec_direct(fun, e.operand) {
                Ok(c) => {
                    let c = c + self.mem.take_penalty_cycles();
                    self.advance_time(c);
                }
                Err(reason) => {
                    self.halted = Some(reason);
                    return (true, Some(SliceOutcome::Halted(reason)));
                }
            }
            self.record_pending_trace();
            if let Some(r) = self.halted {
                return (true, Some(SliceOutcome::Halted(r)));
            }
            if let Some(exit) = self.slice_exit.take() {
                return (true, Some(exit));
            }
            if self.cycles >= limit {
                return (true, Some(SliceOutcome::BudgetExpired));
            }
            if !self.has_current_process() || self.resume.is_some() || self.op_len != 0 {
                // Descheduled, or a dispatch restored an interrupted
                // context mid-operation: back to the outer loop.
                return (true, None);
            }
        }
    }
}
