//! Instruction fetch, decode and execute.
//!
//! "All instructions are executed by loading the four data bits into the
//! least significant four bits of the operand register, which is then
//! used as the instruction's operand. All instructions except the
//! prefixing instructions end by clearing the operand register" (§3.2.7).

use super::Cpu;
use crate::error::HaltReason;
use crate::instr::{Direct, Op};
use crate::process::{Priority, ProcDesc, PW_IPTR, PW_STATE, PW_TIME, PW_TLINK};
use crate::timing;
use crate::word::{MACHINE_FALSE, MACHINE_TRUE};

impl Cpu {
    // ---- evaluation stack helpers (§3.2.9) ----

    /// Push: "Loading a value onto the evaluation stack pushes B into C,
    /// and A into B, before loading A."
    #[inline]
    pub(crate) fn push(&mut self, v: u32) {
        self.creg = self.breg;
        self.breg = self.areg;
        self.areg = self.word.mask(v);
    }

    /// Pop: "Storing a value from A, pops B into A and C into B."
    #[inline]
    pub(crate) fn pop(&mut self) -> u32 {
        let v = self.areg;
        self.areg = self.breg;
        self.breg = self.creg;
        v
    }

    /// Pop two values (A then B).
    #[inline]
    pub(crate) fn pop2(&mut self) -> (u32, u32) {
        (self.pop(), self.pop())
    }

    /// Pop all three values.
    #[inline]
    pub(crate) fn pop3(&mut self) -> (u32, u32, u32) {
        (self.pop(), self.pop(), self.pop())
    }

    #[inline]
    fn set_error(&mut self) {
        self.error = true;
        if self.halt_on_error {
            self.halted = Some(HaltReason::ErrorFlag);
        }
    }

    #[inline]
    pub(super) fn set_error_if(&mut self, cond: bool) {
        if cond {
            self.set_error();
        }
    }

    /// Fetch and execute one instruction byte; returns cycles consumed.
    pub(crate) fn exec_one(&mut self) -> Result<u32, HaltReason> {
        if self.op_len == 0 {
            self.op_start = self.iptr;
        }
        let byte = match self.mem.fetch_byte_fast(self.iptr) {
            Some(b) => b,
            None => self.mem.read_byte(self.iptr)?,
        };
        self.iptr = self.word.mask(self.iptr.wrapping_add(1));
        self.stats.instructions += 1;
        self.op_len += 1;
        let fun = Direct::from_nibble(byte >> 4);
        let data = u32::from(byte & 0xF);

        match fun {
            Direct::Prefix => {
                self.oreg = self.word.mask((self.oreg | data) << 4);
                return Ok(timing::direct_cycles(fun, false));
            }
            Direct::NegativePrefix => {
                self.oreg = self.word.mask(!(self.oreg | data) << 4);
                return Ok(timing::direct_cycles(fun, false));
            }
            _ => {}
        }

        let operand = self.oreg | data;
        self.oreg = 0;
        let len = self.op_len as usize;
        self.op_len = 0;
        self.stats.record_operation(fun, len);
        if self.trace.is_some() {
            self.pending_trace = Some((fun, operand));
        }
        self.exec_direct(fun, operand)
    }

    /// Execute a fully decoded direct function with its fused operand;
    /// returns cycles consumed. Shared by the byte-at-a-time path above
    /// and the predecoded-cache path, so both execute identical
    /// semantics by construction. Force-inlined: the body minus
    /// [`Cpu::exec_op`] (which stays out of line) is small, and both
    /// the decoded loop and the translated tier (`cpu/translate.rs`)
    /// need the dispatch and the operation bodies in their hot loops.
    #[inline(always)]
    pub(crate) fn exec_direct(&mut self, fun: Direct, operand: u32) -> Result<u32, HaltReason> {
        let bpw = self.word.bytes_per_word();

        let cycles = match fun {
            Direct::Prefix | Direct::NegativePrefix => {
                unreachable!("prefixes are folded into the operand before dispatch")
            }
            Direct::Jump => {
                self.iptr = self
                    .word
                    .mask(self.iptr.wrapping_add(self.signed_offset(operand)));
                let c = timing::direct_cycles(fun, true);
                // Jump is a descheduling (timeslice) point.
                self.advance_time(c);
                self.maybe_timeslice()?;
                return Ok(0);
            }
            Direct::LoadLocalPointer => {
                let p = self.word.index_word(self.wptr(), operand);
                self.push(p);
                timing::direct_cycles(fun, false)
            }
            Direct::LoadNonLocal => {
                let a = self.word.index_word(self.areg, operand);
                self.areg = self.mem.read_word(a)?;
                timing::direct_cycles(fun, false)
            }
            Direct::LoadConstant => {
                self.push(operand);
                timing::direct_cycles(fun, false)
            }
            Direct::LoadNonLocalPointer => {
                self.areg = self.word.index_word(self.areg, operand);
                timing::direct_cycles(fun, false)
            }
            Direct::LoadLocal => {
                let a = self.word.index_word(self.wptr(), operand);
                let v = self.mem.read_word(a)?;
                self.push(v);
                timing::direct_cycles(fun, false)
            }
            Direct::AddConstant => {
                let (r, o) = self.word.checked_add(self.areg, operand);
                self.areg = r;
                self.set_error_if(o);
                timing::direct_cycles(fun, false)
            }
            Direct::Call => {
                // Wptr descends by four words; Iptr, A, B, C are saved in
                // the new frame (§3.2.3: the stack holds "parameters of
                // procedure calls").
                let new_wptr = self.word.mask(self.wptr().wrapping_sub(4 * bpw));
                self.set_wptr(new_wptr);
                self.ws_write(0, self.iptr)?;
                let (a, b, c) = (self.areg, self.breg, self.creg);
                self.ws_write(1, a)?;
                self.ws_write(2, b)?;
                self.ws_write(3, c)?;
                self.areg = self.iptr; // return address available in A
                self.iptr = self
                    .word
                    .mask(self.iptr.wrapping_add(self.signed_offset(operand)));
                timing::direct_cycles(fun, false)
            }
            Direct::ConditionalJump => {
                if self.areg == 0 {
                    self.iptr = self
                        .word
                        .mask(self.iptr.wrapping_add(self.signed_offset(operand)));
                    timing::direct_cycles(fun, true)
                } else {
                    self.pop();
                    timing::direct_cycles(fun, false)
                }
            }
            Direct::AdjustWorkspace => {
                let w = self.word.index_word(self.wptr(), operand);
                self.set_wptr(w);
                timing::direct_cycles(fun, false)
            }
            Direct::EqualsConstant => {
                self.areg = if self.areg == self.word.mask(operand) {
                    MACHINE_TRUE
                } else {
                    MACHINE_FALSE
                };
                timing::direct_cycles(fun, false)
            }
            Direct::StoreLocal => {
                let a = self.word.index_word(self.wptr(), operand);
                let v = self.pop();
                self.mem.write_word(a, v)?;
                timing::direct_cycles(fun, false)
            }
            Direct::StoreNonLocal => {
                let (addr, val) = self.pop2();
                let a = self.word.index_word(addr, operand);
                self.mem.write_word(a, val)?;
                timing::direct_cycles(fun, false)
            }
            Direct::Operate => {
                let op = Op::from_code(operand)
                    .ok_or(HaltReason::IllegalInstruction { opcode: operand })?;
                self.stats.record_op(op);
                self.exec_op(op)?
            }
        };
        Ok(cycles)
    }

    /// Sign-extended word value of an operand used as an Iptr offset.
    #[inline]
    fn signed_offset(&self, operand: u32) -> u32 {
        // Operands are already word-masked; offsets add modulo the word.
        operand
    }

    /// Replace the workspace pointer, preserving priority.
    #[inline]
    pub(super) fn set_wptr(&mut self, wptr: u32) {
        let pri = self.priority();
        self.wdesc = ProcDesc::new(self.word.align_word(wptr), pri).raw();
    }

    /// Execute an indirect function (§3.2.8). `pub(crate)` so the
    /// translation tier can enter here directly with an `Op` it
    /// resolved at block-build time.
    pub(crate) fn exec_op(&mut self, op: Op) -> Result<u32, HaltReason> {
        let word = self.word;
        let bpw = word.bytes_per_word();
        if let Some(fixed) = timing::op_fixed_cycles(op) {
            match op {
                Op::Reverse => std::mem::swap(&mut self.areg, &mut self.breg),
                Op::LoadByte => {
                    self.areg = u32::from(self.mem.read_byte(self.areg)?);
                }
                Op::ByteSubscript => {
                    let (a, b) = self.pop2();
                    self.push(word.index_byte(b, a));
                }
                Op::EndProcess => {
                    return self.op_endp().map(|()| fixed);
                }
                Op::Difference => {
                    let (a, b) = self.pop2();
                    self.push(word.wrapping_sub(b, a));
                }
                Op::Add => {
                    let (a, b) = self.pop2();
                    let (r, o) = word.checked_add(b, a);
                    self.push(r);
                    self.set_error_if(o);
                }
                Op::GeneralCall => std::mem::swap(&mut self.areg, &mut self.iptr),
                Op::GreaterThan => {
                    let (a, b) = self.pop2();
                    self.push(if word.gt(b, a) {
                        MACHINE_TRUE
                    } else {
                        MACHINE_FALSE
                    });
                }
                Op::WordSubscript => {
                    let (a, b) = self.pop2();
                    self.push(word.index_word(b, a));
                }
                Op::Subtract => {
                    let (a, b) = self.pop2();
                    let (r, o) = word.checked_sub(b, a);
                    self.push(r);
                    self.set_error_if(o);
                }
                Op::StartProcess => {
                    // A = new workspace, B = code offset from here (§3.2.4:
                    // "a start process instruction creates a new process by
                    // adding a new workspace to the end of the scheduling
                    // list").
                    let (a, b) = self.pop2();
                    let child_iptr = word.mask(self.iptr.wrapping_add(b));
                    let child = ProcDesc::new(word.align_word(a), self.priority());
                    let iptr_word = crate::process::workspace_word(word, child.wptr(), PW_IPTR);
                    self.mem.write_word(iptr_word, child_iptr)?;
                    let now = self.cycles;
                    self.schedule(child, now);
                }
                Op::SetError => self.set_error(),
                Op::ResetChannel => {
                    let chan = self.areg;
                    if let Some((link, is_out)) = self.mem.external_channel_id(chan) {
                        if link < 4 {
                            if is_out {
                                self.link_out[link as usize] = Default::default();
                                self.slice_exit = Some(super::SliceOutcome::TxReady);
                            } else {
                                self.link_in[link as usize] = Default::default();
                                self.slice_exit = Some(super::SliceOutcome::RxWait);
                            }
                            self.links_dirty = true;
                        }
                        self.areg = self.magic.not_process;
                    } else {
                        let old = self.mem.read_word(chan)?;
                        self.mem.write_word(chan, self.magic.not_process)?;
                        self.areg = old;
                    }
                }
                Op::CheckSubscriptFromZero => {
                    // Error unless 0 <= B < A (unsigned compare covers both).
                    let a = self.pop();
                    let bad = self.areg >= a;
                    self.set_error_if(bad);
                }
                Op::StopProcess => {
                    self.block_current()?;
                }
                Op::LongAdd => {
                    let (a, b, c) = self.pop3();
                    let carry = i64::from(c & 1);
                    let r = word.to_signed(b) + word.to_signed(a) + carry;
                    let wrapped = word.from_signed(r);
                    self.push(wrapped);
                    self.set_error_if(
                        r > word.to_signed(word.most_pos()) || r < word.to_signed(word.most_neg()),
                    );
                }
                Op::StoreLowBack => {
                    let v = self.pop();
                    self.bptr[Priority::Low.index()] = v;
                }
                Op::StoreHighFront => {
                    let v = self.pop();
                    self.fptr[Priority::High.index()] = v;
                }
                Op::LoadPointerToInstruction => {
                    self.areg = word.mask(self.iptr.wrapping_add(self.areg));
                }
                Op::StoreLowFront => {
                    let v = self.pop();
                    self.fptr[Priority::Low.index()] = v;
                }
                Op::ExtendToDouble => {
                    // (A) -> (low = A, high = sign extension).
                    let sign = if word.to_signed(self.areg) < 0 {
                        word.value_mask()
                    } else {
                        0
                    };
                    self.creg = self.breg;
                    self.breg = sign;
                }
                Op::LoadPriority => {
                    let p = self.priority().bit();
                    self.push(p);
                }
                Op::Return => {
                    self.iptr = self.ws_read(0)?;
                    let w = word.mask(self.wptr().wrapping_add(4 * bpw));
                    self.set_wptr(w);
                }
                Op::LoadTimer => {
                    let c = self.clock_now(self.priority());
                    self.push(c);
                }
                Op::TestError => {
                    let was_clear = !self.error;
                    self.error = false;
                    self.push(if was_clear {
                        MACHINE_TRUE
                    } else {
                        MACHINE_FALSE
                    });
                }
                Op::TestProcessorAnalysing => self.push(MACHINE_FALSE),
                Op::DisableTimer => return self.op_dist().map(|()| fixed),
                Op::DisableChannel => return self.op_disc().map(|()| fixed),
                Op::DisableSkip => {
                    let (a, b) = self.pop2();
                    let taken = b != MACHINE_FALSE && self.select_branch(a)?;
                    self.push(if taken { MACHINE_TRUE } else { MACHINE_FALSE });
                }
                Op::Not => self.areg = word.mask(!self.areg),
                Op::ExclusiveOr => {
                    let (a, b) = self.pop2();
                    self.push(a ^ b);
                }
                Op::ByteCount => self.areg = word.wrapping_mul(self.areg, bpw),
                Op::LongSum => {
                    // (A, B, C) -> A = low word of B+A+carry, B = carry out.
                    let (a, b, c) = self.pop3();
                    let t = u64::from(a) + u64::from(b) + u64::from(c & 1);
                    self.push((t >> word.bits()) as u32 & 1);
                    self.push(word.mask64(t));
                }
                Op::LongSubtract => {
                    let (a, b, c) = self.pop3();
                    let r = word.to_signed(b) - word.to_signed(a) - i64::from(c & 1);
                    self.push(word.from_signed(r));
                    self.set_error_if(
                        r > word.to_signed(word.most_pos()) || r < word.to_signed(word.most_neg()),
                    );
                }
                Op::RunProcess => {
                    let d = self.pop();
                    let now = self.cycles;
                    self.schedule(ProcDesc(d), now);
                }
                Op::ExtendWord => {
                    // A = sign-bit value, B = part-word: sign extend.
                    let (a, b) = self.pop2();
                    let r = if a != 0 && (b & a) != 0 {
                        word.mask(b | !(a.wrapping_mul(2).wrapping_sub(1)))
                    } else if a != 0 {
                        b & (a.wrapping_mul(2).wrapping_sub(1))
                    } else {
                        b
                    };
                    self.push(r);
                }
                Op::StoreByte => {
                    let (addr, v) = self.pop2();
                    self.mem.write_byte(addr, (v & 0xFF) as u8)?;
                }
                Op::GeneralAdjustWorkspace => {
                    let old = self.wptr();
                    let new = word.align_word(self.areg);
                    self.set_wptr(new);
                    self.areg = old;
                }
                Op::SaveLow => {
                    let a = self.pop();
                    let f = self.fptr[Priority::Low.index()];
                    let b = self.bptr[Priority::Low.index()];
                    self.mem.write_word(a, f)?;
                    self.mem.write_word(word.index_word(a, 1), b)?;
                }
                Op::SaveHigh => {
                    let a = self.pop();
                    let f = self.fptr[Priority::High.index()];
                    let b = self.bptr[Priority::High.index()];
                    self.mem.write_word(a, f)?;
                    self.mem.write_word(word.index_word(a, 1), b)?;
                }
                Op::WordCount => {
                    let p = self.pop();
                    let sel = p & word.byte_select_mask();
                    let wordpart = word.from_signed(word.to_signed(p) >> word.byte_select_bits());
                    self.push(sel);
                    self.push(wordpart);
                }
                Op::MinimumInteger => self.push(word.most_neg()),
                Op::Alt => {
                    self.ws_write(PW_STATE, self.magic.enabling)?;
                }
                Op::AltEnd => {
                    let off = self.ws_read(0)?;
                    self.iptr = word.mask(self.iptr.wrapping_add(off));
                }
                Op::And => {
                    let (a, b) = self.pop2();
                    self.push(a & b);
                }
                Op::EnableTimer => return self.op_enbt().map(|()| fixed),
                Op::EnableChannel => return self.op_enbc().map(|()| fixed),
                Op::EnableSkip => {
                    // A = guard; a true skip guard is immediately ready.
                    if self.areg != MACHINE_FALSE {
                        self.ws_write(PW_STATE, self.magic.ready)?;
                    }
                }
                Op::Or => {
                    let (a, b) = self.pop2();
                    self.push(a | b);
                }
                Op::CheckSingle => {
                    let (a, b) = self.pop2();
                    // (low = a, high = b): error unless high is the sign
                    // extension of low.
                    let sign_ok = if word.to_signed(a) < 0 {
                        b == word.value_mask()
                    } else {
                        b == 0
                    };
                    self.set_error_if(!sign_ok);
                    self.push(a);
                }
                Op::CheckCountFromOne => {
                    // Error unless 1 <= B <= A (unsigned).
                    let a = self.pop();
                    let bad = self.areg == 0 || self.areg > a;
                    self.set_error_if(bad);
                }
                Op::TimerAlt => {
                    self.ws_write(PW_TLINK, self.magic.time_not_set)?;
                    self.ws_write(PW_STATE, self.magic.enabling)?;
                }
                Op::LongDiff => {
                    // (A, B, C) -> A = low word of B-A-borrow, B = borrow out.
                    let (a, b, c) = self.pop3();
                    let t = i64::from(b) - i64::from(a) - i64::from(c & 1);
                    self.push(if t < 0 { 1 } else { 0 });
                    self.push(word.mask64(t as u64));
                }
                Op::StoreHighBack => {
                    let v = self.pop();
                    self.bptr[Priority::High.index()] = v;
                }
                Op::Sum => {
                    let (a, b) = self.pop2();
                    self.push(word.wrapping_add(b, a));
                }
                Op::StoreTimer => {
                    let v = self.pop();
                    self.clock = [v, v];
                    self.timers_running = true;
                    self.next_tick = [
                        self.cycles + timing::HI_TICK_CYCLES,
                        self.cycles + timing::LO_TICK_CYCLES,
                    ];
                }
                Op::StopOnError => {
                    if self.error {
                        self.block_current()?;
                    }
                }
                Op::CheckWord => {
                    // A = sign-bit value, B = word: error unless -A <= B < A.
                    let a = self.pop();
                    let v = word.to_signed(self.areg);
                    let bound = word.to_signed(a);
                    self.set_error_if(bound <= 0 || v >= bound || v < -bound);
                }
                Op::ClearHaltOnError => self.halt_on_error = false,
                Op::SetHaltOnError => self.halt_on_error = true,
                Op::TestHaltOnError => {
                    let h = self.halt_on_error;
                    self.push(if h { MACHINE_TRUE } else { MACHINE_FALSE });
                }
                Op::HaltSimulation => self.halted = Some(HaltReason::Stopped),
                _ => unreachable!("fixed-cost table covered a variable op: {op:?}"),
            }
            return Ok(fixed);
        }

        // Variable-cost operations.
        let cycles = match op {
            Op::Product => {
                let (a, b) = self.pop2();
                self.push(word.wrapping_mul(b, a));
                timing::product_cycles(a)
            }
            Op::Multiply => {
                let (a, b) = self.pop2();
                let (r, o) = word.checked_mul(b, a);
                self.push(r);
                self.set_error_if(o);
                timing::multiply_cycles(word)
            }
            Op::Divide => {
                let (a, b) = self.pop2();
                let (sa, sb) = (word.to_signed(a), word.to_signed(b));
                if sa == 0 || (sb == word.to_signed(word.most_neg()) && sa == -1) {
                    self.set_error();
                    self.push(0);
                } else {
                    self.push(word.from_signed(sb / sa));
                }
                timing::divide_cycles(word)
            }
            Op::Remainder => {
                let (a, b) = self.pop2();
                let (sa, sb) = (word.to_signed(a), word.to_signed(b));
                if sa == 0 {
                    self.set_error();
                    self.push(0);
                } else {
                    self.push(word.from_signed(sb % sa));
                }
                timing::remainder_cycles(word)
            }
            Op::ShiftLeft => {
                let (a, b) = self.pop2();
                let r = if a >= word.bits() {
                    0
                } else {
                    word.mask(b << a)
                };
                self.push(r);
                timing::shift_cycles(a.min(word.bits()))
            }
            Op::ShiftRight => {
                let (a, b) = self.pop2();
                let r = if a >= word.bits() { 0 } else { b >> a };
                self.push(r);
                timing::shift_cycles(a.min(word.bits()))
            }
            Op::LongShiftLeft => {
                // (A = count, B = low, C = high) -> (A = low, B = high).
                let (a, b, c) = self.pop3();
                let v = (u64::from(c) << word.bits()) | u64::from(b);
                let shifted = if a >= 2 * word.bits() { 0 } else { v << a };
                self.push(word.mask64(shifted >> word.bits()));
                self.push(word.mask64(shifted));
                self.stall(timing::shift_cycles(a.min(2 * word.bits())))
            }
            Op::LongShiftRight => {
                let (a, b, c) = self.pop3();
                let v = (u64::from(c) << word.bits()) | u64::from(b);
                let shifted = if a >= 2 * word.bits() { 0 } else { v >> a };
                self.push(word.mask64(shifted >> word.bits()));
                self.push(word.mask64(shifted));
                self.stall(timing::shift_cycles(a.min(2 * word.bits())))
            }
            Op::LongMultiply => {
                // (A, B, C = carry in) -> (A = low, B = high) of A*B+C.
                let (a, b, c) = self.pop3();
                let t = u64::from(a) * u64::from(b) + u64::from(c);
                self.push(word.mask64(t >> word.bits()));
                self.push(word.mask64(t));
                self.stall(word.bits() + 1)
            }
            Op::LongDivide => {
                // (A = divisor, B = dividend high, C = dividend low)
                // -> (A = quotient, B = remainder). Error on overflow.
                let (a, b, c) = self.pop3();
                if a == 0 || b >= a {
                    self.set_error();
                    self.push(0);
                    timing::divide_cycles(word)
                } else {
                    let v = (u64::from(b) << word.bits()) | u64::from(c);
                    self.push(word.mask64(v % u64::from(a)));
                    self.push(word.mask64(v / u64::from(a)));
                    self.stall(word.bits() + 3)
                }
            }
            Op::Normalise => {
                // (A = low, B = high) -> (A = low, B = high, C = places).
                let (a, b) = self.pop2();
                let v = (u64::from(b) << word.bits()) | u64::from(a);
                if v == 0 {
                    self.push(2 * word.bits());
                    self.push(0);
                    self.push(0);
                    self.stall(timing::shift_cycles(2 * word.bits()))
                } else {
                    let msb = 63 - v.leading_zeros();
                    let places = 2 * word.bits() - 1 - msb;
                    let shifted = v << places;
                    self.push(places);
                    self.push(word.mask64(shifted >> word.bits()));
                    self.push(word.mask64(shifted));
                    self.stall(timing::shift_cycles(places))
                }
            }
            Op::LoopEnd => {
                // B = control block (index, count), A = bytes back to the
                // loop start.
                let (a, b) = self.pop2();
                let count_addr = word.index_word(b, 1);
                let count = self.mem.read_word(count_addr)?;
                let count = word.wrapping_sub(count, 1);
                self.mem.write_word(count_addr, count)?;
                if word.to_signed(count) > 0 {
                    let idx = self.mem.read_word(b)?;
                    self.mem.write_word(b, word.wrapping_add(idx, 1))?;
                    self.iptr = word.mask(self.iptr.wrapping_sub(a));
                    self.advance_time(timing::LOOP_END_TAKEN);
                    self.maybe_timeslice()?;
                    0
                } else {
                    timing::LOOP_END_EXIT
                }
            }
            Op::TimerInput => {
                let t = self.pop();
                let now = self.clock_now(self.priority());
                if word.after(now, t) || now == t {
                    4
                } else {
                    self.ws_write(PW_IPTR, self.iptr)?;
                    self.ws_write(PW_STATE, self.magic.not_process)?;
                    self.timer_insert_current(word.wrapping_add(t, 1))?;
                    self.stats.deschedules += 1;
                    self.dispatch_next();
                    30
                }
            }
            Op::AltWait => {
                self.ws_write(0, self.magic.none_selected)?;
                let state = self.ws_read(PW_STATE)?;
                if state == self.magic.ready {
                    5
                } else {
                    self.ws_write(PW_STATE, self.magic.waiting)?;
                    self.ws_write(PW_IPTR, self.iptr)?;
                    self.stats.deschedules += 1;
                    self.dispatch_next();
                    17
                }
            }
            Op::TimerAltWait => {
                self.ws_write(0, self.magic.none_selected)?;
                let state = self.ws_read(PW_STATE)?;
                if state == self.magic.ready {
                    5
                } else {
                    let tstate = self.ws_read(PW_TLINK)?;
                    if tstate == self.magic.time_set {
                        let t = self.ws_read(PW_TIME)?;
                        let now = self.clock_now(self.priority());
                        if word.after(now, t) || now == t {
                            // Timeout already passed: ready immediately.
                            self.ws_write(PW_STATE, self.magic.ready)?;
                            return Ok(10);
                        }
                        self.ws_write(PW_STATE, self.magic.waiting)?;
                        self.ws_write(PW_IPTR, self.iptr)?;
                        self.timer_insert_current(word.wrapping_add(t, 1))?;
                        self.stats.deschedules += 1;
                        self.dispatch_next();
                        30
                    } else {
                        self.ws_write(PW_STATE, self.magic.waiting)?;
                        self.ws_write(PW_IPTR, self.iptr)?;
                        self.stats.deschedules += 1;
                        self.dispatch_next();
                        17
                    }
                }
            }
            Op::Move => {
                let (a, b, c) = self.pop3();
                // A = count, B = source, C = destination.
                self.begin_copy(b, c, a, None);
                8
            }
            Op::InputMessage => return self.op_in(),
            Op::OutputMessage => return self.op_out(),
            Op::OutputWord => {
                // A = channel, B = value: transfer one word via w[0].
                let (chan, value) = self.pop2();
                self.ws_write(0, value)?;
                let ptr = self.ws_addr(0);
                self.push(ptr);
                self.push(chan);
                self.push(bpw);
                return self.op_out().map(|c| c + 2);
            }
            Op::OutputByte => {
                let (chan, value) = self.pop2();
                let w0 = self.ws_addr(0);
                self.mem.write_byte(w0, (value & 0xFF) as u8)?;
                self.push(w0);
                self.push(chan);
                self.push(1);
                return self.op_out().map(|c| c + 2);
            }
            other => unreachable!("unhandled variable-cost op {other:?}"),
        };
        Ok(cycles)
    }

    /// `end process` (§3.2.4): A = address of the parallel-construct
    /// control block: word 0 holds the successor Iptr, word 1 the count
    /// of components still to terminate.
    fn op_endp(&mut self) -> Result<(), HaltReason> {
        let a = self.pop();
        let count_addr = self.word.index_word(a, 1);
        let count = self.mem.read_word(count_addr)?;
        let count = self.word.wrapping_sub(count, 1);
        if count == 0 {
            // All components terminated: the construct continues.
            self.iptr = self.mem.read_word(a)?;
            self.set_wptr(a);
            self.oreg = 0;
        } else {
            self.mem.write_word(count_addr, count)?;
            self.end_current();
        }
        Ok(())
    }

    /// `enable channel`: A = guard, B = channel.
    fn op_enbc(&mut self) -> Result<(), HaltReason> {
        let guard = self.areg;
        let chan = self.breg;
        // Pop the channel, keep the guard in A.
        self.breg = self.creg;
        if guard == MACHINE_FALSE {
            return Ok(());
        }
        if let Some((link, is_out)) = self.mem.external_channel_id(chan) {
            if !is_out && link < 4 {
                let me = ProcDesc(self.wdesc);
                if self.link_in[link as usize].enable_alt(me) {
                    self.ws_write(PW_STATE, self.magic.ready)?;
                }
            }
            return Ok(());
        }
        let w = self.mem.read_word(chan)?;
        if w == self.magic.not_process {
            self.mem.write_word(chan, self.wdesc)?;
        } else if w != self.wdesc {
            // Another process is waiting to output: the guard is ready.
            self.ws_write(PW_STATE, self.magic.ready)?;
        }
        Ok(())
    }

    /// `disable channel`: A = branch offset, B = guard, C = channel.
    fn op_disc(&mut self) -> Result<(), HaltReason> {
        let (a, b, c) = self.pop3();
        let mut ready = false;
        if b != MACHINE_FALSE {
            if let Some((link, is_out)) = self.mem.external_channel_id(c) {
                if !is_out && link < 4 {
                    ready = self.link_in[link as usize].disable_alt();
                }
            } else {
                let w = self.mem.read_word(c)?;
                if w == self.wdesc {
                    self.mem.write_word(c, self.magic.not_process)?;
                } else if w != self.magic.not_process {
                    ready = true;
                }
            }
        }
        let taken = ready && self.select_branch(a)?;
        self.push(if taken { MACHINE_TRUE } else { MACHINE_FALSE });
        Ok(())
    }

    /// `enable timer`: A = guard, B = time.
    fn op_enbt(&mut self) -> Result<(), HaltReason> {
        let guard = self.areg;
        let time = self.breg;
        self.breg = self.creg;
        if guard == MACHINE_FALSE {
            return Ok(());
        }
        let tstate = self.ws_read(PW_TLINK)?;
        if tstate == self.magic.time_not_set {
            self.ws_write(PW_TLINK, self.magic.time_set)?;
            self.ws_write(PW_TIME, time)?;
        } else {
            let cur = self.ws_read(PW_TIME)?;
            if self.word.after(cur, time) {
                self.ws_write(PW_TIME, time)?;
            }
        }
        Ok(())
    }

    /// `disable timer`: A = branch offset, B = guard, C = time.
    fn op_dist(&mut self) -> Result<(), HaltReason> {
        let (a, b, c) = self.pop3();
        // The process may still be linked into the timer queue from
        // `timer alt wait`; the first disable removes it.
        self.timer_remove_current()?;
        let now = self.clock_now(self.priority());
        let ready = b != MACHINE_FALSE && (self.word.after(now, c) || now == c);
        let taken = ready && self.select_branch(a)?;
        self.push(if taken { MACHINE_TRUE } else { MACHINE_FALSE });
        Ok(())
    }

    /// Record the first ready guard's branch offset in w[0]. Returns
    /// whether this call made the selection.
    fn select_branch(&mut self, offset: u32) -> Result<bool, HaltReason> {
        let sel = self.ws_read(0)?;
        if sel == self.magic.none_selected {
            self.ws_write(0, offset)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}
