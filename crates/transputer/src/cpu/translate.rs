//! Threaded-code translation of hot I1 basic blocks.
//!
//! The decode cache (`cpu/decode.rs`) removed the per-byte fetch and
//! prefix replay; what remains on its hot path is a cache lookup, a
//! validity/generation test, and a 16-way dispatch *per operation*.
//! This tier removes those too: once a straight-line run of operations
//! has been entered often enough, it is compiled into a [`TransBlock`]
//! — an array of pre-resolved handler pointers with fused operands —
//! and thereafter executed back to back with no decode work at all.
//! Each handler is a monomorphised wrapper over the shared
//! [`Cpu::exec_direct`], so translated execution is the *same code*
//! the interpreter runs, minus the work of deciding which code to run.
//!
//! Like the decode cache, the tier is an instrument of the host,
//! invisible to the simulation; the differential test battery
//! (`tests/translate.rs`, `tests/decode_cache.rs`, the proptest fuzzer
//! in `crates/analysis/tests/cfg_props.rs`, and the corpus differential
//! in `crates/bench/tests/determinism.rs`) proves cycles, statistics,
//! memory images and network fingerprints bit-identical with the tier
//! on or off.
//!
//! # Deoptimisation contract
//!
//! A translated block replays exactly the per-operation sequence of
//! [`Cpu::run_decoded`]; at every point where that loop would hand
//! control back, the block *deoptimises* — it stops executing
//! translated operations and returns to the interpreter with the
//! machine at an ordinary operation boundary. Deopt points are:
//!
//! * **Channel and scheduling interactions**: an operation raised a
//!   slice exit (link I/O, acknowledge), descheduled the process, or
//!   left a [`super::Resume`] continuation.
//! * **Timer work**: a timer queue became non-empty (a `tin`/ALT
//!   enqueued, or a store hit the reserved words), so clock ticks can
//!   wake processes again and must be stepped exactly.
//! * **Preemption**: a high-priority process became ready while a
//!   low-priority block was running.
//! * **Control transfer**: the executed operation moved `Iptr`
//!   somewhere other than the next sequential operation (taken branch,
//!   call, context switch). Blocks are keyed by code position, so
//!   execution re-enters (or re-interprets) at the new position.
//! * **Writes into translated code**: the memory side's global
//!   [`code epoch`](crate::memory) moved, meaning a store landed in
//!   *some* block of cached code. The block conservatively deopts; on
//!   the next entry its per-cover generation snapshots decide whether
//!   it was actually hit (invalidation + immediate retranslation).
//! * **Budget**: the next operation would start at or past the slice
//!   limit (the byte path owns partial-operation accounting).
//!
//! Because every handler is the shared executor and every deopt lands
//! on an operation boundary with the same registers, clocks and queues
//! the interpreter would have, resumption state is identical by
//! construction — the tests assert it anyway.

use super::decode::{decode_entry, DecEntry, F_BYPASS, F_VALID};
use super::{Cpu, SliceOutcome};
use crate::error::HaltReason;
use crate::instr::{Direct, Op};
use crate::memory::CODE_BLOCK_SHIFT;
use crate::process::Priority;
use crate::word::{MACHINE_FALSE, MACHINE_TRUE};

/// Most operations a block may hold. Long enough for the unrolled
/// arithmetic loops the corpus is made of; short enough that a deopt
/// near the end wastes little translation.
const MAX_BLOCK_OPS: usize = 32;
/// Blocks shorter than this are recorded as "don't translate"
/// sentinels: a one-operation block cannot beat the decode cache.
const MIN_BLOCK_OPS: usize = 2;
/// Upper bound on the 64-byte code blocks a translated block can
/// cover: [`MAX_BLOCK_OPS`] operations of at most 9 encoded bytes
/// each (eight prefixes fill a 32-bit operand), plus the partial
/// blocks at either end. [`Cpu::build_block`] asserts it.
const MAX_COVERS: usize = (MAX_BLOCK_OPS * 9).div_ceil(64) + 2;

/// A translated operation: the decoded function nibble, its fused
/// operand, the encoded length (for stats, cycle counting and `Iptr`
/// advance), and the dispatch code `xfun` — equal to `fun` for a
/// plain operation, or an `XF_*` superinstruction code when this
/// operation and its successor were fused into one dispatch.
#[derive(Clone, Copy)]
struct TransOp {
    operand: u32,
    fun: u8,
    len: u8,
    xfun: u8,
}

/// First dispatch code above the sixteen plain function nibbles.
/// Codes in `XF_BASE..XO_BASE` are fused *pairs* (they consume two
/// operations per dispatch); codes from [`XO_BASE`] up are specialised
/// single operations.
const XF_BASE: u8 = 16;
// The fused-pair superinstructions, chosen from the measured adjacent-
// pair frequencies over the benchmark corpus (these twelve cover about
// three quarters of all adjacent pairs). Fusion only elides the
// dispatch between the two operations — each half keeps its own cycle
// charge, statistics and checks, so it cannot change behaviour.
const XF_LDLP_LDL: u8 = 16;
const XF_LDL_OPR: u8 = 17;
const XF_OPR_LDNL: u8 = 18;
const XF_LDC_OPR: u8 = 19;
const XF_LDL_ADC: u8 = 20;
const XF_ADC_OPR: u8 = 21;
const XF_OPR_CJ: u8 = 22;
const XF_LDNL_LDLP: u8 = 23;
const XF_LDLP_LDC: u8 = 24;
const XF_OPR_STNL: u8 = 25;
const XF_LDNL_OPR: u8 = 26;
const XF_STL_LDLP: u8 = 27;
// Second-generation pairs over *specialised* codes: once the hot ALU
// `opr`s get their own dispatch codes (below), the array-access idioms
// they sit in become fusable too — `ldl index; wsub`, `wsub; ldnl`
// (array read), `wsub; stnl` (array write), `gt; cj` (compare and
// branch).
const XF_LDL_WSUB: u8 = 28;
const XF_LDL_ADD: u8 = 29;
const XF_LDL_GT: u8 = 30;
const XF_WSUB_LDNL: u8 = 31;
const XF_WSUB_STNL: u8 = 32;
const XF_GT_CJ: u8 = 33;
// Pure-ALU `opr` operations specialised by their build-time-resolved
// operand. Measured over the corpus these six are two thirds of the
// dynamic `opr` mix (`wsub` alone is 43%); each touches only the
// operand stack, the cycle counter, and (for checked arithmetic) the
// error flag, so its arm needs none of the general path's scheduler,
// epoch or control-transfer checks.
const XO_BASE: u8 = 34;
const XO_ADD: u8 = 34;
const XO_SUB: u8 = 35;
const XO_DIFF: u8 = 36;
const XO_GT: u8 = 37;
const XO_WSUB: u8 = 38;
const XO_REV: u8 = 39;

/// The superinstruction code for an adjacent pair of dispatch codes
/// (post-specialisation, so a plain `0xF` here is an `opr` that did
/// *not* resolve to a specialised ALU operation), if the pair is one
/// of the measured-hot combinations listed above.
fn fuse_code(a: u8, b: u8) -> Option<u8> {
    // Function nibbles: 0x1 ldlp, 0x3 ldnl, 0x4 ldc, 0x7 ldl,
    // 0x8 adc, 0xA cj, 0xD stl, 0xE stnl, 0xF opr.
    match (a, b) {
        (0x1, 0x7) => Some(XF_LDLP_LDL),
        (0x7, 0xF) => Some(XF_LDL_OPR),
        (0xF, 0x3) => Some(XF_OPR_LDNL),
        (0x4, 0xF) => Some(XF_LDC_OPR),
        (0x7, 0x8) => Some(XF_LDL_ADC),
        (0x8, 0xF) => Some(XF_ADC_OPR),
        (0xF, 0xA) => Some(XF_OPR_CJ),
        (0x3, 0x1) => Some(XF_LDNL_LDLP),
        (0x1, 0x4) => Some(XF_LDLP_LDC),
        (0xF, 0xE) => Some(XF_OPR_STNL),
        (0x3, 0xF) => Some(XF_LDNL_OPR),
        (0xD, 0x1) => Some(XF_STL_LDLP),
        (0x7, XO_WSUB) => Some(XF_LDL_WSUB),
        (0x7, XO_ADD) => Some(XF_LDL_ADD),
        (0x7, XO_GT) => Some(XF_LDL_GT),
        (XO_WSUB, 0x3) => Some(XF_WSUB_LDNL),
        (XO_WSUB, 0xE) => Some(XF_WSUB_STNL),
        (XO_GT, 0xA) => Some(XF_GT_CJ),
        _ => None,
    }
}

/// The dispatch code for an `opr` whose operand resolved at build
/// time to one of the hot pure-ALU stack operations, if it did.
fn specialize_op(operand: u32) -> Option<u8> {
    match Op::from_code(operand) {
        Some(Op::Add) => Some(XO_ADD),
        Some(Op::Subtract) => Some(XO_SUB),
        Some(Op::Difference) => Some(XO_DIFF),
        Some(Op::GreaterThan) => Some(XO_GT),
        Some(Op::WordSubscript) => Some(XO_WSUB),
        Some(Op::Reverse) => Some(XO_REV),
        _ => None,
    }
}

/// Aggregated per-operation statistics for a run of translated
/// operations. The per-op counters ([`crate::stats::Stats`]'s
/// `operations`, `instructions`, the length histogram and the
/// direct-function counts) feed reporting, never control flow, so a
/// block applies them in one batch at exit instead of three scattered
/// read-modify-writes per operation. Cycle and time accounting is NOT
/// in here — it drives budgets and timers and stays exact per op.
#[derive(Clone, Copy, Default)]
struct BlockStats {
    operations: u64,
    instructions: u64,
    hist: [u64; 9],
    nib: [u64; 16],
}

impl BlockStats {
    fn add(&mut self, op: &TransOp) {
        self.operations += 1;
        self.instructions += u64::from(op.len);
        self.hist[usize::from(op.len).min(self.hist.len() - 1)] += 1;
        self.nib[usize::from(op.fun)] += 1;
    }

    fn apply(&self, stats: &mut crate::stats::Stats) {
        stats.operations += self.operations;
        stats.instructions += self.instructions;
        for (h, d) in stats.length_histogram.iter_mut().zip(self.hist) {
            *h += d;
        }
        for (c, d) in stats.direct_counts.iter_mut().zip(self.nib) {
            *c += d;
        }
    }

    /// Compress to the sparse form stored in a block: a short block
    /// touches a handful of histogram buckets, so applying only those
    /// beats 25 dense read-modify-writes per block completion.
    fn to_sparse(self) -> SparseStats {
        let mut sparse = SparseStats {
            operations: self.operations,
            instructions: self.instructions,
            ..SparseStats::default()
        };
        for (i, &v) in self.hist.iter().enumerate() {
            if v != 0 {
                sparse.hist[usize::from(sparse.nhist)] = (i as u8, v);
                sparse.nhist += 1;
            }
        }
        for (i, &v) in self.nib.iter().enumerate() {
            if v != 0 {
                sparse.nib[usize::from(sparse.nnib)] = (i as u8, v);
                sparse.nnib += 1;
            }
        }
        sparse
    }
}

/// Sparse precomputed statistics for a whole block: only the histogram
/// buckets and function counters the block actually touches, stored
/// inline so applying them chases no pointers.
#[derive(Clone, Copy, Default)]
struct SparseStats {
    operations: u64,
    instructions: u64,
    nhist: u8,
    nnib: u8,
    hist: [(u8, u64); 9],
    nib: [(u8, u64); 16],
}

impl SparseStats {
    fn apply(&self, stats: &mut crate::stats::Stats) {
        stats.operations += self.operations;
        stats.instructions += self.instructions;
        for &(i, d) in &self.hist[..usize::from(self.nhist)] {
            stats.length_histogram[usize::from(i)] += d;
        }
        for &(i, d) in &self.nib[..usize::from(self.nnib)] {
            stats.direct_counts[usize::from(i)] += d;
        }
    }
}

/// A compiled basic block: operations plus the generation snapshots of
/// every 64-byte code block its bytes touch, all stored inline so a
/// block entry touches exactly one allocation. `nops == 0` is the
/// "don't translate here" sentinel (the covers still gate it, so a
/// rewrite retranslates the spot). Execution *moves* the box out of
/// its cache slot and puts it back afterwards (see
/// [`Cpu::run_translated`]), so handlers can borrow the whole `Cpu`
/// while the block runs, with no per-entry reference counting.
struct TransBlock {
    ops: [TransOp; MAX_BLOCK_OPS],
    nops: u8,
    ncovers: u8,
    covers: [(u32, u32); MAX_COVERS],
    /// Statistics for the whole block, precomputed so the common case
    /// — running every operation — applies them with no per-op walk.
    totals: SparseStats,
}

impl TransBlock {
    /// The live operations.
    #[inline]
    fn ops(&self) -> &[TransOp] {
        &self.ops[..usize::from(self.nops)]
    }

    /// The cover snapshots.
    #[inline]
    fn covers(&self) -> &[(u32, u32)] {
        &self.covers[..usize::from(self.ncovers)]
    }
}

impl std::fmt::Debug for TransBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransBlock")
            .field("ops", &self.nops)
            .field("covers", &self.covers())
            .finish()
    }
}

/// Per-processor translation cache: a direct-mapped leader index (the
/// code byte offset *is* the key), per-leader heat counters, and slot
/// storage for the blocks. Grows geometrically with the highest code
/// offset entered, like the decode cache.
#[derive(Debug, Default)]
pub(crate) struct TransCache {
    /// `off -> slot + 1`; `0` means no block at this leader.
    index: Vec<u32>,
    /// Leader arrival counts; a leader is translated when its heat
    /// reaches the configured threshold.
    heat: Vec<u8>,
    /// A slot is `None` only transiently, while its block executes.
    slots: Vec<Option<Box<TransBlock>>>,
    free: Vec<u32>,
}

// Cloning a Cpu (network node setup does this) starts the clone with
// an empty translation cache; it re-warms on its own.
impl Clone for TransCache {
    fn clone(&self) -> TransCache {
        TransCache::default()
    }
}

impl TransCache {
    #[cold]
    fn grow(&mut self, off: usize) {
        let target = (off + 1).next_power_of_two().max(self.index.len() * 2);
        self.index.resize(target, 0);
        self.heat.resize(target, 0);
    }

    /// Store a block at leader `off`; returns its slot index.
    fn insert(&mut self, off: usize, block: Box<TransBlock>) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(block);
                s
            }
            None => {
                self.slots.push(Some(block));
                (self.slots.len() - 1) as u32
            }
        };
        self.index[off] = slot + 1;
        self.heat[off] = 0;
        slot
    }

    fn remove(&mut self, off: usize) {
        let slot = self.index[off];
        if slot != 0 {
            self.index[off] = 0;
            self.slots[(slot - 1) as usize] = None;
            self.free.push(slot - 1);
        }
    }
}

/// Why [`Cpu::exec_block`] stopped.
enum BlockExit {
    /// The slice is over; propagate the outcome.
    Outcome(SliceOutcome),
    /// The next operation abuts the budget; the byte path owns partial
    /// operations. Carries whether any operation executed.
    BudgetAbut(bool),
    /// Back to the dispatch loop (deopt or natural completion).
    /// Carries whether any operation executed.
    Divert(bool),
}

impl Cpu {
    /// The translated fast loop of [`Cpu::run_slice`]: like
    /// [`Cpu::run_decoded`], but at block-leader positions (slice
    /// entry and every control transfer) hot code executes from
    /// [`TransBlock`]s instead of per-operation cache lookups. Same
    /// contract and entry preconditions as `run_decoded`; never
    /// entered while tracing (the decoded loop serves that, with
    /// identical timing).
    pub(crate) fn run_translated(&mut self, limit: u64) -> (bool, Option<SliceOutcome>) {
        let mut progress = false;
        self.refresh_timer_heads();
        let base = self.mem.base();
        let fast_limit = self.mem.fast_limit();
        // The slice entry position is a leader: translated processes
        // re-enter blocks straight away.
        let mut leader = true;
        loop {
            // Identical gating to `run_decoded`: fused/translated
            // execution requires empty timer queues and no pending
            // high-priority wake.
            if !(self.timer_head_empty[0] && self.timer_head_empty[1]) {
                return (progress, None);
            }
            if self.priority() == Priority::Low && self.fptr[0] != self.magic.not_process {
                return (progress, None);
            }
            debug_assert!(self.resume.is_none() && self.op_len == 0 && self.oreg == 0);
            let off = self.word.mask(self.iptr.wrapping_sub(base)) as usize;
            if off >= fast_limit {
                self.stats.decode_bypasses += 1;
                return (progress, None);
            }

            if leader {
                // The block is *moved* out of its slot for the
                // duration of the run (nothing below touches the
                // cache) and put back afterwards: cheaper than
                // reference counting on every entry.
                if let Some((slot, block)) = self.lookup_block(off) {
                    if block.nops == 0 {
                        // Sentinel: interpret through this spot.
                        self.tcache.slots[slot as usize] = Some(block);
                    } else {
                        self.stats.trans_enters += 1;
                        let exit = self.exec_block(&block, limit);
                        self.tcache.slots[slot as usize] = Some(block);
                        match exit {
                            BlockExit::Outcome(outcome) => return (true, Some(outcome)),
                            BlockExit::BudgetAbut(ran) => return (progress || ran, None),
                            BlockExit::Divert(ran) => {
                                progress |= ran;
                                if !self.has_current_process()
                                    || self.resume.is_some()
                                    || self.op_len != 0
                                {
                                    return (progress, None);
                                }
                                // Re-check the loop-top gates; execution
                                // resumes at a fresh leader.
                                continue;
                            }
                        }
                    }
                }
            }

            // Interpret one operation, exactly as `run_decoded` does.
            let e = self
                .dcache
                .entry_at(&mut self.mem, &mut self.stats, self.word, self.iptr, off);
            let len = u64::from(e.len);
            if e.flags & F_BYPASS != 0 {
                self.stats.decode_bypasses += 1;
                return (progress, None);
            }
            if self.cycles + (len - 1) >= limit {
                return (progress, None);
            }
            progress = true;
            let fun = Direct::from_nibble(e.fun);
            self.op_start = self.iptr;
            let next = self.word.mask(self.iptr.wrapping_add(u32::from(e.len)));
            self.iptr = next;
            self.stats.instructions += len;
            self.stats.record_operation(fun, e.len as usize);
            self.cycles += len - 1;
            self.slice_mark = self.cycles;
            if self.trace.is_some() {
                self.pending_trace = Some((fun, e.operand));
            }
            match self.exec_direct(fun, e.operand) {
                Ok(c) => {
                    let c = c + self.mem.take_penalty_cycles();
                    self.advance_time(c);
                }
                Err(reason) => {
                    self.halted = Some(reason);
                    return (true, Some(SliceOutcome::Halted(reason)));
                }
            }
            self.record_pending_trace();
            if let Some(r) = self.halted {
                return (true, Some(SliceOutcome::Halted(r)));
            }
            if let Some(exit) = self.slice_exit.take() {
                return (true, Some(exit));
            }
            if self.cycles >= limit {
                return (true, Some(SliceOutcome::BudgetExpired));
            }
            if !self.has_current_process() || self.resume.is_some() || self.op_len != 0 {
                return (true, None);
            }
            // A control transfer lands on a leader; sequential flow
            // continues inside whatever block the leader began.
            leader = self.iptr != next;
        }
    }

    /// Execute a translated block's operations back to back. Entered
    /// with the covers validated; every operation replays the decoded
    /// loop's sequence, and any reason to stop is a [`BlockExit`].
    ///
    /// One flat 16-way dispatch per operation — the same branch shape
    /// as the interpreter, so the host branch predictor sees one
    /// data-dependent jump per op, not a class check feeding a second
    /// dispatch. The load/arithmetic/store arms inline specialised
    /// bodies (copies of the matching [`Cpu::exec_direct`] arms — the
    /// differential battery holds them identical) and skip the
    /// bookkeeping those operations provably cannot need:
    ///
    /// * Loads, `adc`, `eqc` and `ajw` read registers, workspace and
    ///   memory only. They may fault (the `Err` path), and `adc`
    ///   overflow may raise the error flag (under halt-on-error that
    ///   sets `halted`), but they cannot set `slice_exit`, cannot
    ///   deschedule, cannot move `Iptr` off the sequential path, and
    ///   cannot write memory — so neither the code epoch nor the timer
    ///   heads nor a run-queue pointer can change, and with empty
    ///   timer queues (a block entry invariant re-checked after every
    ///   operation that can disturb them) adding cycles directly is
    ///   exactly what `advance_time` would do. `op_start`/`slice_mark`
    ///   stay unwritten: only tracing (never active here) and
    ///   interaction exits (impossible here) read them, and the fault
    ///   path restores both.
    /// * `stl`/`stnl` additionally write memory, so they run the
    ///   epoch check and — via `advance_time` — the reserved-word
    ///   timer refresh, then re-check the scheduler gates.
    /// * Control-transfer and `opr` arms call `exec_direct` with a
    ///   *constant* function, so inlining reduces each to its own
    ///   body, followed by the full post-operation battery.
    ///
    /// Per-op statistics are batched: every exit path flushes the
    /// executed prefix through [`Cpu::flush_block_stats`] before
    /// returning, so the [`crate::stats::Stats`] image is identical to
    /// the interpreter's at every point the caller can observe it.
    fn exec_block(&mut self, block: &TransBlock, limit: u64) -> BlockExit {
        let epoch = self.mem.code_epoch();
        let ops = block.ops();
        let last = ops.len() - 1;
        // The memory configuration cannot change mid-block; when no
        // region carries an access penalty (every committed config),
        // the pure-load arms skip draining the penalty accumulator.
        let drain_penalty = !self.mem.timing_pure();
        let mut i = 0usize;
        loop {
            let op = ops[i];
            if self.cycles + (u64::from(op.len) - 1) >= limit {
                self.flush_block_stats(block, i);
                self.stats.trans_deopts += 1;
                return BlockExit::BudgetAbut(i != 0);
            }
            // Shared exit/check fragments for the dispatch arms below,
            // parameterised by `$n`, the count of operations that have
            // fully executed when the fragment runs — `i + 1` for the
            // current operation, `i + 2` for the second half of a
            // fused pair. `flush_ret` ends the block; `budget_tail` is
            // the post-operation budget check every arm needs;
            // `deopt_ret` is a mid-block deoptimisation; `precheck` is
            // the budget *pre*-check a fused pair's second operation
            // needs (the loop top only checked the first).
            macro_rules! flush_ret {
                ($n:expr, $exit:expr) => {{
                    self.flush_block_stats(block, $n);
                    return $exit;
                }};
            }
            macro_rules! deopt_ret {
                ($n:expr) => {{
                    self.stats.trans_deopts += 1;
                    flush_ret!($n, BlockExit::Divert(true));
                }};
            }
            macro_rules! budget_tail {
                ($n:expr) => {
                    if self.cycles >= limit {
                        flush_ret!($n, BlockExit::Outcome(SliceOutcome::BudgetExpired));
                    }
                };
            }
            macro_rules! precheck {
                ($op:expr, $n:expr) => {
                    if self.cycles + (u64::from($op.len) - 1) >= limit {
                        self.flush_block_stats(block, $n);
                        self.stats.trans_deopts += 1;
                        return BlockExit::BudgetAbut(true);
                    }
                };
            }
            // Advance `Iptr` over a sequential operation.
            macro_rules! advance {
                ($op:expr) => {{
                    let prev = self.iptr;
                    self.iptr = self.word.mask(prev.wrapping_add(u32::from($op.len)));
                    prev
                }};
            }
            // A store's epilogue: the write may have dirtied the
            // reserved words (`advance_time` refreshes the timer heads
            // exactly as the decoded loop would), hit cached code
            // (epoch check), or flipped a scheduler gate.
            macro_rules! store_tail {
                ($c:expr, $n:expr) => {{
                    let mut c: u32 = $c;
                    if drain_penalty {
                        c += self.mem.take_penalty_cycles();
                    }
                    self.advance_time(c);
                    budget_tail!($n);
                    if self.mem.code_epoch() != epoch {
                        deopt_ret!($n);
                    }
                    if $n - 1 != last && self.gates_tripped() {
                        deopt_ret!($n);
                    }
                }};
            }
            // ---- Specialised operation bodies (see the doc above):
            // each is the matching `exec_direct` arm inlined, plus the
            // exact cycle charge and the checks it can actually need.
            macro_rules! ldlp_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    let p = self.word.index_word(self.wptr(), $op.operand);
                    self.push(p);
                    // len - 1 encoding cycles + 1 execute cycle.
                    self.cycles += u64::from($op.len);
                    budget_tail!($n);
                }};
            }
            macro_rules! ldc_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    self.push($op.operand);
                    self.cycles += u64::from($op.len);
                    budget_tail!($n);
                }};
            }
            macro_rules! ldnlp_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    self.areg = self.word.index_word(self.areg, $op.operand);
                    self.cycles += u64::from($op.len);
                    budget_tail!($n);
                }};
            }
            macro_rules! ldnl_body {
                ($op:expr, $n:expr) => {{
                    let prev = advance!($op);
                    let a = self.word.index_word(self.areg, $op.operand);
                    match self.mem.read_word(a) {
                        Ok(v) => {
                            self.areg = v;
                            self.cycles += u64::from($op.len) + 1;
                            if drain_penalty {
                                self.cycles += u64::from(self.mem.take_penalty_cycles());
                            }
                        }
                        Err(r) => {
                            self.cycles += u64::from($op.len) - 1;
                            return self.block_fault(block, $n - 1, prev, r);
                        }
                    }
                    budget_tail!($n);
                }};
            }
            macro_rules! ldl_body {
                ($op:expr, $n:expr) => {{
                    let prev = advance!($op);
                    let a = self.word.index_word(self.wptr(), $op.operand);
                    match self.mem.read_word(a) {
                        Ok(v) => {
                            self.push(v);
                            self.cycles += u64::from($op.len) + 1;
                            if drain_penalty {
                                self.cycles += u64::from(self.mem.take_penalty_cycles());
                            }
                        }
                        Err(r) => {
                            self.cycles += u64::from($op.len) - 1;
                            return self.block_fault(block, $n - 1, prev, r);
                        }
                    }
                    budget_tail!($n);
                }};
            }
            macro_rules! adc_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    let (r, o) = self.word.checked_add(self.areg, $op.operand);
                    self.areg = r;
                    self.cycles += u64::from($op.len);
                    if o {
                        // Overflow raises the error flag; under
                        // halt-on-error that halts the machine.
                        self.set_error_if(o);
                        if let Some(r) = self.halted {
                            flush_ret!($n, BlockExit::Outcome(SliceOutcome::Halted(r)));
                        }
                    }
                    budget_tail!($n);
                }};
            }
            macro_rules! ajw_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    let w = self.word.index_word(self.wptr(), $op.operand);
                    self.set_wptr(w);
                    self.cycles += u64::from($op.len);
                    budget_tail!($n);
                }};
            }
            macro_rules! eqc_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    self.areg = if self.areg == self.word.mask($op.operand) {
                        MACHINE_TRUE
                    } else {
                        MACHINE_FALSE
                    };
                    self.cycles += u64::from($op.len) + 1;
                    budget_tail!($n);
                }};
            }
            // ---- Build-time-specialised pure-ALU `opr` bodies:
            // each mirrors its `exec_op` arm exactly — `Iptr` advance,
            // the operation-count bookkeeping the `Operate` dispatch
            // does, the stack semantics, and the fixed execute cost on
            // top of the `len - 1` encoding cycles. No memory access,
            // no control transfer, no scheduling effect — so like the
            // load arms they need only the budget check (and, for
            // checked arithmetic, the error-halt check).
            macro_rules! add_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    self.stats.record_op(Op::Add);
                    let (a, b) = self.pop2();
                    let (r, o) = self.word.checked_add(b, a);
                    self.push(r);
                    self.cycles += u64::from($op.len);
                    if o {
                        self.set_error_if(o);
                        if let Some(r) = self.halted {
                            flush_ret!($n, BlockExit::Outcome(SliceOutcome::Halted(r)));
                        }
                    }
                    budget_tail!($n);
                }};
            }
            macro_rules! sub_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    self.stats.record_op(Op::Subtract);
                    let (a, b) = self.pop2();
                    let (r, o) = self.word.checked_sub(b, a);
                    self.push(r);
                    self.cycles += u64::from($op.len);
                    if o {
                        self.set_error_if(o);
                        if let Some(r) = self.halted {
                            flush_ret!($n, BlockExit::Outcome(SliceOutcome::Halted(r)));
                        }
                    }
                    budget_tail!($n);
                }};
            }
            macro_rules! diff_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    self.stats.record_op(Op::Difference);
                    let (a, b) = self.pop2();
                    self.push(self.word.wrapping_sub(b, a));
                    self.cycles += u64::from($op.len);
                    budget_tail!($n);
                }};
            }
            macro_rules! gt_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    self.stats.record_op(Op::GreaterThan);
                    let (a, b) = self.pop2();
                    self.push(if self.word.gt(b, a) {
                        MACHINE_TRUE
                    } else {
                        MACHINE_FALSE
                    });
                    self.cycles += u64::from($op.len) + 1;
                    budget_tail!($n);
                }};
            }
            macro_rules! wsub_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    self.stats.record_op(Op::WordSubscript);
                    let (a, b) = self.pop2();
                    self.push(self.word.index_word(b, a));
                    self.cycles += u64::from($op.len) + 1;
                    budget_tail!($n);
                }};
            }
            macro_rules! rev_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    self.stats.record_op(Op::Reverse);
                    std::mem::swap(&mut self.areg, &mut self.breg);
                    self.cycles += u64::from($op.len);
                    budget_tail!($n);
                }};
            }
            macro_rules! stl_body {
                ($op:expr, $n:expr) => {{
                    let prev = advance!($op);
                    self.cycles += u64::from($op.len) - 1;
                    let a = self.word.index_word(self.wptr(), $op.operand);
                    let v = self.pop();
                    if let Err(r) = self.mem.write_word(a, v) {
                        return self.block_fault(block, $n - 1, prev, r);
                    }
                    store_tail!(1, $n);
                }};
            }
            macro_rules! stnl_body {
                ($op:expr, $n:expr) => {{
                    let prev = advance!($op);
                    self.cycles += u64::from($op.len) - 1;
                    let (addr, val) = self.pop2();
                    let a = self.word.index_word(addr, $op.operand);
                    if let Err(r) = self.mem.write_word(a, val) {
                        return self.block_fault(block, $n - 1, prev, r);
                    }
                    store_tail!(2, $n);
                }};
            }
            // A conditional jump: jumps when A is zero (no pop), pops
            // and falls through otherwise. `ends_block` makes `cj`
            // block-final, so the taken path is natural completion,
            // never a mid-block deopt; the decoded loop's budget check
            // precedes its control-transfer check, hence the order
            // here. Writes nothing and schedules nothing, so the
            // epoch and gate checks are vacuous.
            macro_rules! cj_body {
                ($op:expr, $n:expr) => {{
                    advance!($op);
                    if self.areg == 0 {
                        self.iptr = self.word.mask(self.iptr.wrapping_add($op.operand));
                        self.cycles += u64::from($op.len) - 1 + 4;
                        budget_tail!($n);
                        flush_ret!($n, BlockExit::Divert(true));
                    } else {
                        self.pop();
                        self.cycles += u64::from($op.len) + 1;
                        budget_tail!($n);
                    }
                }};
            }
            // An operation with the full interpreter semantics and the
            // full post-operation battery, in the decoded loop's order
            // so coincident conditions resolve to the same outcome.
            // `$fun` is a constant, so the force-inlined `exec_direct`
            // reduces to that arm's body.
            macro_rules! general_body {
                ($fun:expr, $op:expr, $n:expr) => {{
                    self.op_start = self.iptr;
                    let next = self.word.mask(self.iptr.wrapping_add(u32::from($op.len)));
                    self.iptr = next;
                    self.cycles += u64::from($op.len) - 1;
                    self.slice_mark = self.cycles;
                    match self.exec_direct($fun, $op.operand) {
                        Ok(c) => {
                            let c = c + self.mem.take_penalty_cycles();
                            self.advance_time(c);
                        }
                        Err(reason) => {
                            self.halted = Some(reason);
                            flush_ret!($n, BlockExit::Outcome(SliceOutcome::Halted(reason)));
                        }
                    }
                    if let Some(r) = self.halted {
                        flush_ret!($n, BlockExit::Outcome(SliceOutcome::Halted(r)));
                    }
                    if let Some(exit) = self.slice_exit.take() {
                        self.stats.trans_deopts += 1;
                        flush_ret!($n, BlockExit::Outcome(exit));
                    }
                    budget_tail!($n);
                    if !self.has_current_process() || self.resume.is_some() || self.op_len != 0 {
                        deopt_ret!($n);
                    }
                    if self.iptr != next {
                        // Control transferred. At the block's final
                        // operation this is natural completion (blocks
                        // end on branches); earlier it is a deopt.
                        if $n - 1 != last {
                            self.stats.trans_deopts += 1;
                        }
                        flush_ret!($n, BlockExit::Divert(true));
                    }
                    if self.mem.code_epoch() != epoch {
                        deopt_ret!($n);
                    }
                    if $n - 1 != last && self.gates_tripped() {
                        deopt_ret!($n);
                    }
                }};
            }
            // The second half of a fused pair: budget pre-check, then
            // the named body with the executed count bumped to i + 2.
            macro_rules! fused {
                ($body:ident, $($fun:expr,)?) => {{
                    let op2 = ops[i + 1];
                    precheck!(op2, i + 1);
                    $body!($($fun,)? op2, i + 2);
                }};
            }
            // One flat dispatch per (possibly fused) operation: codes
            // 0..=15 are the plain function nibbles, XF_* are the
            // measured-hot fused pairs stamped by `fuse_ops`.
            match op.xfun {
                0x0 => general_body!(Direct::Jump, op, i + 1),
                0x1 => ldlp_body!(op, i + 1),
                0x2 | 0x6 => unreachable!("decode fuses prefixes into the operand"),
                0x3 => ldnl_body!(op, i + 1),
                0x4 => ldc_body!(op, i + 1),
                0x5 => ldnlp_body!(op, i + 1),
                0x7 => ldl_body!(op, i + 1),
                0x8 => adc_body!(op, i + 1),
                0x9 => general_body!(Direct::Call, op, i + 1),
                0xA => cj_body!(op, i + 1),
                0xB => ajw_body!(op, i + 1),
                0xC => eqc_body!(op, i + 1),
                0xD => stl_body!(op, i + 1),
                0xE => stnl_body!(op, i + 1),
                0xF => general_body!(Direct::Operate, op, i + 1),
                XF_LDLP_LDL => {
                    ldlp_body!(op, i + 1);
                    fused!(ldl_body,);
                }
                XF_LDL_OPR => {
                    ldl_body!(op, i + 1);
                    fused!(general_body, Direct::Operate,);
                }
                XF_OPR_LDNL => {
                    general_body!(Direct::Operate, op, i + 1);
                    fused!(ldnl_body,);
                }
                XF_LDC_OPR => {
                    ldc_body!(op, i + 1);
                    fused!(general_body, Direct::Operate,);
                }
                XF_LDL_ADC => {
                    ldl_body!(op, i + 1);
                    fused!(adc_body,);
                }
                XF_ADC_OPR => {
                    adc_body!(op, i + 1);
                    fused!(general_body, Direct::Operate,);
                }
                XF_OPR_CJ => {
                    general_body!(Direct::Operate, op, i + 1);
                    fused!(cj_body,);
                }
                XF_LDNL_LDLP => {
                    ldnl_body!(op, i + 1);
                    fused!(ldlp_body,);
                }
                XF_LDLP_LDC => {
                    ldlp_body!(op, i + 1);
                    fused!(ldc_body,);
                }
                XF_OPR_STNL => {
                    general_body!(Direct::Operate, op, i + 1);
                    fused!(stnl_body,);
                }
                XF_LDNL_OPR => {
                    ldnl_body!(op, i + 1);
                    fused!(general_body, Direct::Operate,);
                }
                XF_STL_LDLP => {
                    stl_body!(op, i + 1);
                    fused!(ldlp_body,);
                }
                XF_LDL_WSUB => {
                    ldl_body!(op, i + 1);
                    fused!(wsub_body,);
                }
                XF_LDL_ADD => {
                    ldl_body!(op, i + 1);
                    fused!(add_body,);
                }
                XF_LDL_GT => {
                    ldl_body!(op, i + 1);
                    fused!(gt_body,);
                }
                XF_WSUB_LDNL => {
                    wsub_body!(op, i + 1);
                    fused!(ldnl_body,);
                }
                XF_WSUB_STNL => {
                    wsub_body!(op, i + 1);
                    fused!(stnl_body,);
                }
                XF_GT_CJ => {
                    gt_body!(op, i + 1);
                    fused!(cj_body,);
                }
                XO_ADD => add_body!(op, i + 1),
                XO_SUB => sub_body!(op, i + 1),
                XO_DIFF => diff_body!(op, i + 1),
                XO_GT => gt_body!(op, i + 1),
                XO_WSUB => wsub_body!(op, i + 1),
                XO_REV => rev_body!(op, i + 1),
                _ => unreachable!("unknown dispatch code"),
            }
            let n = i + 1 + usize::from((XF_BASE..XO_BASE).contains(&op.xfun));
            if n > last {
                // Fall-through completion (length-capped block or a
                // conditional that stayed sequential).
                self.flush_block_stats(block, n);
                return BlockExit::Divert(true);
            }
            i = n;
        }
    }

    /// Whether the scheduler gates would stop fused execution: a timer
    /// queue became non-empty, or a high-priority process is waiting
    /// while a low-priority block runs. Mirrors the loop-top checks of
    /// [`Cpu::run_translated`].
    #[inline]
    fn gates_tripped(&self) -> bool {
        !(self.timer_head_empty[0] && self.timer_head_empty[1])
            || (self.priority() == Priority::Low && self.fptr[0] != self.magic.not_process)
    }

    /// Cold path for a memory fault raised by a specialised Pure/Store
    /// arm of [`Cpu::exec_block`]: restore the bookkeeping the fast
    /// path skipped (`op_start`, `slice_mark`) so the halted machine
    /// state is field-for-field what the interpreter leaves behind.
    #[cold]
    fn block_fault(
        &mut self,
        block: &TransBlock,
        idx: usize,
        prev_iptr: u32,
        reason: HaltReason,
    ) -> BlockExit {
        self.op_start = prev_iptr;
        self.slice_mark = self.cycles;
        self.flush_block_stats(block, idx + 1);
        self.halted = Some(reason);
        BlockExit::Outcome(SliceOutcome::Halted(reason))
    }

    /// Apply the statistics of the first `executed` operations of a
    /// block in one batch. Full completion uses the precomputed block
    /// totals; a deopt replays the executed prefix into locals first.
    fn flush_block_stats(&mut self, block: &TransBlock, executed: usize) {
        if executed == usize::from(block.nops) {
            block.totals.apply(&mut self.stats);
        } else {
            let mut t = BlockStats::default();
            for op in &block.ops[..executed] {
                t.add(op);
            }
            t.apply(&mut self.stats);
        }
    }

    /// The translated block for leader `off`, if one exists or the
    /// leader just became hot enough to build one. Validates cover
    /// generations, retranslating invalidated blocks immediately (a
    /// leader that was hot stays hot). The returned block has been
    /// *taken* out of the returned slot; the caller puts it back when
    /// it is done executing.
    fn lookup_block(&mut self, off: usize) -> Option<(u32, Box<TransBlock>)> {
        if off >= self.tcache.index.len() {
            self.tcache.grow(off);
        }
        let slot = self.tcache.index[off];
        if slot != 0 {
            let block = self.tcache.slots[(slot - 1) as usize]
                .take()
                .expect("indexed slot holds a block");
            if block
                .covers()
                .iter()
                .all(|&(b, gen)| self.mem.code_block_gen(b as usize) == gen)
            {
                return Some((slot - 1, block));
            }
            self.tcache.slots[(slot - 1) as usize] = Some(block);
            self.stats.trans_invalidations += 1;
            self.tcache.remove(off);
            return Some(self.build_block(off));
        }
        let heat = &mut self.tcache.heat[off];
        *heat = heat.saturating_add(1);
        if u32::from(*heat) >= self.translate_threshold {
            return Some(self.build_block(off));
        }
        None
    }

    /// Compile the basic block whose leader is at code offset `off`
    /// (`== mask(iptr - base)`, inside the fast region), snapshot the
    /// generations of every 64-byte block it covers, and store it.
    /// Runs too short to be worth it are stored as sentinels. Returns
    /// the stored block, taken out of its slot like
    /// [`Cpu::lookup_block`] does.
    #[cold]
    fn build_block(&mut self, off: usize) -> (u32, Box<TransBlock>) {
        let base = self.mem.base();
        let mut iptr = self.word.mask(base.wrapping_add(off as u32));
        let mut ops = [TransOp {
            operand: 0,
            fun: 0,
            len: 0,
            xfun: 0,
        }; MAX_BLOCK_OPS];
        let mut nops = 0usize;
        // One past the last byte the block's operations occupy.
        let mut end_off = off;
        while nops < MAX_BLOCK_OPS {
            let e: DecEntry = decode_entry(&self.mem, self.word, iptr);
            if e.flags & F_VALID == 0 || e.flags & F_BYPASS != 0 {
                break;
            }
            let fun = Direct::from_nibble(e.fun);
            let xfun = if fun == Direct::Operate {
                specialize_op(e.operand).unwrap_or(e.fun)
            } else {
                e.fun
            };
            ops[nops] = TransOp {
                operand: e.operand,
                fun: e.fun,
                len: e.len,
                xfun,
            };
            nops += 1;
            end_off += usize::from(e.len);
            iptr = self.word.mask(iptr.wrapping_add(u32::from(e.len)));
            if ends_block(fun, e.operand) {
                break;
            }
        }
        // Greedy left-to-right pairing over the (possibly already
        // ALU-specialised) dispatch codes: stamp the first operation
        // of each hot adjacent pair with its superinstruction code.
        // The second operation keeps its own code, which is what the
        // partial-replay stats path and any restart after a mid-pair
        // deopt rely on — a deopt always flushes the true count of
        // executed operations, never "half a superinstruction".
        let mut k = 0;
        while k + 1 < nops {
            match fuse_code(ops[k].xfun, ops[k + 1].xfun) {
                Some(xf) => {
                    ops[k].xfun = xf;
                    k += 2;
                }
                None => k += 1,
            }
        }
        let worth_it = nops >= MIN_BLOCK_OPS;
        let mut covers = [(0u32, 0u32); MAX_COVERS];
        let mut ncovers = 0usize;
        let last_block = (end_off.max(off + 1) - 1) >> CODE_BLOCK_SHIFT;
        for b in (off >> CODE_BLOCK_SHIFT)..=last_block {
            if b >= self.mem.code_blocks() {
                break;
            }
            assert!(ncovers < MAX_COVERS, "cover span exceeds MAX_COVERS");
            self.mem.note_code_cached(b);
            covers[ncovers] = (b as u32, self.mem.code_block_gen(b));
            ncovers += 1;
        }
        let mut totals = BlockStats::default();
        for op in &ops[..nops] {
            totals.add(op);
        }
        let block = Box::new(TransBlock {
            ops,
            nops: if worth_it { nops as u8 } else { 0 },
            ncovers: ncovers as u8,
            covers,
            totals: totals.to_sparse(),
        });
        if worth_it {
            self.stats.trans_blocks += 1;
        }
        let slot = self.tcache.insert(off, block);
        let block = self.tcache.slots[slot as usize]
            .take()
            .expect("freshly inserted block");
        (slot, block)
    }
}

/// Whether an operation terminates block construction. Purely a
/// translation-quality heuristic — correctness never depends on it,
/// because the per-operation post-checks in [`Cpu::exec_block`] catch
/// every control transfer, deschedule and resumption — but operations
/// that *always* divert (returns, loop ends, process ends) would make
/// everything after them dead weight, so blocks end there. Branches
/// and calls end blocks because their targets are new leaders; `cj`
/// ends them too, because a loop's taken back-edge would otherwise
/// deopt mid-block on every iteration (the fall-through case chains
/// into the next block's leader at no cost). Communication operations
/// do *not* end blocks: a `tin` whose time has passed or an `out`
/// meeting a ready partner continues sequentially, and the mid-block
/// deopt machinery handles the descheduling case — that is the
/// machinery the deopt tests exercise.
fn ends_block(fun: Direct, operand: u32) -> bool {
    match fun {
        Direct::Jump | Direct::Call | Direct::ConditionalJump => true,
        Direct::Operate => match Op::from_code(operand) {
            Some(op) => matches!(
                op,
                Op::Return
                    | Op::LoopEnd
                    | Op::EndProcess
                    | Op::StopProcess
                    | Op::GeneralCall
                    | Op::AltEnd
                    | Op::Move
                    | Op::HaltSimulation
            ),
            // Unknown operations are bypass entries; unreachable here.
            None => true,
        },
        _ => false,
    }
}
