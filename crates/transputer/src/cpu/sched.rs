//! The hardware scheduler (§3.2.4, Figure 3).
//!
//! "The active processes waiting to be executed are held on a list. This
//! is a linked list of process workspaces, implemented using two
//! registers, one of which points to the first process on the list, the
//! other to the last." There is one such list per priority.

use super::{Cpu, Shadow};
use crate::error::HaltReason;
use crate::memory::TPTR_LOC;
use crate::process::{
    workspace_word, Priority, ProcDesc, PW_IPTR, PW_LINK, PW_STATE, PW_TIME, PW_TLINK,
};
use crate::timing;

impl Cpu {
    /// Address of a workspace word of the *current* process.
    pub(crate) fn ws_addr(&self, offset: i32) -> u32 {
        workspace_word(self.word, self.wptr(), offset)
    }

    /// Read a workspace word of the current process.
    pub(crate) fn ws_read(&mut self, offset: i32) -> Result<u32, HaltReason> {
        let a = self.ws_addr(offset);
        self.mem.read_word(a)
    }

    /// Write a workspace word of the current process.
    pub(crate) fn ws_write(&mut self, offset: i32, v: u32) -> Result<(), HaltReason> {
        let a = self.ws_addr(offset);
        self.mem.write_word(a, v)
    }

    /// Make a process ready to run: append it to the scheduling list of
    /// its priority (the `start process` path of §3.2.4). `ready_at` is
    /// the cycle at which the process logically became ready, used for
    /// the preemption latency measurement.
    pub(crate) fn schedule(&mut self, p: ProcDesc, ready_at: u64) {
        let pri = p.priority().index();
        let wptr = p.wptr();
        if self.fptr[pri] == self.magic.not_process {
            self.fptr[pri] = wptr;
            self.bptr[pri] = wptr;
        } else {
            let tail_link = workspace_word(self.word, self.bptr[pri], PW_LINK);
            // Queue words are always in range: they were valid workspaces.
            let _ = self.mem.write_word(tail_link, wptr);
            self.bptr[pri] = wptr;
        }
        if p.priority() == Priority::High {
            if self.has_current_process() && self.priority() == Priority::Low {
                // Preemption will be taken at the next micro-step boundary.
                if self.hi_ready_at.is_none() {
                    self.hi_ready_at = Some(ready_at);
                }
            } else if !self.has_current_process() {
                self.hi_ready_at = Some(ready_at);
            }
        }
        if !self.has_current_process() {
            self.dispatch_next();
        }
    }

    /// Pop the front of a priority queue. The queue must be non-empty.
    fn dequeue(&mut self, pri: Priority) -> u32 {
        let i = pri.index();
        let wptr = self.fptr[i];
        debug_assert_ne!(wptr, self.magic.not_process, "dequeue from empty list");
        if wptr == self.bptr[i] {
            self.fptr[i] = self.magic.not_process;
            self.bptr[i] = self.magic.not_process;
        } else {
            let link = workspace_word(self.word, wptr, PW_LINK);
            self.fptr[i] = self.mem.read_word(link).unwrap_or(self.magic.not_process);
        }
        wptr
    }

    /// Load a process into the processor registers.
    fn activate(&mut self, wptr: u32, pri: Priority) {
        self.wdesc = ProcDesc::new(wptr, pri).raw();
        let iptr_word = workspace_word(self.word, wptr, PW_IPTR);
        self.iptr = self.mem.read_word(iptr_word).unwrap_or(0);
        self.oreg = 0;
        self.op_len = 0;
        self.resume = None;
        self.stats.dispatches += 1;
        self.last_dispatch = self.cycles;
        if pri == Priority::High {
            if let Some(t0) = self.hi_ready_at.take() {
                let latency = self.cycles.saturating_sub(t0);
                self.stats.max_preempt_latency = self.stats.max_preempt_latency.max(latency);
            }
        }
    }

    /// Choose the next process to run: high-priority work first, then an
    /// interrupted low-priority process from the shadow registers, then
    /// the low-priority list. Returns whether anything was dispatched.
    pub(crate) fn dispatch_next(&mut self) -> bool {
        if self.fptr[Priority::High.index()] != self.magic.not_process {
            let w = self.dequeue(Priority::High);
            self.activate(w, Priority::High);
            return true;
        }
        if let Some(sh) = self.shadow.take() {
            // "The switch from priority 0 to priority 1 ... takes 17
            // cycles" (§3.2.4): restoring the full shadowed context.
            self.wdesc = sh.wdesc;
            self.iptr = sh.iptr;
            self.op_start = sh.op_start;
            self.areg = sh.areg;
            self.breg = sh.breg;
            self.creg = sh.creg;
            self.oreg = sh.oreg;
            self.op_len = sh.op_len;
            self.resume = sh.resume;
            self.stats.priority_lowerings += 1;
            self.stats.dispatches += 1;
            self.last_dispatch = self.cycles;
            self.advance_time(timing::PRIORITY_LOWER_SWITCH);
            return true;
        }
        if self.fptr[Priority::Low.index()] != self.magic.not_process {
            let w = self.dequeue(Priority::Low);
            self.activate(w, Priority::Low);
            return true;
        }
        self.wdesc = self.magic.not_process;
        false
    }

    /// Suspend the current low-priority process into the shadow registers
    /// and dispatch the waiting high-priority process. Returns the cycles
    /// charged for the switch.
    pub(crate) fn preempt_to_high(&mut self) -> u32 {
        debug_assert_eq!(self.priority(), Priority::Low);
        self.shadow = Some(Shadow {
            wdesc: self.wdesc,
            iptr: self.iptr,
            op_start: self.op_start,
            areg: self.areg,
            breg: self.breg,
            creg: self.creg,
            oreg: self.oreg,
            op_len: self.op_len,
            resume: self.resume.take(),
        });
        self.stats.preemptions += 1;
        // Charge the switch before activating so the latency measurement
        // includes it.
        self.advance_time(timing::PRIORITY_RAISE_SWITCH);
        let w = self.dequeue(Priority::High);
        self.activate(w, Priority::High);
        timing::PRIORITY_RAISE_SWITCH
    }

    /// Save the current instruction pointer and give up the processor
    /// without requeueing (used when blocking on a channel or timer).
    pub(crate) fn block_current(&mut self) -> Result<(), HaltReason> {
        self.ws_write(PW_IPTR, self.iptr)?;
        self.stats.deschedules += 1;
        self.dispatch_next();
        Ok(())
    }

    /// Stop the current process without saving anything (its life ended,
    /// e.g. at `end process`).
    pub(crate) fn end_current(&mut self) {
        self.stats.deschedules += 1;
        self.dispatch_next();
    }

    /// Timeslice point (taken at `jump` and `loop end`): a low-priority
    /// process that has run for a full timeslice yields to its peers.
    pub(crate) fn maybe_timeslice(&mut self) -> Result<(), HaltReason> {
        if self.priority() == Priority::Low
            && self.fptr[Priority::Low.index()] != self.magic.not_process
            && self.cycles - self.last_dispatch >= self.timeslice_cycles
        {
            self.ws_write(PW_IPTR, self.iptr)?;
            let me = ProcDesc(self.wdesc);
            self.stats.deschedules += 1;
            let now = self.cycles;
            self.wdesc = self.magic.not_process;
            self.schedule(me, now);
            if !self.has_current_process() {
                self.dispatch_next();
            }
        }
        Ok(())
    }

    /// Advance simulated time, ticking the per-priority clocks and waking
    /// timer queue entries that come due.
    #[inline]
    pub(crate) fn advance_time(&mut self, cycles: u32) {
        self.advance_time64(u64::from(cycles));
    }

    /// [`Cpu::advance_time`] with a 64-bit delta, so arbitrarily long
    /// idle gaps advance in one call without truncation.
    ///
    /// Ticks of a priority whose timer queue is empty are *lazy*: with
    /// nothing to wake, a tick's only effect is the clock increment,
    /// which [`Cpu::clock_now`] reconstructs in closed form on demand.
    /// The common case of the hot loop is therefore a bare addition.
    /// Laziness requires penalty-free reserved-word reads
    /// (`reserved_free`); otherwise every tick's head read is walked
    /// eagerly so its timing cost lands exactly where it always has.
    #[inline]
    pub(crate) fn advance_time64(&mut self, cycles: u64) {
        if self.timers_running && self.reserved_free {
            // Refresh BEFORE bumping the cycle counter: a timer insert
            // during the instruction just executed flips a queue
            // non-empty, and its lazy ticks must be materialised only
            // up to the pre-advance instant — ticks inside the window
            // being advanced now are then walked eagerly below, exactly
            // where the eager baseline processes them.
            self.refresh_timer_heads();
            self.cycles += cycles;
            if (!self.timer_head_empty[0] && self.next_tick[0] <= self.cycles)
                || (!self.timer_head_empty[1] && self.next_tick[1] <= self.cycles)
            {
                self.catch_up_ticks();
            }
        } else {
            self.cycles += cycles;
            if self.timers_running
                && (self.next_tick[0] <= self.cycles || self.next_tick[1] <= self.cycles)
            {
                self.catch_up_ticks();
            }
        }
    }

    /// The current value of a priority's clock: the stored register
    /// plus any ticks that have elapsed but not been materialised
    /// (lazy ticks of an empty-queue priority).
    #[inline]
    pub(crate) fn clock_now(&self, pri: Priority) -> u32 {
        let i = pri.index();
        if !self.timers_running || self.cycles < self.next_tick[i] {
            return self.clock[i];
        }
        let period = match pri {
            Priority::High => timing::HI_TICK_CYCLES,
            Priority::Low => timing::LO_TICK_CYCLES,
        };
        let pending = (self.cycles - self.next_tick[i]) / period + 1;
        self.word
            .wrapping_add(self.clock[i], self.word.mask64(pending))
    }

    /// Materialise a priority's lazily elided ticks into the stored
    /// clock register, so eager per-tick processing can resume.
    fn sync_lazy_clock(&mut self, pri: Priority) {
        let i = pri.index();
        if !self.timers_running || self.next_tick[i] > self.cycles {
            return;
        }
        let period = match pri {
            Priority::High => timing::HI_TICK_CYCLES,
            Priority::Low => timing::LO_TICK_CYCLES,
        };
        let pending = (self.cycles - self.next_tick[i]) / period + 1;
        self.clock[i] = self
            .word
            .wrapping_add(self.clock[i], self.word.mask64(pending));
        self.next_tick[i] += pending * period;
    }

    /// Re-read the timer queue heads into the cached emptiness flags if
    /// any write has landed in the reserved words since the last look.
    /// A priority whose queue goes empty→non-empty has its lazy ticks
    /// materialised first, so eager wake processing starts from an
    /// exact clock.
    #[inline(always)]
    pub(crate) fn refresh_timer_heads(&mut self) {
        if self.mem.take_reserved_dirty() {
            self.reload_timer_heads();
        }
    }

    /// Dirty path of [`Cpu::refresh_timer_heads`], kept out of line so
    /// the clean-case check inlines to a load and a branch.
    #[cold]
    fn reload_timer_heads(&mut self) {
        for pri in [Priority::High, Priority::Low] {
            let i = pri.index();
            let head_loc = self.mem.reserved_addr(TPTR_LOC[i]);
            let head = self
                .mem
                .peek_word(head_loc)
                .unwrap_or(self.magic.not_process);
            let empty = head == self.magic.not_process;
            if !empty && self.timer_head_empty[i] {
                self.sync_lazy_clock(pri);
            }
            self.timer_head_empty[i] = empty;
        }
    }

    /// Process every clock tick due at or before the current cycle.
    ///
    /// Semantically this is the per-tick loop the event path has always
    /// run: bump the clock, wake due timer-queue heads. Runs of ticks
    /// that provably do nothing but bump the clock — the queue head is
    /// empty, or is not due for many ticks yet, and the head reads are
    /// penalty-free — are collapsed into one arithmetic step, which is
    /// what makes huge idle jumps and the fused decode path cheap. The
    /// collapsed form is bit-identical: an elided tick's only effect
    /// would have been the clock increment it still receives.
    fn catch_up_ticks(&mut self) {
        for pri in [Priority::High, Priority::Low] {
            let i = pri.index();
            if self.reserved_free && self.timer_head_empty[i] {
                // Lazy priority: its pure ticks stay elided; the clock
                // is reconstructed on read by [`Cpu::clock_now`] and
                // materialised by `sync_lazy_clock` when the queue
                // gains a head.
                continue;
            }
            let period = match pri {
                Priority::High => timing::HI_TICK_CYCLES,
                Priority::Low => timing::LO_TICK_CYCLES,
            };
            while self.next_tick[i] <= self.cycles {
                let pending = (self.cycles - self.next_tick[i]) / period + 1;
                match self.pure_tick_run(pri, pending) {
                    Some(skip) if skip > 0 => {
                        self.clock[i] = self
                            .word
                            .wrapping_add(self.clock[i], self.word.mask64(skip));
                        self.next_tick[i] += skip * period;
                    }
                    _ => {
                        self.clock[i] = self.word.wrapping_add(self.clock[i], 1);
                        let tick_cycle = self.next_tick[i];
                        self.next_tick[i] += period;
                        self.wake_due_timers(pri, tick_cycle);
                    }
                }
            }
        }
    }

    /// How many of the next `pending` ticks of `pri` are pure clock
    /// bumps (no queue wake, no penalty accrual), or `None` when that
    /// cannot be proven and the ticks must be walked one at a time.
    fn pure_tick_run(&mut self, pri: Priority, pending: u64) -> Option<u64> {
        if !self.reserved_free {
            // The per-tick head read would itself accrue an off-chip
            // penalty; eliding it would change timing.
            return None;
        }
        self.refresh_timer_heads();
        if self.timer_head_empty[pri.index()] {
            return Some(pending);
        }
        if !self.mem.timing_pure() {
            // Reading the head's wake time may accrue a penalty.
            return None;
        }
        let head_loc = self.mem.reserved_addr(TPTR_LOC[pri.index()]);
        let head = self
            .mem
            .peek_word(head_loc)
            .unwrap_or(self.magic.not_process);
        if head == self.magic.not_process {
            return Some(pending);
        }
        let due = self
            .mem
            .peek_word(workspace_word(self.word, head, PW_TIME))
            .unwrap_or(0);
        // Ticks until the head's wake condition (`!after(due, clock)`)
        // first holds; every tick strictly before that is a pure bump.
        let delta = self.word.wrapping_sub(due, self.clock[pri.index()]);
        let ticks_until_due = self.word.to_signed(delta).max(0) as u64;
        Some(pending.min(ticks_until_due.saturating_sub(1)))
    }

    /// Wake every head of a timer queue whose time has been reached.
    fn wake_due_timers(&mut self, pri: Priority, tick_cycle: u64) {
        let head_loc = self.mem.reserved_addr(TPTR_LOC[pri.index()]);
        loop {
            let head = match self.mem.read_word(head_loc) {
                Ok(h) => h,
                Err(_) => return,
            };
            if head == self.magic.not_process {
                return;
            }
            let due = self
                .mem
                .read_word(workspace_word(self.word, head, PW_TIME))
                .unwrap_or(0);
            // Due when clock has reached `due` (timer input stores t+1,
            // so this realises "clock AFTER t").
            let reached = !self.word.after(due, self.clock[pri.index()]);
            if !reached {
                return;
            }
            let next = self
                .mem
                .read_word(workspace_word(self.word, head, PW_TLINK))
                .unwrap_or(self.magic.not_process);
            let _ = self.mem.write_word(head_loc, next);
            self.timer_wake(ProcDesc::new(head, pri), tick_cycle);
        }
    }

    /// Wake a process popped from a timer queue: a plain `timer input`
    /// waiter is scheduled; an alternative is marked ready and scheduled
    /// only if it was waiting (§2.2.2: a timer input may be used as an
    /// alternative guard).
    fn timer_wake(&mut self, p: ProcDesc, ready_at: u64) {
        let state_addr = workspace_word(self.word, p.wptr(), PW_STATE);
        let state = self
            .mem
            .read_word(state_addr)
            .unwrap_or(self.magic.not_process);
        if state == self.magic.waiting {
            let _ = self.mem.write_word(state_addr, self.magic.ready);
            self.schedule(p, ready_at);
        } else if state == self.magic.enabling {
            let _ = self.mem.write_word(state_addr, self.magic.ready);
        } else {
            self.schedule(p, ready_at);
        }
    }

    /// Insert the current process into its priority's timer queue, sorted
    /// by wake-up time, and record the time in its workspace.
    pub(crate) fn timer_insert_current(&mut self, wake_time: u32) -> Result<(), HaltReason> {
        let pri = self.priority();
        self.ws_write(PW_TIME, wake_time)?;
        let me = self.wptr();
        let head_loc = self.mem.reserved_addr(TPTR_LOC[pri.index()]);
        let mut prev: Option<u32> = None;
        let mut cur = self.mem.read_word(head_loc)?;
        while cur != self.magic.not_process {
            let t = self
                .mem
                .read_word(workspace_word(self.word, cur, PW_TIME))?;
            if self.word.after(t, wake_time) {
                break;
            }
            prev = Some(cur);
            cur = self
                .mem
                .read_word(workspace_word(self.word, cur, PW_TLINK))?;
        }
        self.mem
            .write_word(workspace_word(self.word, me, PW_TLINK), cur)?;
        match prev {
            None => self.mem.write_word(head_loc, me)?,
            Some(p) => self
                .mem
                .write_word(workspace_word(self.word, p, PW_TLINK), me)?,
        }
        Ok(())
    }

    /// Remove the current process from its priority's timer queue if it
    /// is linked there (used by `disable timer`, which must cancel the
    /// timeout armed by a timer alternative).
    pub(crate) fn timer_remove_current(&mut self) -> Result<(), HaltReason> {
        let pri = self.priority();
        let me = self.wptr();
        let head_loc = self.mem.reserved_addr(TPTR_LOC[pri.index()]);
        let mut prev: Option<u32> = None;
        let mut cur = self.mem.read_word(head_loc)?;
        while cur != self.magic.not_process {
            let next = self
                .mem
                .read_word(workspace_word(self.word, cur, PW_TLINK))?;
            if cur == me {
                match prev {
                    None => self.mem.write_word(head_loc, next)?,
                    Some(p) => self
                        .mem
                        .write_word(workspace_word(self.word, p, PW_TLINK), next)?,
                }
                return Ok(());
            }
            prev = Some(cur);
            cur = next;
        }
        Ok(())
    }
}
