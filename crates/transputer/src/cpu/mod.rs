//! The transputer processor.
//!
//! Six registers are used in the execution of a sequential process
//! (§3.2.3, Figure 2): the workspace pointer, the instruction pointer,
//! the operand register, and the A, B and C registers forming the
//! evaluation stack. Concurrency is provided by a hardware scheduler
//! (§3.2.4) with two priority levels, each a linked list of process
//! workspaces threaded through memory.

mod boot;
mod decode;
mod exec;
mod io;
mod sched;
#[cfg(test)]
mod tests;
mod translate;

use crate::error::{CpuError, HaltReason};
use crate::linkif::{LinkIn, LinkOut, LINK_COUNT};
use crate::memory::{Memory, MemoryConfig, TPTR_LOC};
use crate::process::{workspace_word, Magic, Priority, ProcDesc, PW_IPTR};
use crate::stats::Stats;
use crate::timing;
use crate::word::WordLength;

/// Configuration of one emulated transputer.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Machine word length: the T424 is 32-bit, the T222 16-bit (§3.1).
    pub word: WordLength,
    /// Memory sizing and off-chip penalty.
    pub memory: MemoryConfig,
    /// Whether the error flag halts the processor (HaltOnError mode).
    pub halt_on_error: bool,
    /// Processor cycle time in nanoseconds (50 ns at the nominal 20 MHz).
    pub cycle_ns: u64,
    /// Low-priority timeslice period in cycles. Low-priority processes
    /// yield at jump and loop-end instructions once this has elapsed.
    pub timeslice_cycles: u64,
    /// Use the host-side predecoded instruction cache. Pure emulator
    /// optimisation: simulated timing, results and statistics are
    /// bit-identical either way (only the `decode_*` host counters in
    /// [`Stats`] differ). On by default; switchable off for differential
    /// testing.
    pub decode_cache: bool,
    /// Translate hot basic blocks to threaded code (see
    /// `cpu/translate.rs`). Also a pure host optimisation (only the
    /// `trans_*` counters differ); requires the decode cache. On by
    /// default; the `TRANSLATE=off` environment hook force-disables it
    /// for differential CI legs.
    pub translate: bool,
    /// Leader arrivals before a basic block is translated.
    pub translate_threshold: u32,
}

/// Process the `TRANSLATE` environment hook once: `off`, `0` or
/// `false` force-disables the translation tier for every
/// default-configured processor (the CI differential leg).
fn translate_env_default() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        !matches!(
            std::env::var("TRANSLATE").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

impl CpuConfig {
    /// The T424: 32-bit, 4K bytes on chip (§3.1), extended here with
    /// external RAM for program development.
    pub fn t424() -> CpuConfig {
        CpuConfig {
            word: WordLength::Bits32,
            memory: MemoryConfig::default(),
            halt_on_error: false,
            cycle_ns: timing::CYCLE_NS,
            timeslice_cycles: 2 * timing::LO_TICK_CYCLES,
            decode_cache: true,
            translate: translate_env_default(),
            translate_threshold: 2,
        }
    }

    /// The T222: the 16-bit part "providing similar facilities" (§3.1).
    pub fn t222() -> CpuConfig {
        CpuConfig {
            word: WordLength::Bits16,
            ..CpuConfig::t424()
        }
    }

    /// Select halt-on-error mode.
    pub fn with_halt_on_error(mut self, on: bool) -> CpuConfig {
        self.halt_on_error = on;
        self
    }

    /// Replace the memory configuration.
    pub fn with_memory(mut self, memory: MemoryConfig) -> CpuConfig {
        self.memory = memory;
        self
    }

    /// Enable or disable the predecoded instruction cache.
    pub fn with_decode_cache(mut self, on: bool) -> CpuConfig {
        self.decode_cache = on;
        self
    }

    /// Enable or disable the threaded-code translation tier.
    pub fn with_translate(mut self, on: bool) -> CpuConfig {
        self.translate = on;
        self
    }

    /// Leader arrivals before a block is translated (tests use `1` to
    /// translate immediately).
    pub fn with_translate_threshold(mut self, threshold: u32) -> CpuConfig {
        self.translate_threshold = threshold;
        self
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::t424()
    }
}

/// Saved context of a low-priority process interrupted by a high-priority
/// one. On the hardware these live in shadow registers; keeping them off
/// the ordinary save path is what makes the ordinary context switch touch
/// "only the instruction pointer and the workspace pointer" (§3.2.4).
#[derive(Debug, Clone)]
pub(crate) struct Shadow {
    pub wdesc: u32,
    pub iptr: u32,
    pub op_start: u32,
    pub areg: u32,
    pub breg: u32,
    pub creg: u32,
    pub oreg: u32,
    pub op_len: u32,
    pub resume: Option<Resume>,
}

/// Mid-instruction state of an interruptible long instruction. The paper:
/// "the instructions which may take a long time to execute have been
/// implemented to allow a switch during execution" (§3.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resume {
    /// A block copy in progress (message transfer or `move`).
    BlockCopy {
        src: u32,
        dst: u32,
        remaining: u32,
        /// Process to wake when the copy completes (the other party of a
        /// communication), if any.
        wake: Option<ProcDesc>,
    },
    /// Remaining stall cycles of a long pure operation whose result has
    /// already been committed (normalise, long shifts).
    Stall { remaining: u32 },
}

/// Result of a single emulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Executed work costing this many processor cycles.
    Ran { cycles: u32 },
    /// No process is runnable; the processor is waiting for a timer,
    /// a link, or an event.
    Idle,
    /// The processor has halted.
    Halted(HaltReason),
}

/// Why [`Cpu::run_slice`] stopped executing. Every variant except
/// [`SliceOutcome::BudgetExpired`] is an *interaction point*: a state
/// change the outside world (the wires of a network simulation) must
/// observe before the processor may continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceOutcome {
    /// A link output channel has a byte ready for the wire to take.
    TxReady,
    /// A process began waiting for external input on a link.
    RxWait,
    /// A deferred link acknowledge was raised and must reach the wire.
    AckRaised,
    /// Nothing is runnable; the processor is waiting for a timer, a
    /// link, or an event.
    Idle,
    /// The processor halted.
    Halted(HaltReason),
    /// A high-priority process preempted the running low-priority one.
    Preempted,
    /// The cycle budget expired without reaching an interaction point.
    BudgetExpired,
}

/// Outcome of [`Cpu::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed the halt extension.
    Halted(HaltReason),
    /// No process is runnable and no timer can ever wake one: with no
    /// external links attached this is a deadlock.
    Deadlock,
}

/// One emulated transputer.
///
/// # Examples
///
/// Running a tiny hand-assembled program that adds two constants:
///
/// ```
/// use transputer::{Cpu, CpuConfig};
/// use transputer::instr::{encode, encode_op, Direct, Op};
///
/// let mut code = Vec::new();
/// code.extend(encode(Direct::LoadConstant, 5));
/// code.extend(encode(Direct::AddConstant, 7));
/// code.extend(encode_op(Op::HaltSimulation));
///
/// let mut cpu = Cpu::new(CpuConfig::t424());
/// cpu.load_boot_program(&code)?;
/// cpu.run(10_000)?;
/// assert_eq!(cpu.areg(), 12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    pub(crate) word: WordLength,
    pub(crate) magic: Magic,
    pub(crate) mem: Memory,

    // Current process registers (Figure 2).
    pub(crate) wdesc: u32,
    pub(crate) iptr: u32,
    pub(crate) areg: u32,
    pub(crate) breg: u32,
    pub(crate) creg: u32,
    pub(crate) oreg: u32,
    /// Bytes of the operation decoded so far (prefix chain length).
    pub(crate) op_len: u32,

    // Scheduler queue registers, per priority (Figure 3).
    pub(crate) fptr: [u32; 2],
    pub(crate) bptr: [u32; 2],

    pub(crate) shadow: Option<Shadow>,
    /// Cycle at which the earliest still-pending high-priority wake
    /// occurred (for the §3.2.4 latency measurement).
    pub(crate) hi_ready_at: Option<u64>,
    pub(crate) resume: Option<Resume>,

    // Timers (§2.2.2): one clock per priority.
    pub(crate) clock: [u32; 2],
    pub(crate) next_tick: [u64; 2],
    pub(crate) timers_running: bool,

    // Links.
    pub(crate) link_out: [LinkOut; LINK_COUNT],
    pub(crate) link_in: [LinkIn; LINK_COUNT],
    pub(crate) event_waiting: Option<ProcDesc>,
    pub(crate) event_pending: bool,

    pub(crate) error: bool,
    pub(crate) halt_on_error: bool,
    pub(crate) halted: Option<HaltReason>,
    pub(crate) boot: boot::BootState,
    pub(crate) trace: Option<crate::trace::TraceRing>,
    /// First byte address of the operation being decoded.
    pub(crate) op_start: u32,
    /// A completed operation awaiting trace recording.
    pub(crate) pending_trace: Option<(crate::instr::Direct, u32)>,

    pub(crate) cycles: u64,
    pub(crate) cycle_ns: u64,
    pub(crate) timeslice_cycles: u64,
    pub(crate) last_dispatch: u64,
    pub(crate) stats: Stats,

    /// The predecoded instruction cache (host-side; see `cpu/decode.rs`).
    pub(crate) dcache: decode::DecodeCache,
    /// The threaded-code translation cache (see `cpu/translate.rs`).
    pub(crate) tcache: translate::TransCache,
    /// Whether `run_slice` may enter the fused fast loop at all:
    /// the cache is enabled and reserved-word reads carry no penalty
    /// (so timer-queue head checks are timing-free).
    pub(crate) decode_fast_ok: bool,
    /// Whether `run_slice` may enter the translated loop: translation
    /// is enabled and the fused loop's own preconditions hold.
    pub(crate) translate_ok: bool,
    /// Leader arrivals before a block is translated.
    pub(crate) translate_threshold: u32,
    /// Whether reserved-word reads are penalty-free (cached from the
    /// memory configuration for the tick fast path).
    pub(crate) reserved_free: bool,
    /// Cached per-priority "timer queue head is NotProcess" flags,
    /// refreshed from memory whenever a write lands in the reserved
    /// words (see [`Cpu::refresh_timer_heads`]).
    pub(crate) timer_head_empty: [bool; 2],

    /// Interaction point reached by the instruction just executed; taken
    /// by [`Cpu::run_slice`] to end the slice.
    pub(crate) slice_exit: Option<SliceOutcome>,
    /// Wire-visible link state has changed since the flag was last taken.
    pub(crate) links_dirty: bool,
    /// Cycle at which the instruction that ended the last slice began.
    pub(crate) slice_mark: u64,
}

impl Cpu {
    /// Create a transputer in the reset state: no process running, error
    /// flag clear, clocks at zero and running, all channels empty.
    pub fn new(config: CpuConfig) -> Cpu {
        let word = config.word;
        let magic = Magic::new(word);
        let mut mem = Memory::new(word, config.memory);
        // Reserved channel words and timer queue heads start empty.
        for w in 0..crate::memory::RESERVED_WORDS {
            let addr = mem.reserved_addr(w);
            mem.write_word(addr, magic.not_process)
                .expect("reserved words in range");
        }
        let reserved_free = mem.reserved_reads_free();
        let decode_fast_ok = config.decode_cache && reserved_free;
        let translate_ok = config.translate && decode_fast_ok;
        Cpu {
            word,
            magic,
            mem,
            wdesc: magic.not_process,
            iptr: 0,
            areg: 0,
            breg: 0,
            creg: 0,
            oreg: 0,
            op_len: 0,
            fptr: [magic.not_process; 2],
            bptr: [magic.not_process; 2],
            shadow: None,
            hi_ready_at: None,
            resume: None,
            clock: [0; 2],
            next_tick: [timing::HI_TICK_CYCLES, timing::LO_TICK_CYCLES],
            timers_running: true,
            link_out: Default::default(),
            link_in: Default::default(),
            event_waiting: None,
            event_pending: false,
            error: false,
            halt_on_error: config.halt_on_error,
            halted: None,
            boot: boot::BootState::Done,
            trace: None,
            op_start: 0,
            pending_trace: None,
            cycles: 0,
            cycle_ns: config.cycle_ns,
            timeslice_cycles: config.timeslice_cycles,
            last_dispatch: 0,
            stats: Stats::default(),
            dcache: decode::DecodeCache::new(),
            tcache: translate::TransCache::default(),
            decode_fast_ok,
            translate_ok,
            translate_threshold: config.translate_threshold.max(1),
            reserved_free,
            timer_head_empty: [false; 2],
            slice_exit: None,
            links_dirty: false,
            slice_mark: 0,
        }
    }

    /// The word length of this part.
    pub fn word_length(&self) -> WordLength {
        self.word
    }

    /// The memory (for loading programs and inspecting results).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// A register (top of the evaluation stack).
    pub fn areg(&self) -> u32 {
        self.areg
    }

    /// B register.
    pub fn breg(&self) -> u32 {
        self.breg
    }

    /// C register.
    pub fn creg(&self) -> u32 {
        self.creg
    }

    /// Operand register.
    pub fn oreg(&self) -> u32 {
        self.oreg
    }

    /// Instruction pointer of the current process.
    pub fn iptr(&self) -> u32 {
        self.iptr
    }

    /// Workspace pointer of the current process.
    pub fn wptr(&self) -> u32 {
        ProcDesc(self.wdesc).wptr()
    }

    /// Priority of the current process.
    pub fn priority(&self) -> Priority {
        ProcDesc(self.wdesc).priority()
    }

    /// Whether any process is currently executing.
    pub fn has_current_process(&self) -> bool {
        self.wdesc != self.magic.not_process
    }

    /// The error flag.
    pub fn error_flag(&self) -> bool {
        self.error
    }

    /// Elapsed processor cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Elapsed simulated time in nanoseconds.
    pub fn time_ns(&self) -> u64 {
        self.cycles * self.cycle_ns
    }

    /// The clock of a priority (§2.2.2: "each timer being implemented as
    /// an incrementing clock").
    pub fn clock_value(&self, pri: Priority) -> u32 {
        self.clock_now(pri)
    }

    /// Execution statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reset the statistics counters (the cycle counter is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
    }

    /// Why the processor halted, if it has.
    pub fn halt_reason(&self) -> Option<HaltReason> {
        self.halted
    }

    /// Record the most recent `capacity` operations for debugging.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::TraceRing::new(capacity));
    }

    /// Stop tracing and drop the ring.
    pub fn disable_trace(&mut self) {
        self.trace = None;
    }

    /// The trace ring, if tracing is enabled.
    pub fn trace(&self) -> Option<&crate::trace::TraceRing> {
        self.trace.as_ref()
    }

    /// Load raw bytes into memory (no timing effects).
    ///
    /// # Errors
    ///
    /// Fails if the bytes do not fit in memory.
    pub fn load(&mut self, addr: u32, bytes: &[u8]) -> Result<(), CpuError> {
        self.mem
            .load(addr, bytes)
            .map_err(|_| CpuError::AddressOutOfRange { address: addr })
    }

    /// Load a program at the first user address and start a single
    /// low-priority process with its workspace at the top of memory.
    ///
    /// # Errors
    ///
    /// Fails if the program does not fit.
    pub fn load_boot_program(&mut self, code: &[u8]) -> Result<(), CpuError> {
        let entry = self.mem.mem_start();
        if code.len() as u32 > self.mem.size() {
            return Err(CpuError::ProgramTooLarge {
                program: code.len(),
                memory: self.mem.size() as usize,
            });
        }
        self.load(entry, code)?;
        let wptr = self.default_boot_workspace();
        self.spawn(wptr, entry, Priority::Low);
        Ok(())
    }

    /// The workspace address `load_boot_program` uses: 64 words below the
    /// top of memory, leaving headroom for locals above and call frames
    /// below.
    pub fn default_boot_workspace(&self) -> u32 {
        let top = self.mem.limit();
        self.word
            .align_word(top.wrapping_sub(64 * self.word.bytes_per_word()))
    }

    /// Create a process: store its instruction pointer in its workspace
    /// and put it on the scheduling list.
    pub fn spawn(&mut self, wptr: u32, iptr: u32, pri: Priority) {
        let w = workspace_word(self.word, wptr, PW_IPTR);
        self.mem.write_word(w, iptr).expect("workspace in range");
        let now = self.cycles;
        self.schedule(ProcDesc::new(wptr, pri), now);
    }

    /// Pulse the external event pin: completes a waiting `in` on the
    /// event channel, or latches for the next one.
    pub fn raise_event(&mut self) {
        if let Some(p) = self.event_waiting.take() {
            let now = self.cycles;
            self.schedule(p, now);
        } else {
            self.event_pending = true;
        }
    }

    /// Address of a link channel word: `link` in 0..4.
    pub fn link_channel_addr(&self, link: u32, output: bool) -> u32 {
        let base = if output {
            crate::memory::LINK_OUT_BASE
        } else {
            crate::memory::LINK_IN_BASE
        };
        self.mem.reserved_addr(base + link)
    }

    /// Address of the event channel word.
    pub fn event_channel_addr(&self) -> u32 {
        self.mem.reserved_addr(crate::memory::EVENT_CHANNEL)
    }

    /// Read a word of memory without timing effects or mutation —
    /// usable from `&self` observers such as simulation predicates.
    ///
    /// # Errors
    ///
    /// Fails if the address is outside memory.
    pub fn inspect_word(&self, addr: u32) -> Result<u32, CpuError> {
        self.mem
            .peek_word(addr)
            .map_err(|_| CpuError::AddressOutOfRange { address: addr })
    }

    /// Read a word of memory without timing effects.
    ///
    /// # Errors
    ///
    /// Fails if the address is outside memory.
    pub fn peek_word(&mut self, addr: u32) -> Result<u32, CpuError> {
        self.mem
            .read_word(addr)
            .map_err(|_| CpuError::AddressOutOfRange { address: addr })
    }

    /// Write a word of memory without timing effects.
    ///
    /// # Errors
    ///
    /// Fails if the address is outside memory.
    pub fn poke_word(&mut self, addr: u32, value: u32) -> Result<(), CpuError> {
        self.mem
            .write_word(addr, value)
            .map_err(|_| CpuError::AddressOutOfRange { address: addr })
    }

    /// Whether the processor has nothing to run right now.
    pub fn is_idle(&self) -> bool {
        self.halted.is_none()
            && !self.has_current_process()
            && self.fptr[0] == self.magic.not_process
            && self.fptr[1] == self.magic.not_process
            && self.shadow.is_none()
    }

    /// The absolute cycle at which the earliest timer-queue entry is due,
    /// if any. Used to fast-forward an idle processor.
    pub fn next_timer_wake_cycle(&mut self) -> Option<u64> {
        if !self.timers_running {
            return None;
        }
        // Catch a timer head poked into place since the last advance
        // (materialises any lazily elided ticks of that priority, so
        // the clock/next_tick arithmetic below is exact).
        self.refresh_timer_heads();
        let mut best: Option<u64> = None;
        for pri in [Priority::High, Priority::Low] {
            let head_addr = self.mem.reserved_addr(TPTR_LOC[pri.index()]);
            let head = match self.mem.read_word(head_addr) {
                Ok(h) => h,
                Err(_) => continue,
            };
            if head == self.magic.not_process {
                continue;
            }
            let time_addr = workspace_word(self.word, head, crate::process::PW_TIME);
            let due = match self.mem.read_word(time_addr) {
                Ok(t) => t,
                Err(_) => continue,
            };
            // Ticks until clock reaches `due`, given current clock value.
            let delta = self.word.wrapping_sub(due, self.clock[pri.index()]);
            let ticks = self.word.to_signed(delta).max(0) as u64;
            let period = match pri {
                Priority::High => timing::HI_TICK_CYCLES,
                Priority::Low => timing::LO_TICK_CYCLES,
            };
            let tick_idx = if ticks == 0 { 0 } else { ticks - 1 };
            let cycle = self.next_tick[pri.index()] + tick_idx * period;
            best = Some(best.map_or(cycle, |b: u64| b.min(cycle)));
        }
        best
    }

    /// Advance an idle processor's clock to an absolute cycle, waking any
    /// timer waits that come due. The gap may exceed `u32::MAX` cycles
    /// (e.g. a lone process sleeping for minutes of simulated time).
    pub fn advance_idle_to(&mut self, cycle: u64) {
        if cycle > self.cycles {
            self.advance_time64(cycle - self.cycles);
        }
    }

    /// Execute one micro-step: a preemption, an instruction, or a chunk
    /// of an interruptible long instruction.
    pub fn step(&mut self) -> StepEvent {
        if let Some(r) = self.halted {
            return StepEvent::Halted(r);
        }
        self.slice_exit = None;
        let before = self.cycles;
        if !self.has_current_process() && !self.dispatch_next() {
            return StepEvent::Idle;
        }
        if self.has_current_process() {
            if self.priority() == Priority::Low && self.fptr[0] != self.magic.not_process {
                // Low→high preemption at a micro-step boundary (§3.2.4).
                self.preempt_to_high();
            } else {
                let cycles = match self.resume {
                    Some(_) => self.continue_resume(),
                    None => self.exec_one(),
                };
                match cycles {
                    Ok(c) => {
                        let c = c + self.mem.take_penalty_cycles();
                        self.advance_time(c);
                    }
                    Err(reason) => {
                        self.halted = Some(reason);
                        return StepEvent::Halted(reason);
                    }
                }
            }
        }
        self.record_pending_trace();
        if let Some(r) = self.halted {
            return StepEvent::Halted(r);
        }
        StepEvent::Ran {
            cycles: (self.cycles - before) as u32,
        }
    }

    /// Execute instructions inline until an interaction point is reached
    /// or `cycle_budget` cycles have elapsed. Instructions execute in the
    /// exact micro-step sequence [`Cpu::step`] would produce: an
    /// instruction runs iff it *starts* strictly before
    /// `cycles() + cycle_budget`, and at least one micro-step executes
    /// even with a zero budget (matching the event-driven engine's
    /// behaviour for nodes scheduled at identical times).
    ///
    /// On an interaction exit, [`Cpu::slice_interaction_cycle`] reports
    /// the cycle at which the interacting instruction *began* — the time
    /// the per-instruction engine would have observed the interaction.
    pub fn run_slice(&mut self, cycle_budget: u64) -> SliceOutcome {
        if let Some(r) = self.halted {
            return SliceOutcome::Halted(r);
        }
        let limit = self.cycles.saturating_add(cycle_budget);
        loop {
            self.slice_mark = self.cycles;
            if !self.has_current_process() && !self.dispatch_next() {
                return SliceOutcome::Idle;
            }
            if self.priority() == Priority::Low && self.fptr[0] != self.magic.not_process {
                self.preempt_to_high();
                return SliceOutcome::Preempted;
            }
            // Fast path: at an operation boundary, execute predecoded
            // fused operations back to back (see `cpu/decode.rs`), or —
            // when the translation tier is on and tracing is off — hot
            // translated blocks (see `cpu/translate.rs`). Falls through
            // to the byte-at-a-time micro-step whenever it cannot make
            // progress, which guarantees the loop never spins.
            if self.decode_fast_ok && self.resume.is_none() && self.op_len == 0 {
                let ran = if self.translate_ok && self.trace.is_none() {
                    self.run_translated(limit)
                } else {
                    self.run_decoded(limit)
                };
                match ran {
                    (_, Some(outcome)) => return outcome,
                    (true, None) => continue,
                    (false, None) => {}
                }
            }
            let cycles = match self.resume {
                Some(_) => self.continue_resume(),
                None => self.exec_one(),
            };
            match cycles {
                Ok(c) => {
                    let c = c + self.mem.take_penalty_cycles();
                    self.advance_time(c);
                }
                Err(reason) => {
                    self.halted = Some(reason);
                    return SliceOutcome::Halted(reason);
                }
            }
            self.record_pending_trace();
            if let Some(r) = self.halted {
                return SliceOutcome::Halted(r);
            }
            if let Some(exit) = self.slice_exit.take() {
                return exit;
            }
            if self.cycles >= limit {
                return SliceOutcome::BudgetExpired;
            }
        }
    }

    /// The cycle at which the instruction that ended the last slice began
    /// executing. Only meaningful directly after [`Cpu::run_slice`]
    /// returned an interaction outcome.
    pub fn slice_interaction_cycle(&self) -> u64 {
        self.slice_mark
    }

    /// Take the dirty-link flag: whether any wire-visible link state
    /// (output transfer, deferred acknowledge, ALT guard on a link)
    /// changed since the flag was last taken. When false, a caller
    /// driving the links can skip scanning the four ports entirely.
    pub fn take_links_dirty(&mut self) -> bool {
        std::mem::take(&mut self.links_dirty)
    }

    /// Processor cycle time in nanoseconds.
    pub fn cycle_time_ns(&self) -> u64 {
        self.cycle_ns
    }

    fn record_pending_trace(&mut self) {
        if let Some((fun, operand)) = self.pending_trace.take() {
            if let Some(ring) = self.trace.as_mut() {
                let op = if fun == crate::instr::Direct::Operate {
                    crate::instr::Op::from_code(operand)
                } else {
                    None
                };
                ring.push(crate::trace::TraceEntry {
                    cycle: self.cycles,
                    iptr: self.op_start,
                    wdesc: self.wdesc,
                    fun,
                    operand,
                    op,
                    areg: self.areg,
                });
            }
        }
    }

    /// Run until the program halts, a deadlock is reached, or the cycle
    /// budget expires. Idle periods fast-forward to the next timer wake.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::CycleBudgetExhausted`] if the budget runs out.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunOutcome, CpuError> {
        let limit = self.cycles.saturating_add(max_cycles);
        loop {
            if self.cycles >= limit {
                return Err(CpuError::CycleBudgetExhausted { budget: max_cycles });
            }
            match self.step() {
                StepEvent::Ran { .. } => {}
                StepEvent::Halted(r) => return Ok(RunOutcome::Halted(r)),
                StepEvent::Idle => match self.next_timer_wake_cycle() {
                    Some(c) => self.advance_idle_to(c.max(self.cycles + 1)),
                    None => return Ok(RunOutcome::Deadlock),
                },
            }
        }
    }

    /// [`Cpu::run`], but batched: executes via [`Cpu::run_slice`] instead
    /// of one [`Cpu::step`] per micro-step. For a standalone processor
    /// (no wires attached) link interaction points simply continue, and
    /// the instruction sequence — hence every cycle count and result —
    /// is identical to [`Cpu::run`].
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::CycleBudgetExhausted`] if the budget runs out.
    pub fn run_batched(&mut self, max_cycles: u64) -> Result<RunOutcome, CpuError> {
        let limit = self.cycles.saturating_add(max_cycles);
        loop {
            if self.cycles >= limit {
                return Err(CpuError::CycleBudgetExhausted { budget: max_cycles });
            }
            match self.run_slice(limit - self.cycles) {
                SliceOutcome::Halted(r) => return Ok(RunOutcome::Halted(r)),
                SliceOutcome::Idle => match self.next_timer_wake_cycle() {
                    Some(c) => self.advance_idle_to(c.max(self.cycles + 1)),
                    None => return Ok(RunOutcome::Deadlock),
                },
                _ => {}
            }
        }
    }

    /// Run, treating anything other than a clean [`HaltReason::Stopped`]
    /// as a test failure. Convenience for tests and examples.
    ///
    /// # Errors
    ///
    /// Propagates budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics on deadlock or an error halt, which in tests indicates a
    /// codegen or emulator bug.
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Result<(), CpuError> {
        match self.run(max_cycles)? {
            RunOutcome::Halted(HaltReason::Stopped) => Ok(()),
            other => panic!("program did not halt cleanly: {other:?}"),
        }
    }
}
