//! Boot from link.
//!
//! Real transputers power up with no code in RAM: "transputers can be
//! interconnected just as easily as TTL gates" (§2.3.1) extends to
//! bootstrapping — a blank part listens on its links, takes the first
//! byte received as a length, loads that many bytes at the first user
//! address, and starts executing them. A network can thus be loaded
//! entirely through the wiring, from a single host, with the first-stage
//! program free to pull in a larger second stage itself.
//!
//! The boot ROM behaviour is modelled natively (it is hardwired logic,
//! not I1 code).

use super::Cpu;
use crate::process::Priority;

/// Progress of a boot sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BootState {
    /// Waiting for the length byte on any link.
    AwaitLength,
    /// Receiving `remaining` code bytes, next one to `addr`; the boot is
    /// committed to the link it started on.
    Loading {
        link: usize,
        addr: u32,
        remaining: u32,
    },
    /// Boot complete (or the part was never in boot mode).
    Done,
}

impl Cpu {
    /// Put a (blank) transputer into boot-from-link mode: the next byte
    /// arriving on any link is a code length `1..=255`, followed by that
    /// many bytes of position-independent code, loaded at the first user
    /// address and started as a low-priority process. The boot workspace
    /// is placed at [`Cpu::default_boot_workspace`].
    pub fn await_boot_from_link(&mut self) {
        self.boot = BootState::AwaitLength;
    }

    /// Whether the part is still waiting for (some of) its boot image.
    pub fn is_booting(&self) -> bool {
        self.boot != BootState::Done
    }

    /// Whether the boot logic would consume a byte arriving on `link`
    /// right now (the early-acknowledge condition during boot).
    pub(crate) fn boot_will_consume(&self, link: usize) -> bool {
        match self.boot {
            BootState::Done => false,
            BootState::AwaitLength => true,
            BootState::Loading { link: l, .. } => l == link,
        }
    }

    /// Intercept a received byte while booting. Returns `true` when the
    /// byte was consumed by the boot logic (and should be acknowledged).
    pub(crate) fn boot_rx(&mut self, link: usize, byte: u8) -> bool {
        match self.boot {
            BootState::Done => false,
            BootState::AwaitLength => {
                if byte == 0 {
                    // A zero control byte is reserved (the real parts use
                    // 0/1 for peek/poke); treat as ignored.
                    return true;
                }
                self.boot = BootState::Loading {
                    link,
                    addr: self.mem.mem_start(),
                    remaining: u32::from(byte),
                };
                true
            }
            BootState::Loading {
                link: l,
                addr,
                remaining,
            } => {
                if l != link {
                    // Bytes on other links wait in their buffers until
                    // a program is running; refuse them for now.
                    return false;
                }
                if self.mem.write_byte(addr, byte).is_err() {
                    self.halted = Some(crate::error::HaltReason::MemoryFault { address: addr });
                    self.boot = BootState::Done;
                    return true;
                }
                let remaining = remaining - 1;
                if remaining == 0 {
                    self.boot = BootState::Done;
                    let entry = self.mem.mem_start();
                    let wptr = self.default_boot_workspace();
                    self.spawn(wptr, entry, Priority::Low);
                } else {
                    self.boot = BootState::Loading {
                        link,
                        addr: addr.wrapping_add(1),
                        remaining,
                    };
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuConfig;
    use crate::instr::{encode, encode_op, Direct, Op};

    #[test]
    fn boots_from_delivered_bytes() {
        let mut cpu = Cpu::new(CpuConfig::t424());
        cpu.await_boot_from_link();
        assert!(cpu.is_booting());
        let mut image = Vec::new();
        image.extend(encode(Direct::LoadConstant, 7));
        image.extend(encode(Direct::AddConstant, 2));
        image.extend(encode_op(Op::HaltSimulation));
        assert!(image.len() < 256);
        // Feed through the link-receive path, as the wire would.
        assert!(cpu.link_rx_deliver(1, image.len() as u8));
        for b in &image {
            assert!(cpu.link_rx_deliver(1, *b));
        }
        assert!(!cpu.is_booting());
        cpu.run(10_000).expect("runs");
        assert_eq!(cpu.areg(), 9);
    }

    #[test]
    fn zero_control_byte_is_ignored() {
        let mut cpu = Cpu::new(CpuConfig::t424());
        cpu.await_boot_from_link();
        cpu.link_rx_deliver(0, 0);
        assert!(cpu.is_booting());
        cpu.link_rx_deliver(0, 2);
        cpu.link_rx_deliver(0, 0x41);
        cpu.link_rx_deliver(0, 0x42);
        assert!(!cpu.is_booting());
    }

    #[test]
    fn boot_commits_to_one_link() {
        let mut cpu = Cpu::new(CpuConfig::t424());
        cpu.await_boot_from_link();
        assert!(cpu.link_rx_deliver(2, 2), "length byte on link 2");
        // A byte on a different link is buffered, not consumed by boot.
        assert!(!cpu.link_rx_deliver(0, 0x99));
        assert!(cpu.is_booting());
        cpu.link_rx_deliver(2, 0x41);
        cpu.link_rx_deliver(2, 0x42);
        assert!(!cpu.is_booting());
        // The stray byte is waiting in link 0's buffer for the program.
        assert!(cpu.link_input_buffered(0));
    }

    #[test]
    fn non_booting_cpu_ignores_boot_path() {
        let mut cpu = Cpu::new(CpuConfig::t424());
        assert!(!cpu.is_booting());
        // Ordinary delivery goes to the link buffer.
        cpu.link_rx_deliver(0, 5);
        assert!(cpu.link_input_buffered(0));
    }
}
