//! Channel input/output (§3.2.10) and the processor side of link traffic.
//!
//! "The *input message* and *output message* instructions use the address
//! of a channel to determine whether the channel is internal or external.
//! This means that the same instruction sequence can be used for both,
//! allowing a process to be written and compiled without knowledge of
//! where its channels are connected."

use super::{Cpu, Resume, SliceOutcome};
use crate::error::HaltReason;
use crate::linkif::{AckCheck, RxOutcome, SeqCheck, Transfer};
use crate::process::{workspace_word, ProcDesc, PW_IPTR, PW_STATE};
use crate::timing;

/// Maximum words copied per micro-step of a block transfer, keeping every
/// non-interruptible stretch within the §3.2.4 latency budget.
const COPY_CHUNK_WORDS: u32 = 16;

/// Maximum stall cycles burned per micro-step of a long pure operation.
const STALL_CHUNK: u32 = 8;

impl Cpu {
    /// Execute `output message`: A = byte count, B = channel address,
    /// C = source pointer. Returns cycles.
    pub(crate) fn op_out(&mut self) -> Result<u32, HaltReason> {
        let count = self.areg;
        let chan = self.breg;
        let src = self.creg;
        self.pop3();
        if let Some((link, is_out)) = self.mem.external_channel_id(chan) {
            return self.external_out(link, is_out, src, count);
        }
        let w = self.mem.read_word(chan)?;
        if w == self.magic.not_process {
            // First at the rendezvous: enrol and wait (§3.2.10).
            self.mem.write_word(chan, self.wdesc)?;
            self.ws_write(PW_STATE, src)?;
            self.block_current()?;
            return Ok(timing::COMM_FIRST_PARTY);
        }
        let partner = ProcDesc(w);
        let pstate_addr = workspace_word(self.word, partner.wptr(), PW_STATE);
        let pstate = self.mem.read_word(pstate_addr)?;
        if self.magic.is_alt_state(pstate) {
            // The partner is an alternative construct: mark its guard
            // ready; the data moves when the selected branch inputs.
            self.mem.write_word(chan, self.wdesc)?;
            self.ws_write(PW_STATE, src)?;
            self.mem.write_word(pstate_addr, self.magic.ready)?;
            self.block_current()?;
            if pstate == self.magic.waiting {
                let now = self.cycles;
                self.schedule(partner, now);
            }
            return Ok(timing::COMM_FIRST_PARTY);
        }
        // The partner arrived first and is waiting to input: copy.
        let dst = pstate;
        self.mem.write_word(chan, self.magic.not_process)?;
        self.stats.messages += 1;
        self.stats.message_bytes += u64::from(count);
        self.begin_copy(src, dst, count, Some(partner));
        let upfront = timing::comm_second_party_cycles(count, self.word)
            - timing::copy_cycles(count, self.word);
        Ok(upfront)
    }

    /// Execute `input message`: A = byte count, B = channel address,
    /// C = destination pointer.
    pub(crate) fn op_in(&mut self) -> Result<u32, HaltReason> {
        let count = self.areg;
        let chan = self.breg;
        let dst = self.creg;
        self.pop3();
        if let Some((link, is_out)) = self.mem.external_channel_id(chan) {
            return self.external_in(link, is_out, dst, count);
        }
        let w = self.mem.read_word(chan)?;
        if w == self.magic.not_process {
            self.mem.write_word(chan, self.wdesc)?;
            self.ws_write(PW_STATE, dst)?;
            self.block_current()?;
            return Ok(timing::COMM_FIRST_PARTY);
        }
        // An outputter is waiting: its source pointer is in its state word.
        let partner = ProcDesc(w);
        let src = self
            .mem
            .read_word(workspace_word(self.word, partner.wptr(), PW_STATE))?;
        self.mem.write_word(chan, self.magic.not_process)?;
        self.stats.messages += 1;
        self.stats.message_bytes += u64::from(count);
        self.begin_copy(src, dst, count, Some(partner));
        let upfront = timing::comm_second_party_cycles(count, self.word)
            - timing::copy_cycles(count, self.word);
        Ok(upfront)
    }

    /// Start (or trivially complete) a block copy as an interruptible
    /// instruction.
    pub(crate) fn begin_copy(&mut self, src: u32, dst: u32, bytes: u32, wake: Option<ProcDesc>) {
        if bytes == 0 {
            if let Some(p) = wake {
                let now = self.cycles;
                self.schedule(p, now);
            }
            return;
        }
        self.resume = Some(Resume::BlockCopy {
            src,
            dst,
            remaining: bytes,
            wake,
        });
    }

    /// Continue an interruptible instruction; returns cycles consumed by
    /// this micro-step.
    pub(crate) fn continue_resume(&mut self) -> Result<u32, HaltReason> {
        match self.resume.take() {
            None => Ok(0),
            Some(Resume::Stall { remaining }) => {
                let burn = remaining.min(STALL_CHUNK);
                if remaining > burn {
                    self.resume = Some(Resume::Stall {
                        remaining: remaining - burn,
                    });
                }
                Ok(burn)
            }
            Some(Resume::BlockCopy {
                mut src,
                mut dst,
                mut remaining,
                wake,
            }) => {
                let bpw = self.word.bytes_per_word();
                let chunk_bytes = (COPY_CHUNK_WORDS * bpw).min(remaining);
                for _ in 0..chunk_bytes {
                    let b = self.mem.read_byte(src)?;
                    self.mem.write_byte(dst, b)?;
                    src = self.word.mask(src.wrapping_add(1));
                    dst = self.word.mask(dst.wrapping_add(1));
                }
                remaining -= chunk_bytes;
                // One cycle per word moved (§3.2.10's 8n/wordlength term).
                let cycles = timing::copy_cycles(chunk_bytes, self.word).max(1);
                if remaining == 0 {
                    if let Some(p) = wake {
                        let now = self.cycles;
                        self.schedule(p, now);
                    }
                } else {
                    self.resume = Some(Resume::BlockCopy {
                        src,
                        dst,
                        remaining,
                        wake,
                    });
                }
                Ok(cycles)
            }
        }
    }

    /// Commit a long pure operation: its effect has been applied; burn
    /// the remaining cycles interruptibly if they exceed the latency
    /// budget chunk.
    pub(crate) fn stall(&mut self, total_cycles: u32) -> u32 {
        if total_cycles > timing::MAX_UNINTERRUPTIBLE {
            let now = total_cycles.min(STALL_CHUNK);
            self.resume = Some(Resume::Stall {
                remaining: total_cycles - now,
            });
            now
        } else {
            total_cycles
        }
    }

    /// `output message` on an external channel: hand the transfer to the
    /// link interface and deschedule (§2.3: the sending process proceeds
    /// only after the final acknowledge).
    fn external_out(
        &mut self,
        link: u32,
        is_out: bool,
        src: u32,
        count: u32,
    ) -> Result<u32, HaltReason> {
        debug_assert!(is_out, "output on an input link channel");
        if count == 0 || !is_out || link >= 4 {
            return Ok(timing::LINK_INITIATE);
        }
        let me = ProcDesc(self.wdesc);
        self.ws_write(PW_IPTR, self.iptr)?;
        self.link_out[link as usize].begin(Transfer {
            process: me,
            pointer: src,
            remaining: count,
        });
        self.stats.messages += 1;
        self.stats.message_bytes += u64::from(count);
        self.stats.deschedules += 1;
        self.dispatch_next();
        self.links_dirty = true;
        self.slice_exit = Some(SliceOutcome::TxReady);
        Ok(timing::LINK_INITIATE)
    }

    /// `input message` on an external channel. Link 4 is the event
    /// channel, which synchronises without transferring data.
    fn external_in(
        &mut self,
        link: u32,
        is_out: bool,
        dst: u32,
        count: u32,
    ) -> Result<u32, HaltReason> {
        debug_assert!(!is_out, "input on an output link channel");
        let me = ProcDesc(self.wdesc);
        if link == 4 {
            // Event channel: pure synchronisation.
            if self.event_pending {
                self.event_pending = false;
                return Ok(timing::LINK_INITIATE);
            }
            self.ws_write(PW_IPTR, self.iptr)?;
            self.event_waiting = Some(me);
            self.stats.deschedules += 1;
            self.dispatch_next();
            return Ok(timing::LINK_INITIATE);
        }
        if count == 0 || is_out {
            return Ok(timing::LINK_INITIATE);
        }
        let buffered = self.link_in[link as usize].begin(Transfer {
            process: me,
            pointer: dst,
            remaining: count,
        });
        if let Some(byte) = buffered {
            self.mem.write_byte(dst, byte)?;
            if let Some(done) = self.link_in[link as usize].byte_stored(true) {
                // Whole message satisfied from the buffer: continue.
                debug_assert_eq!(done, me);
                self.stats.messages += 1;
                self.stats.message_bytes += u64::from(count);
                self.links_dirty = true;
                self.slice_exit = Some(SliceOutcome::AckRaised);
                return Ok(timing::LINK_INITIATE);
            }
        }
        self.ws_write(PW_IPTR, self.iptr)?;
        self.stats.deschedules += 1;
        self.dispatch_next();
        if buffered.is_some() {
            // The buffered byte was taken: its deferred acknowledge is due.
            self.links_dirty = true;
            self.slice_exit = Some(SliceOutcome::AckRaised);
        } else {
            self.slice_exit = Some(SliceOutcome::RxWait);
        }
        Ok(timing::LINK_INITIATE)
    }

    // ---- Wire-facing API, used by the network simulator ----

    /// Fetch the next byte to transmit on a link, if the output channel
    /// has one ready (flow control permits a single un-acknowledged byte).
    pub fn link_tx_poll(&mut self, link: usize) -> Option<u8> {
        let addr = self.link_out[link].next_byte_addr()?;
        match self.mem.read_byte(addr) {
            Ok(b) => {
                self.link_out[link].byte_taken();
                Some(b)
            }
            Err(fault) => {
                self.halted = Some(fault);
                None
            }
        }
    }

    /// An acknowledge arrived for the in-flight byte on a link. Wakes the
    /// sending process after the final byte of its message (§2.3).
    pub fn link_tx_ack(&mut self, link: usize) {
        if let Some(p) = self.link_out[link].acknowledged() {
            let now = self.cycles;

            self.schedule(p, now);
        }
    }

    /// Sequence bit to transmit with a link's current/next outgoing byte
    /// (robust protocol).
    pub fn link_tx_seq(&self, link: usize) -> bool {
        self.link_out[link].seq()
    }

    /// A robust-protocol acknowledge with sequence bit `seq` arrived.
    /// Returns `false` for a stale duplicate (nothing changed).
    pub fn link_tx_ack_robust(&mut self, link: usize, seq: bool) -> bool {
        match self.link_out[link].acknowledged_robust(seq) {
            AckCheck::Stale => false,
            AckCheck::Fresh(done) => {
                if let Some(p) = done {
                    let now = self.cycles;
                    self.schedule(p, now);
                }
                true
            }
        }
    }

    /// Classify an incoming robust-protocol data byte by sequence bit,
    /// *before* any boot or delivery handling. Only [`SeqCheck::Accept`]
    /// bytes should reach [`Cpu::link_rx_deliver`]; duplicates update the
    /// dup counter here.
    pub fn link_rx_accept(&mut self, link: usize, seq: bool) -> SeqCheck {
        let verdict = self.link_in[link].check_seq(seq);
        if verdict != SeqCheck::Accept {
            self.stats.link_dup_data += 1;
        }
        verdict
    }

    /// Sequence bit every acknowledge on a link's input side must carry:
    /// that of the last accepted byte.
    pub fn link_rx_last_seq(&self, link: usize) -> bool {
        self.link_in[link].last_seq()
    }

    /// Count a detected-and-discarded corrupt frame on this node's input.
    pub fn note_link_rx_error(&mut self) {
        self.stats.link_rx_errors += 1;
    }

    /// Count a timeout-driven retransmission from this node.
    pub fn note_link_retry(&mut self) {
        self.stats.link_retries += 1;
    }

    /// Count a link direction declared failed at this node.
    pub fn note_link_failure(&mut self) {
        self.stats.link_failures += 1;
    }

    /// Whether reception on a link may be acknowledged as soon as it
    /// starts: a process is waiting and the single-byte buffer is free
    /// (§2.3) — or the boot logic will consume the byte immediately.
    pub fn link_rx_early_ack(&self, link: usize) -> bool {
        self.boot_will_consume(link) || self.link_in[link].early_ack_possible()
    }

    /// Deliver a received byte. Returns whether an acknowledge should be
    /// transmitted now (it may already have been sent early).
    pub fn link_rx_deliver(&mut self, link: usize, byte: u8) -> bool {
        if self.is_booting() && self.boot_rx(link, byte) {
            return true;
        }
        match self.link_in[link].deliver(byte) {
            RxOutcome::Consumed { .. } => {
                let addr = self.link_in[link]
                    .store_addr()
                    .expect("consumed byte must have a store address");
                if let Err(fault) = self.mem.write_byte(addr, byte) {
                    self.halted = Some(fault);
                    return false;
                }
                if let Some(p) = self.link_in[link].byte_stored(false) {
                    let now = self.cycles;
                    self.schedule(p, now);
                }
                true
            }
            RxOutcome::Buffered { alting } => {
                if let Some(p) = alting {
                    self.alt_guard_ready(p);
                }
                false
            }
        }
    }

    /// Take a deferred acknowledge owed on a link's input side.
    pub fn link_take_deferred_ack(&mut self, link: usize) -> bool {
        self.link_in[link].take_ack_due()
    }

    /// Whether a link output channel has an active transfer (diagnostic).
    pub fn link_output_busy(&self, link: usize) -> bool {
        self.link_out[link].is_busy()
    }

    /// Whether a transmitted byte on a link is still awaiting its
    /// acknowledge. Used by the network scheduler's lookahead window:
    /// an in-flight byte means the peer owes this node an acknowledge.
    pub fn link_tx_in_flight(&self, link: usize) -> bool {
        self.link_out[link].awaiting_ack()
    }

    /// Whether a link input channel holds a buffered byte (diagnostic).
    pub fn link_input_buffered(&self, link: usize) -> bool {
        self.link_in[link].has_buffered_byte()
    }

    /// Mark an alternative's guard ready and wake it if it was waiting.
    pub(crate) fn alt_guard_ready(&mut self, p: ProcDesc) {
        let state_addr = workspace_word(self.word, p.wptr(), PW_STATE);
        let state = self
            .mem
            .read_word(state_addr)
            .unwrap_or(self.magic.not_process);
        let _ = self.mem.write_word(state_addr, self.magic.ready);
        if state == self.magic.waiting {
            let now = self.cycles;
            self.schedule(p, now);
        }
    }
}
