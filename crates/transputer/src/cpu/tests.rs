//! Unit tests for the processor: instruction semantics, scheduler,
//! channels, timers and alternatives.

use super::*;
use crate::instr::{encode, encode_op, Direct, Op};
use crate::process::Priority;

/// Build a code vector from (direct, operand) pairs and operation codes.
pub(crate) fn asm(items: &[AsmItem]) -> Vec<u8> {
    let mut code = Vec::new();
    for item in items {
        match item {
            AsmItem::D(fun, operand) => {
                code.extend(encode(*fun, *operand));
            }
            AsmItem::O(op) => code.extend(encode_op(*op)),
        }
    }
    code
}

pub(crate) enum AsmItem {
    D(Direct, i64),
    O(Op),
}

use AsmItem::{D, O};

fn run_program(items: &[AsmItem]) -> Cpu {
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = asm(items);
    code.extend(encode_op(Op::HaltSimulation));
    cpu.load_boot_program(&code).expect("program fits");
    cpu.run_to_halt(1_000_000).expect("halts");
    cpu
}

#[test]
fn load_constant_and_add() {
    let cpu = run_program(&[D(Direct::LoadConstant, 5), D(Direct::AddConstant, 7)]);
    assert_eq!(cpu.areg(), 12);
}

#[test]
fn prefix_builds_754() {
    // Figure 5 of the paper: prefix #7, prefix #5, load constant #4.
    let cpu = run_program(&[D(Direct::LoadConstant, 0x754)]);
    assert_eq!(cpu.areg(), 0x754);
    assert_eq!(cpu.oreg(), 0, "operand register clears after use");
}

#[test]
fn negative_prefix() {
    let cpu = run_program(&[D(Direct::LoadConstant, -1)]);
    assert_eq!(cpu.areg(), 0xFFFF_FFFF);
    let cpu = run_program(&[D(Direct::LoadConstant, -256)]);
    assert_eq!(cpu.areg() as i32, -256);
}

#[test]
fn store_and_load_local() {
    // x := 0; x := x + 2 via locals (offset 1).
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0),
        D(Direct::StoreLocal, 1),
        D(Direct::LoadLocal, 1),
        D(Direct::AddConstant, 2),
        D(Direct::StoreLocal, 1),
        D(Direct::LoadLocal, 1),
    ]);
    assert_eq!(cpu.areg(), 2);
}

#[test]
fn evaluation_stack_pushes_and_pops() {
    // (v + w) * (y + z) with constants: (3+4)*(5+6) = 77 (§3.2.9).
    let cpu = run_program(&[
        D(Direct::LoadConstant, 3),
        D(Direct::LoadConstant, 4),
        O(Op::Add),
        D(Direct::LoadConstant, 5),
        D(Direct::LoadConstant, 6),
        O(Op::Add),
        O(Op::Multiply),
    ]);
    assert_eq!(cpu.areg(), 77);
}

#[test]
fn multiply_cycle_count_matches_paper() {
    // §3.2.9: multiply takes 7 + wordlength cycles and 2 bytes.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = asm(&[D(Direct::LoadConstant, 3), D(Direct::LoadConstant, 4)]);
    let pre = code.len();
    code.extend(encode_op(Op::Multiply));
    assert_eq!(code.len() - pre, 2, "multiply encodes in 2 bytes");
    code.extend(encode_op(Op::HaltSimulation));
    cpu.load_boot_program(&code).unwrap();
    // Step until the two loads complete (1 cycle each).
    cpu.run_to_halt(1_000).unwrap();
    // ldc+ldc = 2 cycles; mul = 39; halt op (3 bytes = 2 prefixes + opr) = 3.
    assert_eq!(cpu.cycles(), 2 + 39 + 3);
}

#[test]
fn arithmetic_ops() {
    let cpu = run_program(&[
        D(Direct::LoadConstant, 10),
        D(Direct::LoadConstant, 3),
        O(Op::Subtract),
    ]);
    assert_eq!(cpu.areg(), 7);
    let cpu = run_program(&[
        D(Direct::LoadConstant, 10),
        D(Direct::LoadConstant, 3),
        O(Op::Divide),
    ]);
    assert_eq!(cpu.areg(), 3);
    let cpu = run_program(&[
        D(Direct::LoadConstant, 10),
        D(Direct::LoadConstant, 3),
        O(Op::Remainder),
    ]);
    assert_eq!(cpu.areg(), 1);
    let cpu = run_program(&[
        D(Direct::LoadConstant, -10),
        D(Direct::LoadConstant, 3),
        O(Op::Divide),
    ]);
    assert_eq!(cpu.areg() as i32, -3, "division truncates toward zero");
    let cpu = run_program(&[
        D(Direct::LoadConstant, 6),
        D(Direct::LoadConstant, 7),
        O(Op::Product),
    ]);
    assert_eq!(cpu.areg(), 42);
}

#[test]
fn logical_ops() {
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0b1100),
        D(Direct::LoadConstant, 0b1010),
        O(Op::And),
    ]);
    assert_eq!(cpu.areg(), 0b1000);
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0b1100),
        D(Direct::LoadConstant, 0b1010),
        O(Op::Or),
    ]);
    assert_eq!(cpu.areg(), 0b1110);
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0b1100),
        D(Direct::LoadConstant, 0b1010),
        O(Op::ExclusiveOr),
    ]);
    assert_eq!(cpu.areg(), 0b0110);
    let cpu = run_program(&[D(Direct::LoadConstant, 0), O(Op::Not)]);
    assert_eq!(cpu.areg(), 0xFFFF_FFFF);
}

#[test]
fn shifts() {
    let cpu = run_program(&[
        D(Direct::LoadConstant, 1),
        D(Direct::LoadConstant, 4),
        O(Op::ShiftLeft),
    ]);
    assert_eq!(cpu.areg(), 16);
    let cpu = run_program(&[
        D(Direct::LoadConstant, 16),
        D(Direct::LoadConstant, 4),
        O(Op::ShiftRight),
    ]);
    assert_eq!(cpu.areg(), 1);
    // Shifting by >= wordlength yields zero.
    let cpu = run_program(&[
        D(Direct::LoadConstant, 1),
        D(Direct::LoadConstant, 40),
        O(Op::ShiftLeft),
    ]);
    assert_eq!(cpu.areg(), 0);
}

#[test]
fn comparisons() {
    let cpu = run_program(&[
        D(Direct::LoadConstant, 3),
        D(Direct::LoadConstant, 2),
        O(Op::GreaterThan),
    ]);
    assert_eq!(cpu.areg(), 1, "3 > 2");
    let cpu = run_program(&[
        D(Direct::LoadConstant, 2),
        D(Direct::LoadConstant, 3),
        O(Op::GreaterThan),
    ]);
    assert_eq!(cpu.areg(), 0);
    let cpu = run_program(&[D(Direct::LoadConstant, 7), D(Direct::EqualsConstant, 7)]);
    assert_eq!(cpu.areg(), 1);
    let cpu = run_program(&[D(Direct::LoadConstant, 7), D(Direct::EqualsConstant, 8)]);
    assert_eq!(cpu.areg(), 0);
}

#[test]
fn jump_and_conditional_jump() {
    // j over an instruction that would clobber A.
    let cpu = run_program(&[
        D(Direct::LoadConstant, 9),
        D(Direct::Jump, 1), // skip the ldc 0 (1 byte)
        D(Direct::LoadConstant, 0),
    ]);
    assert_eq!(cpu.areg(), 9);
    // cj taken when A == 0; stack preserved.
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0),
        D(Direct::ConditionalJump, 1),
        D(Direct::LoadConstant, 5),
    ]);
    assert_eq!(cpu.areg(), 0, "taken jump leaves the stack unchanged");
    // cj not taken pops A.
    let cpu = run_program(&[
        D(Direct::LoadConstant, 3),
        D(Direct::LoadConstant, 1),
        D(Direct::ConditionalJump, 1),
        D(Direct::LoadConstant, 5),
    ]);
    assert_eq!(cpu.areg(), 5);
    assert_eq!(cpu.breg(), 3, "not-taken cj popped the condition");
}

#[test]
fn call_and_return() {
    // call +1 skips a 1-byte instruction; callee returns; caller loads 4.
    // Layout: ldc 1; call L; ldc 4; halt; L: ret
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadConstant, 1));
    // call over `ldc 4; opr halt` = 1 + 3 bytes = 4.
    code.extend(encode(Direct::Call, 4));
    code.extend(encode(Direct::LoadConstant, 4));
    code.extend(encode_op(Op::HaltSimulation));
    code.extend(encode_op(Op::Return));
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&code).unwrap();
    cpu.run_to_halt(10_000).unwrap();
    assert_eq!(cpu.areg(), 4);
}

#[test]
fn call_saves_abc_in_frame() {
    // Callee reads its parameters from w[1..3] (call saved A, B, C).
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadConstant, 11)); // -> C
    code.extend(encode(Direct::LoadConstant, 22)); // -> B
    code.extend(encode(Direct::LoadConstant, 33)); // -> A
    code.extend(encode(Direct::Call, 4));
    code.extend(encode(Direct::LoadConstant, 0)); // skipped by callee halt path
    code.extend(encode_op(Op::HaltSimulation));
    // Callee: A := w[1] + w[2] + w[3]; halt.
    code.extend(encode(Direct::LoadLocal, 1)); // 33
    code.extend(encode(Direct::LoadLocal, 2)); // 22
    code.extend(encode_op(Op::Add));
    code.extend(encode(Direct::LoadLocal, 3)); // 11
    code.extend(encode_op(Op::Add));
    code.extend(encode_op(Op::HaltSimulation));
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&code).unwrap();
    cpu.run_to_halt(10_000).unwrap();
    assert_eq!(cpu.areg(), 66);
}

#[test]
fn workspace_pointer_ops() {
    let mut cpu = Cpu::new(CpuConfig::t424());
    let code = asm(&[
        D(Direct::AdjustWorkspace, -4),
        D(Direct::LoadLocalPointer, 0),
        AsmItem::O(Op::HaltSimulation),
    ]);
    cpu.load_boot_program(&code).unwrap();
    let w0 = cpu.default_boot_workspace();
    cpu.run_to_halt(10_000).unwrap();
    assert_eq!(cpu.areg(), w0.wrapping_sub(16));
}

#[test]
fn non_local_access() {
    // Store 99 through a pointer: ldlp 8 (addr); ldc 99 under it via rev.
    let cpu = run_program(&[
        D(Direct::LoadConstant, 99),
        D(Direct::LoadLocalPointer, 8),
        O(Op::Reverse),
        O(Op::Reverse),
        D(Direct::StoreNonLocal, 0), // mem[w8] := 99
        D(Direct::LoadLocal, 8),
    ]);
    assert_eq!(cpu.areg(), 99);
}

#[test]
fn byte_access() {
    let cpu = run_program(&[
        D(Direct::LoadLocalPointer, 2),
        D(Direct::LoadConstant, 0xAB),
        O(Op::Reverse),
        O(Op::StoreByte), // mem byte[w2] := 0xAB
        D(Direct::LoadLocalPointer, 2),
        O(Op::LoadByte),
    ]);
    assert_eq!(cpu.areg(), 0xAB);
}

#[test]
fn subscript_ops() {
    let cpu = run_program(&[
        D(Direct::LoadLocalPointer, 0),
        D(Direct::LoadConstant, 3),
        O(Op::WordSubscript),
        D(Direct::LoadLocalPointer, 3),
        O(Op::GreaterThan),
    ]);
    // wsub gave w0 + 3 words == ldlp 3.
    assert_eq!(cpu.areg(), 0, "equal pointers: not greater");
    let cpu = run_program(&[D(Direct::LoadConstant, 5), O(Op::ByteCount)]);
    assert_eq!(cpu.areg(), 20);
    let cpu = run_program(&[
        D(Direct::LoadConstant, 100),
        D(Direct::LoadConstant, 7),
        O(Op::ByteSubscript),
    ]);
    assert_eq!(cpu.areg(), 107);
}

#[test]
fn mint_pushes_most_neg() {
    let cpu = run_program(&[O(Op::MinimumInteger)]);
    assert_eq!(cpu.areg(), 0x8000_0000);
}

#[test]
fn error_flag_on_overflow() {
    let cpu = run_program(&[
        O(Op::MinimumInteger),
        D(Direct::AddConstant, -1), // MostNeg - 1 overflows
    ]);
    assert!(cpu.error_flag());
    // Modulo arithmetic does not set the flag.
    let cpu = run_program(&[
        O(Op::MinimumInteger),
        D(Direct::LoadConstant, -1),
        O(Op::Sum),
    ]);
    assert!(!cpu.error_flag());
}

#[test]
fn halt_on_error_mode() {
    let mut cpu = Cpu::new(CpuConfig::t424().with_halt_on_error(true));
    let mut code = asm(&[O(Op::SetError)]);
    code.extend(encode_op(Op::HaltSimulation));
    cpu.load_boot_program(&code).unwrap();
    match cpu.run(10_000).unwrap() {
        RunOutcome::Halted(HaltReason::ErrorFlag) => {}
        other => panic!("expected error halt, got {other:?}"),
    }
}

#[test]
fn testerr_reads_and_clears() {
    let cpu = run_program(&[O(Op::SetError), O(Op::TestError)]);
    assert_eq!(cpu.areg(), 0, "error was set: testerr pushes false");
    assert!(!cpu.error_flag(), "testerr clears the flag");
}

#[test]
fn internal_channel_communication() {
    // Two processes: producer outputs a word to an internal channel,
    // consumer inputs it, stores it, halts.
    //
    // Memory plan (word offsets from the boot workspace):
    //   channel word at w[10], result at w[11], child workspace below.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let w = cpu.default_boot_workspace();
    let chan = w.wrapping_add(10 * 4);
    let bpw = 4u32;

    // Parent (consumer): init channel, start child, input, store, halt.
    let mut code = Vec::new();
    code.extend(encode_op(Op::MinimumInteger));
    code.extend(encode(Direct::StoreLocal, 10)); // chan := NotProcess
                                                 // start child: code offset (B), workspace 32 words below (A).
    let startp_operand_pos = code.len();
    code.extend(encode(Direct::LoadConstant, 0)); // patched below
    code.extend(encode(Direct::LoadLocalPointer, -32));
    code.extend(encode_op(Op::StartProcess));
    // input: ldlp 11 (dest); ldlp 10 (chan addr); ldc 4; in
    code.extend(encode(Direct::LoadLocalPointer, 11));
    code.extend(encode(Direct::LoadLocalPointer, 10));
    code.extend(encode(Direct::LoadConstant, 4));
    code.extend(encode_op(Op::InputMessage));
    code.extend(encode(Direct::LoadLocal, 11));
    code.extend(encode_op(Op::HaltSimulation));
    let child_entry = code.len();
    // Child (producer): outword 1234 on the channel.
    // Child workspace is 32 words below parent: channel is at its w[42].
    code.extend(encode(Direct::LoadConstant, 1234));
    code.extend(encode(Direct::LoadLocalPointer, 42));
    code.extend(encode_op(Op::OutputWord));
    code.extend(encode_op(Op::StopProcess));

    // Patch the child code offset: distance from after startp to entry.
    // Re-assemble with the correct constant (encoding width can change).
    let mut final_code = Vec::new();
    let mut delta = 0i64;
    loop {
        final_code.clear();
        final_code.extend_from_slice(&code[..startp_operand_pos]);
        let before = final_code.len();
        final_code.extend(encode(Direct::LoadConstant, delta));
        let enc_len = final_code.len() - before;
        final_code.extend_from_slice(&code[startp_operand_pos + 1..]);
        // startp offset counts from the instruction after startp:
        // ldc (enc_len) + ldlp -32 (2 bytes) + startp (1 byte).
        let startp_end = startp_operand_pos + enc_len + 2 + 1;
        let entry = child_entry + enc_len - 1;
        let need = (entry - startp_end) as i64;
        if need == delta {
            break;
        }
        delta = need;
    }

    cpu.load_boot_program(&final_code).unwrap();
    let _ = chan;
    let _ = bpw;
    cpu.run_to_halt(100_000).unwrap();
    assert_eq!(cpu.areg(), 1234);
    assert_eq!(cpu.stats().messages, 1);
    assert_eq!(cpu.stats().message_bytes, 4);
}

#[test]
fn timer_input_waits() {
    // Read the clock, wait 5 ticks, read again.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let code = asm(&[
        O(Op::LoadTimer),
        D(Direct::StoreLocal, 1),
        D(Direct::LoadLocal, 1),
        D(Direct::AddConstant, 5),
        O(Op::TimerInput),
        O(Op::LoadTimer),
        D(Direct::StoreLocal, 2),
        D(Direct::LoadLocal, 2),
        D(Direct::LoadLocal, 1),
        O(Op::Difference),
        AsmItem::O(Op::HaltSimulation),
    ]);
    cpu.load_boot_program(&code).unwrap();
    cpu.run_to_halt(10_000_000).unwrap();
    let elapsed = cpu.areg();
    assert!(elapsed >= 5, "waited at least 5 ticks, got {elapsed}");
    assert!(elapsed <= 7, "woke promptly, got {elapsed}");
}

#[test]
fn sttimer_sets_clock() {
    let cpu = run_program(&[
        D(Direct::LoadConstant, 100),
        O(Op::StoreTimer),
        O(Op::LoadTimer),
    ]);
    assert!(cpu.areg() >= 100 && cpu.areg() < 110);
}

#[test]
fn start_process_runs_concurrently() {
    // Parent spawns child; child stores 7 into parent's w[5]; parent
    // busy-waits on w[5] then halts. Exercises the scheduler round-robin.
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadConstant, 0));
    code.extend(encode(Direct::StoreLocal, 5));
    // Child code offset (B) loaded first, then the workspace (A).
    let pos = code.len();
    code.extend(encode(Direct::LoadConstant, 0));
    code.extend(encode(Direct::LoadLocalPointer, -32));
    code.extend(encode_op(Op::StartProcess));
    let loop_start = code.len();
    // loop: ldl 5; if zero jump (over the halt) to the backwards j, which
    // is a timeslice point and lets the child run; nonzero falls to halt.
    code.extend(encode(Direct::LoadLocal, 5));
    code.extend(encode(Direct::ConditionalJump, 3)); // skip 3-byte halt
    code.extend(encode_op(Op::HaltSimulation));
    let back = loop_start as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, back));
    assert_eq!(code.len() - loop_start, 7, "layout assumption");
    let child_entry = code.len();
    // Child: parent w[5] is child w[37] (child 32 words below).
    code.extend(encode(Direct::LoadConstant, 7));
    code.extend(encode(Direct::StoreLocal, 37));
    code.extend(encode_op(Op::StopProcess));
    // Patch child offset.
    let after_startp = pos + 1 + 2 + 1; // ldc + ldlp -32 + startp
    let delta = (child_entry - after_startp) as i64;
    assert!(delta < 16, "offset must fit a single nibble for this test");
    code[pos] = 0x40 | (delta as u8);

    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&code).unwrap();
    cpu.run_to_halt(1_000_000).unwrap();
    assert!(cpu.stats().dispatches >= 2);
}

#[test]
fn deadlock_detected() {
    // A single process inputting from an empty internal channel with no
    // partner deadlocks.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let code = asm(&[
        O(Op::MinimumInteger),
        D(Direct::StoreLocal, 3),
        D(Direct::LoadLocalPointer, 4),
        D(Direct::LoadLocalPointer, 3),
        D(Direct::LoadConstant, 4),
        O(Op::InputMessage),
    ]);
    cpu.load_boot_program(&code).unwrap();
    assert_eq!(cpu.run(100_000).unwrap(), RunOutcome::Deadlock);
}

#[test]
fn illegal_opcode_halts() {
    let mut cpu = Cpu::new(CpuConfig::t424());
    // opr 0x11 is undefined in the first-generation set.
    let code = vec![0x21, 0xF1];
    cpu.load_boot_program(&code).unwrap();
    match cpu.run(1_000).unwrap() {
        RunOutcome::Halted(HaltReason::IllegalInstruction { opcode: 0x11 }) => {}
        other => panic!("expected illegal instruction, got {other:?}"),
    }
}

#[test]
fn memory_fault_halts() {
    let mut cpu = Cpu::new(CpuConfig::t424());
    // Load from address 0 (the middle of the signed space, far outside
    // a 4K+60K part).
    let code = asm(&[D(Direct::LoadConstant, 0), D(Direct::LoadNonLocal, 0)]);
    cpu.load_boot_program(&code).unwrap();
    match cpu.run(1_000).unwrap() {
        RunOutcome::Halted(HaltReason::MemoryFault { .. }) => {}
        other => panic!("expected memory fault, got {other:?}"),
    }
}

#[test]
fn long_arithmetic() {
    // lmul: 0xFFFF_FFFF * 2 = 0x1_FFFF_FFFE.
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0),  // carry in -> C after loads? order: c,b,a
        D(Direct::LoadConstant, -1), // b
        D(Direct::LoadConstant, 2),  // a
        O(Op::LongMultiply),
    ]);
    assert_eq!(cpu.areg(), 0xFFFF_FFFE, "low word");
    assert_eq!(cpu.breg(), 1, "high word");

    // lsum with carry out.
    let cpu = run_program(&[
        D(Direct::LoadConstant, 1),  // carry in (C)
        D(Direct::LoadConstant, -1), // B
        D(Direct::LoadConstant, 0),  // A
        O(Op::LongSum),
    ]);
    assert_eq!(cpu.areg(), 0, "low");
    assert_eq!(cpu.breg(), 1, "carry out");

    // ldiv: (1:0) / 2 = 0x8000_0000 rem 0.
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0), // low (C)
        D(Direct::LoadConstant, 1), // high (B)
        D(Direct::LoadConstant, 2), // divisor (A)
        O(Op::LongDivide),
    ]);
    assert_eq!(cpu.areg(), 0x8000_0000);
    assert_eq!(cpu.breg(), 0);
}

#[test]
fn normalise() {
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0), // high = 0 (ends in B)
        D(Direct::LoadConstant, 1), // low = 1 (ends in A)
        O(Op::Normalise),
    ]);
    // (0:1) normalised: 63 places, high = 0x8000_0000.
    assert_eq!(cpu.creg(), 63);
    assert_eq!(cpu.breg(), 0x8000_0000);
    assert_eq!(cpu.areg(), 0);
}

#[test]
fn extend_word_sign() {
    // xword with sign bit 0x80: 0xFF -> -1.
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0xFF),
        D(Direct::LoadConstant, 0x80),
        O(Op::ExtendWord),
    ]);
    assert_eq!(cpu.areg() as i32, -1);
    let cpu = run_program(&[
        D(Direct::LoadConstant, 0x7F),
        D(Direct::LoadConstant, 0x80),
        O(Op::ExtendWord),
    ]);
    assert_eq!(cpu.areg(), 0x7F);
}

#[test]
fn loop_end_counts() {
    // REPL control block at w[1],w[2]: index := 0, count := 5; loop body
    // increments w[3]; lend jumps back.
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadConstant, 0));
    code.extend(encode(Direct::StoreLocal, 1)); // index
    code.extend(encode(Direct::LoadConstant, 5));
    code.extend(encode(Direct::StoreLocal, 2)); // count
    code.extend(encode(Direct::LoadConstant, 0));
    code.extend(encode(Direct::StoreLocal, 3)); // accumulator
    let body = code.len();
    code.extend(encode(Direct::LoadLocal, 3));
    code.extend(encode(Direct::AddConstant, 1));
    code.extend(encode(Direct::StoreLocal, 3));
    code.extend(encode(Direct::LoadLocalPointer, 1)); // control block
                                                      // distance back: from after lend to body. lend is 2 bytes (pfix+opr).
                                                      // ldc distance encodes in 1 byte if < 16.
    let distance = (code.len() + 1 + 2) - body;
    code.extend(encode(Direct::LoadConstant, distance as i64));
    code.extend(encode_op(Op::LoopEnd));
    assert!(distance < 16);
    code.extend(encode(Direct::LoadLocal, 3));
    code.extend(encode_op(Op::HaltSimulation));
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&code).unwrap();
    cpu.run_to_halt(100_000).unwrap();
    assert_eq!(cpu.areg(), 5, "loop body ran 5 times");
    // Index word advanced to 4 (0-based, incremented 4 times).
    let w = cpu.default_boot_workspace();
    let idx = cpu.peek_word(w.wrapping_add(4)).unwrap();
    assert_eq!(idx, 4);
}

#[test]
fn stats_count_operations_and_lengths() {
    let cpu = run_program(&[D(Direct::LoadConstant, 5), D(Direct::LoadConstant, 0x754)]);
    let s = cpu.stats();
    // ldc 5 (1 byte), ldc #754 (3 bytes), halt (3 bytes).
    assert_eq!(s.operations, 3);
    assert_eq!(s.instructions, 7);
    assert_eq!(s.length_histogram[1], 1);
    assert_eq!(s.length_histogram[3], 2);
}

#[test]
fn spawn_at_both_priorities() {
    // A high-priority process runs before a low-priority one.
    let mut cpu = Cpu::new(CpuConfig::t424());
    // Code: store marker then halt (for hi); lo: store other marker, halt.
    let mut code = Vec::new();
    // hi at entry: ldc 1; stl 1; stopp
    code.extend(encode(Direct::LoadConstant, 1));
    code.extend(encode(Direct::StoreLocal, 1));
    code.extend(encode_op(Op::StopProcess));
    let lo_entry = code.len();
    code.extend(encode(Direct::LoadConstant, 2));
    code.extend(encode(Direct::StoreLocal, 1));
    code.extend(encode_op(Op::HaltSimulation));
    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).unwrap();
    let wtop = cpu.default_boot_workspace();
    let w_hi = wtop;
    let w_lo = wtop.wrapping_sub(64);
    cpu.spawn(w_lo, entry + lo_entry as u32, Priority::Low);
    cpu.spawn(w_hi, entry, Priority::High);
    cpu.run_to_halt(100_000).unwrap();
    // Low priority halted last; its marker is in ITS workspace.
    let hi_marker = cpu.peek_word(w_hi.wrapping_add(4)).unwrap();
    let lo_marker = cpu.peek_word(w_lo.wrapping_add(4)).unwrap();
    assert_eq!(hi_marker, 1);
    assert_eq!(lo_marker, 2);
    assert!(cpu.stats().dispatches >= 2);
}

#[test]
fn preemption_latency_is_bounded() {
    // Low-priority process spins on multiplies (the longest instruction);
    // a high-priority process waits on a timer; every wake must be
    // dispatched within the paper's 58-cycle bound.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    // Low priority at entry: endless multiply loop.
    let lo_entry = 0usize;
    code.extend(encode(Direct::LoadConstant, 3));
    code.extend(encode(Direct::LoadConstant, 3));
    code.extend(encode_op(Op::Multiply));
    code.extend(encode(Direct::StoreLocal, 1));
    // jump back: distance from after j to loop start. j is 2 bytes here.
    let dist = -((code.len() as i64) + 2 - lo_entry as i64);
    code.extend(encode(Direct::Jump, dist));
    let hi_entry = code.len();
    // High priority: 50 timer waits of 2 ticks each, then halt.
    code.extend(encode(Direct::LoadConstant, 50));
    code.extend(encode(Direct::StoreLocal, 2));
    let loop_top = code.len();
    code.extend(encode_op(Op::LoadTimer));
    code.extend(encode(Direct::AddConstant, 2));
    code.extend(encode_op(Op::TimerInput));
    code.extend(encode(Direct::LoadLocal, 2));
    code.extend(encode(Direct::AddConstant, -1));
    code.extend(encode(Direct::StoreLocal, 2));
    code.extend(encode(Direct::LoadLocal, 2));
    // cj to halt if zero: forward over the backwards jump (2 bytes).
    code.extend(encode(Direct::ConditionalJump, 2));
    let dist2 = -((code.len() as i64) + 2 - loop_top as i64);
    code.extend(encode(Direct::Jump, dist2));
    code.extend(encode_op(Op::HaltSimulation));

    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).unwrap();
    let wtop = cpu.default_boot_workspace();
    cpu.spawn(wtop, entry + lo_entry as u32, Priority::Low);
    cpu.spawn(
        wtop.wrapping_sub(128),
        entry + hi_entry as u32,
        Priority::High,
    );
    cpu.run_to_halt(10_000_000).unwrap();
    let s = cpu.stats();
    assert!(
        s.preemptions >= 40,
        "expected many preemptions, got {}",
        s.preemptions
    );
    assert!(
        s.max_preempt_latency <= u64::from(crate::timing::PRIORITY_RAISE_MAX),
        "latency {} exceeds the paper's 58-cycle bound",
        s.max_preempt_latency
    );
    assert!(s.priority_lowerings >= 40);
}

#[test]
fn word16_behaves_identically_for_word_independent_code() {
    // §3.3: word-length independence.
    let prog = |cpu: &mut Cpu| {
        let code = asm(&[
            D(Direct::LoadConstant, 100),
            D(Direct::LoadConstant, 17),
            O(Op::Add),
            D(Direct::LoadConstant, 3),
            O(Op::Multiply),
            AsmItem::O(Op::HaltSimulation),
        ]);
        cpu.load_boot_program(&code).unwrap();
        cpu.run_to_halt(100_000).unwrap();
        cpu.areg()
    };
    let mut c32 = Cpu::new(CpuConfig::t424());
    let mut c16 = Cpu::new(CpuConfig::t222());
    assert_eq!(prog(&mut c32), prog(&mut c16));
    assert_eq!(prog(&mut c32), 351);
}
