//! Word-length abstraction.
//!
//! The paper stresses *word-length independence*: "a program which
//! manipulates bytes, words and truth values can be translated into an
//! instruction sequence which behaves identically whatever the wordlength
//! of the processor executing it" (§3.3). The emulator is therefore
//! parametric over the machine word length. The first products were the
//! 32-bit T424 and the 16-bit T222; both are modelled.
//!
//! Machine words are carried in `u32` containers. In 16-bit mode only the
//! low 16 bits are significant and every write masks to width. Pointers
//! are signed values running from the most negative integer ("MostNeg",
//! the bottom of memory) through zero to the most positive integer, so the
//! ordinary signed comparison instructions work on pointers (§3.2.2).

use std::fmt;

/// Machine word length of a transputer model.
///
/// # Examples
///
/// ```
/// use transputer::WordLength;
///
/// let w = WordLength::Bits32;
/// assert_eq!(w.bytes_per_word(), 4);
/// assert_eq!(w.most_neg(), 0x8000_0000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordLength {
    /// 16-bit parts (the T222 of the paper).
    Bits16,
    /// 32-bit parts (the T424 of the paper).
    Bits32,
}

impl WordLength {
    /// Number of bits in a machine word.
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            WordLength::Bits16 => 16,
            WordLength::Bits32 => 32,
        }
    }

    /// Number of bytes in a machine word.
    #[inline]
    pub fn bytes_per_word(self) -> u32 {
        self.bits() / 8
    }

    /// Number of byte-selector bits in a pointer (§3.2.2): 1 for a 16-bit
    /// part, 2 for a 32-bit part.
    #[inline]
    pub fn byte_select_bits(self) -> u32 {
        match self {
            WordLength::Bits16 => 1,
            WordLength::Bits32 => 2,
        }
    }

    /// Mask selecting the byte-selector bits of a pointer.
    #[inline]
    pub fn byte_select_mask(self) -> u32 {
        self.bytes_per_word() - 1
    }

    /// Mask selecting the significant bits of a word.
    #[inline]
    pub fn value_mask(self) -> u32 {
        match self {
            WordLength::Bits16 => 0xFFFF,
            WordLength::Bits32 => 0xFFFF_FFFF,
        }
    }

    /// The most negative integer: the bottom of the address space, the
    /// `NotProcess` marker, and the `mint` instruction's result.
    #[inline]
    pub fn most_neg(self) -> u32 {
        match self {
            WordLength::Bits16 => 0x8000,
            WordLength::Bits32 => 0x8000_0000,
        }
    }

    /// The most positive integer.
    #[inline]
    pub fn most_pos(self) -> u32 {
        match self {
            WordLength::Bits16 => 0x7FFF,
            WordLength::Bits32 => 0x7FFF_FFFF,
        }
    }

    /// Truncate a value to word width.
    #[inline]
    pub fn mask(self, v: u32) -> u32 {
        v & self.value_mask()
    }

    /// Truncate a 64-bit intermediate to word width.
    #[inline]
    pub fn mask64(self, v: u64) -> u32 {
        (v as u32) & self.value_mask()
    }

    /// Interpret a machine word as a signed integer.
    #[inline]
    pub fn to_signed(self, v: u32) -> i64 {
        match self {
            WordLength::Bits16 => i64::from(self.mask(v) as u16 as i16),
            WordLength::Bits32 => i64::from(v as i32),
        }
    }

    /// Wrap a signed integer into a machine word (modulo arithmetic).
    #[inline]
    pub fn from_signed(self, v: i64) -> u32 {
        self.mask(v as u32)
    }

    /// Wrapping (modulo) addition, the `sum` instruction.
    #[inline]
    pub fn wrapping_add(self, a: u32, b: u32) -> u32 {
        self.mask(a.wrapping_add(b))
    }

    /// Wrapping (modulo) subtraction, the `diff` instruction.
    #[inline]
    pub fn wrapping_sub(self, a: u32, b: u32) -> u32 {
        self.mask(a.wrapping_sub(b))
    }

    /// Wrapping (modulo) multiplication, the `prod` instruction.
    #[inline]
    pub fn wrapping_mul(self, a: u32, b: u32) -> u32 {
        self.mask(a.wrapping_mul(b))
    }

    /// Checked signed addition: result plus whether it overflowed
    /// (overflow sets the error flag in `add`/`adc`).
    #[inline]
    pub fn checked_add(self, a: u32, b: u32) -> (u32, bool) {
        let r = self.to_signed(a) + self.to_signed(b);
        (
            self.from_signed(r),
            r > self.to_signed(self.most_pos()) || r < self.to_signed(self.most_neg()),
        )
    }

    /// Checked signed subtraction.
    #[inline]
    pub fn checked_sub(self, a: u32, b: u32) -> (u32, bool) {
        let r = self.to_signed(a) - self.to_signed(b);
        (
            self.from_signed(r),
            r > self.to_signed(self.most_pos()) || r < self.to_signed(self.most_neg()),
        )
    }

    /// Checked signed multiplication.
    #[inline]
    pub fn checked_mul(self, a: u32, b: u32) -> (u32, bool) {
        let r = self.to_signed(a) * self.to_signed(b);
        (
            self.from_signed(r),
            r > self.to_signed(self.most_pos()) || r < self.to_signed(self.most_neg()),
        )
    }

    /// Signed greater-than, the `gt` instruction. Works on pointers too,
    /// because pointers are ordered as signed integers (§3.2.2).
    #[inline]
    pub fn gt(self, a: u32, b: u32) -> bool {
        self.to_signed(a) > self.to_signed(b)
    }

    /// The `AFTER` ordering on timer values: `a AFTER b` iff
    /// `(a - b)` is strictly positive in modulo arithmetic. This makes
    /// time comparisons robust against clock wrap-around.
    #[inline]
    pub fn after(self, a: u32, b: u32) -> bool {
        let d = self.wrapping_sub(a, b);
        self.to_signed(d) > 0
    }

    /// Word-align a pointer downwards (clear the byte selector).
    #[inline]
    pub fn align_word(self, p: u32) -> u32 {
        self.mask(p) & !self.byte_select_mask()
    }

    /// Build a pointer from a word base plus a word index, the `wsub`
    /// instruction ("word subscript", §3.2.2).
    #[inline]
    pub fn index_word(self, base: u32, index: u32) -> u32 {
        self.mask(base.wrapping_add(index.wrapping_mul(self.bytes_per_word())))
    }

    /// Byte subscript: pointer plus byte index (`bsub`).
    #[inline]
    pub fn index_byte(self, base: u32, index: u32) -> u32 {
        self.mask(base.wrapping_add(index))
    }
}

impl fmt::Display for WordLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

/// The canonical truth values of the instruction set.
pub const MACHINE_TRUE: u32 = 1;
/// The canonical false value.
pub const MACHINE_FALSE: u32 = 0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(WordLength::Bits16.bits(), 16);
        assert_eq!(WordLength::Bits32.bits(), 32);
        assert_eq!(WordLength::Bits16.bytes_per_word(), 2);
        assert_eq!(WordLength::Bits32.bytes_per_word(), 4);
        assert_eq!(WordLength::Bits16.byte_select_bits(), 1);
        assert_eq!(WordLength::Bits32.byte_select_bits(), 2);
    }

    #[test]
    fn most_neg_is_minimum_pointer() {
        for w in [WordLength::Bits16, WordLength::Bits32] {
            assert!(w.to_signed(w.most_neg()) < w.to_signed(0));
            assert!(w.to_signed(w.most_pos()) > w.to_signed(0));
            assert_eq!(w.to_signed(w.most_neg()), -(w.to_signed(w.most_pos()) + 1));
        }
    }

    #[test]
    fn signed_roundtrip_16() {
        let w = WordLength::Bits16;
        assert_eq!(w.to_signed(0xFFFF), -1);
        assert_eq!(w.from_signed(-1), 0xFFFF);
        assert_eq!(w.to_signed(0x8000), -32768);
    }

    #[test]
    fn checked_add_overflow() {
        let w = WordLength::Bits32;
        let (r, o) = w.checked_add(w.most_pos(), 1);
        assert!(o);
        assert_eq!(r, w.most_neg());
        let (_, o2) = w.checked_add(5, 7);
        assert!(!o2);
    }

    #[test]
    fn gt_is_signed() {
        let w = WordLength::Bits32;
        assert!(w.gt(1, 0xFFFF_FFFF)); // 1 > -1
        assert!(!w.gt(w.most_neg(), 0));
    }

    #[test]
    fn after_wraps() {
        let w = WordLength::Bits16;
        // Times 1 tick apart compare correctly even across wrap.
        assert!(w.after(0x0001, 0xFFFF));
        assert!(!w.after(0xFFFF, 0x0001));
    }

    #[test]
    fn word_indexing() {
        let w = WordLength::Bits32;
        assert_eq!(w.index_word(0x8000_0000, 3), 0x8000_000C);
        assert_eq!(w.index_byte(0x8000_0000, 3), 0x8000_0003);
        assert_eq!(w.align_word(0x8000_0007), 0x8000_0004);
    }
}
