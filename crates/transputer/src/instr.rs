//! The I1 instruction set (§3.2.5–§3.2.8).
//!
//! Every instruction is a single byte: a 4-bit *function* code and a 4-bit
//! *data* value (Figure 4 of the paper). Thirteen function codes encode
//! the *direct functions*; `prefix` and `negative prefix` extend operands
//! to any length; `operate` treats its operand as an *indirect function*
//! applied to the evaluation stack (§3.2.8).
//!
//! The paper notes that "it is not common practice to abbreviate the names
//! of the instructions"; this module therefore carries both the full
//! published names ("load constant") and the conventional short mnemonics
//! ("ldc") used by later INMOS tooling.

use std::fmt;

/// The sixteen primary function codes (§3.2.5, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Direct {
    /// `j` — unconditional relative jump; a descheduling point.
    Jump = 0x0,
    /// `ldlp` — load local pointer (workspace-relative address).
    LoadLocalPointer = 0x1,
    /// `pfix` — prefix: extend the operand register upwards.
    Prefix = 0x2,
    /// `ldnl` — load non-local (word at offset from A).
    LoadNonLocal = 0x3,
    /// `ldc` — load constant.
    LoadConstant = 0x4,
    /// `ldnlp` — load non-local pointer.
    LoadNonLocalPointer = 0x5,
    /// `nfix` — negative prefix: complement then shift the operand register.
    NegativePrefix = 0x6,
    /// `ldl` — load local (workspace word).
    LoadLocal = 0x7,
    /// `adc` — add constant (checked).
    AddConstant = 0x8,
    /// `call` — procedure call; saves Iptr, A, B, C in a new frame.
    Call = 0x9,
    /// `cj` — conditional jump: taken when A is zero.
    ConditionalJump = 0xA,
    /// `ajw` — adjust workspace pointer.
    AdjustWorkspace = 0xB,
    /// `eqc` — equals constant.
    EqualsConstant = 0xC,
    /// `stl` — store local.
    StoreLocal = 0xD,
    /// `stnl` — store non-local.
    StoreNonLocal = 0xE,
    /// `opr` — operate: the operand selects an indirect function.
    Operate = 0xF,
}

impl Direct {
    /// All sixteen function codes in encoding order.
    pub const ALL: [Direct; 16] = [
        Direct::Jump,
        Direct::LoadLocalPointer,
        Direct::Prefix,
        Direct::LoadNonLocal,
        Direct::LoadConstant,
        Direct::LoadNonLocalPointer,
        Direct::NegativePrefix,
        Direct::LoadLocal,
        Direct::AddConstant,
        Direct::Call,
        Direct::ConditionalJump,
        Direct::AdjustWorkspace,
        Direct::EqualsConstant,
        Direct::StoreLocal,
        Direct::StoreNonLocal,
        Direct::Operate,
    ];

    /// Decode the high nibble of an instruction byte.
    #[inline]
    pub fn from_nibble(n: u8) -> Direct {
        Direct::ALL[(n & 0xF) as usize]
    }

    /// The encoding nibble.
    #[inline]
    pub fn nibble(self) -> u8 {
        self as u8
    }

    /// Conventional short mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Direct::Jump => "j",
            Direct::LoadLocalPointer => "ldlp",
            Direct::Prefix => "pfix",
            Direct::LoadNonLocal => "ldnl",
            Direct::LoadConstant => "ldc",
            Direct::LoadNonLocalPointer => "ldnlp",
            Direct::NegativePrefix => "nfix",
            Direct::LoadLocal => "ldl",
            Direct::AddConstant => "adc",
            Direct::Call => "call",
            Direct::ConditionalJump => "cj",
            Direct::AdjustWorkspace => "ajw",
            Direct::EqualsConstant => "eqc",
            Direct::StoreLocal => "stl",
            Direct::StoreNonLocal => "stnl",
            Direct::Operate => "opr",
        }
    }

    /// The full published name, as the paper writes instruction sequences.
    pub fn full_name(self) -> &'static str {
        match self {
            Direct::Jump => "jump",
            Direct::LoadLocalPointer => "load local pointer",
            Direct::Prefix => "prefix",
            Direct::LoadNonLocal => "load non local",
            Direct::LoadConstant => "load constant",
            Direct::LoadNonLocalPointer => "load non local pointer",
            Direct::NegativePrefix => "negative prefix",
            Direct::LoadLocal => "load local",
            Direct::AddConstant => "add constant",
            Direct::Call => "call",
            Direct::ConditionalJump => "conditional jump",
            Direct::AdjustWorkspace => "adjust workspace",
            Direct::EqualsConstant => "equals constant",
            Direct::StoreLocal => "store local",
            Direct::StoreNonLocal => "store non local",
            Direct::Operate => "operate",
        }
    }
}

impl fmt::Display for Direct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The indirect functions reached through `operate` (§3.2.8).
///
/// The encoding follows the first-generation (T414-era) operation codes.
/// Operations with codes 0x0–0xF are reached with a single `opr` byte;
/// higher codes require one prefix byte, exactly as the paper describes
/// ("the most frequently occurring operations are represented without the
/// use of a prefixing instruction").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum Op {
    /// Reverse the top two stack entries.
    Reverse = 0x00,
    /// Load byte pointed to by A.
    LoadByte = 0x01,
    /// Byte subscript: A := A + B.
    ByteSubscript = 0x02,
    /// End (terminate a component of a) parallel construct.
    EndProcess = 0x03,
    /// Modulo subtract.
    Difference = 0x04,
    /// Checked add.
    Add = 0x05,
    /// General call: exchange Iptr and A.
    GeneralCall = 0x06,
    /// Input message (§3.2.10).
    InputMessage = 0x07,
    /// Quick unchecked multiply; time proportional to log of the second
    /// operand (§3.2.9).
    Product = 0x08,
    /// Signed greater-than.
    GreaterThan = 0x09,
    /// Word subscript: A := A + B*bytes-per-word.
    WordSubscript = 0x0A,
    /// Output message (§3.2.10).
    OutputMessage = 0x0B,
    /// Checked subtract.
    Subtract = 0x0C,
    /// Start process: add a new process to the scheduling list (§3.2.4).
    StartProcess = 0x0D,
    /// Output a single byte on a channel.
    OutputByte = 0x0E,
    /// Output a single word on a channel.
    OutputWord = 0x0F,

    /// Set the error flag.
    SetError = 0x10,
    /// Reset a channel word to empty.
    ResetChannel = 0x12,
    /// Check subscript from zero: error unless 0 <= A < B.
    CheckSubscriptFromZero = 0x13,
    /// Stop the current process (deschedule without requeueing).
    StopProcess = 0x15,
    /// Long (double-word) add with carry.
    LongAdd = 0x16,
    /// Store low-priority queue back pointer.
    StoreLowBack = 0x17,
    /// Store high-priority queue front pointer.
    StoreHighFront = 0x18,
    /// Normalise a double-word value.
    Normalise = 0x19,
    /// Long divide.
    LongDivide = 0x1A,
    /// Load pointer to instruction: A := Iptr + A.
    LoadPointerToInstruction = 0x1B,
    /// Store low-priority queue front pointer.
    StoreLowFront = 0x1C,
    /// Extend single-word value to double.
    ExtendToDouble = 0x1D,
    /// Load current priority.
    LoadPriority = 0x1E,
    /// Checked remainder.
    Remainder = 0x1F,

    /// Return from procedure.
    Return = 0x20,
    /// Loop end (replicated constructs).
    LoopEnd = 0x21,
    /// Read the clock of the current priority (§2.2.2).
    LoadTimer = 0x22,
    /// Test error flag (and clear), pushing its old value.
    TestError = 0x29,
    /// Test whether the processor was analysed; modelled as pushing false.
    TestProcessorAnalysing = 0x2A,
    /// Timer input: wait until the clock reaches a time (§2.2.2).
    TimerInput = 0x2B,
    /// Checked divide.
    Divide = 0x2C,
    /// Disable timer guard of an alternative.
    DisableTimer = 0x2E,
    /// Disable channel guard of an alternative.
    DisableChannel = 0x2F,

    /// Disable skip guard of an alternative.
    DisableSkip = 0x30,
    /// Long multiply.
    LongMultiply = 0x31,
    /// Bitwise complement.
    Not = 0x32,
    /// Bitwise exclusive or.
    ExclusiveOr = 0x33,
    /// Byte count: words to bytes.
    ByteCount = 0x34,
    /// Long shift right.
    LongShiftRight = 0x35,
    /// Long shift left.
    LongShiftLeft = 0x36,
    /// Long modulo sum with carry out.
    LongSum = 0x37,
    /// Long subtract with borrow.
    LongSubtract = 0x38,
    /// Run process: add a process descriptor to a scheduling list.
    RunProcess = 0x39,
    /// Sign-extend a part-word.
    ExtendWord = 0x3A,
    /// Store byte.
    StoreByte = 0x3B,
    /// General adjust workspace: exchange Wptr and A.
    GeneralAdjustWorkspace = 0x3C,
    /// Save low-priority queue pointers (analyse support).
    SaveLow = 0x3D,
    /// Save high-priority queue pointers.
    SaveHigh = 0x3E,
    /// Word count: split pointer into word address and byte selector.
    WordCount = 0x3F,

    /// Logical shift right.
    ShiftRight = 0x40,
    /// Logical shift left.
    ShiftLeft = 0x41,
    /// Minimum integer: push MostNeg.
    MinimumInteger = 0x42,
    /// Begin an alternative: mark state Enabling (§2.2).
    Alt = 0x43,
    /// Wait for an enabled alternative guard to become ready.
    AltWait = 0x44,
    /// End an alternative: jump to the selected branch.
    AltEnd = 0x45,
    /// Bitwise and.
    And = 0x46,
    /// Enable timer guard.
    EnableTimer = 0x47,
    /// Enable channel guard.
    EnableChannel = 0x48,
    /// Enable skip guard.
    EnableSkip = 0x49,
    /// Block move of A bytes from B to C... (source B, destination C).
    Move = 0x4A,
    /// Bitwise or.
    Or = 0x4B,
    /// Check single: error unless a double fits in a single word.
    CheckSingle = 0x4C,
    /// Check count from one: error unless 1 <= A < B.
    CheckCountFromOne = 0x4D,
    /// Begin a timer alternative.
    TimerAlt = 0x4E,
    /// Long difference with borrow out.
    LongDiff = 0x4F,

    /// Store high-priority queue back pointer.
    StoreHighBack = 0x50,
    /// Wait for a timer alternative guard.
    TimerAltWait = 0x51,
    /// Modulo add.
    Sum = 0x52,
    /// Checked multiply; 7 + wordlength cycles (§3.2.9 table).
    Multiply = 0x53,
    /// Set the clock of the current priority and start it.
    StoreTimer = 0x54,
    /// Conditionally set error: A := A, error set if A false... (stoperr semantics: halt if error).
    StopOnError = 0x55,
    /// Check word: error unless A fits in a part-word of size B.
    CheckWord = 0x56,
    /// Clear halt-on-error mode.
    ClearHaltOnError = 0x57,
    /// Set halt-on-error mode.
    SetHaltOnError = 0x58,
    /// Test halt-on-error mode.
    TestHaltOnError = 0x59,

    /// Emulator extension: cleanly stop the simulation run. Encoded far
    /// outside the architectural operation space; hosted test programs use
    /// it the way boot ROMs used an external reset.
    HaltSimulation = 0x17F,
}

impl Op {
    /// Every defined operation, in encoding order.
    pub const ALL: [Op; 82] = [
        Op::Reverse,
        Op::LoadByte,
        Op::ByteSubscript,
        Op::EndProcess,
        Op::Difference,
        Op::Add,
        Op::GeneralCall,
        Op::InputMessage,
        Op::Product,
        Op::GreaterThan,
        Op::WordSubscript,
        Op::OutputMessage,
        Op::Subtract,
        Op::StartProcess,
        Op::OutputByte,
        Op::OutputWord,
        Op::SetError,
        Op::ResetChannel,
        Op::CheckSubscriptFromZero,
        Op::StopProcess,
        Op::LongAdd,
        Op::StoreLowBack,
        Op::StoreHighFront,
        Op::Normalise,
        Op::LongDivide,
        Op::LoadPointerToInstruction,
        Op::StoreLowFront,
        Op::ExtendToDouble,
        Op::LoadPriority,
        Op::Remainder,
        Op::Return,
        Op::LoopEnd,
        Op::LoadTimer,
        Op::TestError,
        Op::TestProcessorAnalysing,
        Op::TimerInput,
        Op::Divide,
        Op::DisableTimer,
        Op::DisableChannel,
        Op::DisableSkip,
        Op::LongMultiply,
        Op::Not,
        Op::ExclusiveOr,
        Op::ByteCount,
        Op::LongShiftRight,
        Op::LongShiftLeft,
        Op::LongSum,
        Op::LongSubtract,
        Op::RunProcess,
        Op::ExtendWord,
        Op::StoreByte,
        Op::GeneralAdjustWorkspace,
        Op::SaveLow,
        Op::SaveHigh,
        Op::WordCount,
        Op::ShiftRight,
        Op::ShiftLeft,
        Op::MinimumInteger,
        Op::Alt,
        Op::AltWait,
        Op::AltEnd,
        Op::And,
        Op::EnableTimer,
        Op::EnableChannel,
        Op::EnableSkip,
        Op::Move,
        Op::Or,
        Op::CheckSingle,
        Op::CheckCountFromOne,
        Op::TimerAlt,
        Op::LongDiff,
        Op::StoreHighBack,
        Op::TimerAltWait,
        Op::Sum,
        Op::Multiply,
        Op::StoreTimer,
        Op::StopOnError,
        Op::CheckWord,
        Op::ClearHaltOnError,
        Op::SetHaltOnError,
        Op::TestHaltOnError,
        Op::HaltSimulation,
    ];

    /// Decode an operation code, if defined.
    #[inline]
    pub fn from_code(code: u32) -> Option<Op> {
        let op = match code {
            0x00 => Op::Reverse,
            0x01 => Op::LoadByte,
            0x02 => Op::ByteSubscript,
            0x03 => Op::EndProcess,
            0x04 => Op::Difference,
            0x05 => Op::Add,
            0x06 => Op::GeneralCall,
            0x07 => Op::InputMessage,
            0x08 => Op::Product,
            0x09 => Op::GreaterThan,
            0x0A => Op::WordSubscript,
            0x0B => Op::OutputMessage,
            0x0C => Op::Subtract,
            0x0D => Op::StartProcess,
            0x0E => Op::OutputByte,
            0x0F => Op::OutputWord,
            0x10 => Op::SetError,
            0x12 => Op::ResetChannel,
            0x13 => Op::CheckSubscriptFromZero,
            0x15 => Op::StopProcess,
            0x16 => Op::LongAdd,
            0x17 => Op::StoreLowBack,
            0x18 => Op::StoreHighFront,
            0x19 => Op::Normalise,
            0x1A => Op::LongDivide,
            0x1B => Op::LoadPointerToInstruction,
            0x1C => Op::StoreLowFront,
            0x1D => Op::ExtendToDouble,
            0x1E => Op::LoadPriority,
            0x1F => Op::Remainder,
            0x20 => Op::Return,
            0x21 => Op::LoopEnd,
            0x22 => Op::LoadTimer,
            0x29 => Op::TestError,
            0x2A => Op::TestProcessorAnalysing,
            0x2B => Op::TimerInput,
            0x2C => Op::Divide,
            0x2E => Op::DisableTimer,
            0x2F => Op::DisableChannel,
            0x30 => Op::DisableSkip,
            0x31 => Op::LongMultiply,
            0x32 => Op::Not,
            0x33 => Op::ExclusiveOr,
            0x34 => Op::ByteCount,
            0x35 => Op::LongShiftRight,
            0x36 => Op::LongShiftLeft,
            0x37 => Op::LongSum,
            0x38 => Op::LongSubtract,
            0x39 => Op::RunProcess,
            0x3A => Op::ExtendWord,
            0x3B => Op::StoreByte,
            0x3C => Op::GeneralAdjustWorkspace,
            0x3D => Op::SaveLow,
            0x3E => Op::SaveHigh,
            0x3F => Op::WordCount,
            0x40 => Op::ShiftRight,
            0x41 => Op::ShiftLeft,
            0x42 => Op::MinimumInteger,
            0x43 => Op::Alt,
            0x44 => Op::AltWait,
            0x45 => Op::AltEnd,
            0x46 => Op::And,
            0x47 => Op::EnableTimer,
            0x48 => Op::EnableChannel,
            0x49 => Op::EnableSkip,
            0x4A => Op::Move,
            0x4B => Op::Or,
            0x4C => Op::CheckSingle,
            0x4D => Op::CheckCountFromOne,
            0x4E => Op::TimerAlt,
            0x4F => Op::LongDiff,
            0x50 => Op::StoreHighBack,
            0x51 => Op::TimerAltWait,
            0x52 => Op::Sum,
            0x53 => Op::Multiply,
            0x54 => Op::StoreTimer,
            0x55 => Op::StopOnError,
            0x56 => Op::CheckWord,
            0x57 => Op::ClearHaltOnError,
            0x58 => Op::SetHaltOnError,
            0x59 => Op::TestHaltOnError,
            0x17F => Op::HaltSimulation,
            _ => return None,
        };
        Some(op)
    }

    /// The operation code used as the operand of `operate`.
    #[inline]
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Conventional short mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Reverse => "rev",
            Op::LoadByte => "lb",
            Op::ByteSubscript => "bsub",
            Op::EndProcess => "endp",
            Op::Difference => "diff",
            Op::Add => "add",
            Op::GeneralCall => "gcall",
            Op::InputMessage => "in",
            Op::Product => "prod",
            Op::GreaterThan => "gt",
            Op::WordSubscript => "wsub",
            Op::OutputMessage => "out",
            Op::Subtract => "sub",
            Op::StartProcess => "startp",
            Op::OutputByte => "outbyte",
            Op::OutputWord => "outword",
            Op::SetError => "seterr",
            Op::ResetChannel => "resetch",
            Op::CheckSubscriptFromZero => "csub0",
            Op::StopProcess => "stopp",
            Op::LongAdd => "ladd",
            Op::StoreLowBack => "stlb",
            Op::StoreHighFront => "sthf",
            Op::Normalise => "norm",
            Op::LongDivide => "ldiv",
            Op::LoadPointerToInstruction => "ldpi",
            Op::StoreLowFront => "stlf",
            Op::ExtendToDouble => "xdble",
            Op::LoadPriority => "ldpri",
            Op::Remainder => "rem",
            Op::Return => "ret",
            Op::LoopEnd => "lend",
            Op::LoadTimer => "ldtimer",
            Op::TestError => "testerr",
            Op::TestProcessorAnalysing => "testpranal",
            Op::TimerInput => "tin",
            Op::Divide => "div",
            Op::DisableTimer => "dist",
            Op::DisableChannel => "disc",
            Op::DisableSkip => "diss",
            Op::LongMultiply => "lmul",
            Op::Not => "not",
            Op::ExclusiveOr => "xor",
            Op::ByteCount => "bcnt",
            Op::LongShiftRight => "lshr",
            Op::LongShiftLeft => "lshl",
            Op::LongSum => "lsum",
            Op::LongSubtract => "lsub",
            Op::RunProcess => "runp",
            Op::ExtendWord => "xword",
            Op::StoreByte => "sb",
            Op::GeneralAdjustWorkspace => "gajw",
            Op::SaveLow => "savel",
            Op::SaveHigh => "saveh",
            Op::WordCount => "wcnt",
            Op::ShiftRight => "shr",
            Op::ShiftLeft => "shl",
            Op::MinimumInteger => "mint",
            Op::Alt => "alt",
            Op::AltWait => "altwt",
            Op::AltEnd => "altend",
            Op::And => "and",
            Op::EnableTimer => "enbt",
            Op::EnableChannel => "enbc",
            Op::EnableSkip => "enbs",
            Op::Move => "move",
            Op::Or => "or",
            Op::CheckSingle => "csngl",
            Op::CheckCountFromOne => "ccnt1",
            Op::TimerAlt => "talt",
            Op::LongDiff => "ldiff",
            Op::StoreHighBack => "sthb",
            Op::TimerAltWait => "taltwt",
            Op::Sum => "sum",
            Op::Multiply => "mul",
            Op::StoreTimer => "sttimer",
            Op::StopOnError => "stoperr",
            Op::CheckWord => "cword",
            Op::ClearHaltOnError => "clrhalterr",
            Op::SetHaltOnError => "sethalterr",
            Op::TestHaltOnError => "testhalterr",
            Op::HaltSimulation => "haltsim",
        }
    }

    /// The full published name.
    pub fn full_name(self) -> &'static str {
        match self {
            Op::Reverse => "reverse",
            Op::LoadByte => "load byte",
            Op::ByteSubscript => "byte subscript",
            Op::EndProcess => "end process",
            Op::Difference => "difference",
            Op::Add => "add",
            Op::GeneralCall => "general call",
            Op::InputMessage => "input message",
            Op::Product => "product",
            Op::GreaterThan => "greater than",
            Op::WordSubscript => "word subscript",
            Op::OutputMessage => "output message",
            Op::Subtract => "subtract",
            Op::StartProcess => "start process",
            Op::OutputByte => "output byte",
            Op::OutputWord => "output word",
            Op::SetError => "set error",
            Op::ResetChannel => "reset channel",
            Op::CheckSubscriptFromZero => "check subscript from 0",
            Op::StopProcess => "stop process",
            Op::LongAdd => "long add",
            Op::StoreLowBack => "store low priority back pointer",
            Op::StoreHighFront => "store high priority front pointer",
            Op::Normalise => "normalise",
            Op::LongDivide => "long divide",
            Op::LoadPointerToInstruction => "load pointer to instruction",
            Op::StoreLowFront => "store low priority front pointer",
            Op::ExtendToDouble => "extend to double",
            Op::LoadPriority => "load current priority",
            Op::Remainder => "remainder",
            Op::Return => "return",
            Op::LoopEnd => "loop end",
            Op::LoadTimer => "load timer",
            Op::TestError => "test error false and clear",
            Op::TestProcessorAnalysing => "test processor analysing",
            Op::TimerInput => "timer input",
            Op::Divide => "divide",
            Op::DisableTimer => "disable timer",
            Op::DisableChannel => "disable channel",
            Op::DisableSkip => "disable skip",
            Op::LongMultiply => "long multiply",
            Op::Not => "bitwise not",
            Op::ExclusiveOr => "exclusive or",
            Op::ByteCount => "byte count",
            Op::LongShiftRight => "long shift right",
            Op::LongShiftLeft => "long shift left",
            Op::LongSum => "long sum",
            Op::LongSubtract => "long subtract",
            Op::RunProcess => "run process",
            Op::ExtendWord => "extend to word",
            Op::StoreByte => "store byte",
            Op::GeneralAdjustWorkspace => "general adjust workspace",
            Op::SaveLow => "save low priority queue registers",
            Op::SaveHigh => "save high priority queue registers",
            Op::WordCount => "word count",
            Op::ShiftRight => "shift right",
            Op::ShiftLeft => "shift left",
            Op::MinimumInteger => "minimum integer",
            Op::Alt => "alt start",
            Op::AltWait => "alt wait",
            Op::AltEnd => "alt end",
            Op::And => "and",
            Op::EnableTimer => "enable timer",
            Op::EnableChannel => "enable channel",
            Op::EnableSkip => "enable skip",
            Op::Move => "move message",
            Op::Or => "or",
            Op::CheckSingle => "check single",
            Op::CheckCountFromOne => "check count from 1",
            Op::TimerAlt => "timer alt start",
            Op::LongDiff => "long diff",
            Op::StoreHighBack => "store high priority back pointer",
            Op::TimerAltWait => "timer alt wait",
            Op::Sum => "sum",
            Op::Multiply => "multiply",
            Op::StoreTimer => "store timer",
            Op::StopOnError => "stop on error",
            Op::CheckWord => "check word",
            Op::ClearHaltOnError => "clear halt-on-error",
            Op::SetHaltOnError => "set halt-on-error",
            Op::TestHaltOnError => "test halt-on-error",
            Op::HaltSimulation => "halt simulation",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Net evaluation-stack effect of one instruction (§3.2.9).
///
/// The transputer's evaluation stack is the three registers A, B, C:
/// pushing at depth three silently discards C, popping at depth zero
/// reads junk. The effect table makes that discipline checkable by
/// tools (the `transputer-analysis` bytecode verifier): `pops` operands
/// are consumed from the top of the stack, then `pushes` results are
/// left on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEffect {
    /// Operands taken from the A/B/C stack.
    pub pops: u8,
    /// Results left on the stack.
    pub pushes: u8,
}

impl StackEffect {
    /// An effect consuming `pops` operands and producing `pushes`.
    pub const fn new(pops: u8, pushes: u8) -> StackEffect {
        StackEffect { pops, pushes }
    }
}

impl Direct {
    /// Stack effect of a direct function, or `None` for the prefixes
    /// (`pfix`/`nfix` build operands, they are not complete
    /// instructions) and for `operate` (whose effect is the selected
    /// operation's, see [`Op::stack_effect`]).
    ///
    /// Two entries need care when consumed by a verifier:
    ///
    /// * `call` saves A, B and C into the new frame whether or not
    ///   they hold live values — its three pops are *non-strict* (the
    ///   occam compiler calls with 0–3 loaded arguments).
    /// * `cj` pops the condition only on the fall-through path; on the
    ///   taken path A (known zero) is preserved.
    pub fn stack_effect(self) -> Option<StackEffect> {
        Some(match self {
            Direct::Jump => StackEffect::new(0, 0),
            Direct::LoadLocalPointer => StackEffect::new(0, 1),
            Direct::Prefix | Direct::NegativePrefix | Direct::Operate => return None,
            Direct::LoadNonLocal => StackEffect::new(1, 1),
            Direct::LoadConstant => StackEffect::new(0, 1),
            Direct::LoadNonLocalPointer => StackEffect::new(1, 1),
            Direct::LoadLocal => StackEffect::new(0, 1),
            Direct::AddConstant => StackEffect::new(1, 1),
            Direct::Call => StackEffect::new(3, 1),
            Direct::ConditionalJump => StackEffect::new(1, 0),
            Direct::AdjustWorkspace => StackEffect::new(0, 0),
            Direct::EqualsConstant => StackEffect::new(1, 1),
            Direct::StoreLocal => StackEffect::new(1, 0),
            Direct::StoreNonLocal => StackEffect::new(2, 0),
        })
    }
}

impl Op {
    /// Stack effect of an indirect function, mirroring the execution
    /// semantics in `cpu/exec.rs` and `cpu/io.rs`.
    ///
    /// Operations with data-dependent result counts are tabulated with
    /// their normal-path effect (`ldiv` pushes quotient and remainder;
    /// its error path pushes a single zero).
    pub fn stack_effect(self) -> StackEffect {
        let (pops, pushes) = match self {
            Op::Reverse => (2, 2),
            Op::LoadByte => (1, 1),
            Op::ByteSubscript => (2, 1),
            Op::EndProcess => (1, 0),
            Op::Difference => (2, 1),
            Op::Add => (2, 1),
            Op::GeneralCall => (1, 1),
            Op::InputMessage => (3, 0),
            Op::Product => (2, 1),
            Op::GreaterThan => (2, 1),
            Op::WordSubscript => (2, 1),
            Op::OutputMessage => (3, 0),
            Op::Subtract => (2, 1),
            Op::StartProcess => (2, 0),
            // outword/outbyte pop channel and value, spill the value to
            // w[0], and run the general output on a rebuilt stack: the
            // net effect is two operands consumed.
            Op::OutputByte => (2, 0),
            Op::OutputWord => (2, 0),
            Op::SetError => (0, 0),
            Op::ResetChannel => (1, 1),
            Op::CheckSubscriptFromZero => (2, 1),
            Op::StopProcess => (0, 0),
            Op::LongAdd => (3, 1),
            Op::StoreLowBack => (1, 0),
            Op::StoreHighFront => (1, 0),
            Op::Normalise => (2, 3),
            Op::LongDivide => (3, 2),
            Op::LoadPointerToInstruction => (1, 1),
            Op::StoreLowFront => (1, 0),
            Op::ExtendToDouble => (1, 2),
            Op::LoadPriority => (0, 1),
            Op::Remainder => (2, 1),
            Op::Return => (0, 0),
            Op::LoopEnd => (2, 0),
            Op::LoadTimer => (0, 1),
            Op::TestError => (0, 1),
            Op::TestProcessorAnalysing => (0, 1),
            Op::TimerInput => (1, 0),
            Op::Divide => (2, 1),
            Op::DisableTimer => (3, 1),
            Op::DisableChannel => (3, 1),
            Op::DisableSkip => (2, 1),
            Op::LongMultiply => (3, 2),
            Op::Not => (1, 1),
            Op::ExclusiveOr => (2, 1),
            Op::ByteCount => (1, 1),
            Op::LongShiftRight => (3, 2),
            Op::LongShiftLeft => (3, 2),
            Op::LongSum => (3, 2),
            Op::LongSubtract => (3, 1),
            Op::RunProcess => (1, 0),
            Op::ExtendWord => (2, 1),
            Op::StoreByte => (2, 0),
            Op::GeneralAdjustWorkspace => (1, 1),
            Op::SaveLow => (1, 0),
            Op::SaveHigh => (1, 0),
            Op::WordCount => (1, 2),
            Op::ShiftRight => (2, 1),
            Op::ShiftLeft => (2, 1),
            Op::MinimumInteger => (0, 1),
            Op::Alt => (0, 0),
            Op::AltWait => (0, 0),
            Op::AltEnd => (0, 0),
            Op::And => (2, 1),
            Op::EnableTimer => (2, 1),
            Op::EnableChannel => (2, 1),
            // enbs tests the guard in A without popping it.
            Op::EnableSkip => (1, 1),
            Op::Move => (3, 0),
            Op::Or => (2, 1),
            Op::CheckSingle => (2, 1),
            Op::CheckCountFromOne => (2, 1),
            Op::TimerAlt => (0, 0),
            Op::LongDiff => (3, 2),
            Op::StoreHighBack => (1, 0),
            Op::TimerAltWait => (0, 0),
            Op::Sum => (2, 1),
            Op::Multiply => (2, 1),
            Op::StoreTimer => (1, 0),
            Op::StopOnError => (0, 0),
            Op::CheckWord => (2, 1),
            Op::ClearHaltOnError => (0, 0),
            Op::SetHaltOnError => (0, 0),
            Op::TestHaltOnError => (0, 1),
            Op::HaltSimulation => (0, 0),
        };
        StackEffect::new(pops, pushes)
    }
}

/// Encode an instruction (direct function plus arbitrary-width operand)
/// into the byte sequence the paper's prefixing scheme produces (§3.2.7).
///
/// Operands in [0, 16) take one byte; wider or negative operands are built
/// with `prefix` / `negative prefix` bytes.
///
/// # Examples
///
/// ```
/// use transputer::instr::{encode, Direct};
///
/// // The paper's example: loading #754 takes prefix #7, prefix #5,
/// // load constant #4.
/// assert_eq!(encode(Direct::LoadConstant, 0x754), vec![0x27, 0x25, 0x44]);
/// assert_eq!(encode(Direct::LoadConstant, 0), vec![0x40]);
/// ```
pub fn encode(fun: Direct, operand: i64) -> Vec<u8> {
    let mut out = Vec::with_capacity(2);
    encode_into(fun, operand, &mut out);
    out
}

/// Append the encoding of one instruction to `out`; returns byte count.
pub fn encode_into(fun: Direct, operand: i64, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    // The standard recursive prefixing scheme (§3.2.7): values outside
    // [0, 16) first emit a prefix (or negative prefix) instruction whose
    // own operand is encoded the same way.
    fn emit(nibble: u8, operand: i64, out: &mut Vec<u8>) {
        if (0..16).contains(&operand) {
            out.push((nibble << 4) | (operand as u8));
        } else if operand >= 16 {
            emit(Direct::Prefix.nibble(), operand >> 4, out);
            out.push((nibble << 4) | ((operand & 0xF) as u8));
        } else {
            emit(Direct::NegativePrefix.nibble(), (!operand) >> 4, out);
            out.push((nibble << 4) | ((operand & 0xF) as u8));
        }
    }
    emit(fun.nibble(), operand, out);
    out.len() - start
}

/// The number of bytes `encode` produces for this operand.
pub fn encoded_len(operand: i64) -> usize {
    let mut v = Vec::new();
    encode_into(Direct::LoadConstant, operand, &mut v);
    v.len()
}

/// Encode an indirect function: zero or more prefixes then `operate`.
pub fn encode_op(op: Op) -> Vec<u8> {
    encode(Direct::Operate, op.code() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prefix_example() {
        // Figure 5: prefix #7, prefix #5, load constant #4 builds #754.
        assert_eq!(encode(Direct::LoadConstant, 0x754), vec![0x27, 0x25, 0x44]);
    }

    #[test]
    fn single_byte_range() {
        // Values 0..=15 load with a single byte instruction (§3.2.6).
        for v in 0..16 {
            assert_eq!(encode(Direct::LoadConstant, v).len(), 1);
        }
        assert_eq!(encode(Direct::LoadConstant, 16).len(), 2);
    }

    #[test]
    fn one_prefix_covers_minus256_to_255() {
        // "operands in the range -256 to 255 can be represented using one
        // prefixing instruction" (§3.2.7).
        for v in -256..=255i64 {
            assert!(encode(Direct::LoadConstant, v).len() <= 2, "operand {v}");
        }
        assert_eq!(encode(Direct::LoadConstant, 256).len(), 3);
        assert_eq!(encode(Direct::LoadConstant, -257).len(), 3);
    }

    #[test]
    fn negative_prefix_encoding() {
        // ldc -1: nfix 0, ldc 15 => 0x60, 0x4F
        assert_eq!(encode(Direct::LoadConstant, -1), vec![0x60, 0x4F]);
    }

    #[test]
    fn direct_roundtrip() {
        for d in Direct::ALL {
            assert_eq!(Direct::from_nibble(d.nibble()), d);
            assert!(!d.mnemonic().is_empty());
            assert!(!d.full_name().is_empty());
        }
    }

    #[test]
    fn op_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::from_code(op.code()), Some(op));
            assert!(!op.mnemonic().is_empty());
            assert!(!op.full_name().is_empty());
        }
        assert_eq!(Op::from_code(0x11), None);
        assert_eq!(Op::from_code(0x17F), Some(Op::HaltSimulation));
    }

    #[test]
    fn stack_effects_stay_within_the_three_registers() {
        for d in Direct::ALL {
            if let Some(e) = d.stack_effect() {
                assert!(e.pops <= 3 && e.pushes <= 3, "{d}");
            }
        }
        for op in Op::ALL {
            let e = op.stack_effect();
            assert!(e.pops <= 3 && e.pushes <= 3, "{op}");
        }
        // Prefixes and operate have no effect of their own.
        assert_eq!(Direct::Prefix.stack_effect(), None);
        assert_eq!(Direct::NegativePrefix.stack_effect(), None);
        assert_eq!(Direct::Operate.stack_effect(), None);
    }

    #[test]
    fn stack_effects_match_execution_semantics() {
        // Spot checks against cpu/exec.rs / cpu/io.rs.
        assert_eq!(Op::Add.stack_effect(), StackEffect::new(2, 1));
        assert_eq!(Op::InputMessage.stack_effect(), StackEffect::new(3, 0));
        assert_eq!(Op::OutputMessage.stack_effect(), StackEffect::new(3, 0));
        assert_eq!(Op::StartProcess.stack_effect(), StackEffect::new(2, 0));
        assert_eq!(Op::EndProcess.stack_effect(), StackEffect::new(1, 0));
        assert_eq!(Op::Normalise.stack_effect(), StackEffect::new(2, 3));
        assert_eq!(Op::EnableChannel.stack_effect(), StackEffect::new(2, 1));
        assert_eq!(Op::DisableChannel.stack_effect(), StackEffect::new(3, 1));
        assert_eq!(
            Direct::LoadConstant.stack_effect(),
            Some(StackEffect::new(0, 1))
        );
        assert_eq!(
            Direct::StoreNonLocal.stack_effect(),
            Some(StackEffect::new(2, 0))
        );
    }

    #[test]
    fn frequent_ops_are_single_byte() {
        // §3.2.8: the most frequently used operations fit in one byte.
        for op in [
            Op::Add,
            Op::Subtract,
            Op::GreaterThan,
            Op::InputMessage,
            Op::OutputMessage,
        ] {
            assert_eq!(encode_op(op).len(), 1, "{op}");
        }
        // Less frequent ones need exactly one prefix.
        for op in [Op::Multiply, Op::ShiftLeft, Op::And, Op::Or] {
            assert_eq!(encode_op(op).len(), 2, "{op}");
        }
    }
}
