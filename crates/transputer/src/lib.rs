//! # transputer
//!
//! A cycle-counted emulator of the INMOS transputer as described in
//! Colin Whitby-Strevens, *The Transputer*, ISCA 1985.
//!
//! The transputer is "a programmable VLSI component with communication
//! links for point-to-point connection to other transputers". This crate
//! models one such component: the I1 instruction set of the first parts
//! (the 32-bit T424 and 16-bit T222), the six-register processor with its
//! three-deep evaluation stack, the hardware scheduler with two priority
//! levels, internal channels (single words in memory), external channels
//! (link interfaces), the per-priority timers, and the ALT
//! enable/disable machinery.
//!
//! Timing follows the paper: instruction cycle counts for the published
//! figures (§3.2.6, §3.2.9), the communication formula
//! `max(24, 21 + 8n/wordlength)` (§3.2.10), and the priority-switch
//! bounds (58 cycles worst case low→high, 17 cycles high→low, §3.2.4).
//!
//! ## Quick start
//!
//! ```
//! use transputer::{Cpu, CpuConfig};
//! use transputer::instr::{encode, encode_op, Direct, Op};
//!
//! // (3 + 4) * 5, hand-assembled.
//! let mut code = Vec::new();
//! code.extend(encode(Direct::LoadConstant, 3));
//! code.extend(encode(Direct::AddConstant, 4));
//! code.extend(encode(Direct::LoadConstant, 5));
//! code.extend(encode_op(Op::Multiply));
//! code.extend(encode_op(Op::HaltSimulation));
//!
//! let mut cpu = Cpu::new(CpuConfig::t424());
//! cpu.load_boot_program(&code)?;
//! cpu.run(100_000)?;
//! assert_eq!(cpu.areg(), 35);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Multi-transputer systems — wiring links between processors — live in
//! the companion `transputer-net` crate; the occam compiler that targets
//! this emulator lives in the `occam` crate.

pub mod cpu;
pub mod error;
pub mod instr;
pub mod linkif;
pub mod memory;
pub mod process;
pub mod stats;
pub mod timing;
pub mod trace;
pub mod word;

pub use cpu::{Cpu, CpuConfig, RunOutcome, SliceOutcome, StepEvent};
pub use error::{CpuError, HaltReason};
pub use memory::{Memory, MemoryConfig};
pub use process::{Priority, ProcDesc};
pub use stats::Stats;
pub use word::WordLength;
