//! Process representation: workspace layout, process descriptors, and the
//! special values threaded through channel and state words (§3.2.4).
//!
//! A process is identified by its *workspace pointer* (Wptr). The words
//! immediately below the workspace hold the scheduler's per-process
//! state — this is what lets a context switch "affect only the
//! instruction pointer and the workspace pointer" (§3.2.4): everything
//! else already lives in memory.

use crate::word::WordLength;

/// Workspace offset (in words, negative) of the saved instruction pointer.
pub const PW_IPTR: i32 = -1;
/// Offset of the scheduling-list link word (Figure 3).
pub const PW_LINK: i32 = -2;
/// Offset of the channel-data pointer / ALT state word.
pub const PW_STATE: i32 = -3;
/// Offset of the timer-queue link word.
pub const PW_TLINK: i32 = -4;
/// Offset of the wake-up time word.
pub const PW_TIME: i32 = -5;

/// Number of below-workspace words a blockable process needs.
pub const PW_SLOTS: u32 = 5;

/// Scheduling priority. The transputer supports two (§3.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Priority {
    /// Priority 0 — high. "A higher priority process always proceeds in
    /// preference to a lower priority one" (§2.2.2).
    High = 0,
    /// Priority 1 — low.
    Low = 1,
}

impl Priority {
    /// Index into per-priority register files.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decode from the low bit of a process descriptor.
    #[inline]
    pub fn from_bit(bit: u32) -> Priority {
        if bit & 1 == 0 {
            Priority::High
        } else {
            Priority::Low
        }
    }

    /// The descriptor bit.
    #[inline]
    pub fn bit(self) -> u32 {
        self as u32
    }

    /// The other priority.
    #[inline]
    pub fn other(self) -> Priority {
        match self {
            Priority::High => Priority::Low,
            Priority::Low => Priority::High,
        }
    }
}

/// Special process/state values, all taken from the reserved region near
/// MostNeg so they can never be confused with a real workspace address or
/// data pointer.
#[derive(Debug, Clone, Copy)]
pub struct Magic {
    /// "No process": empty channel word, empty queue.
    pub not_process: u32,
    /// ALT state: enabling guards.
    pub enabling: u32,
    /// ALT state: waiting for a guard to become ready.
    pub waiting: u32,
    /// ALT state: at least one guard ready.
    pub ready: u32,
    /// Timer-ALT state: no timeout armed yet.
    pub time_not_set: u32,
    /// Timer-ALT state: a timeout is armed.
    pub time_set: u32,
    /// "No branch selected yet" marker in the selection word.
    pub none_selected: u32,
}

impl Magic {
    /// The magic values for a word length.
    pub fn new(word: WordLength) -> Magic {
        let mn = word.most_neg();
        Magic {
            not_process: mn,
            enabling: word.mask(mn.wrapping_add(1)),
            waiting: word.mask(mn.wrapping_add(2)),
            ready: word.mask(mn.wrapping_add(3)),
            time_not_set: word.mask(mn.wrapping_add(1)),
            time_set: word.mask(mn.wrapping_add(2)),
            none_selected: word.mask(u32::MAX),
        }
    }

    /// Whether a channel word holds an ALT state marker rather than an
    /// ordinary waiting process.
    pub fn is_alt_state(&self, v: u32) -> bool {
        v == self.enabling || v == self.waiting || v == self.ready
    }
}

/// A process descriptor: workspace pointer with the priority in bit 0.
/// Workspaces are word aligned, so the low bits are free (§3.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcDesc(pub u32);

impl ProcDesc {
    /// Build a descriptor from a workspace pointer and priority.
    #[inline]
    pub fn new(wptr: u32, pri: Priority) -> ProcDesc {
        ProcDesc((wptr & !1) | pri.bit())
    }

    /// The workspace pointer.
    #[inline]
    pub fn wptr(self) -> u32 {
        self.0 & !1
    }

    /// The priority.
    #[inline]
    pub fn priority(self) -> Priority {
        Priority::from_bit(self.0)
    }

    /// Raw descriptor word.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Compute the address of a below/above-workspace word.
#[inline]
pub fn workspace_word(word: WordLength, wptr: u32, offset: i32) -> u32 {
    word.mask(wptr.wrapping_add((offset as u32).wrapping_mul(word.bytes_per_word())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip() {
        let d = ProcDesc::new(0x8000_0100, Priority::Low);
        assert_eq!(d.wptr(), 0x8000_0100);
        assert_eq!(d.priority(), Priority::Low);
        let h = ProcDesc::new(0x8000_0100, Priority::High);
        assert_eq!(h.raw(), 0x8000_0100);
        assert_eq!(h.priority(), Priority::High);
    }

    #[test]
    fn magic_values_are_distinct_and_reserved() {
        for w in [WordLength::Bits16, WordLength::Bits32] {
            let m = Magic::new(w);
            assert_ne!(m.not_process, m.enabling);
            assert_ne!(m.enabling, m.waiting);
            assert_ne!(m.waiting, m.ready);
            assert!(m.is_alt_state(m.enabling));
            assert!(m.is_alt_state(m.waiting));
            assert!(m.is_alt_state(m.ready));
            assert!(!m.is_alt_state(m.not_process));
            assert!(!m.is_alt_state(0));
        }
    }

    #[test]
    fn workspace_word_addressing() {
        let w = WordLength::Bits32;
        assert_eq!(workspace_word(w, 0x8000_0100, PW_IPTR), 0x8000_00FC);
        assert_eq!(workspace_word(w, 0x8000_0100, 2), 0x8000_0108);
    }

    #[test]
    fn priority_helpers() {
        assert_eq!(Priority::High.other(), Priority::Low);
        assert_eq!(Priority::from_bit(7), Priority::Low);
        assert_eq!(Priority::from_bit(6), Priority::High);
    }
}
