//! Execution instrumentation.
//!
//! The paper makes several *measurable* claims about the dynamic
//! behaviour of programs: "most of the executed operations (typically
//! 80%) are encoded in a single byte" (§3.2.3), "typical sequences of
//! commonly used instructions can deliver a 15 MIPS execution rate"
//! (§3.2.1), and the priority-switch bounds of §3.2.4. These counters
//! support reproducing those claims (experiments E12, E13, E6, E14).

use crate::instr::{Direct, Op};

/// Counters accumulated while a [`crate::Cpu`] executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Instruction bytes executed, including prefixing instructions
    /// (each prefix is itself a one-byte, one-cycle instruction, §3.2.7).
    pub instructions: u64,
    /// Logical operations executed (a prefix chain folds into the
    /// instruction it extends).
    pub operations: u64,
    /// Operations by encoded length in bytes; index 1 = single byte.
    pub length_histogram: [u64; 9],
    /// Executions of each direct function, indexed by nibble.
    pub direct_counts: [u64; 16],
    /// Executions of each indirect function, indexed by operation code
    /// (the out-of-band halt extension is counted in `halt_ops`).
    pub op_counts: [u64; 0x60],
    /// Executions of the simulation-halt extension operation.
    pub halt_ops: u64,
    /// Processes descheduled (blocked or time-sliced away).
    pub deschedules: u64,
    /// Dispatches of a new process (context switches).
    pub dispatches: u64,
    /// Low→high priority preemptions taken.
    pub preemptions: u64,
    /// Worst observed low→high switch latency, in cycles, measured from
    /// the instant the high-priority process became ready to its first
    /// instruction issuing (§3.2.4 bounds this at 58).
    pub max_preempt_latency: u64,
    /// High→low switches (resuming an interrupted low-priority process).
    pub priority_lowerings: u64,
    /// Completed channel communications (message level, counted once per
    /// message on the completing side).
    pub messages: u64,
    /// Bytes moved through channels (internal and external).
    pub message_bytes: u64,
    /// Link bytes retransmitted after an acknowledge timeout (robust
    /// protocol, counted at the sending node).
    pub link_retries: u64,
    /// Corrupt link frames detected and discarded at this node's inputs.
    pub link_rx_errors: u64,
    /// Duplicate data bytes identified by sequence bit and suppressed.
    pub link_dup_data: u64,
    /// Link directions declared failed after the retry budget ran out.
    pub link_failures: u64,
    /// Predecoded-instruction-cache lookups served from a valid entry.
    /// Host-side instrumentation only: the decode cache never changes
    /// simulated timing, so these counters are excluded from outcome
    /// fingerprints and differential comparisons.
    pub decode_hits: u64,
    /// Lookups that had to decode the byte stream and fill an entry.
    pub decode_misses: u64,
    /// Cache lines or entries discarded because a write landed in their
    /// code block since they were filled.
    pub decode_invalidations: u64,
    /// Operations executed through the byte-at-a-time path because their
    /// entry crosses an interaction point (`j` timeslice, resumable
    /// `operate`), lies outside penalty-free memory, or abuts the slice
    /// budget.
    pub decode_bypasses: u64,
    /// Hot basic blocks compiled into threaded-code form (see
    /// `cpu/translate.rs`). Host-side instrumentation, like the
    /// `decode_*` counters: excluded from fingerprints and
    /// differential comparisons.
    pub trans_blocks: u64,
    /// Entries into a translated block.
    pub trans_enters: u64,
    /// Deoptimisations: a translated block handed control back to the
    /// interpreter before running all its operations (interaction
    /// point, control transfer, preemption, timer work, budget, or a
    /// write into translated code).
    pub trans_deopts: u64,
    /// Translated blocks discarded because a covered code block's
    /// generation moved (self-modifying code or reloading).
    pub trans_invalidations: u64,
}

impl Default for Stats {
    fn default() -> Self {
        Stats {
            instructions: 0,
            operations: 0,
            length_histogram: [0; 9],
            direct_counts: [0; 16],
            op_counts: [0; 0x60],
            halt_ops: 0,
            deschedules: 0,
            dispatches: 0,
            preemptions: 0,
            max_preempt_latency: 0,
            priority_lowerings: 0,
            messages: 0,
            message_bytes: 0,
            link_retries: 0,
            link_rx_errors: 0,
            link_dup_data: 0,
            link_failures: 0,
            decode_hits: 0,
            decode_misses: 0,
            decode_invalidations: 0,
            decode_bypasses: 0,
            trans_blocks: 0,
            trans_enters: 0,
            trans_deopts: 0,
            trans_invalidations: 0,
        }
    }
}

impl Stats {
    /// Record a decoded operation of `len` bytes ending in `fun`.
    pub(crate) fn record_operation(&mut self, fun: Direct, len: usize) {
        self.operations += 1;
        let idx = len.min(self.length_histogram.len() - 1);
        self.length_histogram[idx] += 1;
        self.direct_counts[fun.nibble() as usize] += 1;
    }

    /// Record an indirect function execution.
    pub(crate) fn record_op(&mut self, op: Op) {
        let code = op.code();
        if (code as usize) < self.op_counts.len() {
            self.op_counts[code as usize] += 1;
        } else {
            self.halt_ops += 1;
        }
    }

    /// Fraction of operations encoded in a single byte (the paper's
    /// "typically 80%" claim, §3.2.3).
    pub fn single_byte_fraction(&self) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        self.length_histogram[1] as f64 / self.operations as f64
    }

    /// Mean cycles per instruction byte given a cycle total.
    pub fn cycles_per_instruction(&self, cycles: u64) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        cycles as f64 / self.instructions as f64
    }

    /// Instruction rate in MIPS for a processor frequency in MHz
    /// (instructions per second = instructions / (cycles / f)).
    pub fn mips(&self, cycles: u64, clock_mhz: f64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 * clock_mhz / cycles as f64
    }

    /// Executions of one indirect function.
    pub fn op_count(&self, op: Op) -> u64 {
        let code = op.code() as usize;
        if code < self.op_counts.len() {
            self.op_counts[code]
        } else {
            self.halt_ops
        }
    }

    /// Executions of one direct function.
    pub fn direct_count(&self, fun: Direct) -> u64 {
        self.direct_counts[fun.nibble() as usize]
    }

    /// These stats with the host-side decode-cache and translation-tier
    /// counters zeroed: every *simulated* quantity, suitable for
    /// asserting that neither host optimisation changes anything the
    /// program can observe.
    pub fn simulated(&self) -> Stats {
        Stats {
            decode_hits: 0,
            decode_misses: 0,
            decode_invalidations: 0,
            decode_bypasses: 0,
            trans_blocks: 0,
            trans_enters: 0,
            trans_deopts: 0,
            trans_invalidations: 0,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_fraction_counts_lengths() {
        let mut s = Stats::default();
        s.record_operation(Direct::LoadConstant, 1);
        s.record_operation(Direct::LoadConstant, 1);
        s.record_operation(Direct::LoadConstant, 2);
        s.record_operation(Direct::LoadConstant, 3);
        assert!((s.single_byte_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(s.direct_count(Direct::LoadConstant), 4);
    }

    #[test]
    fn mips_at_one_cycle_per_instruction() {
        let s = Stats {
            instructions: 1000,
            ..Stats::default()
        };
        // 1000 instructions in 1000 cycles at 20 MHz = 20 MIPS.
        assert!((s.mips(1000, 20.0) - 20.0).abs() < 1e-9);
        assert!((s.cycles_per_instruction(1500) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn op_counting() {
        let mut s = Stats::default();
        s.record_op(Op::Add);
        s.record_op(Op::Add);
        s.record_op(Op::HaltSimulation);
        assert_eq!(s.op_count(Op::Add), 2);
        assert_eq!(s.op_count(Op::HaltSimulation), 1);
        assert_eq!(s.op_count(Op::Multiply), 0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = Stats::default();
        assert_eq!(s.single_byte_fraction(), 0.0);
        assert_eq!(s.mips(0, 20.0), 0.0);
        assert_eq!(s.cycles_per_instruction(0), 0.0);
    }
}
