//! Instruction timing model (processor cycles).
//!
//! The paper prints cycle counts for a handful of instructions (§3.2.6,
//! §3.2.9) and formulae for communication (§3.2.10) and priority switching
//! (§3.2.4). Those figures are encoded here *and asserted by the
//! experiment suite*. Timings the paper does not print are taken from the
//! first-generation (T414-era) family documentation tradition and are
//! plausible rather than asserted; they are all collected in this module
//! so the model is auditable in one place.
//!
//! All figures assume program and data on chip, as the paper's do
//! ("The figures given in this paper assume that program and data are
//! stored on chip", §3.2.1). Off-chip penalties are modelled separately
//! by [`crate::MemoryConfig::off_chip_penalty`].

use crate::instr::{Direct, Op};
use crate::word::WordLength;

/// Cycles for a direct function (§3.2.6 table). `taken` matters only for
/// the conditional jump.
pub fn direct_cycles(fun: Direct, taken: bool) -> u32 {
    match fun {
        Direct::Jump => 3,
        Direct::LoadLocalPointer => 1,
        Direct::Prefix => 1,       // §3.2.7: one byte, one cycle
        Direct::LoadNonLocal => 2, // §3.2.6: store non local z takes 2
        Direct::LoadConstant => 1, // §3.2.6: load constant 0 takes 1
        Direct::LoadNonLocalPointer => 1,
        Direct::NegativePrefix => 1,
        Direct::LoadLocal => 2,   // §3.2.6: load local y takes 2
        Direct::AddConstant => 1, // §3.2.9: add constant 2 takes 1
        Direct::Call => 7,
        Direct::ConditionalJump => {
            if taken {
                4
            } else {
                2
            }
        }
        Direct::AdjustWorkspace => 1,
        Direct::EqualsConstant => 2,
        Direct::StoreLocal => 1,    // §3.2.6: store local x takes 1
        Direct::StoreNonLocal => 2, // §3.2.6 table 2
        Direct::Operate => 0,       // dispatch cost folded into op_cycles
    }
}

/// Cycles of the `multiply` operation itself. The paper's table charges
/// the complete two-byte sequence (one prefix plus `operate`) at
/// "7 + wordlength" cycles (§3.2.9); the prefix contributes one of them.
pub fn multiply_cycles(word: WordLength) -> u32 {
    6 + word.bits()
}

/// Total cycles of the encoded multiply sequence, as the paper's table
/// states it: 7 + wordlength.
pub fn multiply_sequence_cycles(word: WordLength) -> u32 {
    multiply_cycles(word) + 1
}

/// Divide cost; the paper does not print it, modelled symmetrically with
/// multiply.
pub fn divide_cycles(word: WordLength) -> u32 {
    6 + word.bits()
}

/// Remainder cost.
pub fn remainder_cycles(word: WordLength) -> u32 {
    4 + word.bits()
}

/// `product` (quick unchecked multiply): "the time taken is proportional
/// to the logarithm of the second operand" (§3.2.9). Modelled as
/// 4 cycles plus the bit position of the most significant set bit of the
/// second operand.
pub fn product_cycles(b_operand: u32) -> u32 {
    let highest = 32 - b_operand.leading_zeros();
    4 + highest
}

/// Shift cost: `n + 2` cycles for a shift of `n` places.
pub fn shift_cycles(places: u32) -> u32 {
    places.min(64) + 2
}

/// `loop end` when the decremented count is still positive: write back
/// the control block, bump the index, and jump backwards.
pub const LOOP_END_TAKEN: u32 = 10;

/// `loop end` when the loop is exhausted and control falls through.
pub const LOOP_END_EXIT: u32 = 5;

/// Internal-channel communication, total across both participating
/// processes including scheduling overhead (§3.2.10):
/// `max(24, 21 + 8n / wordlength)` cycles for an `n`-byte message.
///
/// The cost is split between the first-ready process (which must wait)
/// and the second-ready process (which performs the copy):
/// [`COMM_FIRST_PARTY`] cycles for the waiter and
/// `max(12, 9 + copy)` for the mover, where `copy` is one cycle per word
/// moved.
pub fn comm_total_cycles(n_bytes: u32, word: WordLength) -> u32 {
    let copy = copy_cycles(n_bytes, word);
    (21 + copy).max(24)
}

/// Cycles charged to the first-ready (waiting) side of a communication.
pub const COMM_FIRST_PARTY: u32 = 12;

/// Cycles charged to the second-ready (data-moving) side of an internal
/// communication of `n` bytes.
pub fn comm_second_party_cycles(n_bytes: u32, word: WordLength) -> u32 {
    (9 + copy_cycles(n_bytes, word)).max(COMM_FIRST_PARTY)
}

/// The microcoded block copy moves one word per cycle: `8n / wordlength`
/// cycles, rounded up (§3.2.10 formula).
pub fn copy_cycles(n_bytes: u32, word: WordLength) -> u32 {
    (8 * n_bytes).div_ceil(word.bits())
}

/// Cycles to initiate an external (link) transfer and deschedule; the
/// link engine then runs autonomously.
pub const LINK_INITIATE: u32 = 20;

/// Cycles to reschedule a process when its link transfer completes.
pub const LINK_COMPLETE: u32 = 4;

/// Fixed cost of the low-to-high priority switch machinery itself; on top
/// of this the processor may first have to finish (a bounded chunk of)
/// the current instruction, which is what brings the worst case to the
/// paper's 58-cycle bound (§3.2.4).
pub const PRIORITY_RAISE_SWITCH: u32 = 19;

/// "The switch from priority 0 to priority 1 ... takes 17 cycles" (§3.2.4).
pub const PRIORITY_LOWER_SWITCH: u32 = 17;

/// The paper's bound: "the maximum time taken to switch from priority 1
/// to priority 0 is 58 cycles" (§3.2.4).
pub const PRIORITY_RAISE_MAX: u32 = 58;

/// Longest non-interruptible instruction permitted by the latency budget:
/// `PRIORITY_RAISE_MAX - PRIORITY_RAISE_SWITCH`.
pub const MAX_UNINTERRUPTIBLE: u32 = PRIORITY_RAISE_MAX - PRIORITY_RAISE_SWITCH;

/// High-priority clock period in processor cycles: 1 microsecond at the
/// nominal 20 MHz internal clock (§2.2.2 gives each priority its own
/// incrementing clock).
pub const HI_TICK_CYCLES: u64 = 20;

/// Low-priority clock period: 64 microseconds.
pub const LO_TICK_CYCLES: u64 = 64 * HI_TICK_CYCLES;

/// Nominal processor cycle time in nanoseconds (50 ns at 20 MHz, §3.2.4).
pub const CYCLE_NS: u64 = 50;

/// Fixed-cost part of the operation table. Variable-cost operations
/// (multiply, shifts, communication, block moves, timer waits) return
/// `None` here and are computed by the executor.
pub fn op_fixed_cycles(op: Op) -> Option<u32> {
    let c = match op {
        Op::Reverse => 1,
        Op::LoadByte => 5,
        Op::ByteSubscript => 1,
        Op::EndProcess => 13,
        Op::Difference => 1,
        Op::Add => 1,
        Op::GeneralCall => 4,
        Op::Product => return None,
        Op::GreaterThan => 2,
        Op::WordSubscript => 2,
        Op::Subtract => 1,
        Op::StartProcess => 12,
        Op::SetError => 1,
        Op::ResetChannel => 3,
        Op::CheckSubscriptFromZero => 2,
        Op::StopProcess => 11,
        Op::LongAdd => 2,
        Op::StoreLowBack => 1,
        Op::StoreHighFront => 1,
        Op::Normalise => return None,
        Op::LongDivide => return None,
        Op::LoadPointerToInstruction => 2,
        Op::StoreLowFront => 1,
        Op::ExtendToDouble => 2,
        Op::LoadPriority => 1,
        Op::Remainder => return None,
        Op::Return => 5,
        Op::LoopEnd => return None,
        Op::LoadTimer => 2,
        Op::TestError => 2,
        Op::TestProcessorAnalysing => 2,
        Op::TimerInput => return None,
        Op::Divide => return None,
        Op::DisableTimer => 8,
        Op::DisableChannel => 8,
        Op::DisableSkip => 4,
        Op::LongMultiply => return None,
        Op::Not => 1,
        Op::ExclusiveOr => 1,
        Op::ByteCount => 2,
        Op::LongShiftRight => return None,
        Op::LongShiftLeft => return None,
        Op::LongSum => 3,
        Op::LongSubtract => 2,
        Op::RunProcess => 10,
        Op::ExtendWord => 4,
        Op::StoreByte => 4,
        Op::GeneralAdjustWorkspace => 2,
        Op::SaveLow => 4,
        Op::SaveHigh => 4,
        Op::WordCount => 5,
        Op::ShiftRight => return None,
        Op::ShiftLeft => return None,
        Op::MinimumInteger => 1,
        Op::Alt => 2,
        Op::AltWait => return None,
        Op::AltEnd => 4,
        Op::And => 1,
        Op::EnableTimer => 8,
        Op::EnableChannel => 7,
        Op::EnableSkip => 3,
        Op::Move => return None,
        Op::Or => 1,
        Op::CheckSingle => 3,
        Op::CheckCountFromOne => 3,
        Op::TimerAlt => 4,
        Op::LongDiff => 3,
        Op::StoreHighBack => 1,
        Op::TimerAltWait => return None,
        Op::Sum => 1,
        Op::Multiply => return None,
        Op::StoreTimer => 1,
        Op::StopOnError => 2,
        Op::CheckWord => 5,
        Op::ClearHaltOnError => 1,
        Op::SetHaltOnError => 1,
        Op::TestHaltOnError => 2,
        Op::InputMessage | Op::OutputMessage | Op::OutputByte | Op::OutputWord => return None,
        Op::HaltSimulation => 1,
    };
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_direct_costs() {
        // §3.2.6 and §3.2.9 tables.
        assert_eq!(direct_cycles(Direct::LoadConstant, false), 1);
        assert_eq!(direct_cycles(Direct::StoreLocal, false), 1);
        assert_eq!(direct_cycles(Direct::LoadLocal, false), 2);
        assert_eq!(direct_cycles(Direct::AddConstant, false), 1);
        assert_eq!(direct_cycles(Direct::StoreNonLocal, false), 2);
        assert_eq!(direct_cycles(Direct::Prefix, false), 1);
    }

    #[test]
    fn multiply_matches_paper() {
        // §3.2.9: the 2-byte multiply sequence takes 7 + wordlength cycles.
        assert_eq!(multiply_sequence_cycles(WordLength::Bits32), 39);
        assert_eq!(multiply_sequence_cycles(WordLength::Bits16), 23);
    }

    #[test]
    fn comm_formula() {
        // §3.2.10: max(24, 21 + 8n/wordlength).
        let w = WordLength::Bits32;
        assert_eq!(comm_total_cycles(1, w), 24);
        assert_eq!(comm_total_cycles(4, w), 24);
        assert_eq!(comm_total_cycles(12, w), 24);
        assert_eq!(comm_total_cycles(16, w), 25);
        assert_eq!(comm_total_cycles(64, w), 37);
        let w16 = WordLength::Bits16;
        assert_eq!(comm_total_cycles(64, w16), 53);
    }

    #[test]
    fn split_sums_to_formula() {
        for n in 1..=256u32 {
            for w in [WordLength::Bits16, WordLength::Bits32] {
                assert_eq!(
                    COMM_FIRST_PARTY + comm_second_party_cycles(n, w),
                    comm_total_cycles(n, w),
                    "n={n} w={w}"
                );
            }
        }
    }

    #[test]
    fn product_is_logarithmic() {
        assert!(product_cycles(2) < product_cycles(1 << 20));
        assert_eq!(product_cycles(0), 4);
        assert_eq!(product_cycles(1), 5);
    }

    #[test]
    fn latency_budget() {
        assert_eq!(PRIORITY_RAISE_MAX, 58);
        assert_eq!(PRIORITY_LOWER_SWITCH, 17);
        assert!(MAX_UNINTERRUPTIBLE >= multiply_cycles(WordLength::Bits32));
    }

    #[test]
    fn fixed_table_covers_fixed_ops() {
        // Every op either has a fixed cost or is one of the documented
        // variable-cost operations.
        use crate::instr::Op::*;
        for op in crate::instr::Op::ALL {
            if op_fixed_cycles(op).is_none() {
                assert!(matches!(
                    op,
                    Product
                        | Normalise
                        | LongDivide
                        | Remainder
                        | LoopEnd
                        | TimerInput
                        | Divide
                        | LongMultiply
                        | LongShiftRight
                        | LongShiftLeft
                        | ShiftRight
                        | ShiftLeft
                        | AltWait
                        | Move
                        | TimerAltWait
                        | Multiply
                        | InputMessage
                        | OutputMessage
                        | OutputByte
                        | OutputWord
                ));
            }
        }
    }
}
