//! Execution tracing: a bounded ring of recently executed operations.
//!
//! Tracing exists for debugging compilers and programs against the
//! emulator; it records completed operations (prefix chains folded, as
//! in the disassembler) with the machine state they left behind. The
//! ring is bounded so tracing can stay enabled across long runs.

use crate::instr::{Direct, Op};
use std::collections::VecDeque;

/// One traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle count when the operation completed.
    pub cycle: u64,
    /// Address of the operation's first byte.
    pub iptr: u32,
    /// Process descriptor executing it.
    pub wdesc: u32,
    /// Function code.
    pub fun: Direct,
    /// Accumulated operand.
    pub operand: u32,
    /// Decoded operation for `operate`.
    pub op: Option<Op>,
    /// A register after execution.
    pub areg: u32,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.op {
            Some(op) => write!(
                f,
                "[{:>8}] {:08x} w={:08x} {:<12} A={:08x}",
                self.cycle,
                self.iptr,
                self.wdesc,
                op.mnemonic(),
                self.areg
            ),
            None => write!(
                f,
                "[{:>8}] {:08x} w={:08x} {} {:<6} A={:08x}",
                self.cycle,
                self.iptr,
                self.wdesc,
                self.fun.mnemonic(),
                self.operand as i32,
                self.areg
            ),
        }
    }
}

/// A bounded ring of trace entries.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
}

impl TraceRing {
    /// A ring holding the most recent `capacity` operations.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
        }
    }

    /// Record an entry, evicting the oldest if full.
    pub(crate) fn push(&mut self, e: TraceEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(e);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the whole ring, one entry per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for e in &self.entries {
            let _ = writeln!(s, "{e}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Cpu, CpuConfig};
    use crate::instr::{encode, encode_op};

    #[test]
    fn ring_evicts_oldest() {
        let mut r = TraceRing::new(2);
        for i in 0..5u64 {
            r.push(TraceEntry {
                cycle: i,
                iptr: 0,
                wdesc: 0,
                fun: Direct::LoadConstant,
                operand: 0,
                op: None,
                areg: 0,
            });
        }
        assert_eq!(r.len(), 2);
        let cycles: Vec<u64> = r.entries().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
    }

    #[test]
    fn cpu_records_operations() {
        let mut cpu = Cpu::new(CpuConfig::t424());
        cpu.enable_trace(16);
        let mut code = Vec::new();
        code.extend(encode(Direct::LoadConstant, 0x754)); // 3 bytes, 1 op
        code.extend(encode(Direct::AddConstant, 1));
        code.extend(encode_op(Op::HaltSimulation));
        cpu.load_boot_program(&code).unwrap();
        cpu.run(1_000).unwrap();
        let trace = cpu.trace().expect("enabled");
        assert_eq!(trace.len(), 3, "three logical operations");
        let entries: Vec<&TraceEntry> = trace.entries().collect();
        assert_eq!(entries[0].fun, Direct::LoadConstant);
        assert_eq!(entries[0].operand, 0x754);
        assert_eq!(entries[0].areg, 0x754, "state after the op");
        assert_eq!(entries[1].areg, 0x755);
        assert_eq!(entries[2].op, Some(Op::HaltSimulation));
        // Offsets point at the first byte of each prefix chain.
        assert_eq!(entries[1].iptr, entries[0].iptr + 3);
        let text = trace.render();
        assert!(text.contains("ldc"));
        assert!(text.contains("haltsim"));
    }

    #[test]
    fn trace_is_optional_and_cheap_when_off() {
        let mut cpu = Cpu::new(CpuConfig::t424());
        assert!(cpu.trace().is_none());
        let mut code = encode(Direct::LoadConstant, 1);
        code.extend(encode_op(Op::HaltSimulation));
        cpu.load_boot_program(&code).unwrap();
        cpu.run(1_000).unwrap();
        assert!(cpu.trace().is_none());
    }
}
