//! One test per [`SliceOutcome`] variant, plus batched-vs-stepped
//! equivalence checks for `run_slice` / `run_batched`.
//!
//! The slice engine must stop at exactly the interaction points the
//! per-instruction engine would observe, so each variant is provoked
//! with the smallest program that reaches it.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::memory::{LINK_IN_BASE, LINK_OUT_BASE};
use transputer::{Cpu, CpuConfig, HaltReason, Priority, SliceOutcome};

/// Outword 0xBEEF on the link-0 output channel, then halt.
fn sender_code() -> Vec<u8> {
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadConstant, 0xBEEF));
    code.extend(encode_op(Op::MinimumInteger));
    code.extend(encode(Direct::LoadNonLocalPointer, LINK_OUT_BASE as i64));
    code.extend(encode_op(Op::OutputWord));
    code.extend(encode_op(Op::HaltSimulation));
    code
}

/// Input 4 bytes from the link-0 input channel into w[1], then halt.
fn receiver_code() -> Vec<u8> {
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadLocalPointer, 1));
    code.extend(encode_op(Op::MinimumInteger));
    code.extend(encode(Direct::LoadNonLocalPointer, LINK_IN_BASE as i64));
    code.extend(encode(Direct::LoadConstant, 4));
    code.extend(encode_op(Op::InputMessage));
    code.extend(encode(Direct::LoadLocal, 1));
    code.extend(encode_op(Op::HaltSimulation));
    code
}

#[test]
fn slice_exits_at_tx_ready() {
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&sender_code()).unwrap();
    let out = cpu.run_slice(1 << 20);
    assert_eq!(out, SliceOutcome::TxReady);
    assert!(
        cpu.take_links_dirty(),
        "tx start changes wire-visible state"
    );
    // The interacting instruction began no later than the current cycle.
    assert!(cpu.slice_interaction_cycle() <= cpu.cycles());
    // The wire can now collect the first byte of the word.
    assert!(cpu.link_tx_poll(0).is_some());
}

#[test]
fn slice_exits_at_rx_wait() {
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&receiver_code()).unwrap();
    let out = cpu.run_slice(1 << 20);
    assert_eq!(out, SliceOutcome::RxWait);
    // Nothing is runnable while the input blocks, and the receiver now
    // accepts an early acknowledge for the first incoming byte.
    assert!(cpu.is_idle());
    assert!(cpu.link_rx_early_ack(0));
}

#[test]
fn slice_exits_at_ack_raised() {
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&receiver_code()).unwrap();
    // A byte arrives before any process waits: it buffers, and the
    // acknowledge is deferred until a process takes it.
    let ack_now = cpu.link_rx_deliver(0, 0x11);
    assert!(!ack_now, "no process waiting: byte buffers, ack deferred");
    let out = cpu.run_slice(1 << 20);
    assert_eq!(out, SliceOutcome::AckRaised);
    assert!(
        cpu.link_take_deferred_ack(0),
        "the deferred acknowledge is owed to the wire"
    );
}

#[test]
fn slice_exits_idle_with_timer_wake() {
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    code.extend(encode_op(Op::LoadTimer));
    code.extend(encode(Direct::AddConstant, 2));
    code.extend(encode_op(Op::TimerInput));
    code.extend(encode_op(Op::HaltSimulation));
    cpu.load_boot_program(&code).unwrap();
    let out = cpu.run_slice(1 << 20);
    assert_eq!(out, SliceOutcome::Idle);
    let wake = cpu.next_timer_wake_cycle().expect("timer wait is armed");
    cpu.advance_idle_to(wake.max(cpu.cycles() + 1));
    assert_eq!(
        cpu.run_slice(1 << 20),
        SliceOutcome::Halted(HaltReason::Stopped)
    );
}

#[test]
fn slice_exits_halted_and_stays_halted() {
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadConstant, 1));
    code.extend(encode_op(Op::HaltSimulation));
    cpu.load_boot_program(&code).unwrap();
    assert_eq!(
        cpu.run_slice(1 << 20),
        SliceOutcome::Halted(HaltReason::Stopped)
    );
    // Idempotent: further slices report the same halt without running.
    let cycles = cpu.cycles();
    assert_eq!(
        cpu.run_slice(1 << 20),
        SliceOutcome::Halted(HaltReason::Stopped)
    );
    assert_eq!(cpu.cycles(), cycles);
}

#[test]
fn slice_exits_preempted_by_high_priority() {
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    // Low: endless multiply loop; High: one timer wait, then halt.
    let lo = code.len();
    code.extend(encode(Direct::LoadConstant, 3));
    code.extend(encode(Direct::LoadConstant, 3));
    code.extend(encode_op(Op::Multiply));
    code.extend(encode(Direct::StoreLocal, 1));
    let dist = lo as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, dist));
    let hi = code.len();
    code.extend(encode_op(Op::LoadTimer));
    code.extend(encode(Direct::AddConstant, 2));
    code.extend(encode_op(Op::TimerInput));
    code.extend(encode_op(Op::HaltSimulation));
    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).expect("fits");
    let w = cpu.default_boot_workspace();
    cpu.spawn(w, entry, Priority::Low);
    cpu.spawn(w.wrapping_sub(256), entry + hi as u32, Priority::High);

    let mut outcomes = Vec::new();
    for _ in 0..10_000 {
        let out = cpu.run_slice(1 << 16);
        outcomes.push(out);
        match out {
            SliceOutcome::Halted(_) => break,
            SliceOutcome::Idle => {
                let wake = cpu.next_timer_wake_cycle().expect("timer armed");
                cpu.advance_idle_to(wake.max(cpu.cycles() + 1));
            }
            _ => {}
        }
    }
    assert!(
        outcomes.contains(&SliceOutcome::Preempted),
        "the timer wake must preempt the low-priority loop: {outcomes:?}"
    );
    assert_eq!(
        *outcomes.last().unwrap(),
        SliceOutcome::Halted(HaltReason::Stopped)
    );
    assert!(cpu.stats().preemptions >= 1);
}

#[test]
fn slice_exits_budget_expired_at_instruction_boundary() {
    let mut batched = Cpu::new(CpuConfig::t424());
    let mut stepped = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    let lo = code.len();
    code.extend(encode(Direct::LoadConstant, 3));
    code.extend(encode(Direct::LoadConstant, 3));
    code.extend(encode_op(Op::Multiply));
    code.extend(encode(Direct::StoreLocal, 1));
    let dist = lo as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, dist));
    batched.load_boot_program(&code).unwrap();
    stepped.load_boot_program(&code).unwrap();

    let out = batched.run_slice(1_000);
    assert_eq!(out, SliceOutcome::BudgetExpired);
    // Every instruction *starting* inside the budget ran; the last may
    // finish past it, but only by one instruction's worth of cycles.
    assert!(batched.cycles() >= 1_000);

    // The stepped twin reaches the identical state at the same cycle.
    while stepped.cycles() < batched.cycles() {
        stepped.step();
    }
    assert_eq!(stepped.cycles(), batched.cycles());
    assert_eq!(stepped.iptr(), batched.iptr());
    assert_eq!(stepped.areg(), batched.areg());
    assert_eq!(
        stepped.stats().instructions,
        batched.stats().instructions,
        "stats audit: instruction counters agree between engines"
    );
}

#[test]
fn run_batched_matches_run_on_a_standalone_program() {
    // A compute-plus-timer program: run() and run_batched() must agree
    // on cycles, instruction counts, and the final memory image.
    let mut code = Vec::new();
    let lo = code.len();
    code.extend(encode(Direct::LoadConstant, 7));
    code.extend(encode(Direct::LoadConstant, 9));
    code.extend(encode_op(Op::Multiply));
    code.extend(encode(Direct::StoreLocal, 1));
    let dist = lo as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, dist));
    let hi = code.len();
    code.extend(encode_op(Op::LoadTimer));
    code.extend(encode(Direct::AddConstant, 3));
    code.extend(encode_op(Op::TimerInput));
    code.extend(encode_op(Op::HaltSimulation));

    let build = |code: &[u8]| {
        let mut cpu = Cpu::new(CpuConfig::t424());
        let entry = cpu.memory().mem_start();
        cpu.load(entry, code).expect("fits");
        let w = cpu.default_boot_workspace();
        cpu.spawn(w, entry, Priority::Low);
        cpu.spawn(w.wrapping_sub(256), entry + hi as u32, Priority::High);
        cpu
    };
    let mut a = build(&code);
    let mut b = build(&code);
    let ra = a.run(1_000_000).expect("halts");
    let rb = b.run_batched(1_000_000).expect("halts");
    assert_eq!(ra, rb);
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.stats().instructions, b.stats().instructions);
    assert_eq!(a.stats().preemptions, b.stats().preemptions);
    let start = a.memory().mem_start();
    let len = 4096usize;
    assert_eq!(
        a.memory().dump(start, len).unwrap(),
        b.memory().dump(start, len).unwrap(),
        "final memory images agree"
    );
}
