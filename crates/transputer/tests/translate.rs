//! The threaded-code translation tier must be invisible: any program
//! must produce bit-identical cycle counts, simulated statistics, and
//! memory images with translation enabled or disabled — including
//! programs that deoptimise mid-block at every kind of interaction
//! point. Each test here provokes one deopt cause from the contract in
//! `cpu/translate.rs`: channel rendezvous (input and output) in the
//! middle of a translated block, a timer wait inside a translated
//! region, and high-priority preemption of a translated low-priority
//! loop.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::{Cpu, CpuConfig, HaltReason, Priority, RunOutcome};

/// Encode a jump-family instruction at code offset `at` whose
/// displacement reaches `target`, resolving the length/operand
/// fixpoint.
fn jump_to(fun: Direct, at: usize, target: usize) -> Vec<u8> {
    for len in 1..=4 {
        let operand = target as i64 - (at + len) as i64;
        let e = encode(fun, operand);
        if e.len() == len {
            return e;
        }
    }
    panic!("no encoding fixpoint for jump from {at} to {target}");
}

/// A config with translation forced on or off. The threshold of 1
/// translates every block leader on first arrival, so even short test
/// programs execute translated from the start.
fn config(translate: bool) -> CpuConfig {
    CpuConfig::t424()
        .with_translate(translate)
        .with_translate_threshold(1)
}

fn run_with(code: &[u8], translate: bool) -> Cpu {
    let mut cpu = Cpu::new(config(translate));
    cpu.load_boot_program(code).expect("program fits");
    match cpu.run_batched(100_000_000).expect("no budget overrun") {
        RunOutcome::Halted(HaltReason::Stopped) => {}
        other => panic!("program did not halt cleanly: {other:?}"),
    }
    cpu
}

/// Run a program with translation on and off and assert every
/// simulated observable — cycle count, statistics, the full memory
/// image — is identical. Returns the translated run for extra
/// assertions.
fn assert_transparent_with(build: impl Fn(bool) -> Cpu) -> Cpu {
    let on = build(true);
    let off = build(false);
    assert_eq!(on.cycles(), off.cycles(), "cycle counts diverged");
    assert_eq!(
        on.stats().simulated(),
        off.stats().simulated(),
        "simulated statistics diverged"
    );
    let base = on.memory().base();
    let size = on.memory().size() as usize;
    assert_eq!(
        on.memory().dump(base, size).unwrap(),
        off.memory().dump(base, size).unwrap(),
        "memory images diverged"
    );
    assert!(on.stats().trans_enters > 0, "translation never engaged");
    assert_eq!(
        off.stats().trans_enters + off.stats().trans_blocks,
        0,
        "disabled translation still ran"
    );
    on
}

fn assert_transparent(code: &[u8]) -> Cpu {
    let code = code.to_vec();
    assert_transparent_with(move |translate| run_with(&code, translate))
}

fn local_word(cpu: &mut Cpu, index: u32) -> u32 {
    let addr = cpu.default_boot_workspace() + 4 * index;
    cpu.peek_word(addr).expect("workspace in range")
}

/// Resolve the `ldc`-operand fixpoint for a `startp` child whose entry
/// is at code offset `child_entry`: the operand counts from the byte
/// after `startp`, but its own encoding length shifts everything after
/// it. Returns the final image. `tail_after_ldc` is the byte length of
/// the instructions between the `ldc` and the end of `startp`.
fn patch_startp(code: &[u8], ldc_pos: usize, tail_after_ldc: usize, child_entry: usize) -> Vec<u8> {
    let mut delta = 0i64;
    loop {
        let mut out = Vec::new();
        out.extend_from_slice(&code[..ldc_pos]);
        let before = out.len();
        out.extend(encode(Direct::LoadConstant, delta));
        let enc_len = out.len() - before;
        out.extend_from_slice(&code[ldc_pos + 1..]);
        let startp_end = ldc_pos + enc_len + tail_after_ldc;
        let entry = child_entry + enc_len - 1;
        let need = (entry - startp_end) as i64;
        if need == delta {
            return out;
        }
        delta = need;
    }
}

/// A producer/consumer pair over an internal channel, both hot loops.
/// The consumer's `in` and the producer's `outword` sit in the middle
/// of their blocks (followed by further sequential operations), so
/// every rendezvous that blocks forces a mid-block deoptimisation and
/// a later resumption at an interpreter-visible operation boundary.
///
/// The producer sends N, N-1, .., 1, then a terminating 0; the
/// consumer accumulates the sum in w[11] and halts when it sees 0.
fn channel_rendezvous_program(n: i64) -> Vec<u8> {
    let mut c: Vec<u8> = Vec::new();
    // Parent (consumer). Channel word at w[10], sum at w[11], receive
    // buffer at w[13]; child workspace 40 words below (channel is its
    // w[50]).
    c.extend(encode_op(Op::MinimumInteger));
    c.extend(encode(Direct::StoreLocal, 10));
    c.extend(encode(Direct::LoadConstant, 0));
    c.extend(encode(Direct::StoreLocal, 11));
    let ldc_pos = c.len();
    c.extend(encode(Direct::LoadConstant, 0)); // patched: child entry
    let tail_start = c.len();
    c.extend(encode(Direct::LoadLocalPointer, -40));
    c.extend(encode_op(Op::StartProcess));
    let tail_after_ldc = c.len() - tail_start;
    let ploop = c.len();
    c.extend(encode(Direct::LoadLocalPointer, 13));
    c.extend(encode(Direct::LoadLocalPointer, 10));
    c.extend(encode(Direct::LoadConstant, 4));
    c.extend(encode_op(Op::InputMessage)); // mid-block: ops follow
    c.extend(encode(Direct::LoadLocal, 11));
    c.extend(encode(Direct::LoadLocal, 13));
    c.extend(encode_op(Op::Add));
    c.extend(encode(Direct::StoreLocal, 11));
    c.extend(encode(Direct::LoadLocal, 13));
    let back = jump_to(Direct::Jump, c.len() + 1, ploop);
    let cj = encode(Direct::ConditionalJump, back.len() as i64);
    assert_eq!(cj.len(), 1, "cj displacement must stay single-byte");
    c.extend(cj); // received 0: exit the loop
    c.extend(back);
    c.extend(encode_op(Op::HaltSimulation));

    // Child (producer): count in its w[1], channel at its w[50].
    let child_entry = c.len();
    c.extend(encode(Direct::LoadConstant, n));
    c.extend(encode(Direct::StoreLocal, 1));
    let cloop = c.len();
    c.extend(encode(Direct::LoadLocal, 1));
    c.extend(encode(Direct::LoadLocalPointer, 50));
    c.extend(encode_op(Op::OutputWord)); // mid-block: ops follow
    c.extend(encode(Direct::LoadLocal, 1));
    c.extend(encode(Direct::AddConstant, -1));
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadLocal, 1));
    let back = jump_to(Direct::Jump, c.len() + 1, cloop);
    let cj = encode(Direct::ConditionalJump, back.len() as i64);
    assert_eq!(cj.len(), 1, "cj displacement must stay single-byte");
    c.extend(cj); // counter hit 0: send the terminator
    c.extend(back);
    c.extend(encode(Direct::LoadConstant, 0));
    c.extend(encode(Direct::LoadLocalPointer, 50));
    c.extend(encode_op(Op::OutputWord));
    c.extend(encode_op(Op::StopProcess));

    patch_startp(&c, ldc_pos, tail_after_ldc, child_entry)
}

#[test]
fn channel_rendezvous_mid_block_deopts_and_resumes_exactly() {
    let n = 50i64;
    let mut on = assert_transparent(&channel_rendezvous_program(n));
    let expected = (n * (n + 1) / 2) as u32;
    assert_eq!(local_word(&mut on, 11), expected, "sum of sent words");
    assert!(
        on.stats().trans_deopts > 0,
        "a blocking rendezvous inside a block must deoptimise"
    );
    assert!(on.stats().messages >= n as u64, "every word was a message");
}

/// A hot loop whose body *starts* with a timer wait: `ldtimer; adc;
/// tin` followed by arithmetic in the same translated block. Every
/// iteration the `tin` blocks on a future time, descheduling the
/// process mid-block; the timer wake must resume it at exactly the
/// interpreter's operation boundary and cycle.
#[test]
fn timer_wakeup_inside_translated_region() {
    let mut c: Vec<u8> = Vec::new();
    c.extend(encode(Direct::LoadConstant, 0));
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadConstant, 12));
    c.extend(encode(Direct::StoreLocal, 2));
    let top = c.len();
    c.extend(encode_op(Op::LoadTimer));
    c.extend(encode(Direct::AddConstant, 3));
    c.extend(encode_op(Op::TimerInput)); // mid-block: ops follow
    c.extend(encode(Direct::LoadLocal, 1));
    c.extend(encode(Direct::AddConstant, 7));
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadLocal, 2));
    c.extend(encode(Direct::AddConstant, -1));
    c.extend(encode(Direct::StoreLocal, 2));
    c.extend(encode(Direct::LoadLocal, 2));
    let back = jump_to(Direct::Jump, c.len() + 1, top);
    let cj = encode(Direct::ConditionalJump, back.len() as i64);
    assert_eq!(cj.len(), 1);
    c.extend(cj);
    c.extend(back);
    c.extend(encode_op(Op::HaltSimulation));

    let mut on = assert_transparent(&c);
    assert_eq!(local_word(&mut on, 1), 12 * 7);
    assert!(
        on.stats().trans_deopts >= 12,
        "every iteration's blocking tin must deoptimise mid-block"
    );
}

/// A low-priority translated arithmetic loop preempted by a
/// high-priority process waking from a timer wait: the preemption is a
/// descheduling point, and the low process must be suspended and
/// resumed at exactly the boundary the interpreter would pick.
#[test]
fn preemption_of_a_translated_low_priority_loop() {
    let mut code: Vec<u8> = Vec::new();
    // Low priority: a long countdown loop of translatable operations.
    code.extend(encode(Direct::LoadConstant, 0));
    code.extend(encode(Direct::StoreLocal, 1));
    code.extend(encode(Direct::LoadConstant, 2000));
    code.extend(encode(Direct::StoreLocal, 2));
    let top = code.len();
    code.extend(encode(Direct::LoadLocal, 1));
    code.extend(encode(Direct::AddConstant, 0x1234));
    code.extend(encode(Direct::StoreLocal, 1));
    code.extend(encode(Direct::LoadLocal, 2));
    code.extend(encode(Direct::AddConstant, -1));
    code.extend(encode(Direct::StoreLocal, 2));
    code.extend(encode(Direct::LoadLocal, 2));
    let back = jump_to(Direct::Jump, code.len() + 1, top);
    let cj = encode(Direct::ConditionalJump, back.len() as i64);
    assert_eq!(cj.len(), 1);
    code.extend(cj);
    code.extend(back);
    code.extend(encode_op(Op::HaltSimulation));
    // High priority: one timer wait, a marker store, then stop.
    let hi = code.len();
    code.extend(encode_op(Op::LoadTimer));
    code.extend(encode(Direct::AddConstant, 2));
    code.extend(encode_op(Op::TimerInput));
    code.extend(encode(Direct::LoadConstant, 99));
    code.extend(encode(Direct::StoreLocal, 3));
    code.extend(encode_op(Op::StopProcess));

    let build = |translate: bool| {
        let mut cpu = Cpu::new(config(translate));
        let entry = cpu.memory().mem_start();
        cpu.load(entry, &code).expect("fits");
        let w = cpu.default_boot_workspace();
        cpu.spawn(w, entry, Priority::Low);
        cpu.spawn(w.wrapping_sub(256), entry + hi as u32, Priority::High);
        match cpu.run_batched(100_000_000).expect("no budget overrun") {
            RunOutcome::Halted(HaltReason::Stopped) => {}
            other => panic!("program did not halt cleanly: {other:?}"),
        }
        cpu
    };
    let mut on = assert_transparent_with(build);
    assert_eq!(local_word(&mut on, 1), 0x1234u32.wrapping_mul(2000));
    assert!(
        on.stats().preemptions >= 1,
        "the timer wake must preempt the low-priority loop"
    );
    assert!(
        on.stats().trans_enters > 1,
        "the loop must re-enter its block after resumption"
    );
}

/// The plain hot-loop case: no interactions at all, the whole program
/// executes translated after warmup, and everything still matches.
#[test]
fn hot_arithmetic_loop_is_transparent() {
    let mut c: Vec<u8> = Vec::new();
    c.extend(encode(Direct::LoadConstant, 0));
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadConstant, 300));
    c.extend(encode(Direct::StoreLocal, 2));
    let top = c.len();
    // One iteration exercises every specialised arm: ldl/adc/stl, then
    // a non-local round trip (stnl to w[6] via ldlp/ldnlp, ldnl back),
    // an eqc, and the countdown.
    c.extend(encode(Direct::LoadLocal, 1));
    c.extend(encode(Direct::AddConstant, 0x4321));
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadLocal, 1)); // value
    c.extend(encode(Direct::LoadLocalPointer, 0));
    c.extend(encode(Direct::LoadNonLocalPointer, 6)); // address &w[6]
    c.extend(encode(Direct::StoreNonLocal, 0)); // w[6] := sum
    c.extend(encode(Direct::LoadLocalPointer, 0));
    c.extend(encode(Direct::LoadNonLocal, 6)); // reload the sum
    c.extend(encode(Direct::EqualsConstant, 0));
    c.extend(encode(Direct::StoreLocal, 5));
    c.extend(encode(Direct::LoadLocal, 2));
    c.extend(encode(Direct::AddConstant, -1));
    c.extend(encode(Direct::StoreLocal, 2));
    c.extend(encode(Direct::LoadLocal, 2));
    let back = jump_to(Direct::Jump, c.len() + 1, top);
    let cj = encode(Direct::ConditionalJump, back.len() as i64);
    assert_eq!(cj.len(), 1);
    c.extend(cj);
    c.extend(back);
    c.extend(encode_op(Op::HaltSimulation));

    let mut on = assert_transparent(&c);
    assert_eq!(local_word(&mut on, 1), 0x4321u32.wrapping_mul(300));
    assert!(on.stats().trans_blocks > 0, "the loop must be translated");
    assert!(
        on.stats().trans_enters as usize > 100,
        "the loop body must run translated, not interpreted"
    );
}
