//! The predecoded instruction cache must be invisible: any program
//! must produce bit-identical results, cycle counts, and memory images
//! with the cache enabled or disabled — including programs that rewrite
//! their own code. Plus the `advance_idle_to` widening regression.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::{Cpu, CpuConfig, HaltReason, Priority, RunOutcome};

/// Encode a jump-family instruction at code offset `at` whose
/// displacement reaches `target`, resolving the length/operand
/// fixpoint (the operand is relative to the *end* of the instruction,
/// whose length depends on the operand).
fn jump_to(fun: Direct, at: usize, target: usize) -> Vec<u8> {
    for len in 1..=4 {
        let operand = target as i64 - (at + len) as i64;
        let e = encode(fun, operand);
        if e.len() == len {
            return e;
        }
    }
    panic!("no encoding fixpoint for jump from {at} to {target}");
}

/// Append `ldc d; ldpi` so that A becomes the address of code offset
/// `target`, resolving the same length fixpoint.
fn push_code_address(c: &mut Vec<u8>, target: usize) {
    let ldpi = encode_op(Op::LoadPointerToInstruction);
    for len in 1..=4 {
        let after = c.len() + len + ldpi.len();
        let d = target as i64 - after as i64;
        let e = encode(Direct::LoadConstant, d);
        if e.len() == len {
            c.extend(e);
            c.extend(&ldpi);
            return;
        }
    }
    panic!("no encoding fixpoint for code address of {target}");
}

fn run_with(code: &[u8], decode_cache: bool) -> Cpu {
    let mut cpu = Cpu::new(CpuConfig::t424().with_decode_cache(decode_cache));
    cpu.load_boot_program(code).expect("program fits");
    match cpu.run_batched(10_000_000).expect("no budget overrun") {
        RunOutcome::Halted(HaltReason::Stopped) => {}
        other => panic!("program did not halt cleanly: {other:?}"),
    }
    cpu
}

/// Run a program both ways and assert every observable — the answer
/// word, cycle count, simulated statistics, and the full memory image —
/// is identical. Returns the cache-enabled run for extra assertions.
fn assert_transparent(code: &[u8]) -> Cpu {
    let on = run_with(code, true);
    let off = run_with(code, false);
    assert_eq!(on.cycles(), off.cycles(), "cycle counts diverged");
    assert_eq!(
        on.stats().simulated(),
        off.stats().simulated(),
        "simulated statistics diverged"
    );
    let base = on.memory().base();
    let size = on.memory().size() as usize;
    assert_eq!(
        on.memory().dump(base, size).unwrap(),
        off.memory().dump(base, size).unwrap(),
        "memory images diverged"
    );
    assert!(
        on.stats().decode_hits + on.stats().decode_misses > 0,
        "cache never engaged"
    );
    assert_eq!(off.stats().decode_hits, 0, "disabled cache served hits");
    assert_eq!(off.stats().decode_misses, 0, "disabled cache decoded");
    on
}

fn local_word(cpu: &mut Cpu, index: u32) -> u32 {
    let addr = cpu.default_boot_workspace() + 4 * index;
    cpu.peek_word(addr).expect("workspace in range")
}

#[test]
fn advance_idle_to_is_not_truncated_to_u32() {
    // The gap far exceeds u32::MAX cycles; the pre-widening code
    // advanced only `gap as u32` and landed short.
    let target = 5 * (u64::from(u32::MAX) + 1) + 12_345;
    let mut one = Cpu::new(CpuConfig::t424());
    one.advance_idle_to(target);
    assert_eq!(one.cycles(), target, "idle gap was truncated");

    // The same distance in small hops must land on identical clocks:
    // the closed-form (lazy) tick reconstruction equals ticking through.
    let mut many = Cpu::new(CpuConfig::t424());
    let mut at = 0u64;
    while at < target {
        at = (at + 999_983).min(target);
        many.advance_idle_to(at);
    }
    assert_eq!(many.cycles(), target);
    for pri in [Priority::High, Priority::Low] {
        assert_eq!(
            one.clock_value(pri),
            many.clock_value(pri),
            "{pri:?} clock diverged between one jump and many hops"
        );
    }
}

/// `ldc 0` at offset 0 is executed, then rewritten to `ldc 1` by a
/// store the program itself performs, then re-executed. A stale decode
/// entry would replay `ldc 0` and loop forever.
fn self_modifying_program() -> Vec<u8> {
    let mut c: Vec<u8> = Vec::new();
    // T (offset 0): patched from `ldc 0` (0x40) to `ldc 1` (0x41).
    c.extend(encode(Direct::LoadConstant, 0));
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadLocal, 1));
    let halt = encode_op(Op::HaltSimulation);
    // First pass: A == 0, so cj skips the halt into the patch code.
    c.extend(encode(Direct::ConditionalJump, halt.len() as i64));
    c.extend(&halt);
    // Patch: mem[T] := 0x41, then loop back to T.
    c.extend(encode(Direct::LoadConstant, 0x41));
    push_code_address(&mut c, 0);
    c.extend(encode_op(Op::StoreByte));
    let at = c.len();
    c.extend(jump_to(Direct::Jump, at, 0));
    c
}

#[test]
fn rewriting_an_executed_instruction_invalidates_its_entry() {
    let mut on = assert_transparent(&self_modifying_program());
    assert_eq!(local_word(&mut on, 1), 1, "second pass ran stale code");
    assert!(
        on.stats().decode_invalidations > 0,
        "the rewrite must invalidate the cached block"
    );
}

/// A `pfix`/`ldc` chain straddling the 64-byte block boundary: the
/// first byte sits at offset 63, the terminal at offset 64. The
/// program rewrites the byte in the *next* block; the spanning entry
/// (cached in the first block's line) must still be invalidated.
fn spanning_chain_program() -> Vec<u8> {
    let mut c: Vec<u8> = Vec::new();
    // Padding so the two-byte `pfix 1; ldc 0` starts on the last byte
    // of block 0.
    while c.len() < 63 {
        c.extend(encode(Direct::LoadConstant, 0));
    }
    // T (offsets 63..=64): `ldc 0x10`; the byte at offset 64 is
    // patched from 0x40 (`ldc 0` terminal) to 0x41, making `ldc 0x11`.
    let t = c.len();
    c.extend(encode(Direct::LoadConstant, 0x10));
    assert_eq!(c.len(), 65, "chain must straddle the block boundary");
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadLocal, 1));
    c.extend(encode(Direct::EqualsConstant, 0x10));
    // First pass: A == 1 (w1 == 0x10), falls through into the patch.
    // Second pass: A == 0, jumps over it to the halt.
    let mut patch: Vec<u8> = Vec::new();
    patch.extend(encode(Direct::LoadConstant, 0x41));
    // The patch target is the terminal byte in block 1.
    let cj = encode(Direct::ConditionalJump, 0); // length probe only
    let patch_base = c.len() + cj.len();
    {
        let ldpi = encode_op(Op::LoadPointerToInstruction);
        let target = 64usize;
        let mut found = false;
        for len in 1..=4 {
            let after = patch_base + patch.len() + len + ldpi.len();
            let d = target as i64 - after as i64;
            let e = encode(Direct::LoadConstant, d);
            if e.len() == len {
                patch.extend(e);
                patch.extend(&ldpi);
                found = true;
                break;
            }
        }
        assert!(found, "no encoding fixpoint for patch address");
    }
    patch.extend(encode_op(Op::StoreByte));
    let at = patch_base + patch.len();
    patch.extend(jump_to(Direct::Jump, at, t));
    let cj = encode(Direct::ConditionalJump, patch.len() as i64);
    assert_eq!(cj.len(), 1, "cj displacement must stay single-byte");
    c.extend(cj);
    c.extend(patch);
    c.extend(encode_op(Op::HaltSimulation));
    c
}

#[test]
fn writing_into_the_next_cache_line_invalidates_spanning_entries() {
    let mut on = assert_transparent(&spanning_chain_program());
    assert_eq!(
        local_word(&mut on, 1),
        0x11,
        "second pass fused a stale spanning chain"
    );
    assert!(
        on.stats().decode_invalidations > 0,
        "the next-block write must invalidate the spanning entry"
    );
}

/// Like [`run_with`]/[`assert_transparent`], but toggling the
/// *translation* tier (threshold 1: every leader translates on first
/// arrival) with the decode cache on in both runs. Self-modifying
/// programs must see identical results whether their hot blocks run
/// threaded or through the per-operation cache.
fn run_translated(code: &[u8], translate: bool) -> Cpu {
    let mut cpu = Cpu::new(
        CpuConfig::t424()
            .with_translate(translate)
            .with_translate_threshold(1),
    );
    cpu.load_boot_program(code).expect("program fits");
    match cpu.run_batched(10_000_000).expect("no budget overrun") {
        RunOutcome::Halted(HaltReason::Stopped) => {}
        other => panic!("program did not halt cleanly: {other:?}"),
    }
    cpu
}

fn assert_translation_transparent(code: &[u8]) -> Cpu {
    let on = run_translated(code, true);
    let off = run_translated(code, false);
    assert_eq!(on.cycles(), off.cycles(), "cycle counts diverged");
    assert_eq!(
        on.stats().simulated(),
        off.stats().simulated(),
        "simulated statistics diverged"
    );
    let base = on.memory().base();
    let size = on.memory().size() as usize;
    assert_eq!(
        on.memory().dump(base, size).unwrap(),
        off.memory().dump(base, size).unwrap(),
        "memory images diverged"
    );
    assert!(on.stats().trans_enters > 0, "translation never engaged");
    assert_eq!(
        off.stats().trans_enters + off.stats().trans_blocks,
        0,
        "disabled translation still ran"
    );
    on
}

/// The store lands inside the 64-byte code block of the *currently
/// executing* translated block (the patch code and its target share
/// block 0): the code-epoch check must deoptimise the block mid-run,
/// and the stale leader must be invalidated and retranslated on
/// re-entry.
#[test]
fn storing_into_an_executing_translated_block_deopts_and_invalidates() {
    let mut on = assert_translation_transparent(&self_modifying_program());
    assert_eq!(local_word(&mut on, 1), 1, "second pass ran stale code");
    assert!(
        on.stats().trans_invalidations > 0,
        "the rewrite must invalidate the translated leader"
    );
    assert!(
        on.stats().trans_deopts > 0,
        "the store inside the executing block must deoptimise it"
    );
}

/// A translated block whose leader instruction spans the 64-byte
/// boundary (first byte at offset 63, terminal at 64): a store into
/// the *adjacent* block — not the leader's own — must still invalidate
/// it via the cover snapshots. The loop rewrites the terminal byte on
/// every iteration (same value, but a write is a write), so the block
/// is invalidated and retranslated each time around.
fn spanning_translated_program() -> Vec<u8> {
    let mut c: Vec<u8> = Vec::new();
    c.extend(encode(Direct::LoadConstant, 5)); // loop counter in w[2]
    c.extend(encode(Direct::StoreLocal, 2));
    // Padding so the two-byte `pfix 1; ldc 0` starts on the last byte
    // of block 0.
    while c.len() < 63 {
        c.extend(encode(Direct::LoadConstant, 0));
    }
    let t = c.len();
    c.extend(encode(Direct::LoadConstant, 0x10)); // patched to ldc 0x11
    assert_eq!(c.len(), 65, "chain must straddle the block boundary");
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadLocal, 2));
    c.extend(encode(Direct::AddConstant, -1));
    c.extend(encode(Direct::StoreLocal, 2));
    c.extend(encode(Direct::LoadLocal, 2));
    // Counter exhausted: skip the patch-and-loop tail to the halt.
    let mut patch: Vec<u8> = Vec::new();
    patch.extend(encode(Direct::LoadConstant, 0x41));
    let cj = encode(Direct::ConditionalJump, 0); // length probe only
    let patch_base = c.len() + cj.len();
    {
        let ldpi = encode_op(Op::LoadPointerToInstruction);
        let target = 64usize;
        let mut found = false;
        for len in 1..=4 {
            let after = patch_base + patch.len() + len + ldpi.len();
            let d = target as i64 - after as i64;
            let e = encode(Direct::LoadConstant, d);
            if e.len() == len {
                patch.extend(e);
                patch.extend(&ldpi);
                found = true;
                break;
            }
        }
        assert!(found, "no encoding fixpoint for patch address");
    }
    patch.extend(encode_op(Op::StoreByte));
    let at = patch_base + patch.len();
    patch.extend(jump_to(Direct::Jump, at, t));
    let cj = encode(Direct::ConditionalJump, patch.len() as i64);
    assert_eq!(cj.len(), 1, "cj displacement must stay single-byte");
    c.extend(cj);
    c.extend(patch);
    c.extend(encode_op(Op::HaltSimulation));
    c
}

#[test]
fn storing_into_the_adjacent_code_block_invalidates_translated_spans() {
    let mut on = assert_translation_transparent(&spanning_translated_program());
    assert_eq!(
        local_word(&mut on, 1),
        0x11,
        "later passes fused a stale spanning chain"
    );
    assert!(
        on.stats().trans_invalidations >= 3,
        "every loop iteration's rewrite must invalidate the spanning \
         leader (got {})",
        on.stats().trans_invalidations
    );
}

#[test]
fn straight_line_arithmetic_is_transparent() {
    // A dense loop of fused multi-byte operations: ldc/adc/stl with
    // operands needing prefixes, plus a backward jump.
    let mut c: Vec<u8> = Vec::new();
    c.extend(encode(Direct::LoadConstant, 0));
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadConstant, 200)); // loop counter
    c.extend(encode(Direct::StoreLocal, 2));
    let top = c.len();
    c.extend(encode(Direct::LoadLocal, 1));
    c.extend(encode(Direct::AddConstant, 0x1234));
    c.extend(encode(Direct::StoreLocal, 1));
    c.extend(encode(Direct::LoadLocal, 2));
    c.extend(encode(Direct::AddConstant, -1));
    c.extend(encode(Direct::StoreLocal, 2));
    c.extend(encode(Direct::LoadLocal, 2));
    let at = c.len();
    c.extend(jump_to(Direct::ConditionalJump, at, top));
    // ConditionalJump falls through while the counter is non-zero —
    // invert: cj jumps when A == 0, so jump out of the loop instead.
    let mut c2: Vec<u8> = Vec::new();
    c2.extend_from_slice(&c[..at]);
    let exit_cj = encode(Direct::ConditionalJump, 0);
    let back_at = at + exit_cj.len();
    let back = jump_to(Direct::Jump, back_at, top);
    let exit_cj = encode(Direct::ConditionalJump, back.len() as i64);
    assert_eq!(exit_cj.len(), 1);
    c2.extend(exit_cj);
    c2.extend(back);
    c2.extend(encode_op(Op::HaltSimulation));
    let mut on = assert_transparent(&c2);
    let expected = (0x1234u32).wrapping_mul(200);
    assert_eq!(local_word(&mut on, 1), expected);
    assert!(
        on.stats().decode_hits > on.stats().decode_misses,
        "a hot loop must be served mostly from the cache"
    );
}
