//! Instruction-level tests of the alternative machinery (§2.2, §3.2.10):
//! enable/disable sequences, skip and timer guards, wakeups from
//! outputting processes, and selection priority.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::{Cpu, CpuConfig, HaltReason, Priority, RunOutcome};

struct Asm(Vec<u8>);

impl Asm {
    fn new() -> Asm {
        Asm(Vec::new())
    }
    fn d(&mut self, f: Direct, v: i64) -> &mut Asm {
        self.0.extend(encode(f, v));
        self
    }
    fn o(&mut self, op: Op) -> &mut Asm {
        self.0.extend(encode_op(op));
        self
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

/// ALT with a single true SKIP guard selects it immediately.
#[test]
fn skip_guard_selects_immediately() {
    // alt; ldc 1 (guard); enbs; altwt; ldc 1; ldc <off>; diss; altend;
    // branch: ldc 7; haltsim
    let mut a = Asm::new();
    a.o(Op::Alt);
    a.d(Direct::LoadConstant, 1).o(Op::EnableSkip);
    a.o(Op::AltWait);
    a.d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 0); // branch offset: altend falls through
    a.o(Op::DisableSkip);
    a.o(Op::AltEnd);
    a.d(Direct::LoadConstant, 7).o(Op::HaltSimulation);
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&a.0).unwrap();
    cpu.run_to_halt(10_000).unwrap();
    assert_eq!(cpu.areg(), 7);
}

/// Two ready SKIP guards: the disabling sequence selects the first —
/// the PRI ALT ordering the hardware gives for free.
#[test]
fn first_ready_guard_wins() {
    let mut a = Asm::new();
    a.o(Op::Alt);
    a.d(Direct::LoadConstant, 1).o(Op::EnableSkip);
    a.d(Direct::LoadConstant, 1).o(Op::EnableSkip);
    a.o(Op::AltWait);
    // disable 1: offset 0 (branch A right after altend)
    a.d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 0);
    a.o(Op::DisableSkip);
    // disable 2: offset 5 (branch B: skip over branch A = ldc+j = 5B?)
    a.d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 4); // ldc 11 (1) + haltsim (3) = 4 bytes
    a.o(Op::DisableSkip);
    a.o(Op::AltEnd);
    // branch A:
    a.d(Direct::LoadConstant, 11).o(Op::HaltSimulation);
    // branch B:
    a.d(Direct::LoadConstant, 22).o(Op::HaltSimulation);
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&a.0).unwrap();
    cpu.run_to_halt(10_000).unwrap();
    assert_eq!(cpu.areg(), 11, "textually first guard selected");
}

/// A false guard is never selected even when its channel fires.
#[test]
fn false_guard_is_ignored() {
    let mut a = Asm::new();
    a.o(Op::Alt);
    a.d(Direct::LoadConstant, 0).o(Op::EnableSkip); // false guard
    a.d(Direct::LoadConstant, 1).o(Op::EnableSkip); // true guard
    a.o(Op::AltWait);
    a.d(Direct::LoadConstant, 0);
    a.d(Direct::LoadConstant, 0);
    a.o(Op::DisableSkip);
    a.d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 4);
    a.o(Op::DisableSkip);
    a.o(Op::AltEnd);
    a.d(Direct::LoadConstant, 11).o(Op::HaltSimulation);
    a.d(Direct::LoadConstant, 22).o(Op::HaltSimulation);
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&a.0).unwrap();
    cpu.run_to_halt(10_000).unwrap();
    assert_eq!(cpu.areg(), 22, "the true guard's branch ran");
}

/// Timer ALT with a deadline already past is immediately ready.
#[test]
fn timer_alt_past_deadline() {
    let mut a = Asm::new();
    a.o(Op::TimerAlt);
    // enbt: A = guard, B = time (now - 5: already past).
    a.o(Op::LoadTimer);
    a.d(Direct::AddConstant, -5);
    a.d(Direct::LoadConstant, 1);
    a.o(Op::EnableTimer);
    a.o(Op::TimerAltWait);
    a.o(Op::LoadTimer);
    a.d(Direct::AddConstant, -5);
    a.d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 0);
    a.o(Op::DisableTimer);
    a.o(Op::AltEnd);
    a.d(Direct::LoadConstant, 9).o(Op::HaltSimulation);
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&a.0).unwrap();
    cpu.run_to_halt(100_000).unwrap();
    assert_eq!(cpu.areg(), 9);
    // No long wait happened.
    assert!(cpu.cycles() < 200, "took {} cycles", cpu.cycles());
}

/// Timer ALT with a future deadline waits on the timer queue and wakes.
#[test]
fn timer_alt_future_deadline_waits() {
    // Store the armed time in w2 so enable and disable agree exactly.
    let mut a = Asm::new();
    a.o(Op::LoadTimer);
    a.d(Direct::AddConstant, 8);
    a.d(Direct::StoreLocal, 2);
    a.o(Op::TimerAlt);
    a.d(Direct::LoadLocal, 2);
    a.d(Direct::LoadConstant, 1);
    a.o(Op::EnableTimer);
    a.o(Op::TimerAltWait);
    a.d(Direct::LoadLocal, 2);
    a.d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 0);
    a.o(Op::DisableTimer);
    a.o(Op::AltEnd);
    a.o(Op::LoadTimer).o(Op::HaltSimulation);
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&a.0).unwrap();
    cpu.run_to_halt(10_000_000).unwrap();
    // Clock advanced at least to the armed deadline.
    assert!(cpu.areg() >= 8, "clock reached {}", cpu.areg());
    assert!(cpu.cycles() > 8 * 20, "actually waited for the ticks");
}

/// An outputting process wakes a waiting ALT; the selected branch's
/// `input message` then moves the data.
#[test]
fn output_wakes_waiting_alt() {
    // Process A (ALT): chan at w1; alt; enbc; altwt; disc; altend;
    // branch: in(4, chan, w8); ldl 8; haltsim.
    // Process B: waits 3 ticks, outword 1234 on the channel.
    let mut a = Asm::new();
    a.o(Op::MinimumInteger).d(Direct::StoreLocal, 1);
    a.o(Op::Alt);
    a.d(Direct::LoadLocalPointer, 1)
        .d(Direct::LoadConstant, 1)
        .o(Op::EnableChannel);
    a.o(Op::AltWait);
    a.d(Direct::LoadLocalPointer, 1).d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 0);
    a.o(Op::DisableChannel);
    a.o(Op::AltEnd);
    // Branch: input the word.
    a.d(Direct::LoadLocalPointer, 8);
    a.d(Direct::LoadLocalPointer, 1);
    a.d(Direct::LoadConstant, 4);
    a.o(Op::InputMessage);
    a.d(Direct::LoadLocal, 8);
    a.o(Op::HaltSimulation);
    let b_entry = a.len();
    // Process B (64 words below A): tin now+3; outword.
    a.o(Op::LoadTimer);
    a.d(Direct::AddConstant, 3);
    a.o(Op::TimerInput);
    a.d(Direct::LoadConstant, 1234);
    a.d(Direct::LoadLocalPointer, 65);
    a.o(Op::OutputWord);
    a.o(Op::StopProcess);

    let mut cpu = Cpu::new(CpuConfig::t424());
    let entry = cpu.memory().mem_start();
    cpu.load(entry, &a.0).unwrap();
    let top = cpu.default_boot_workspace();
    cpu.spawn(top, entry, Priority::Low);
    cpu.spawn(
        top.wrapping_sub(64 * 4),
        entry + b_entry as u32,
        Priority::Low,
    );
    cpu.run_to_halt(10_000_000).unwrap();
    assert_eq!(cpu.areg(), 1234);
    assert!(cpu.stats().deschedules >= 2, "the ALT really waited");
}

/// A channel that is already ready at enable time short-circuits the
/// wait entirely.
#[test]
fn ready_channel_skips_the_wait() {
    // B outputs first (it runs before A enables); A's enbc finds the
    // outputter parked in the channel and marks Ready.
    let mut a = Asm::new();
    // A: busy-wait 5 ticks so B definitely outputs first.
    a.o(Op::LoadTimer);
    a.d(Direct::AddConstant, 5);
    a.o(Op::TimerInput);
    a.o(Op::Alt);
    a.d(Direct::LoadLocalPointer, 1)
        .d(Direct::LoadConstant, 1)
        .o(Op::EnableChannel);
    a.o(Op::AltWait);
    a.d(Direct::LoadLocalPointer, 1).d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 0);
    a.o(Op::DisableChannel);
    a.o(Op::AltEnd);
    a.d(Direct::LoadLocalPointer, 8);
    a.d(Direct::LoadLocalPointer, 1);
    a.d(Direct::LoadConstant, 4);
    a.o(Op::InputMessage);
    a.d(Direct::LoadLocal, 8);
    a.o(Op::HaltSimulation);
    let b_entry = a.len();
    a.d(Direct::LoadConstant, 77);
    a.d(Direct::LoadLocalPointer, 65);
    a.o(Op::OutputWord);
    a.o(Op::StopProcess);

    let mut cpu = Cpu::new(CpuConfig::t424());
    let entry = cpu.memory().mem_start();
    cpu.load(entry, &a.0).unwrap();
    let top = cpu.default_boot_workspace();
    // Channel word starts empty.
    cpu.poke_word(top.wrapping_add(4), 0x8000_0000).unwrap();
    cpu.spawn(top, entry, Priority::Low);
    cpu.spawn(
        top.wrapping_sub(64 * 4),
        entry + b_entry as u32,
        Priority::Low,
    );
    cpu.run_to_halt(10_000_000).unwrap();
    assert_eq!(cpu.areg(), 77);
}

/// Disabling an enabled-but-unfired channel guard restores the channel
/// word to empty, leaving no stale enrolment behind.
#[test]
fn disable_cancels_enrolment() {
    let mut a = Asm::new();
    a.o(Op::MinimumInteger).d(Direct::StoreLocal, 1); // channel empty
    a.o(Op::Alt);
    a.d(Direct::LoadLocalPointer, 1)
        .d(Direct::LoadConstant, 1)
        .o(Op::EnableChannel);
    a.d(Direct::LoadConstant, 1).o(Op::EnableSkip); // guarantees readiness
    a.o(Op::AltWait);
    a.d(Direct::LoadLocalPointer, 1).d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 0);
    a.o(Op::DisableChannel);
    a.d(Direct::LoadConstant, 1);
    a.d(Direct::LoadConstant, 0);
    a.o(Op::DisableSkip);
    a.o(Op::AltEnd);
    a.d(Direct::LoadLocal, 1); // read back the channel word
    a.o(Op::HaltSimulation);
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&a.0).unwrap();
    cpu.run_to_halt(10_000).unwrap();
    assert_eq!(cpu.areg(), 0x8000_0000, "channel word back to NotProcess");
}

/// An ALT with no ready guards and no timer deadlocks — occam's STOP
/// behaviour for an empty selection.
#[test]
fn alt_with_no_ready_guard_blocks_forever() {
    let mut a = Asm::new();
    a.o(Op::MinimumInteger).d(Direct::StoreLocal, 1);
    a.o(Op::Alt);
    a.d(Direct::LoadLocalPointer, 1)
        .d(Direct::LoadConstant, 1)
        .o(Op::EnableChannel);
    a.o(Op::AltWait);
    a.o(Op::HaltSimulation);
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.load_boot_program(&a.0).unwrap();
    match cpu.run(1_000_000).unwrap() {
        RunOutcome::Deadlock => {}
        RunOutcome::Halted(HaltReason::Stopped) => panic!("should not have proceeded"),
        other => panic!("unexpected: {other:?}"),
    }
}
