//! Coverage tests for the long tail of the instruction set: register
//! manipulation, long arithmetic, checks, scheduler-register access, and
//! channel byte/word output forms.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::{Cpu, CpuConfig, HaltReason, Priority, RunOutcome};

enum I {
    D(Direct, i64),
    O(Op),
}
use I::{D, O};

fn build(items: &[I]) -> Vec<u8> {
    let mut code = Vec::new();
    for item in items {
        match item {
            D(fun, operand) => code.extend(encode(*fun, *operand)),
            O(op) => code.extend(encode_op(*op)),
        }
    }
    code
}

fn run(items: &[I]) -> Cpu {
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = build(items);
    code.extend(encode_op(Op::HaltSimulation));
    cpu.load_boot_program(&code).expect("fits");
    match cpu.run(1_000_000).expect("in budget") {
        RunOutcome::Halted(HaltReason::Stopped) => {}
        other => panic!("did not halt cleanly: {other:?}"),
    }
    cpu
}

#[test]
fn general_call_swaps_iptr_and_a() {
    // gcall to a computed address: compute the address of the target
    // with ldpi, gcall there; the target halts. A holds the old Iptr.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    // ldc (target - after_ldpi); ldpi; gcall; <skipped: seterr>; target: haltsim
    code.extend(encode(Direct::LoadConstant, 3)); // skip gcall(1) + seterr(2)
    code.extend(encode_op(Op::LoadPointerToInstruction));
    code.extend(encode_op(Op::GeneralCall));
    code.extend(encode_op(Op::SetError));
    code.extend(encode_op(Op::HaltSimulation));
    cpu.load_boot_program(&code).expect("fits");
    cpu.run(1_000).expect("halts");
    assert!(!cpu.error_flag(), "seterr was skipped by the computed call");
}

#[test]
fn general_adjust_workspace_swaps_wptr_and_a() {
    let cpu = run(&[
        D(Direct::LoadLocalPointer, 16),
        O(Op::GeneralAdjustWorkspace),
        D(Direct::StoreLocal, 0), // store old wptr at NEW w0
        D(Direct::LoadLocalPointer, 0),
    ]);
    // New Wptr = old + 16 words; A now points at it.
    assert_eq!(cpu.areg(), cpu.wptr());
}

#[test]
fn word_count_splits_pointer() {
    let cpu = run(&[
        D(Direct::LoadConstant, 0x107), // byte 3 of word 0x41
        O(Op::WordCount),
    ]);
    assert_eq!(cpu.areg(), 0x41, "word part");
    assert_eq!(cpu.breg(), 3, "byte selector");
}

#[test]
fn byte_and_word_counts_are_inverse() {
    let cpu = run(&[D(Direct::LoadConstant, 9), O(Op::ByteCount)]);
    assert_eq!(cpu.areg(), 36);
    let cpu = run(&[D(Direct::LoadConstant, 36), O(Op::WordCount)]);
    assert_eq!(cpu.areg(), 9);
}

#[test]
fn extend_to_double_and_check_single() {
    // xdble on a negative single gives an all-ones high word; csngl
    // accepts it back without error.
    let cpu = run(&[
        D(Direct::LoadConstant, -5),
        O(Op::ExtendToDouble),
        O(Op::CheckSingle),
    ]);
    assert_eq!(cpu.areg() as i32, -5);
    assert!(!cpu.error_flag());
    // csngl on a non-canonical pair sets the error flag.
    let cpu = run(&[
        D(Direct::LoadConstant, 1), // high (B after next load)
        D(Direct::LoadConstant, 5), // low (A)
        O(Op::CheckSingle),
    ]);
    assert!(cpu.error_flag());
}

#[test]
fn long_add_and_subtract_carry_chain() {
    // ladd: B + A + (C & 1), checked.
    let cpu = run(&[
        D(Direct::LoadConstant, 1), // carry in
        D(Direct::LoadConstant, 10),
        D(Direct::LoadConstant, 20),
        O(Op::LongAdd),
    ]);
    assert_eq!(cpu.areg(), 31);
    assert!(!cpu.error_flag());
    // lsub with borrow.
    let cpu = run(&[
        D(Direct::LoadConstant, 1),
        D(Direct::LoadConstant, 10),
        D(Direct::LoadConstant, 3),
        O(Op::LongSubtract),
    ]);
    assert_eq!(cpu.areg(), 6, "10 - 3 - 1");
    // ldiff produces a borrow bit.
    let cpu = run(&[
        D(Direct::LoadConstant, 0),
        D(Direct::LoadConstant, 3),  // B
        D(Direct::LoadConstant, 10), // A
        O(Op::LongDiff),
    ]);
    assert_eq!(cpu.breg(), 1, "3 - 10 borrows");
}

#[test]
fn long_shifts_move_across_words() {
    // lshl: count=A, low=B, high=C.
    let cpu = run(&[
        D(Direct::LoadConstant, 0),  // high
        D(Direct::LoadConstant, 1),  // low
        D(Direct::LoadConstant, 33), // count
        O(Op::LongShiftLeft),
    ]);
    assert_eq!(cpu.areg(), 0, "low word after shifting out");
    assert_eq!(cpu.breg(), 2, "bit 33 = bit 1 of the high word");
    let cpu = run(&[
        D(Direct::LoadConstant, 2), // high
        D(Direct::LoadConstant, 0), // low
        D(Direct::LoadConstant, 33),
        O(Op::LongShiftRight),
    ]);
    assert_eq!(cpu.areg(), 1);
    assert_eq!(cpu.breg(), 0);
}

#[test]
fn check_word_and_counts() {
    // cword: value fits a byte.
    let cpu = run(&[
        D(Direct::LoadConstant, 100),
        D(Direct::LoadConstant, 0x80),
        O(Op::CheckWord),
    ]);
    assert!(!cpu.error_flag());
    let cpu = run(&[
        D(Direct::LoadConstant, 200),
        D(Direct::LoadConstant, 0x80),
        O(Op::CheckWord),
    ]);
    assert!(cpu.error_flag());
    // csub0: 0 <= B < A.
    let cpu = run(&[
        D(Direct::LoadConstant, 3),
        D(Direct::LoadConstant, 4),
        O(Op::CheckSubscriptFromZero),
    ]);
    assert!(!cpu.error_flag());
    let cpu = run(&[
        D(Direct::LoadConstant, 4),
        D(Direct::LoadConstant, 4),
        O(Op::CheckSubscriptFromZero),
    ]);
    assert!(cpu.error_flag());
    // ccnt1: 1 <= B <= A.
    let cpu = run(&[
        D(Direct::LoadConstant, 0),
        D(Direct::LoadConstant, 4),
        O(Op::CheckCountFromOne),
    ]);
    assert!(cpu.error_flag());
}

#[test]
fn scheduler_register_access() {
    // sthf/stlf set the queue front pointers; savel/saveh dump them.
    let cpu = run(&[
        O(Op::MinimumInteger),
        O(Op::StoreHighFront), // empty the high queue pointer explicitly
        O(Op::MinimumInteger),
        O(Op::StoreHighBack),
        D(Direct::LoadLocalPointer, 4),
        O(Op::SaveHigh), // mem[w4..w5] := high fptr/bptr
        D(Direct::LoadLocal, 4),
    ]);
    assert_eq!(cpu.areg(), 0x8000_0000, "NotProcess in the saved slot");
}

#[test]
fn reset_channel_clears_state() {
    let cpu = run(&[
        // Make the channel word at w2 non-empty, then reset it.
        D(Direct::LoadLocalPointer, 9),
        D(Direct::StoreLocal, 2),
        D(Direct::LoadLocalPointer, 2),
        O(Op::ResetChannel),
        D(Direct::LoadLocal, 2),
    ]);
    assert_eq!(cpu.areg(), 0x8000_0000, "channel word reset to NotProcess");
}

#[test]
fn outbyte_transfers_one_byte() {
    // Two processes: B outbytes 0xAB; A inputs 1 byte.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    code.extend(encode_op(Op::MinimumInteger));
    code.extend(encode(Direct::StoreLocal, 1)); // channel at receiver w1
    code.extend(encode(Direct::LoadLocalPointer, 8));
    code.extend(encode(Direct::LoadLocalPointer, 1));
    code.extend(encode(Direct::LoadConstant, 1));
    code.extend(encode_op(Op::InputMessage));
    code.extend(encode(Direct::LoadLocalPointer, 8));
    code.extend(encode_op(Op::LoadByte));
    code.extend(encode_op(Op::HaltSimulation));
    let sender = code.len();
    code.extend(encode(Direct::LoadConstant, 0xAB));
    code.extend(encode(Direct::LoadLocalPointer, 65)); // receiver w1 from 64 words below
    code.extend(encode_op(Op::OutputByte));
    code.extend(encode_op(Op::StopProcess));
    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).expect("fits");
    let top = cpu.default_boot_workspace();
    cpu.spawn(top, entry, Priority::Low);
    cpu.spawn(
        top.wrapping_sub(64 * 4),
        entry + sender as u32,
        Priority::Low,
    );
    cpu.run(100_000).expect("halts");
    assert_eq!(cpu.areg(), 0xAB);
}

#[test]
fn stop_on_error_blocks_only_when_error_set() {
    // Without error: stoperr is a no-op.
    let cpu = run(&[O(Op::StopOnError), D(Direct::LoadConstant, 5)]);
    assert_eq!(cpu.areg(), 5);
    // With error: the process stops -> deadlock.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = build(&[O(Op::SetError), O(Op::StopOnError)]);
    code.extend(encode_op(Op::HaltSimulation));
    cpu.load_boot_program(&code).expect("fits");
    assert_eq!(cpu.run(100_000).expect("in budget"), RunOutcome::Deadlock);
}

#[test]
fn test_processor_analysing_is_false() {
    let cpu = run(&[O(Op::TestProcessorAnalysing)]);
    assert_eq!(cpu.areg(), 0);
}

#[test]
fn halt_on_error_ops() {
    let cpu = run(&[O(Op::SetHaltOnError), O(Op::TestHaltOnError)]);
    assert_eq!(cpu.areg(), 1);
    let cpu = run(&[
        O(Op::SetHaltOnError),
        O(Op::ClearHaltOnError),
        O(Op::TestHaltOnError),
    ]);
    assert_eq!(cpu.areg(), 0);
}

#[test]
fn move_copies_blocks() {
    // Fill w8..w11 with a pattern, move 16 bytes to w16..w19.
    let mut items = Vec::new();
    for k in 0..4 {
        items.push(D(Direct::LoadConstant, 0x11 * (k + 1)));
        items.push(D(Direct::StoreLocal, 8 + k));
    }
    items.push(D(Direct::LoadLocalPointer, 16)); // dst -> C eventually
    items.push(D(Direct::LoadLocalPointer, 8)); // src
    items.push(D(Direct::LoadConstant, 16)); // count
    items.push(O(Op::Move));
    items.push(D(Direct::LoadLocal, 19));
    let cpu = run(&items);
    assert_eq!(cpu.areg(), 0x44);
}

#[test]
fn move_of_large_block_is_interruptible_but_correct() {
    // 256-byte move split across micro-steps still copies faithfully.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadLocalPointer, 100)); // dst
    code.extend(encode(Direct::LoadLocalPointer, 8)); // src
    code.extend(encode(Direct::LoadConstant, 256));
    code.extend(encode_op(Op::Move));
    code.extend(encode_op(Op::HaltSimulation));
    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).expect("fits");
    // A workspace low enough that w[100..164] stays in memory.
    let w = cpu
        .word_length()
        .align_word(cpu.memory().limit().wrapping_sub(1024));
    cpu.spawn(w, entry, Priority::Low);
    for i in 0..256u32 {
        cpu.memory_mut()
            .write_byte(w.wrapping_add(8 * 4 + i), (i % 251) as u8)
            .expect("in range");
    }
    cpu.run(100_000).expect("halts");
    let copied = cpu
        .memory()
        .dump(w.wrapping_add(100 * 4), 256)
        .expect("in range");
    for (i, b) in copied.iter().enumerate() {
        assert_eq!(*b, (i % 251) as u8, "byte {i}");
    }
}

#[test]
fn timeslicing_shares_the_processor() {
    // Two low-priority spinners with jump loops; both accumulate after
    // the timeslice period forces sharing.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    // Each process: loop { w1 += 1; j loop } — runs forever; the test
    // stops on a cycle budget and checks both progressed.
    let top = code.len();
    code.extend(encode(Direct::LoadLocal, 1));
    code.extend(encode(Direct::AddConstant, 1));
    code.extend(encode(Direct::StoreLocal, 1));
    let dist = top as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, dist));
    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).expect("fits");
    let w = cpu.default_boot_workspace();
    let w2 = w.wrapping_sub(64 * 4);
    cpu.spawn(w, entry, Priority::Low);
    cpu.spawn(w2, entry, Priority::Low);
    let _ = cpu.run(2_000_000);
    let c1 = cpu.inspect_word(w.wrapping_add(4)).unwrap();
    let c2 = cpu.inspect_word(w2.wrapping_add(4)).unwrap();
    assert!(c1 > 100, "first spinner ran: {c1}");
    assert!(c2 > 100, "second spinner ran (timeslicing works): {c2}");
    assert!(cpu.stats().deschedules > 2);
}

#[test]
fn division_edge_cases_set_error() {
    let cpu = run(&[
        D(Direct::LoadConstant, 5),
        D(Direct::LoadConstant, 0),
        O(Op::Divide),
    ]);
    assert!(cpu.error_flag(), "divide by zero");
    let cpu = run(&[
        O(Op::MinimumInteger),
        D(Direct::LoadConstant, -1),
        O(Op::Divide),
    ]);
    assert!(cpu.error_flag(), "MostNeg / -1 overflows");
    let cpu = run(&[
        D(Direct::LoadConstant, 5),
        D(Direct::LoadConstant, 0),
        O(Op::Remainder),
    ]);
    assert!(cpu.error_flag(), "remainder by zero");
}

#[test]
fn ldiv_overflow_sets_error() {
    let cpu = run(&[
        D(Direct::LoadConstant, 0), // low
        D(Direct::LoadConstant, 5), // high
        D(Direct::LoadConstant, 5), // divisor == high -> quotient overflow
        O(Op::LongDivide),
    ]);
    assert!(cpu.error_flag());
}

#[test]
fn product_with_zero_and_negative() {
    let cpu = run(&[
        D(Direct::LoadConstant, 1000),
        D(Direct::LoadConstant, 0),
        O(Op::Product),
    ]);
    assert_eq!(cpu.areg(), 0);
    let cpu = run(&[
        D(Direct::LoadConstant, -3),
        D(Direct::LoadConstant, 4),
        O(Op::Product),
    ]);
    assert_eq!(cpu.areg() as i32, -12, "product is modulo arithmetic");
}

#[test]
fn trace_survives_preemption() {
    // Tracing stays coherent across a low->high switch.
    let mut cpu = Cpu::new(CpuConfig::t424());
    cpu.enable_trace(64);
    let mut code = Vec::new();
    // Low: multiply loop (preemptible); High: one timer wait then halt.
    let lo = code.len();
    code.extend(encode(Direct::LoadConstant, 3));
    code.extend(encode(Direct::LoadConstant, 3));
    code.extend(encode_op(Op::Multiply));
    code.extend(encode(Direct::StoreLocal, 1));
    let dist = lo as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, dist));
    let hi = code.len();
    code.extend(encode_op(Op::LoadTimer));
    code.extend(encode(Direct::AddConstant, 2));
    code.extend(encode_op(Op::TimerInput));
    code.extend(encode_op(Op::HaltSimulation));
    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).expect("fits");
    let w = cpu.default_boot_workspace();
    cpu.spawn(w, entry, Priority::Low);
    cpu.spawn(w.wrapping_sub(256), entry + hi as u32, Priority::High);
    cpu.run(1_000_000).expect("halts");
    let trace = cpu.trace().expect("enabled");
    assert!(trace.len() > 4);
    // Both processes appear in the trace (different wdescs).
    let mut descs: Vec<u32> = trace.entries().map(|e| e.wdesc).collect();
    descs.dedup();
    assert!(descs.len() >= 2, "trace shows the switch");
}
