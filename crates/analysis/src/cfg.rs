//! Basic-block control-flow graph recovery over assembled I1 bytecode.
//!
//! Built on the verifier's fused-prefix decoder ([`crate::verifier::decode`]):
//! a *leader* is the entry point, any valid target of a `j`/`cj`/`call`
//! operand or of a constant-operand `startp`/`lend` discovered by the
//! dataflow, and the instruction following any control transfer. Blocks
//! are the maximal runs between leaders; every decoded instruction
//! belongs to exactly one block, reachable or not, so the partition
//! covers the whole image.
//!
//! On top of the recovered graph this module:
//!
//! * re-runs the abstract-interpretation verifier as a **block-level
//!   worklist** (states join at block entries only, mid-block transfer
//!   is straight-line) — the diagnostics are a superset of the linear
//!   pass by construction, since the linear findings are carried over
//!   and the block pass shares the same transfer function
//!   (`verifier::step`);
//! * runs a **code-pointer taint scan** that flags stores through
//!   `ldpi`-derived addresses (`self-modifying` — such an image can
//!   rewrite its own instructions, so no static model of it is sound);
//! * records the places where static control-flow recovery gives up
//!   ([`Cfg::unanalyzable`]): computed transfers (`altend`, `gcall`),
//!   `startp`/`lend` whose target never becomes a dataflow constant,
//!   and self-modifying stores. The cycle-cost model
//!   ([`crate::cost`]) refuses exactly these images rather than
//!   mis-predicting them.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::{self, Diagnostic};
use crate::verifier::{analyze, step, CodeShape, Flow, Insn, State};
use transputer::instr::{Direct, Op, StackEffect};

/// Why an edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Sequential successor (including the loop-exit side of `lend` and
    /// the return continuation of `call`).
    FallThrough,
    /// Unconditional `j`.
    Jump,
    /// The taken side of a `cj`.
    Taken,
    /// Subroutine entry of a `call`.
    Call,
    /// The back edge of a `lend` with a constant displacement.
    Back,
    /// A `startp` child entry with a constant offset.
    Spawn,
}

impl EdgeKind {
    /// DOT edge label.
    fn label(self) -> &'static str {
        match self {
            EdgeKind::FallThrough => "",
            EdgeKind::Jump => "",
            EdgeKind::Taken => "taken",
            EdgeKind::Call => "call",
            EdgeKind::Back => "back",
            EdgeKind::Spawn => "spawn",
        }
    }
}

/// A directed edge to another block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the successor block.
    pub to: usize,
    /// Why control can take this edge.
    pub kind: EdgeKind,
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the first instruction (into [`Cfg::insns`]).
    pub first: usize,
    /// Index of the last instruction, inclusive.
    pub last: usize,
    /// Byte offset of the first instruction.
    pub start: usize,
    /// Byte offset just past the last instruction.
    pub end: usize,
    /// Outgoing edges.
    pub succs: Vec<Edge>,
}

/// A place where static control-flow recovery gives up.
#[derive(Debug, Clone)]
pub struct Unanalyzable {
    /// Code offset of the offending instruction.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for Unanalyzable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unanalyzable at {:#06x}: {}", self.offset, self.reason)
    }
}

/// A recovered control-flow graph plus everything the analyses learned.
#[derive(Debug)]
pub struct Cfg {
    /// Decoded instructions, in address order.
    pub insns: Vec<Insn>,
    /// Basic blocks, in address order; they partition `insns`.
    pub blocks: Vec<Block>,
    /// All findings: the linear verifier's diagnostics (always included,
    /// so this is a superset of [`crate::verify_bytecode`]) plus the
    /// block-level re-run and the taint scan.
    pub diags: Vec<Diagnostic>,
    /// Regions no static model should trust.
    pub unanalyzable: Vec<Unanalyzable>,
    /// Entry register constants per instruction, from the dataflow
    /// (consumed by the cost model for shift operands).
    pub(crate) reg_consts: Vec<[Option<i64>; 3]>,
}

impl Cfg {
    /// Recover the CFG of a raw image (no workspace shape).
    pub fn recover(code: &[u8]) -> Cfg {
        Cfg::recover_with_shape(code, None)
    }

    /// Recover the CFG of a compiled occam program, with its frame shape
    /// enabling workspace bounds checks.
    pub fn recover_program(program: &occam::Program) -> Cfg {
        Cfg::recover_with_shape(&program.code, Some(&CodeShape::of(program)))
    }

    /// Recover the CFG, run the block-level verifier and the taint scan.
    pub fn recover_with_shape(code: &[u8], shape: Option<&CodeShape>) -> Cfg {
        let analysis = analyze(code, shape);
        let insns = analysis.insns;
        let index = analysis.index;
        let code_len = code.len();

        // Valid static targets of an instruction: in range and on a
        // decoded boundary. Anything else was already diagnosed.
        let valid = |target: i64| -> Option<usize> {
            if (0..code_len as i64).contains(&target) {
                index.get(&(target as usize)).copied()
            } else {
                None
            }
        };

        // Discovered startp/lend targets, grouped by instruction.
        let mut dynamic: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(i, target, _) in &analysis.discovered {
            if let Some(t) = valid(target) {
                dynamic.entry(i).or_default().push(t);
            }
        }

        // Leaders.
        let mut leader = vec![false; insns.len()];
        if !insns.is_empty() {
            leader[0] = true;
        }
        for (i, insn) in insns.iter().enumerate() {
            if is_terminator(insn) {
                if i + 1 < insns.len() {
                    leader[i + 1] = true;
                }
                if matches!(
                    insn.fun,
                    Direct::Jump | Direct::ConditionalJump | Direct::Call
                ) {
                    if let Some(t) = valid(insn.end() as i64 + insn.operand) {
                        leader[t] = true;
                    }
                }
                if let Some(targets) = dynamic.get(&i) {
                    for &t in targets {
                        leader[t] = true;
                    }
                }
            }
        }

        // Blocks: maximal leader-to-leader runs.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; insns.len()];
        for (i, insn) in insns.iter().enumerate() {
            if leader[i] {
                blocks.push(Block {
                    first: i,
                    last: i,
                    start: insn.offset,
                    end: insn.end(),
                    succs: Vec::new(),
                });
            }
            let b = blocks.len() - 1;
            let blk = &mut blocks[b];
            blk.last = i;
            blk.end = insn.end();
            block_of[i] = b;
        }

        // Successor edges from each block's final instruction; targets
        // are collected as instruction indices and mapped to blocks.
        #[allow(clippy::needless_range_loop)] // `blocks[b]` is mutated at the end
        for b in 0..blocks.len() {
            let i = blocks[b].last;
            let insn = insns[i];
            let fall = (i + 1 < insns.len()).then_some(i + 1);
            let mut raw: Vec<(Option<usize>, EdgeKind)> = Vec::new();
            match insn.fun {
                Direct::Jump => {
                    raw.push((valid(insn.end() as i64 + insn.operand), EdgeKind::Jump));
                }
                Direct::ConditionalJump => {
                    raw.push((valid(insn.end() as i64 + insn.operand), EdgeKind::Taken));
                    raw.push((fall, EdgeKind::FallThrough));
                }
                Direct::Call => {
                    raw.push((valid(insn.end() as i64 + insn.operand), EdgeKind::Call));
                    raw.push((fall, EdgeKind::FallThrough));
                }
                Direct::Operate => match insn.op {
                    Some(Op::LoopEnd) => {
                        for &t in dynamic.get(&i).map(Vec::as_slice).unwrap_or(&[]) {
                            raw.push((Some(t), EdgeKind::Back));
                        }
                        raw.push((fall, EdgeKind::FallThrough));
                    }
                    Some(Op::StartProcess) => {
                        for &t in dynamic.get(&i).map(Vec::as_slice).unwrap_or(&[]) {
                            raw.push((Some(t), EdgeKind::Spawn));
                        }
                        raw.push((fall, EdgeKind::FallThrough));
                    }
                    Some(op) if is_stop(op) => {}
                    None => {}
                    Some(_) => raw.push((fall, EdgeKind::FallThrough)),
                },
                _ => raw.push((fall, EdgeKind::FallThrough)),
            }
            let mut succs: Vec<Edge> = Vec::new();
            for (target, kind) in raw {
                if let Some(t) = target {
                    let e = Edge {
                        to: block_of[t],
                        kind,
                    };
                    if !succs.contains(&e) {
                        succs.push(e);
                    }
                }
            }
            blocks[b].succs = succs;
        }

        // Give-up markers: computed control transfers and loops/spawns
        // whose target never became a dataflow constant.
        let mut unanalyzable: Vec<Unanalyzable> = Vec::new();
        for (i, insn) in insns.iter().enumerate() {
            match insn.op {
                Some(Op::AltEnd) | Some(Op::GeneralCall) => unanalyzable.push(Unanalyzable {
                    offset: insn.offset,
                    reason: format!(
                        "`{}` transfers control through a computed address",
                        insn.mnemonic()
                    ),
                }),
                Some(Op::LoopEnd) if !dynamic.contains_key(&i) => {
                    unanalyzable.push(Unanalyzable {
                        offset: insn.offset,
                        reason: "`lend` back-edge displacement is not a dataflow constant".into(),
                    });
                }
                Some(Op::StartProcess) if !dynamic.contains_key(&i) => {
                    unanalyzable.push(Unanalyzable {
                        offset: insn.offset,
                        reason: "`startp` child entry offset is not a dataflow constant".into(),
                    });
                }
                _ => {}
            }
        }

        // Block-level verifier re-run: same transfer function, joins at
        // block entries only.
        let block_diags = block_dataflow(&insns, &blocks, &block_of, &index, code_len, shape);

        // Code-pointer taint scan for self-modifying stores.
        let taint_diags = taint_scan(&insns, &blocks, &mut unanalyzable);

        // Union the three diagnostic streams without duplicates.
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        let mut diags: Vec<Diagnostic> = Vec::new();
        for d in analysis
            .diags
            .into_iter()
            .chain(block_diags)
            .chain(taint_diags)
        {
            let key = (format!("{}@{}", d.code, d.span), d.message.clone());
            if seen.insert(key) {
                diags.push(d);
            }
        }
        diag::sort(&mut diags);

        let reg_consts = analysis
            .states
            .iter()
            .map(|s| s.as_ref().map(|s| s.regs).unwrap_or([None; 3]))
            .collect();

        Cfg {
            insns,
            blocks,
            diags,
            unanalyzable,
            reg_consts,
        }
    }

    /// Whether the whole image is statically analyzable (no computed
    /// control, no self-modifying stores, every loop target resolved).
    pub fn is_analyzable(&self) -> bool {
        self.unanalyzable.is_empty()
    }

    /// Index of the block containing instruction `i`.
    pub fn block_of_insn(&self, i: usize) -> Option<usize> {
        self.blocks.iter().position(|b| b.first <= i && i <= b.last)
    }

    /// Render the graph in Graphviz DOT form.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{name}\" {{");
        let _ = writeln!(s, "  node [shape=box fontname=\"monospace\"];");
        for (bi, b) in self.blocks.iter().enumerate() {
            let mut label = format!("B{bi}  {:#06x}..{:#06x}\\l", b.start, b.end);
            for i in b.first..=b.last {
                let insn = self.insns[i];
                match insn.fun {
                    Direct::Operate => {
                        let _ = write!(label, "{}\\l", insn.mnemonic());
                    }
                    _ => {
                        let _ = write!(label, "{} {}\\l", insn.mnemonic(), insn.operand);
                    }
                }
            }
            let tainted = self
                .unanalyzable
                .iter()
                .any(|u| b.start <= u.offset && u.offset < b.end);
            let style = if tainted { " color=red" } else { "" };
            let _ = writeln!(s, "  b{bi} [label=\"{label}\"{style}];");
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            for e in &b.succs {
                let label = e.kind.label();
                if label.is_empty() {
                    let _ = writeln!(s, "  b{bi} -> b{};", e.to);
                } else {
                    let _ = writeln!(s, "  b{bi} -> b{} [label=\"{label}\"];", e.to);
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Does this instruction end a basic block?
fn is_terminator(insn: &Insn) -> bool {
    match insn.fun {
        Direct::Jump | Direct::ConditionalJump | Direct::Call => true,
        Direct::Operate => match insn.op {
            None => true,
            Some(Op::LoopEnd) | Some(Op::StartProcess) => true,
            Some(op) => is_stop(op),
        },
        _ => false,
    }
}

/// Operations after which control does not continue statically.
fn is_stop(op: Op) -> bool {
    matches!(
        op,
        Op::EndProcess
            | Op::Return
            | Op::GeneralCall
            | Op::AltEnd
            | Op::StopProcess
            | Op::HaltSimulation
    )
}

/// The verifier re-run over the CFG: a worklist of blocks, joining
/// abstract states at block entries and running the shared transfer
/// function straight-line inside each block.
fn block_dataflow(
    insns: &[Insn],
    blocks: &[Block],
    block_of: &[usize],
    index: &BTreeMap<usize, usize>,
    code_len: usize,
    shape: Option<&CodeShape>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if blocks.is_empty() {
        return diags;
    }
    let mut entries: Vec<Option<State>> = vec![None; blocks.len()];
    let mut reported: BTreeSet<(usize, &'static str)> = BTreeSet::new();
    let mut discovered: BTreeSet<(usize, i64, &'static str)> = BTreeSet::new();
    let mut work: VecDeque<usize> = VecDeque::new();

    let seed = |b: usize,
                incoming: &State,
                entries: &mut Vec<Option<State>>,
                work: &mut VecDeque<usize>| {
        let widened = match &mut entries[b] {
            Some(s) => s.merge(incoming),
            slot @ None => {
                *slot = Some(incoming.clone());
                true
            }
        };
        if widened && !work.contains(&b) {
            work.push_back(b);
        }
    };

    seed(0, &State::entry(), &mut entries, &mut work);
    loop {
        while let Some(b) = work.pop_front() {
            let mut state = entries[b].clone().expect("queued with a state");
            let blk = &blocks[b];
            for i in blk.first..=blk.last {
                let insn = insns[i];
                let out = step(
                    i,
                    &insn,
                    &state,
                    shape,
                    &mut reported,
                    &mut discovered,
                    &mut diags,
                );
                for (target, entry) in &out.seeds {
                    if (0..code_len as i64).contains(target) {
                        if let Some(&t) = index.get(&(*target as usize)) {
                            seed(block_of[t], entry, &mut entries, &mut work);
                        }
                    }
                }
                let jump = |target: i64,
                            incoming: &State,
                            entries: &mut Vec<Option<State>>,
                            work: &mut VecDeque<usize>| {
                    if (0..code_len as i64).contains(&target) {
                        if let Some(&t) = index.get(&(target as usize)) {
                            seed(block_of[t], incoming, entries, work);
                        }
                    }
                };
                match out.succ {
                    Flow::Next => {
                        if i == blk.last && i + 1 < insns.len() {
                            seed(block_of[i + 1], &out.next, &mut entries, &mut work);
                        }
                    }
                    Flow::Jump(t) => jump(t, &out.next, &mut entries, &mut work),
                    Flow::Branch(t) => {
                        jump(t, &out.next, &mut entries, &mut work);
                        if i + 1 < insns.len() {
                            seed(block_of[i + 1], &out.next, &mut entries, &mut work);
                        }
                    }
                    Flow::Stop => {}
                }
                state = out.next;
            }
        }
        // Blocks only reachable through computed control (altend):
        // re-seed with an unknown state so their checks still run.
        match entries.iter().position(Option::is_none) {
            Some(b) => seed(b, &State::unknown(), &mut entries, &mut work),
            None => break,
        }
    }
    diags
}

/// Code-pointer taint per evaluation-stack register.
type Taint = [bool; 3];

/// Propagate "derived from `ldpi`" through the block graph and flag
/// stores whose address operand carries the taint.
fn taint_scan(
    insns: &[Insn],
    blocks: &[Block],
    unanalyzable: &mut Vec<Unanalyzable>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if blocks.is_empty() {
        return diags;
    }
    let mut entries: Vec<Option<Taint>> = vec![None; blocks.len()];
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let mut work: VecDeque<usize> = VecDeque::new();
    entries[0] = Some([false; 3]);
    work.push_back(0);

    while let Some(b) = work.pop_front() {
        let mut taint = entries[b].expect("queued with a taint state");
        let blk = &blocks[b];
        for insn in &insns[blk.first..=blk.last] {
            taint = taint_step(insn, taint, &mut flagged);
        }
        for e in &blk.succs {
            // Spawned children and callees start with a fresh stack;
            // everything else inherits the block's exit taint.
            let incoming = match e.kind {
                EdgeKind::Spawn | EdgeKind::Call => [false; 3],
                _ => taint,
            };
            let widened = match &mut entries[e.to] {
                Some(t) => {
                    let mut changed = false;
                    for (slot, inc) in t.iter_mut().zip(incoming) {
                        if inc && !*slot {
                            *slot = true;
                            changed = true;
                        }
                    }
                    changed
                }
                slot @ None => {
                    *slot = Some(incoming);
                    true
                }
            };
            if widened && !work.contains(&e.to) {
                work.push_back(e.to);
            }
        }
    }

    for offset in flagged {
        let insn = *insns
            .iter()
            .find(|x| x.offset == offset)
            .expect("flagged offset decodes");
        diags.push(Diagnostic::warning(
            "self-modifying",
            insn.span(),
            format!(
                "{} stores through a code-derived (ldpi) pointer: the image may \
                 rewrite its own instructions",
                insn.mnemonic()
            ),
        ));
        unanalyzable.push(Unanalyzable {
            offset: insn.offset,
            reason: "store through a code-derived pointer (self-modifying)".into(),
        });
    }
    unanalyzable.sort_by_key(|u| u.offset);
    diags
}

/// Taint transfer for one instruction. Pushed results are tainted when
/// they are `ldpi` itself or pointer arithmetic over a tainted operand;
/// loads from memory are assumed clean (the scan is a definite-ish
/// detector for the canonical `ldc d; ldpi; ...; sb` patch idiom, not a
/// sound escape analysis).
fn taint_step(insn: &Insn, mut t: Taint, flagged: &mut BTreeSet<usize>) -> Taint {
    fn pop(t: &mut Taint) -> bool {
        let a = t[0];
        *t = [t[1], t[2], false];
        a
    }
    fn push(t: &mut Taint, v: bool) {
        *t = [v, t[0], t[1]];
    }
    fn apply(t: &mut Taint, e: StackEffect) {
        for _ in 0..e.pops {
            pop(t);
        }
        for _ in 0..e.pushes {
            push(t, false);
        }
    }

    match insn.fun {
        Direct::AddConstant | Direct::AdjustWorkspace => {} // A keeps its taint / no stack
        Direct::LoadNonLocalPointer => {}                   // pointer + offset: A keeps its taint
        Direct::StoreNonLocal => {
            let addr = pop(&mut t);
            pop(&mut t);
            if addr {
                flagged.insert(insn.offset);
            }
        }
        Direct::Operate => match insn.op {
            Some(Op::LoadPointerToInstruction) => {
                pop(&mut t);
                push(&mut t, true);
            }
            Some(Op::StoreByte) => {
                let addr = pop(&mut t);
                pop(&mut t);
                if addr {
                    flagged.insert(insn.offset);
                }
            }
            Some(
                Op::Add
                | Op::Subtract
                | Op::Sum
                | Op::Difference
                | Op::ByteSubscript
                | Op::WordSubscript,
            ) => {
                let a = pop(&mut t);
                let b = pop(&mut t);
                push(&mut t, a || b);
            }
            Some(Op::Reverse) => {
                t.swap(0, 1);
            }
            Some(op) => apply(&mut t, op.stack_effect()),
            None => {}
        },
        fun => {
            if let Some(e) = fun.stack_effect() {
                apply(&mut t, e);
            }
        }
    }
    t
}

/// Run CFG recovery and return its diagnostics — a superset of
/// [`crate::verify_bytecode`] on the same image.
pub fn verify_bytecode_cfg(code: &[u8], shape: Option<&CodeShape>) -> Vec<Diagnostic> {
    Cfg::recover_with_shape(code, shape).diags
}

/// [`verify_bytecode_cfg`] for a compiled occam program.
pub fn verify_program_cfg(program: &occam::Program) -> Vec<Diagnostic> {
    Cfg::recover_program(program).diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use transputer::instr::{encode, encode_into, encode_op};

    #[test]
    fn straight_line_is_one_block() {
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 7, &mut code);
        encode_into(Direct::StoreLocal, 0, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let cfg = Cfg::recover(&code);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(cfg.is_analyzable());
        assert!(cfg.diags.is_empty());
    }

    #[test]
    fn conditional_jump_splits_blocks() {
        // ldc 1; cj over; ldc 2; stl 0; over: haltsim
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 1, &mut code);
        let body_len = {
            let mut b = Vec::new();
            encode_into(Direct::LoadConstant, 2, &mut b);
            encode_into(Direct::StoreLocal, 0, &mut b);
            b.len()
        };
        encode_into(Direct::ConditionalJump, body_len as i64, &mut code);
        encode_into(Direct::LoadConstant, 2, &mut code);
        encode_into(Direct::StoreLocal, 0, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let cfg = Cfg::recover(&code);
        // entry+cj | body | halt
        assert_eq!(cfg.blocks.len(), 3);
        let kinds: Vec<EdgeKind> = cfg.blocks[0].succs.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::Taken));
        assert!(kinds.contains(&EdgeKind::FallThrough));
        assert_eq!(cfg.blocks[1].succs.len(), 1);
        assert!(cfg.blocks[2].succs.is_empty());
    }

    #[test]
    fn blocks_partition_every_instruction() {
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 1, &mut code);
        encode_into(Direct::ConditionalJump, 1, &mut code);
        encode_into(Direct::LoadConstant, 0, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let cfg = Cfg::recover(&code);
        let mut covered = vec![false; cfg.insns.len()];
        for b in &cfg.blocks {
            for i in b.first..=b.last {
                assert!(!covered[i], "instruction {i} in two blocks");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn self_modifying_store_is_flagged() {
        // ldc 0x41; ldc d; ldpi; sb — the decode-cache patch idiom.
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 0x41, &mut code);
        encode_into(Direct::LoadConstant, 0, &mut code);
        code.extend(encode_op(Op::LoadPointerToInstruction));
        code.extend(encode_op(Op::StoreByte));
        code.extend(encode_op(Op::HaltSimulation));
        let cfg = Cfg::recover(&code);
        assert!(!cfg.is_analyzable());
        assert!(cfg
            .unanalyzable
            .iter()
            .any(|u| u.reason.contains("self-modifying")));
        assert!(cfg.diags.iter().any(|d| d.code == "self-modifying"));
    }

    #[test]
    fn cfg_diags_superset_of_linear() {
        // An image with several defects: underflow + bad jump.
        let mut code = encode(Direct::Jump, 100);
        code.extend(encode_op(Op::Add));
        let linear = crate::verify_bytecode(&code, None);
        let cfg = Cfg::recover(&code);
        for d in &linear {
            assert!(
                cfg.diags
                    .iter()
                    .any(|c| c.code == d.code && c.span == d.span),
                "linear finding {d:?} missing from CFG pass"
            );
        }
    }

    #[test]
    fn dot_output_mentions_every_block() {
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 1, &mut code);
        encode_into(Direct::ConditionalJump, 1, &mut code);
        encode_into(Direct::LoadConstant, 0, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let cfg = Cfg::recover(&code);
        let dot = cfg.to_dot("t");
        for bi in 0..cfg.blocks.len() {
            assert!(dot.contains(&format!("b{bi} ")));
        }
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn altend_is_unanalyzable_but_diagnosed_cleanly() {
        let mut code = Vec::new();
        code.extend(encode_op(Op::AltEnd));
        code.extend(encode_op(Op::HaltSimulation));
        let cfg = Cfg::recover(&code);
        assert!(!cfg.is_analyzable());
        // Computed control is a model limitation, not a lint finding.
        assert!(cfg.diags.iter().all(|d| d.code != "indirect-control"));
    }
}
