//! Static analysis for the transputer toolchain (`txlint`).
//!
//! Two layers, matching the two trust boundaries in the toolchain:
//!
//! * [`channels`] — source-level occam analysis: PAR channel-usage
//!   rules (one inputting branch, one outputting branch per channel),
//!   direction conflicts through `PROC` channel parameters, and a
//!   process/channel graph pass that reports unconnected channel
//!   ends, self-communication, and trivial two-process cyclic waits.
//! * [`verifier`] — bytecode-level verification of assembled I1 code:
//!   evaluation-stack depth tracking over `Areg`/`Breg`/`Creg`, jump
//!   targets landing on instruction boundaries, workspace offsets
//!   within the codegen-allocated frame, and canonical (minimal)
//!   prefix chains.
//!
//! Both layers report [`diag::Diagnostic`]s with source or code-offset
//! spans; callers decide whether warnings are fatal.

pub mod diag;

pub mod channels;
pub mod verifier;

pub use diag::{Diagnostic, Severity, Span};
pub use verifier::{verify_bytecode, CodeShape};

/// Compile-free entry point: parse occam source and run the
/// source-level lints (layer 1). Returns diagnostics sorted by
/// source position; parse failures surface as a single error
/// diagnostic rather than an `Err`, so the caller has one stream.
pub fn lint_source(source: &str) -> Vec<Diagnostic> {
    match occam::parse(source) {
        Ok(program) => channels::check(&program),
        Err(e) => vec![Diagnostic::error(
            "parse",
            Span::line(e.line),
            e.to_string(),
        )],
    }
}
