//! Static analysis for the transputer toolchain (`txlint`).
//!
//! Four layers, from source text down to cycle counts:
//!
//! * [`channels`] — source-level occam analysis: PAR channel-usage
//!   rules (one inputting branch, one outputting branch per channel),
//!   direction conflicts through `PROC` channel parameters, a
//!   process/channel graph pass that reports unconnected channel
//!   ends and self-communication, and an N-process deadlock detector
//!   that reduces statically extractable PAR branches to a wait-for
//!   graph and reports any cyclic wait with its full chain.
//! * [`verifier`] — bytecode-level verification of assembled I1 code:
//!   evaluation-stack depth tracking over `Areg`/`Breg`/`Creg`, jump
//!   targets landing on instruction boundaries, workspace offsets
//!   within the codegen-allocated frame, and canonical (minimal)
//!   prefix chains.
//! * [`mod@cfg`] — basic-block control-flow graph recovery over the fused
//!   instruction stream, with the verifier's transfer function re-run
//!   as a worklist dataflow joining at block entries
//!   ([`verify_bytecode_cfg`] reproduces or strictly extends the
//!   linear pass), a code/store taint scan that flags self-modifying
//!   images, and Graphviz output ([`cfg::Cfg::to_dot`]).
//! * [`cost`] — a static cycle-cost model over the CFG: per-block and
//!   loop-bounded whole-program cycle/byte/operation predictions from
//!   the `transputer::timing` tables (the same tables the emulator
//!   charges from), exact on the programs it accepts and explicit
//!   about why it refuses the ones it does not.
//!
//! All layers report [`diag::Diagnostic`]s with source or code-offset
//! spans; callers decide whether warnings are fatal.

pub mod diag;

pub mod cfg;
pub mod channels;
pub mod cost;
pub mod verifier;

pub use cfg::{verify_bytecode_cfg, verify_program_cfg, Cfg};
pub use cost::CostReport;
pub use diag::{Diagnostic, Severity, Span};
pub use verifier::{verify_bytecode, CodeShape};

/// Compile-free entry point: parse occam source and run the
/// source-level lints (layer 1). Returns diagnostics sorted by
/// source position; parse failures surface as a single error
/// diagnostic rather than an `Err`, so the caller has one stream.
pub fn lint_source(source: &str) -> Vec<Diagnostic> {
    match occam::parse(source) {
        Ok(program) => channels::check(&program),
        Err(e) => vec![Diagnostic::error(
            "parse",
            Span::line(e.line),
            e.to_string(),
        )],
    }
}
