//! Layer 2: abstract interpretation of assembled I1 bytecode.
//!
//! The verifier decodes a code image into logical instructions (prefix
//! chains folded, §3.2.7), then runs a worklist dataflow over them
//! tracking:
//!
//! * **evaluation-stack depth** as an interval `[lo, hi]` over the
//!   three-register A/B/C stack, using the per-instruction effects from
//!   [`transputer::instr::StackEffect`] — definite underflow (an
//!   instruction needs more operands than any path provides) and
//!   definite overflow (a push that must discard a live `Creg`) are
//!   errors;
//! * **workspace displacement** relative to the entry workspace
//!   pointer (`ajw` shifts it, `call`/`ret` balance, `gajw` loses it),
//!   so `ldl`/`stl`/`ldlp` offsets can be bounds-checked against the
//!   codegen-allocated frame ([`CodeShape`]);
//! * **constant stack slots**, enough to discover `startp` child entry
//!   points and `lend` back edges, which are Iptr-relative operands on
//!   the stack rather than in the instruction.
//!
//! Reporting is *definite-error only*: a check fires when every path
//! reaching the instruction exhibits the defect. Code the dataflow
//! never reaches from the entry (e.g. `ALT` branches entered through
//! `altend`'s computed jump) is re-seeded with an unknown state so its
//! encodings and jump targets are still validated; its depth checks
//! are then vacuous by construction rather than wrong.
//!
//! Deliberate model deviations from `cpu/exec.rs`:
//!
//! * `call` saves A/B/C whether or not they are live, so its pops are
//!   non-strict (no underflow check) and the target starts at depth 1
//!   (the return address).
//! * After an instruction that can deschedule mid-stack (`in`, `out`),
//!   register constants are dropped; the depth interval is kept, since
//!   resumption restores control just after the instruction.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::{Diagnostic, Span};
use transputer::instr::{encoded_len, Direct, Op, StackEffect};

/// The workspace frame shape a code image was compiled for: how many
/// words sit at/above the entry workspace pointer (`locals`) and how
/// many below it (`depth`), mirroring `occam::Program`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeShape {
    /// Words at and above the initial workspace pointer.
    pub locals: u32,
    /// Words below the initial workspace pointer.
    pub depth: u32,
}

impl CodeShape {
    /// Shape of a compiled occam program.
    pub fn of(program: &occam::Program) -> CodeShape {
        CodeShape {
            locals: program.locals,
            depth: program.depth,
        }
    }
}

/// One decoded logical instruction (prefix chain folded in).
#[derive(Debug, Clone, Copy)]
pub struct Insn {
    /// Byte offset of the first (prefix) byte.
    pub offset: usize,
    /// Total encoded length, prefix chain included.
    pub len: usize,
    /// The final function byte.
    pub fun: Direct,
    /// The fused operand.
    pub operand: i64,
    /// Decoded operation for `opr`; `None` when undefined.
    pub op: Option<Op>,
}

impl Insn {
    /// Offset just past the last byte (the base of relative operands).
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// The instruction's code span.
    pub fn span(&self) -> Span {
        Span::code(self.offset as u32, self.len as u32)
    }

    /// Display name (`ldc`, `lend`, ...).
    pub fn mnemonic(&self) -> &'static str {
        match (self.fun, self.op) {
            (Direct::Operate, Some(op)) => op.mnemonic(),
            (Direct::Operate, None) => "opr",
            (fun, _) => fun.mnemonic(),
        }
    }
}

/// Abstract machine state at an instruction boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct State {
    /// Evaluation-stack depth interval, 0..=3.
    pub lo: u8,
    pub hi: u8,
    /// Known workspace displacement (words) from the entry Wptr.
    pub wadj: Option<i64>,
    /// Known constants in A, B, C.
    pub regs: [Option<i64>; 3],
}

impl State {
    pub fn entry() -> State {
        State {
            lo: 0,
            hi: 0,
            wadj: Some(0),
            regs: [None; 3],
        }
    }

    pub fn unknown() -> State {
        State {
            lo: 0,
            hi: 3,
            wadj: None,
            regs: [None; 3],
        }
    }

    /// Lattice join; returns whether `self` widened.
    pub fn merge(&mut self, other: &State) -> bool {
        let before = self.clone();
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        if self.wadj != other.wadj {
            self.wadj = None;
        }
        for i in 0..3 {
            if self.regs[i] != other.regs[i] {
                self.regs[i] = None;
            }
        }
        *self != before
    }

    /// Apply `pops` then `pushes` unknown results.
    fn apply(&mut self, e: StackEffect) {
        for _ in 0..e.pops {
            self.pop();
        }
        for _ in 0..e.pushes {
            self.push(None);
        }
    }

    fn pop(&mut self) {
        self.lo = self.lo.saturating_sub(1);
        self.hi = self.hi.saturating_sub(1);
        // B moves into A, C into B; C keeps its (now duplicate) value,
        // but for constant tracking we forget it.
        self.regs = [self.regs[1], self.regs[2], None];
    }

    fn push(&mut self, v: Option<i64>) {
        self.lo = (self.lo + 1).min(3);
        self.hi = (self.hi + 1).min(3);
        self.regs = [v, self.regs[0], self.regs[1]];
    }
}

/// Everything the instruction-level dataflow learns about a code image,
/// for reuse by the CFG layer (`crate::cfg`).
#[derive(Debug)]
pub(crate) struct Analysis {
    /// Decoded instructions, in address order.
    pub insns: Vec<Insn>,
    /// Byte offset → instruction index.
    pub index: BTreeMap<usize, usize>,
    /// Entry state per instruction (`None` only for empty images).
    pub states: Vec<Option<State>>,
    /// (instruction index, target address, description) pairs from
    /// `startp`/`lend` constant operands.
    pub discovered: BTreeSet<(usize, i64, &'static str)>,
    /// All findings, unsorted.
    pub diags: Vec<Diagnostic>,
}

/// Verify a code image. `shape` enables the workspace-bounds check;
/// pass `None` for raw images of unknown frame layout.
pub fn verify_bytecode(code: &[u8], shape: Option<&CodeShape>) -> Vec<Diagnostic> {
    let mut diags = analyze(code, shape).diags;
    crate::diag::sort(&mut diags);
    diags
}

/// Run decode, static target checks and the worklist dataflow, keeping
/// the per-instruction states and discovered targets.
pub(crate) fn analyze(code: &[u8], shape: Option<&CodeShape>) -> Analysis {
    let mut diags = Vec::new();
    let insns = decode(code, &mut diags);
    let index: BTreeMap<usize, usize> = insns
        .iter()
        .enumerate()
        .map(|(i, d)| (d.offset, i))
        .collect();

    // Static jump-target validation (j / cj / call operands).
    for insn in &insns {
        if matches!(
            insn.fun,
            Direct::Jump | Direct::ConditionalJump | Direct::Call
        ) {
            check_target(
                insn,
                insn.end() as i64 + insn.operand,
                code.len(),
                &index,
                &mut diags,
            );
        }
    }

    // Dataflow.
    let mut states: Vec<Option<State>> = vec![None; insns.len()];
    let mut reported: BTreeSet<(usize, &'static str)> = BTreeSet::new();
    // (instruction index, discovered target, description) from startp/lend.
    let mut discovered: BTreeSet<(usize, i64, &'static str)> = BTreeSet::new();
    if !insns.is_empty() {
        flow(
            0,
            State::entry(),
            &insns,
            &index,
            code.len(),
            shape,
            &mut states,
            &mut reported,
            &mut discovered,
            &mut diags,
        );
        // Re-seed instructions only reachable through computed control
        // transfers (altend) with an unknown state until everything has
        // been visited at least once.
        while let Some(i) = states.iter().position(Option::is_none) {
            flow(
                i,
                State::unknown(),
                &insns,
                &index,
                code.len(),
                shape,
                &mut states,
                &mut reported,
                &mut discovered,
                &mut diags,
            );
        }
    }

    for &(i, target, what) in &discovered {
        let insn = insns[i];
        if !(0..=code.len() as i64).contains(&target)
            || (target < code.len() as i64 && !index.contains_key(&(target as usize)))
            || target == code.len() as i64
        {
            let kind = if (0..code.len() as i64).contains(&target) {
                ("jump-mid-instruction", "inside an instruction")
            } else {
                ("jump-out-of-range", "outside the code")
            };
            if reported.insert((insn.offset, kind.0)) {
                diags.push(Diagnostic::error(
                    kind.0,
                    insn.span(),
                    format!("{} {what} {target:#x} lands {}", insn.mnemonic(), kind.1),
                ));
            }
        }
    }

    Analysis {
        insns,
        index,
        states,
        discovered,
        diags,
    }
}

/// Verify a compiled occam program against its own frame shape.
pub fn verify_program(program: &occam::Program) -> Vec<Diagnostic> {
    verify_bytecode(&program.code, Some(&CodeShape::of(program)))
}

fn check_target(
    insn: &Insn,
    target: i64,
    code_len: usize,
    index: &BTreeMap<usize, usize>,
    diags: &mut Vec<Diagnostic>,
) {
    if !(0..code_len as i64).contains(&target) {
        diags.push(Diagnostic::error(
            "jump-out-of-range",
            insn.span(),
            format!(
                "{} target {target:#x} is outside the code (0..{:#x})",
                insn.mnemonic(),
                code_len
            ),
        ));
    } else if !index.contains_key(&(target as usize)) {
        diags.push(Diagnostic::error(
            "jump-mid-instruction",
            insn.span(),
            format!(
                "{} target {target:#x} lands inside an instruction, not on a boundary",
                insn.mnemonic()
            ),
        ));
    }
}

/// Decode the image into logical instructions, reporting encoding-level
/// findings (truncated chains, non-minimal prefixes, undefined
/// operations).
pub fn decode(code: &[u8], diags: &mut Vec<Diagnostic>) -> Vec<Insn> {
    let mut insns = Vec::new();
    let mut i = 0usize;
    let mut oreg: i64 = 0;
    let mut start = 0usize;
    while i < code.len() {
        let byte = code[i];
        let fun = Direct::from_nibble(byte >> 4);
        let data = i64::from(byte & 0xF);
        i += 1;
        match fun {
            Direct::Prefix => {
                oreg = (oreg | data) << 4;
            }
            Direct::NegativePrefix => {
                oreg = !(oreg | data) << 4;
            }
            _ => {
                let operand = oreg | data;
                let len = i - start;
                let op = if fun == Direct::Operate {
                    u32::try_from(operand).ok().and_then(Op::from_code)
                } else {
                    None
                };
                let insn = Insn {
                    offset: start,
                    len,
                    fun,
                    operand,
                    op,
                };
                if len > encoded_len(operand) {
                    diags.push(Diagnostic::warning(
                        "canonical-prefix",
                        insn.span(),
                        format!(
                            "{} {operand} uses a {len}-byte prefix chain; the minimal encoding is {} byte(s)",
                            fun.mnemonic(),
                            encoded_len(operand)
                        ),
                    ));
                }
                if fun == Direct::Operate && op.is_none() {
                    diags.push(Diagnostic::error(
                        "undefined-operation",
                        insn.span(),
                        format!("operate with undefined operation code {operand:#x}"),
                    ));
                }
                insns.push(insn);
                oreg = 0;
                start = i;
            }
        }
    }
    if start != i {
        diags.push(Diagnostic::error(
            "truncated-instruction",
            Span::code(start as u32, (i - start) as u32),
            "code ends inside a prefix chain (no final instruction byte)",
        ));
    }
    insns
}

/// Control-flow classification of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Continue to the next instruction.
    Next,
    /// Jump to a fixed target only.
    Jump(i64),
    /// Fall through or jump (cj).
    Branch(i64),
    /// No static successor (ret, endp, altend, gcall, stopp, haltsim).
    Stop,
}

/// Result of abstractly executing one instruction.
pub(crate) struct StepOut {
    /// State on the outgoing edge(s).
    pub next: State,
    /// Static successor classification.
    pub succ: Flow,
    /// Extra entry points this instruction creates: (unvalidated byte
    /// address, entry state) for `call` targets, `startp` children and
    /// `lend` back edges.
    pub seeds: Vec<(i64, State)>,
}

/// Abstractly execute instruction `i` in `state`, reporting stack and
/// workspace findings. The single transfer function shared by the
/// linear worklist below and the block-level pass in [`crate::cfg`].
pub(crate) fn step(
    i: usize,
    insn: &Insn,
    state: &State,
    shape: Option<&CodeShape>,
    reported: &mut BTreeSet<(usize, &'static str)>,
    discovered: &mut BTreeSet<(usize, i64, &'static str)>,
    diags: &mut Vec<Diagnostic>,
) -> StepOut {
    let mut next = state.clone();
    let mut succ = Flow::Next;
    let mut seeds: Vec<(i64, State)> = Vec::new();

    let effect = match insn.fun {
        Direct::Operate => insn.op.map(Op::stack_effect),
        fun => fun.stack_effect(),
    };

    // Strict-pop underflow: fires only when even the deepest path
    // cannot supply the operands. call is non-strict (see module
    // docs); undefined operations have no effect to apply.
    let strict = !matches!(insn.fun, Direct::Call);
    if let Some(e) = effect {
        if strict && e.pops > state.hi && reported.insert((insn.offset, "stack-underflow")) {
            diags.push(Diagnostic::error(
                "stack-underflow",
                insn.span(),
                format!(
                    "{} needs {} stack operand(s) but at most {} can be on the stack here",
                    insn.mnemonic(),
                    e.pops,
                    state.hi
                ),
            ));
        }
        let after_lo = state.lo.saturating_sub(e.pops);
        if strict && after_lo + e.pushes > 3 && reported.insert((insn.offset, "stack-overflow")) {
            diags.push(Diagnostic::error(
                "stack-overflow",
                insn.span(),
                format!(
                    "{} pushes {} result(s) onto a stack already holding {}: Creg is lost",
                    insn.mnemonic(),
                    e.pushes,
                    after_lo
                ),
            ));
        }
    }

    match insn.fun {
        Direct::Jump => succ = Flow::Jump(insn.end() as i64 + insn.operand),
        Direct::ConditionalJump => {
            // Fall-through pops the condition; the taken edge keeps
            // A (known zero). Both are folded into one successor
            // state: depth interval spans both outcomes.
            let mut taken = state.clone();
            taken.regs[0] = Some(0);
            next.apply(StackEffect::new(1, 0));
            next.merge(&taken);
            succ = Flow::Branch(insn.end() as i64 + insn.operand);
        }
        Direct::Call => {
            // Fall-through resumes after the callee returns: the
            // wptr balance is restored, but the callee chooses what
            // the stack holds.
            next.lo = 0;
            next.hi = 3;
            next.regs = [None; 3];
            // The target runs with the return address in A and the
            // wptr four words lower — but reached from potentially
            // many sites, so its wadj is tracked only through the
            // merge. The return-address copy is dead on arrival
            // (`ret` reloads it from w[0]), so model it as
            // possibly-absent: a callee that loads its arguments
            // three-deep pushes it off the stack by design, and that
            // must not count as losing a live Creg.
            let callee = State {
                lo: 0,
                hi: 1,
                wadj: state.wadj.map(|w| w - 4),
                regs: [None; 3],
            };
            seeds.push((insn.end() as i64 + insn.operand, callee));
        }
        Direct::AdjustWorkspace => {
            next.wadj = state.wadj.map(|w| w + insn.operand);
        }
        Direct::LoadLocal | Direct::StoreLocal | Direct::LoadLocalPointer => {
            if let Some(e) = effect {
                next.apply(e);
            }
            if let (Some(shape), Some(w)) = (shape, state.wadj) {
                let slot = w + insn.operand;
                if (slot < -i64::from(shape.depth) || slot >= i64::from(shape.locals))
                    && reported.insert((insn.offset, "workspace-oob"))
                {
                    diags.push(Diagnostic::error(
                        "workspace-oob",
                        insn.span(),
                        format!(
                            "{} {} addresses workspace word {slot}, outside the allocated frame ({}..{})",
                            insn.mnemonic(),
                            insn.operand,
                            -i64::from(shape.depth),
                            shape.locals
                        ),
                    ));
                }
            }
        }
        Direct::LoadConstant => {
            next.push(Some(insn.operand));
        }
        Direct::Operate => match insn.op {
            None => succ = Flow::Stop,
            Some(op) => {
                match op {
                    Op::StartProcess => {
                        // B = child code offset from the end of this
                        // instruction; the child starts with an empty
                        // stack and its own workspace.
                        if let Some(b) = state.regs[1] {
                            let target = insn.end() as i64 + b;
                            discovered.insert((i, target, "child entry"));
                            let child = State {
                                lo: 0,
                                hi: 0,
                                wadj: None,
                                regs: [None; 3],
                            };
                            seeds.push((target, child));
                        }
                        next.apply(op.stack_effect());
                    }
                    Op::LoopEnd => {
                        // A = bytes back to the loop start.
                        next.apply(op.stack_effect());
                        if let Some(a) = state.regs[0] {
                            let target = insn.end() as i64 - a;
                            discovered.insert((i, target, "loop start"));
                            seeds.push((target, next.clone()));
                        }
                    }
                    Op::GeneralAdjustWorkspace => {
                        next.apply(op.stack_effect());
                        next.wadj = None;
                    }
                    Op::EndProcess
                    | Op::Return
                    | Op::GeneralCall
                    | Op::AltEnd
                    | Op::StopProcess
                    | Op::HaltSimulation => {
                        next.apply(op.stack_effect());
                        succ = Flow::Stop;
                    }
                    Op::InputMessage | Op::OutputMessage => {
                        // Deschedule points: depth is restored on
                        // resumption but register contents are not
                        // worth trusting.
                        next.apply(op.stack_effect());
                        next.regs = [None; 3];
                    }
                    other => next.apply(other.stack_effect()),
                }
            }
        },
        _ => {
            if let Some(e) = effect {
                next.apply(e);
            }
        }
    }

    StepOut { next, succ, seeds }
}

#[allow(clippy::too_many_arguments)]
fn flow(
    seed: usize,
    seed_state: State,
    insns: &[Insn],
    index: &BTreeMap<usize, usize>,
    code_len: usize,
    shape: Option<&CodeShape>,
    states: &mut [Option<State>],
    reported: &mut BTreeSet<(usize, &'static str)>,
    discovered: &mut BTreeSet<(usize, i64, &'static str)>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut work: VecDeque<usize> = VecDeque::new();
    let merged = match &mut states[seed] {
        Some(s) => s.merge(&seed_state),
        slot @ None => {
            *slot = Some(seed_state);
            true
        }
    };
    if merged {
        work.push_back(seed);
    }

    while let Some(i) = work.pop_front() {
        let insn = insns[i];
        let state = states[i].clone().expect("queued with a state");
        let out = step(i, &insn, &state, shape, reported, discovered, diags);

        // An edge to a byte address lands only if it is in range and on
        // an instruction boundary; bad targets are diagnosed separately.
        for (target, entry) in &out.seeds {
            if (0..code_len as i64).contains(target) {
                if let Some(&t) = index.get(&(*target as usize)) {
                    merge_into(t, entry, states, &mut work);
                }
            }
        }
        let jump = |target: i64, states: &mut [Option<State>], work: &mut VecDeque<usize>| {
            if (0..code_len as i64).contains(&target) {
                if let Some(&t) = index.get(&(target as usize)) {
                    merge_into(t, &out.next, states, work);
                }
            }
        };
        match out.succ {
            Flow::Next => {
                if i + 1 < insns.len() {
                    merge_into(i + 1, &out.next, states, &mut work);
                }
            }
            Flow::Jump(target) => jump(target, states, &mut work),
            Flow::Branch(target) => {
                jump(target, states, &mut work);
                if i + 1 < insns.len() {
                    merge_into(i + 1, &out.next, states, &mut work);
                }
            }
            Flow::Stop => {}
        }
    }
}

fn merge_into(
    target: usize,
    incoming: &State,
    states: &mut [Option<State>],
    work: &mut VecDeque<usize>,
) {
    let widened = match &mut states[target] {
        Some(s) => s.merge(incoming),
        slot @ None => {
            *slot = Some(incoming.clone());
            true
        }
    };
    if widened && !work.contains(&target) {
        work.push_back(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transputer::instr::{encode, encode_into, encode_op};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn errors(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags
            .iter()
            .filter(|d| d.is_error())
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_straight_line_program_passes() {
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 7, &mut code);
        encode_into(Direct::StoreLocal, 0, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let shape = CodeShape {
            locals: 1,
            depth: 0,
        };
        assert!(verify_bytecode(&code, Some(&shape)).is_empty());
    }

    #[test]
    fn underflow_is_definite_only() {
        // add with an empty stack: definite underflow.
        let code = encode_op(Op::Add);
        assert_eq!(errors(&verify_bytecode(&code, None)), ["stack-underflow"]);
        // One operand is still one short.
        let mut code = encode(Direct::LoadConstant, 1);
        code.extend(encode_op(Op::Add));
        assert_eq!(errors(&verify_bytecode(&code, None)), ["stack-underflow"]);
        // Two operands: fine.
        let mut code = encode(Direct::LoadConstant, 1);
        code.extend(encode(Direct::LoadConstant, 2));
        code.extend(encode_op(Op::Add));
        code.extend(encode_op(Op::HaltSimulation));
        assert!(verify_bytecode(&code, None).is_empty());
    }

    #[test]
    fn overflow_detects_creg_loss() {
        let mut code = Vec::new();
        for v in 0..4 {
            encode_into(Direct::LoadConstant, v, &mut code);
        }
        code.extend(encode_op(Op::HaltSimulation));
        assert_eq!(errors(&verify_bytecode(&code, None)), ["stack-overflow"]);
    }

    #[test]
    fn jump_into_prefix_chain_is_flagged() {
        // j 1 lands between the pfix bytes of the following ldc #754.
        let mut code = encode(Direct::Jump, 1);
        code.extend(encode(Direct::LoadConstant, 0x754));
        assert_eq!(
            errors(&verify_bytecode(&code, None)),
            ["jump-mid-instruction"]
        );
    }

    #[test]
    fn jump_out_of_code_is_flagged() {
        let code = encode(Direct::Jump, 15);
        assert_eq!(errors(&verify_bytecode(&code, None)), ["jump-out-of-range"]);
    }

    #[test]
    fn workspace_bounds_respect_shape() {
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 1, &mut code);
        encode_into(Direct::StoreLocal, 9, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let shape = CodeShape {
            locals: 2,
            depth: 0,
        };
        assert_eq!(
            errors(&verify_bytecode(&code, Some(&shape))),
            ["workspace-oob"]
        );
        // Without a shape the check is silent.
        assert!(verify_bytecode(&code, None).is_empty());
    }

    #[test]
    fn ajw_moves_the_checked_window() {
        // ajw -2 then stl 1 addresses word -1: fine with depth 2.
        let mut code = Vec::new();
        encode_into(Direct::AdjustWorkspace, -2, &mut code);
        encode_into(Direct::LoadConstant, 1, &mut code);
        encode_into(Direct::StoreLocal, 1, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let ok = CodeShape {
            locals: 1,
            depth: 2,
        };
        assert!(verify_bytecode(&code, Some(&ok)).is_empty());
        let too_small = CodeShape {
            locals: 1,
            depth: 0,
        };
        assert_eq!(
            errors(&verify_bytecode(&code, Some(&too_small))),
            ["workspace-oob"]
        );
    }

    #[test]
    fn non_minimal_prefix_chain_warns() {
        // pfix 0; ldc 5 encodes operand 5 in two bytes where one is enough.
        let code = vec![0x20, 0x45];
        let diags = verify_bytecode(&code, None);
        assert_eq!(codes(&diags), ["canonical-prefix"]);
        assert!(!diags[0].is_error());
    }

    #[test]
    fn truncated_prefix_chain_is_an_error() {
        let code = vec![0x21];
        assert_eq!(
            errors(&verify_bytecode(&code, None)),
            ["truncated-instruction"]
        );
    }

    #[test]
    fn undefined_operation_is_an_error() {
        // opr 0x11 has no defined operation.
        let code = encode(Direct::Operate, 0x11);
        assert_eq!(
            errors(&verify_bytecode(&code, None)),
            ["undefined-operation"]
        );
    }

    #[test]
    fn startp_child_entry_is_validated() {
        // ldc offset; ldlp 0; startp with an offset landing mid-chain.
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 1, &mut code);
        encode_into(Direct::LoadLocalPointer, 0, &mut code);
        code.extend(encode_op(Op::StartProcess));
        code.extend(encode(Direct::LoadConstant, 0x754)); // 3-byte target zone
        code.extend(encode_op(Op::HaltSimulation));
        let diags = verify_bytecode(&code, None);
        assert!(
            errors(&diags).contains(&"jump-mid-instruction"),
            "got {diags:?}"
        );
    }

    #[test]
    fn conditional_jump_keeps_both_edges_sound() {
        // ldc 1; cj over; ldc 2; stl 0; over: haltsim
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 1, &mut code);
        let body_len = {
            let mut b = Vec::new();
            encode_into(Direct::LoadConstant, 2, &mut b);
            encode_into(Direct::StoreLocal, 0, &mut b);
            b.len()
        };
        encode_into(Direct::ConditionalJump, body_len as i64, &mut code);
        encode_into(Direct::LoadConstant, 2, &mut code);
        encode_into(Direct::StoreLocal, 0, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let shape = CodeShape {
            locals: 1,
            depth: 0,
        };
        assert!(verify_bytecode(&code, Some(&shape)).is_empty());
    }

    #[test]
    fn empty_code_is_clean() {
        assert!(verify_bytecode(&[], None).is_empty());
    }
}
