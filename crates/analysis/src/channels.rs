//! Layer 1: source-level channel-usage analysis.
//!
//! occam's usage rules make channels point-to-point: in any `PAR`, a
//! channel may be used for input by at most one branch and for output
//! by at most one branch. This pass enforces that rule (including
//! through `PROC` channel parameters, whose directions are inferred
//! from the `PROC` body), and layers a small process/channel-graph
//! analysis on top:
//!
//! * **unconnected ends** — a declared channel that is only ever read,
//!   only ever written, or never used (warnings; `PLACE`d channels are
//!   exempt, their far end is a link);
//! * **self-communication** — one sequential flow both inputs and
//!   outputs on the same channel, which can never rendezvous with
//!   itself (warning);
//! * **trivial cyclic wait** — a two-branch `PAR` of straight-line
//!   processes in which each branch's first communication waits for
//!   one the other branch only performs later (error: a definite
//!   deadlock).
//!
//! The analysis is *definite-only* where the language rule permits:
//! channel-vector elements conflict across branches only when their
//! subscripts are provably equal (constants or plain names), and a
//! replicated `PAR` only flags uses whose subscript cannot vary with
//! the replicator index.

use std::collections::{HashMap, HashSet};

use crate::diag::{Diagnostic, Span};
use occam::ast::{
    Actual, AltKind, Alternative, ChanRef, Decl, Expr, ParamMode, Pos, Process, Replicator, UnOp,
};

/// Diagnostic span for a source position: line-and-column when the
/// parser recorded a column, whole-line otherwise.
fn sp(pos: Pos) -> Span {
    if pos.col > 0 {
        Span::at(pos.line, pos.col)
    } else {
        Span::line(pos.line)
    }
}

/// Run the channel lints over a parsed program.
pub fn check(program: &Process) -> Vec<Diagnostic> {
    let mut ck = Checker::default();
    ck.scopes.push(HashMap::new());
    let mut usage = Usage::default();
    ck.visit(program, &mut usage);
    crate::diag::sort(&mut ck.diags);
    ck.diags
}

/// Identity of a tracked channel: a declared channel or a `PROC`
/// channel formal (whose actual varies per call site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    Chan(u32),
    Formal(u32),
}

/// How a channel-vector use is subscripted.
#[derive(Debug, Clone, PartialEq)]
enum Index {
    /// A scalar channel (no subscript).
    Scalar,
    /// A compile-time constant subscript.
    Const(i64),
    /// A subscript depending on the named variables.
    Dynamic(Vec<String>),
}

impl Index {
    /// Two uses that provably address the same channel word.
    fn definitely_same(&self, other: &Index) -> bool {
        match (self, other) {
            (Index::Scalar, Index::Scalar) => true,
            (Index::Const(a), Index::Const(b)) => a == b,
            _ => false,
        }
    }

    /// Whether the subscript can take a different value for each value
    /// of the replicator variable `var`.
    fn varies_with(&self, var: &str) -> bool {
        match self {
            Index::Dynamic(vars) => vars.iter().any(|v| v == var),
            _ => false,
        }
    }
}

/// One use of a channel end.
#[derive(Debug, Clone)]
struct Site {
    pos: Pos,
    index: Index,
}

impl Site {
    fn line(&self) -> u32 {
        self.pos.line
    }
}

/// All uses of one channel, split by direction.
#[derive(Debug, Clone, Default)]
struct ChanUse {
    inputs: Vec<Site>,
    outputs: Vec<Site>,
}

const SITE_CAP: usize = 16;

fn push_site(sites: &mut Vec<Site>, site: Site) {
    if sites.len() < SITE_CAP {
        sites.push(site);
    }
}

type Map = HashMap<Key, ChanUse>;

fn merge_map(dst: &mut Map, src: &Map) {
    for (key, cu) in src {
        let entry = dst.entry(*key).or_default();
        for s in &cu.inputs {
            push_site(&mut entry.inputs, s.clone());
        }
        for s in &cu.outputs {
            push_site(&mut entry.outputs, s.clone());
        }
    }
}

/// Channel usage of a process subtree. `serial` holds only uses on the
/// current sequential flow (a `PAR` contributes nothing serial to its
/// parent); `total` holds every use in the subtree.
#[derive(Debug, Clone, Default)]
struct Usage {
    serial: Map,
    total: Map,
}

#[derive(Debug, Clone)]
enum Binding {
    Chan(u32),
    Formal(u32),
    Proc(usize),
    Const(i64),
    Other,
}

#[derive(Debug)]
struct ChanInfo {
    name: String,
    line: u32,
    placed: bool,
}

/// Inferred channel behaviour of a `PROC`: which formals are channels,
/// and the body's usage summary over formals and free channels.
#[derive(Debug)]
struct ProcSig {
    chan_formals: Vec<Option<u32>>,
    serial: Map,
    total: Map,
}

#[derive(Debug, Clone, Copy)]
enum Dir {
    Input,
    Output,
}

/// One step of a straight-line branch, for the cyclic-wait check.
#[derive(Debug, Clone)]
struct Ev {
    key: Key,
    index: Index,
    dir: Dir,
    pos: Pos,
    name: String,
}

impl Ev {
    fn rendezvous_with(&self, other: &Ev) -> bool {
        self.key == other.key
            && self.index.definitely_same(&other.index)
            && !matches!(
                (self.dir, other.dir),
                (Dir::Input, Dir::Input) | (Dir::Output, Dir::Output)
            )
    }
}

#[derive(Default)]
struct Checker {
    scopes: Vec<HashMap<String, Binding>>,
    chans: HashMap<u32, ChanInfo>,
    names: HashMap<Key, String>,
    sigs: Vec<ProcSig>,
    next_id: u32,
    warned: HashSet<(Key, &'static str)>,
    diags: Vec<Diagnostic>,
}

impl Checker {
    fn fresh_id(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn bind(&mut self, name: &str, binding: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.to_string(), binding);
    }

    fn display_name(&self, key: Key) -> String {
        self.names
            .get(&key)
            .cloned()
            .unwrap_or_else(|| "<channel>".to_string())
    }

    fn is_placed(&self, key: Key) -> bool {
        match key {
            Key::Chan(id) => self.chans.get(&id).is_some_and(|c| c.placed),
            Key::Formal(_) => false,
        }
    }

    fn resolve(&self, cref: &ChanRef) -> Option<(Key, Index)> {
        let (name, index) = match cref {
            ChanRef::Name(n) => (n, Index::Scalar),
            ChanRef::Index(n, e) => (n, classify_index(e, self)),
        };
        match self.lookup(name)? {
            Binding::Chan(id) => Some((Key::Chan(*id), index)),
            Binding::Formal(fid) => Some((Key::Formal(*fid), index)),
            _ => None,
        }
    }

    fn record(&mut self, usage: &mut Usage, cref: &ChanRef, dir: Dir, pos: Pos) {
        if let Some((key, index)) = self.resolve(cref) {
            let site = Site { pos, index };
            for map in [&mut usage.serial, &mut usage.total] {
                let entry = map.entry(key).or_default();
                match dir {
                    Dir::Input => push_site(&mut entry.inputs, site.clone()),
                    Dir::Output => push_site(&mut entry.outputs, site.clone()),
                }
            }
        }
    }

    fn visit(&mut self, p: &Process, usage: &mut Usage) {
        match p {
            Process::Skip
            | Process::Stop
            | Process::Assign(..)
            | Process::ReadTime(..)
            | Process::Delay(..) => {}
            Process::Output(c, _, pos) => self.record(usage, c, Dir::Output, *pos),
            Process::Input(c, _, pos) => self.record(usage, c, Dir::Input, *pos),
            Process::Seq(rep, ps, _) => {
                self.with_replicator(rep.as_ref(), |ck| {
                    for p in ps {
                        ck.visit(p, usage);
                    }
                });
            }
            Process::If(arms, _) => {
                for arm in arms {
                    self.visit(&arm.body, usage);
                }
            }
            Process::While(_, body, _) => self.visit(body, usage),
            Process::Alt(rep, alts, _) | Process::PriAlt(rep, alts, _) => {
                self.with_replicator(rep.as_ref(), |ck| {
                    for alt in alts {
                        ck.visit_alt(alt, usage);
                    }
                });
            }
            Process::Par(rep, branches, _) => match rep {
                Some(rep) => self.visit_replicated_par(rep, branches, usage),
                None => self.visit_par(branches, usage),
            },
            Process::PriPar(branches, _) => self.visit_par(branches, usage),
            Process::Declared(decls, body, pos) => {
                self.visit_declared(decls, body, pos.line, usage)
            }
            Process::Call(name, actuals, pos) => self.visit_call(name, actuals, *pos, usage),
        }
    }

    fn visit_alt(&mut self, alt: &Alternative, usage: &mut Usage) {
        if let AltKind::Input(c, _) = &alt.kind {
            self.record(usage, c, Dir::Input, alt.pos);
        }
        self.visit(&alt.body, usage);
    }

    fn with_replicator(&mut self, rep: Option<&Replicator>, f: impl FnOnce(&mut Checker)) {
        match rep {
            Some(rep) => {
                self.scopes.push(HashMap::new());
                self.bind(&rep.var, Binding::Other);
                f(self);
                self.scopes.pop();
            }
            None => f(self),
        }
    }

    fn visit_declared(&mut self, decls: &[Decl], body: &Process, line: u32, usage: &mut Usage) {
        self.scopes.push(HashMap::new());
        let mut declared: Vec<u32> = Vec::new();
        for decl in decls {
            match decl {
                Decl::Var(names) => {
                    for (name, _) in names {
                        self.bind(name, Binding::Other);
                    }
                }
                Decl::Def(name, expr) => {
                    let binding = match const_value(expr, self) {
                        Some(v) => Binding::Const(v),
                        None => Binding::Other,
                    };
                    self.bind(name, binding);
                }
                Decl::Chan(names) => {
                    for (name, _) in names {
                        let id = self.fresh_id();
                        self.bind(name, Binding::Chan(id));
                        self.chans.insert(
                            id,
                            ChanInfo {
                                name: name.clone(),
                                line,
                                placed: false,
                            },
                        );
                        self.names.insert(Key::Chan(id), name.clone());
                        declared.push(id);
                    }
                }
                Decl::Place(name, _) => {
                    if let Some(Binding::Chan(id)) = self.lookup(name).cloned() {
                        if let Some(info) = self.chans.get_mut(&id) {
                            info.placed = true;
                        }
                    }
                }
                Decl::Proc(name, params, body) => {
                    let sig = self.analyze_proc(params, body);
                    self.sigs.push(sig);
                    self.bind(name, Binding::Proc(self.sigs.len() - 1));
                }
            }
        }
        self.visit(body, usage);
        for id in declared {
            self.finish_channel(id, usage);
        }
        self.scopes.pop();
    }

    /// End-of-scope checks for one declared channel, after which its
    /// usage is dropped: it cannot appear again, and `PROC` summaries
    /// must not carry body-local channels to call sites.
    fn finish_channel(&mut self, id: u32, usage: &mut Usage) {
        let key = Key::Chan(id);
        let info = &self.chans[&id];
        let (name, line, placed) = (info.name.clone(), info.line, info.placed);
        if let Some(cu) = usage.serial.get(&key) {
            self.check_self_comm(key, cu);
        }
        if !placed {
            match usage.total.get(&key) {
                None => self.warn(
                    key,
                    "chan-unused",
                    Span::line(line),
                    format!("channel `{name}` is declared but never used"),
                ),
                Some(cu) if cu.inputs.is_empty() && !cu.outputs.is_empty() => self.warn(
                    key,
                    "chan-no-reader",
                    Span::line(line),
                    format!(
                        "channel `{name}` is written (line {}) but never read: the writer will block forever",
                        cu.outputs[0].line()
                    ),
                ),
                Some(cu) if cu.outputs.is_empty() && !cu.inputs.is_empty() => self.warn(
                    key,
                    "chan-no-writer",
                    Span::line(line),
                    format!(
                        "channel `{name}` is read (line {}) but never written: the reader will block forever",
                        cu.inputs[0].line()
                    ),
                ),
                Some(_) => {}
            }
        }
        usage.serial.remove(&key);
        usage.total.remove(&key);
    }

    fn check_self_comm(&mut self, key: Key, cu: &ChanUse) {
        if self.is_placed(key) {
            return;
        }
        let pair = cu.inputs.iter().find_map(|i| {
            cu.outputs
                .iter()
                .find(|o| i.index.definitely_same(&o.index))
                .map(|o| (i, o))
        });
        if let Some((i, o)) = pair {
            let name = self.display_name(key);
            let (first, second) = if i.line() <= o.line() {
                (i.pos, o.pos)
            } else {
                (o.pos, i.pos)
            };
            let (line, other) = (first.line, second.line);
            self.warn(
                key,
                "chan-self-communication",
                sp(first),
                format!(
                    "the same sequential process both inputs and outputs on channel `{name}` \
                     (lines {line} and {other}): it can never rendezvous with itself"
                ),
            );
        }
    }

    fn visit_par(&mut self, branches: &[Process], usage: &mut Usage) {
        let mut branch_usages = Vec::with_capacity(branches.len());
        for branch in branches {
            let mut bu = Usage::default();
            self.visit(branch, &mut bu);
            let keys: Vec<Key> = bu.serial.keys().copied().collect();
            for key in keys {
                let cu = bu.serial[&key].clone();
                self.check_self_comm(key, &cu);
            }
            branch_usages.push(bu);
        }

        // One inputting branch and one outputting branch per channel
        // (per provably-identical vector element).
        let mut keys: Vec<Key> = branch_usages
            .iter()
            .flat_map(|u| u.total.keys().copied())
            .collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            for (dir, code) in [
                (Dir::Input, "par-chan-input"),
                (Dir::Output, "par-chan-output"),
            ] {
                let per_branch: Vec<&[Site]> = branch_usages
                    .iter()
                    .map(|bu| {
                        bu.total.get(&key).map_or(&[] as &[Site], |cu| match dir {
                            Dir::Input => &cu.inputs,
                            Dir::Output => &cu.outputs,
                        })
                    })
                    .collect();
                let conflict = per_branch
                    .iter()
                    .enumerate()
                    .flat_map(|(bi, sites)| sites.iter().map(move |s| (bi, s)))
                    .find_map(|(bi, s)| {
                        per_branch[bi + 1..]
                            .iter()
                            .flat_map(|sites| sites.iter())
                            .find(|t| s.index.definitely_same(&t.index))
                            .map(|t| (s.clone(), t.clone()))
                    });
                if let Some((a, b)) = conflict {
                    let name = self.display_name(key);
                    let what = match dir {
                        Dir::Input => "input",
                        Dir::Output => "output",
                    };
                    let (early, late) = if a.line() <= b.line() {
                        (&a, &b)
                    } else {
                        (&b, &a)
                    };
                    let (first, second) = (early.line(), late.line());
                    let late_pos = late.pos;
                    self.error(
                        key,
                        code,
                        sp(late_pos),
                        format!(
                            "channel `{name}` is used for {what} in more than one branch of \
                             a PAR (lines {first} and {second}); a channel connects exactly \
                             two processes"
                        ),
                    );
                }
            }
        }

        self.check_cyclic_wait(branches);

        for bu in &branch_usages {
            merge_map(&mut usage.total, &bu.total);
        }
    }

    fn visit_replicated_par(&mut self, rep: &Replicator, branches: &[Process], usage: &mut Usage) {
        let mut bu = Usage::default();
        self.scopes.push(HashMap::new());
        self.bind(&rep.var, Binding::Other);
        for branch in branches {
            self.visit(branch, &mut bu);
        }
        self.scopes.pop();

        let keys: Vec<Key> = bu.serial.keys().copied().collect();
        for key in keys {
            let cu = bu.serial[&key].clone();
            self.check_self_comm(key, &cu);
        }

        // Every iteration is a branch: any use whose subscript cannot
        // vary with the replicator index is shared by all of them.
        let multi = match const_value(&rep.count, self) {
            Some(n) => n > 1,
            None => true,
        };
        if multi {
            let mut keys: Vec<Key> = bu.total.keys().copied().collect();
            keys.sort();
            for key in keys {
                let cu = bu.total[&key].clone();
                for (sites, code, what) in [
                    (&cu.inputs, "par-chan-input", "input"),
                    (&cu.outputs, "par-chan-output", "output"),
                ] {
                    if let Some(site) = sites.iter().find(|s| !s.index.varies_with(&rep.var)) {
                        let name = self.display_name(key);
                        let line = site.line();
                        let pos = site.pos;
                        self.error(
                            key,
                            code,
                            sp(pos),
                            format!(
                                "channel `{name}` is used for {what} (line {line}) by every \
                                 iteration of a replicated PAR: the subscript does not vary \
                                 with `{}`",
                                rep.var
                            ),
                        );
                    }
                }
            }
        }
        merge_map(&mut usage.total, &bu.total);
    }

    fn visit_call(&mut self, name: &str, actuals: &[Actual], pos: Pos, usage: &mut Usage) {
        let Some(Binding::Proc(idx)) = self.lookup(name).cloned() else {
            return;
        };
        // Map the callee's channel formals to this call's actuals.
        let mut remap: HashMap<u32, Option<(Key, Index)>> = HashMap::new();
        {
            let sig = &self.sigs[idx];
            for (i, formal) in sig.chan_formals.iter().enumerate() {
                if let Some(fid) = formal {
                    // The parser produces `Actual::Expr` for every
                    // actual; the formal's mode decides what it means.
                    let resolved = match actuals.get(i) {
                        Some(Actual::Chan(cref)) => self.resolve(cref),
                        Some(Actual::Expr(Expr::Name(n))) => {
                            self.resolve(&ChanRef::Name(n.clone()))
                        }
                        Some(Actual::Expr(Expr::Index(n, e))) => {
                            self.resolve(&ChanRef::Index(n.clone(), e.clone()))
                        }
                        _ => None,
                    };
                    remap.insert(*fid, resolved);
                }
            }
        }
        let rewrite = |map: &Map, remap: &HashMap<u32, Option<(Key, Index)>>| -> Map {
            let mut out = Map::new();
            for (key, cu) in map {
                type SiteOf = Box<dyn Fn(&Site) -> Site>;
                let (key, site_of): (Key, SiteOf) = match key {
                    Key::Formal(fid) if remap.contains_key(fid) => match &remap[fid] {
                        Some((actual_key, actual_index)) => {
                            let index = actual_index.clone();
                            (
                                *actual_key,
                                Box::new(move |_| Site {
                                    pos,
                                    index: index.clone(),
                                }),
                            )
                        }
                        None => continue,
                    },
                    other => (*other, Box::new(|s: &Site| s.clone())),
                };
                let entry = out.entry(key).or_default();
                for s in &cu.inputs {
                    push_site(&mut entry.inputs, site_of(s));
                }
                for s in &cu.outputs {
                    push_site(&mut entry.outputs, site_of(s));
                }
            }
            out
        };
        let (sig_serial, sig_total) = {
            let sig = &self.sigs[idx];
            (sig.serial.clone(), sig.total.clone())
        };
        let serial = rewrite(&sig_serial, &remap);
        let total = rewrite(&sig_total, &remap);
        merge_map(&mut usage.serial, &serial);
        merge_map(&mut usage.total, &serial);
        merge_map(&mut usage.total, &total);
    }

    fn analyze_proc(&mut self, params: &[occam::ast::Param], body: &Process) -> ProcSig {
        self.scopes.push(HashMap::new());
        let mut chan_formals = Vec::with_capacity(params.len());
        for param in params {
            match param.mode {
                ParamMode::Chan => {
                    let fid = self.fresh_id();
                    self.bind(&param.name, Binding::Formal(fid));
                    self.names.insert(Key::Formal(fid), param.name.clone());
                    chan_formals.push(Some(fid));
                }
                ParamMode::Value | ParamMode::Var => {
                    self.bind(&param.name, Binding::Other);
                    chan_formals.push(None);
                }
            }
        }
        let mut body_usage = Usage::default();
        self.visit(body, &mut body_usage);
        self.scopes.pop();
        ProcSig {
            chan_formals,
            serial: body_usage.serial,
            total: body_usage.total,
        }
    }

    /// Definite-deadlock check for an N-branch `PAR` of straight-line
    /// processes. Simulate the rendezvous interleaving to a fixpoint
    /// (any pair of branch heads that can communicate does); at the
    /// fixpoint, build the wait-for graph over the stuck branches —
    /// an edge `i -> j` when the head of branch `i` can only
    /// rendezvous with an event branch `j` has not reached yet. Since
    /// each branch is straight-line, a branch advances only by
    /// completing its head, so any cycle in this graph is a definite
    /// deadlock; the full cycle is reported with every blocked
    /// communication's channel and line.
    fn check_cyclic_wait(&mut self, branches: &[Process]) {
        if branches.len() < 2 {
            return;
        }
        // Every branch must have a trivially-ordered communication
        // sequence, or the simulation is unsound (a branch we cannot
        // model might supply any rendezvous).
        let mut seqs = Vec::with_capacity(branches.len());
        for b in branches {
            let Some(e) = self.extract(b) else { return };
            seqs.push(e);
        }
        let n = seqs.len();
        let mut heads = vec![0usize; n];
        loop {
            let mut advanced = false;
            'scan: for i in 0..n {
                let Some(x) = seqs[i].get(heads[i]) else {
                    continue;
                };
                for j in i + 1..n {
                    let Some(y) = seqs[j].get(heads[j]) else {
                        continue;
                    };
                    if x.rendezvous_with(y) {
                        heads[i] += 1;
                        heads[j] += 1;
                        advanced = true;
                        break 'scan;
                    }
                }
            }
            if !advanced {
                break;
            }
        }
        // Wait-for edges. A stuck head whose partner never occurs is
        // an unconnected end (covered by the graph lints), not a wait.
        // At the fixpoint no two current heads rendezvous, so scanning
        // from `heads[j]` only finds strictly-later partners.
        let mut edge: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            let Some(x) = seqs[i].get(heads[i]) else {
                continue;
            };
            edge[i] = (0..n)
                .find(|&j| j != i && seqs[j][heads[j]..].iter().any(|e| x.rendezvous_with(e)));
        }
        // Each node has at most one successor: walk every chain once
        // and report the cycle it runs into, if any.
        let mut color = vec![0u8; n]; // 0 = new, 1 = on current chain, 2 = done
        for s in 0..n {
            if color[s] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut u = s;
            while color[u] == 0 {
                color[u] = 1;
                path.push(u);
                match edge[u] {
                    Some(v) => u = v,
                    None => break,
                }
            }
            if color[u] == 1 && edge[u].is_some() {
                let start = path.iter().position(|&p| p == u).expect("on chain");
                self.report_cycle(&seqs, &heads, &path[start..]);
            }
            for &p in &path {
                color[p] = 2;
            }
        }
    }

    /// Report one wait-for cycle, naming every blocked communication.
    fn report_cycle(&mut self, seqs: &[Vec<Ev>], heads: &[usize], cycle: &[usize]) {
        let evs: Vec<&Ev> = cycle.iter().map(|&i| &seqs[i][heads[i]]).collect();
        let chain = evs
            .iter()
            .map(|e| format!("`{}` (line {})", e.name, e.pos.line))
            .collect::<Vec<_>>()
            .join(", ");
        let anchor = evs
            .iter()
            .min_by_key(|e| (e.pos.line, e.pos.col))
            .expect("cycle is nonempty");
        let (key, pos, n) = (anchor.key, anchor.pos, cycle.len());
        self.error(
            key,
            "par-deadlock",
            sp(pos),
            format!(
                "PAR branches deadlock: the communications on {chain} form a cyclic wait \
                 among {n} branches; each waits for a rendezvous another blocked branch \
                 only reaches later"
            ),
        );
    }

    /// The straight-line communication sequence of a branch, or `None`
    /// if the branch contains anything (choice, loops, calls, placed
    /// or dynamically-subscripted channels) that makes the order
    /// non-trivial.
    fn extract(&self, p: &Process) -> Option<Vec<Ev>> {
        match p {
            Process::Skip | Process::Assign(..) | Process::ReadTime(..) | Process::Delay(..) => {
                Some(Vec::new())
            }
            Process::Seq(None, ps, _) => {
                let mut out = Vec::new();
                for p in ps {
                    out.extend(self.extract(p)?);
                }
                Some(out)
            }
            Process::Output(c, _, pos) => self.extract_comm(c, Dir::Output, *pos),
            Process::Input(c, _, pos) => self.extract_comm(c, Dir::Input, *pos),
            _ => None,
        }
    }

    fn extract_comm(&self, c: &ChanRef, dir: Dir, pos: Pos) -> Option<Vec<Ev>> {
        let (key, index) = self.resolve(c)?;
        if self.is_placed(key) || matches!(index, Index::Dynamic(_)) {
            return None;
        }
        Some(vec![Ev {
            name: self.display_name(key),
            key,
            index,
            dir,
            pos,
        }])
    }

    fn warn(&mut self, key: Key, code: &'static str, span: Span, message: String) {
        if self.warned.insert((key, code)) {
            self.diags.push(Diagnostic::warning(code, span, message));
        }
    }

    fn error(&mut self, key: Key, code: &'static str, span: Span, message: String) {
        if self.warned.insert((key, code)) {
            self.diags.push(Diagnostic::error(code, span, message));
        }
    }
}

/// Classify a channel-vector subscript.
fn classify_index(e: &Expr, ck: &Checker) -> Index {
    match const_value(e, ck) {
        Some(v) => Index::Const(v),
        None => {
            let mut vars = Vec::new();
            expr_vars(e, &mut vars);
            Index::Dynamic(vars)
        }
    }
}

/// Evaluate compile-time constants: literals, `DEF` names, negation.
fn const_value(e: &Expr, ck: &Checker) -> Option<i64> {
    match e {
        Expr::Literal(v) => Some(*v),
        Expr::True => Some(1),
        Expr::False => Some(0),
        Expr::Name(n) => match ck.lookup(n) {
            Some(Binding::Const(v)) => Some(*v),
            _ => None,
        },
        Expr::Un(UnOp::Neg, inner) => const_value(inner, ck).map(|v| -v),
        _ => None,
    }
}

/// Collect the variable names an expression depends on.
fn expr_vars(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Literal(_) | Expr::True | Expr::False => {}
        Expr::Name(n) => out.push(n.clone()),
        Expr::Index(n, inner) | Expr::ByteIndex(n, inner) => {
            out.push(n.clone());
            expr_vars(inner, out);
        }
        Expr::Bin(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Expr::Un(_, inner) => expr_vars(inner, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let ast = occam::parse(src).expect("fixture parses");
        check(&ast)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_producer_consumer_passes() {
        let diags = lint(
            "CHAN c:\n\
             PAR\n\
             \x20 c ! 1\n\
             \x20 VAR x:\n\
             \x20 c ? x",
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn two_writers_in_par_is_an_error() {
        let diags = lint(
            "CHAN c:\n\
             PAR\n\
             \x20 c ! 1\n\
             \x20 c ! 2\n\
             \x20 VAR x:\n\
             \x20 c ? x",
        );
        assert_eq!(codes(&diags), ["par-chan-output"]);
        assert!(diags[0].is_error());
        assert_eq!(diags[0].span.source_line(), Some(4));
        // The span carries a column: the second `c ! 2` starts at col 3.
        assert_eq!(diags[0].span, Span::at(4, 3));
    }

    #[test]
    fn two_readers_in_par_is_an_error() {
        let diags = lint(
            "CHAN c:\n\
             VAR x, y:\n\
             PAR\n\
             \x20 c ? x\n\
             \x20 c ? y\n\
             \x20 c ! 7",
        );
        assert_eq!(codes(&diags), ["par-chan-input"]);
    }

    #[test]
    fn conflict_through_proc_parameter_direction() {
        // sink inputs on its formal, so both branches input on c.
        let diags = lint(
            "CHAN c:\n\
             PROC sink(CHAN in) =\n\
             \x20 VAR x:\n\
             \x20 in ? x\n\
             :\n\
             VAR y:\n\
             PAR\n\
             \x20 sink(c)\n\
             \x20 c ? y\n\
             \x20 c ! 1",
        );
        assert_eq!(codes(&diags), ["par-chan-input"]);
    }

    #[test]
    fn vector_elements_do_not_conflict() {
        let diags = lint(
            "CHAN c[2]:\n\
             VAR x, y:\n\
             PAR\n\
             \x20 c[0] ! 1\n\
             \x20 c[1] ! 2\n\
             \x20 SEQ\n\
             \x20   c[0] ? x\n\
             \x20   c[1] ? y",
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn replicated_par_needs_varying_subscript() {
        let diags = lint(
            "CHAN c[4]:\n\
             CHAN out:\n\
             PAR i = [0 FOR 4]\n\
             \x20 out ! 1",
        );
        assert!(codes(&diags).contains(&"par-chan-output"), "got {diags:?}");
    }

    #[test]
    fn replicated_par_with_indexed_channels_passes() {
        let diags = lint(
            "CHAN c[4]:\n\
             PAR i = [0 FOR 4]\n\
             \x20 c[i] ! i",
        );
        assert!(!codes(&diags).contains(&"par-chan-output"), "got {diags:?}");
    }

    #[test]
    fn unconnected_ends_warn() {
        let diags = lint(
            "CHAN c:\n\
             c ! 1",
        );
        assert_eq!(codes(&diags), ["chan-no-reader"]);
        assert!(!diags[0].is_error());
        let diags = lint(
            "CHAN c:\n\
             VAR x:\n\
             c ? x",
        );
        assert_eq!(codes(&diags), ["chan-no-writer"]);
        let diags = lint(
            "CHAN c:\n\
             SKIP",
        );
        assert_eq!(codes(&diags), ["chan-unused"]);
    }

    #[test]
    fn placed_channels_are_exempt_from_connection_checks() {
        let diags = lint(
            "CHAN c:\n\
             PLACE c AT 0:\n\
             c ! 1",
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn self_communication_warns() {
        let diags = lint(
            "CHAN c:\n\
             VAR x:\n\
             SEQ\n\
             \x20 c ! 1\n\
             \x20 c ? x",
        );
        assert!(
            codes(&diags).contains(&"chan-self-communication"),
            "got {diags:?}"
        );
    }

    #[test]
    fn cyclic_two_process_wait_is_an_error() {
        // Each branch inputs first and outputs second: classic deadlock.
        let diags = lint(
            "CHAN a, b:\n\
             VAR x, y:\n\
             PAR\n\
             \x20 SEQ\n\
             \x20   a ? x\n\
             \x20   b ! 1\n\
             \x20 SEQ\n\
             \x20   b ? y\n\
             \x20   a ! 2",
        );
        assert!(codes(&diags).contains(&"par-deadlock"), "got {diags:?}");
    }

    #[test]
    fn matching_order_does_not_deadlock() {
        let diags = lint(
            "CHAN a, b:\n\
             VAR x, y:\n\
             PAR\n\
             \x20 SEQ\n\
             \x20   a ! 1\n\
             \x20   b ? y\n\
             \x20 SEQ\n\
             \x20   a ? x\n\
             \x20   b ! 2",
        );
        assert!(!codes(&diags).contains(&"par-deadlock"), "got {diags:?}");
    }

    #[test]
    fn three_process_cyclic_wait_is_an_error() {
        // a waits on b, b waits on c, c waits on a: a three-party
        // cycle no pairwise check can see.
        let diags = lint(
            "CHAN a, b, c:\n\
             VAR x, y, z:\n\
             PAR\n\
             \x20 SEQ\n\
             \x20   a ? x\n\
             \x20   b ! 1\n\
             \x20 SEQ\n\
             \x20   b ? y\n\
             \x20   c ! 1\n\
             \x20 SEQ\n\
             \x20   c ? z\n\
             \x20   a ! 1",
        );
        let d = diags
            .iter()
            .find(|d| d.code == "par-deadlock")
            .unwrap_or_else(|| panic!("no par-deadlock in {diags:?}"));
        assert!(d.message.contains("3 branches"), "got {}", d.message);
        for name in ["`a`", "`b`", "`c`"] {
            assert!(d.message.contains(name), "missing {name} in {}", d.message);
        }
    }

    #[test]
    fn three_process_pipeline_does_not_deadlock() {
        let diags = lint(
            "CHAN a, b:\n\
             VAR x, y:\n\
             PAR\n\
             \x20 a ! 1\n\
             \x20 SEQ\n\
             \x20   a ? x\n\
             \x20   b ! 2\n\
             \x20 b ? y",
        );
        assert!(!codes(&diags).contains(&"par-deadlock"), "got {diags:?}");
    }

    #[test]
    fn unmodelled_branch_suppresses_deadlock_check() {
        // The WHILE branch could supply either rendezvous first, so
        // the simulation must not claim a definite deadlock.
        let diags = lint(
            "CHAN a, b:\n\
             VAR x, y, going:\n\
             PAR\n\
             \x20 SEQ\n\
             \x20   a ? x\n\
             \x20   b ! 1\n\
             \x20 SEQ\n\
             \x20   going := 1\n\
             \x20   WHILE going > 0\n\
             \x20     SEQ\n\
             \x20       b ? y\n\
             \x20       a ! 2\n\
             \x20       going := 0",
        );
        assert!(!codes(&diags).contains(&"par-deadlock"), "got {diags:?}");
    }
}
