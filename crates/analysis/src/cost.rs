//! Static cycle-cost model over a recovered CFG.
//!
//! Predicts the exact cycle count, instruction-byte count and logical
//! operation count of a single-process I1 image from the ISA timing
//! tables (`transputer::timing`, the table in `docs/ISA.md`) and the
//! compiler's counted-loop metadata ([`occam::LoopInfo`]). The emulator
//! charges a fixed, data-independent cost for every instruction a
//! compute-class program can contain (the T424 multiplier and divider
//! always run the full word length), so on an analyzable image the
//! model is *exact*, not an estimate — the bench harness validates it
//! against measured [`transputer::Stats`] and CI gates the error.
//!
//! The model refuses ([`Unpredictable`]) anything it cannot bound
//! statically: data-dependent branches, unstructured jumps, subroutine
//! calls, scheduling and communication operations, shifts by
//! non-constant amounts, loops whose trip count the compiler could not
//! evaluate, and any image the CFG recovery marks unanalyzable
//! (computed control, self-modifying stores).

use std::fmt;

use crate::cfg::Cfg;
use crate::diag::Severity;
use crate::verifier::Insn;
use transputer::instr::{Direct, Op};
use transputer::{timing, WordLength};

/// A loop whose trip count is known at compile time.
///
/// `head` is the back-edge target (first body instruction), `end` is
/// the offset just past the `lend`, `count` the number of iterations.
/// The compiler records these as [`occam::LoopInfo`]; hand-written
/// images can supply their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountedLoop {
    /// Offset of the first body instruction (the `lend` back-edge target).
    pub head: u32,
    /// Offset just past the `lend`.
    pub end: u32,
    /// Compile-time iteration count (0 means the body never runs).
    pub count: u32,
}

impl From<&occam::LoopInfo> for CountedLoop {
    fn from(l: &occam::LoopInfo) -> Self {
        CountedLoop {
            head: l.head,
            end: l.end,
            count: l.count,
        }
    }
}

/// Predicted cost of one basic block.
#[derive(Debug, Clone)]
pub struct BlockCost {
    /// Block index into [`Cfg::blocks`].
    pub block: usize,
    /// Byte offset of the block's first instruction.
    pub start: usize,
    /// Byte offset just past the block's last instruction.
    pub end: usize,
    /// Execution frequency of the block entry (product of enclosing
    /// loop counts).
    pub freq: u64,
    /// Total cycles spent in this block across the whole run.
    pub cycles: u64,
    /// Instruction bytes fetched in this block (prefix bytes included,
    /// matching [`transputer::Stats::instructions`]).
    pub bytes: u64,
    /// Logical operations executed (prefix chains folded, matching
    /// [`transputer::Stats::operations`]).
    pub ops: u64,
}

/// Whole-program static cost prediction.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Predicted total cycles.
    pub cycles: u64,
    /// Predicted instruction bytes executed ([`transputer::Stats::instructions`]).
    pub instruction_bytes: u64,
    /// Predicted logical operations executed ([`transputer::Stats::operations`]).
    pub operations: u64,
    /// Per-block breakdown, in address order.
    pub blocks: Vec<BlockCost>,
}

impl CostReport {
    /// Cycles per logical operation.
    pub fn cpi(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.cycles as f64 / self.operations as f64
        }
    }
}

/// Why the model refused an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unpredictable {
    /// Code offset of the offending instruction, when there is one.
    pub offset: Option<usize>,
    /// Human-readable reason.
    pub reason: String,
}

impl Unpredictable {
    fn at(insn: &Insn, reason: impl Into<String>) -> Self {
        Unpredictable {
            offset: Some(insn.offset),
            reason: reason.into(),
        }
    }

    fn whole(reason: impl Into<String>) -> Self {
        Unpredictable {
            offset: None,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Unpredictable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "offset {o:#06x}: {}", self.reason),
            None => write!(f, "{}", self.reason),
        }
    }
}

impl std::error::Error for Unpredictable {}

/// Predict the cost of a compiled occam program, using the compiler's
/// counted-loop metadata.
///
/// # Errors
///
/// Returns [`Unpredictable`] when any instruction's timing or
/// frequency cannot be bounded statically.
pub fn analyze_program(
    program: &occam::Program,
    word: WordLength,
) -> Result<CostReport, Unpredictable> {
    let cfg = Cfg::recover_program(program);
    let loops: Vec<CountedLoop> = program.loops.iter().map(CountedLoop::from).collect();
    analyze_cost(&cfg, &loops, word)
}

/// Predict the cost of an image from its recovered CFG and loop table.
///
/// # Errors
///
/// Returns [`Unpredictable`] when any instruction's timing or
/// frequency cannot be bounded statically, when the CFG recovery
/// marked a region unanalyzable, or when the verifier found errors.
pub fn analyze_cost(
    cfg: &Cfg,
    loops: &[CountedLoop],
    word: WordLength,
) -> Result<CostReport, Unpredictable> {
    if let Some(u) = cfg.unanalyzable.first() {
        return Err(Unpredictable {
            offset: Some(u.offset),
            reason: u.reason.clone(),
        });
    }
    if let Some(d) = cfg
        .diags
        .iter()
        .find(|d| matches!(d.severity, Severity::Error))
    {
        return Err(Unpredictable::whole(format!(
            "image fails verification: {} ({})",
            d.message, d.code
        )));
    }
    if cfg.insns.is_empty() {
        return Err(Unpredictable::whole("empty image"));
    }

    let overflow = |insn: &Insn| Unpredictable::at(insn, "loop trip-count product overflows");

    let mut report = CostReport {
        cycles: 0,
        instruction_bytes: 0,
        operations: 0,
        blocks: Vec::with_capacity(cfg.blocks.len()),
    };

    for (bi, blk) in cfg.blocks.iter().enumerate() {
        let mut bc = BlockCost {
            block: bi,
            start: blk.start,
            end: blk.end,
            freq: freq(loops, blk.start as u32, None)
                .ok_or_else(|| overflow(&cfg.insns[blk.first]))?,
            cycles: 0,
            bytes: 0,
            ops: 0,
        };
        for i in blk.first..=blk.last {
            let insn = &cfg.insns[i];
            let f = freq(loops, insn.offset as u32, None).ok_or_else(|| overflow(insn))?;
            if f == 0 {
                continue;
            }
            let prefix = (insn.len - 1) as u64;
            let len = insn.len as u64;
            let (cycles, bytes, ops) = match insn.fun {
                Direct::Jump => {
                    return Err(Unpredictable::at(
                        insn,
                        "unstructured `j`: execution frequency is not loop-bounded",
                    ))
                }
                Direct::Call => {
                    return Err(Unpredictable::at(
                        insn,
                        "`call`: the model does not follow subroutines",
                    ))
                }
                Direct::ConditionalJump => {
                    // The only branch the model accepts is the guard a
                    // replicated SEQ places before a counted loop: it
                    // falls through into the head when the count is
                    // positive and jumps to the end when it is zero.
                    let guard = loops.iter().find(|l| {
                        insn.end() as u32 == l.head
                            && insn.end() as i64 + insn.operand == l.end as i64
                    });
                    match guard {
                        Some(l) => {
                            let taken =
                                timing::direct_cycles(Direct::ConditionalJump, l.count == 0) as u64;
                            (f * (prefix + taken), f * len, f)
                        }
                        None => {
                            return Err(Unpredictable::at(
                                insn,
                                "data-dependent branch: `cj` is not a counted-loop guard",
                            ))
                        }
                    }
                }
                Direct::Operate => {
                    let op = insn
                        .op
                        .ok_or_else(|| Unpredictable::at(insn, "invalid operation code"))?;
                    match op {
                        Op::LoopEnd => {
                            let (k, l) = loops
                                .iter()
                                .enumerate()
                                .find(|(_, l)| l.end as usize == insn.end())
                                .ok_or_else(|| {
                                    Unpredictable::at(
                                        insn,
                                        "`lend` trip count is not a compile-time constant",
                                    )
                                })?;
                            // f includes this loop's own count; the lend
                            // takes its back edge count-1 times and its
                            // exit once per *outer* entry.
                            let outer = freq(loops, insn.offset as u32, Some(k))
                                .ok_or_else(|| overflow(insn))?;
                            let count = l.count as u64;
                            debug_assert_eq!(f, outer * count);
                            let cycles = outer
                                * (count * prefix
                                    + (count - 1) * timing::LOOP_END_TAKEN as u64
                                    + timing::LOOP_END_EXIT as u64);
                            (cycles, f * len, f)
                        }
                        Op::HaltSimulation => {
                            if i + 1 != cfg.insns.len() {
                                return Err(Unpredictable::at(
                                    insn,
                                    "`haltsim` before the end of the image",
                                ));
                            }
                            if f != 1 {
                                return Err(Unpredictable::at(insn, "`haltsim` inside a loop"));
                            }
                            (prefix + 1, len, 1)
                        }
                        Op::StartProcess
                        | Op::EndProcess
                        | Op::StopProcess
                        | Op::RunProcess
                        | Op::Return
                        | Op::GeneralCall
                        | Op::AltEnd => {
                            return Err(Unpredictable::at(
                                insn,
                                format!(
                                    "`{}` schedules processes: timing depends on the run queue",
                                    insn.mnemonic()
                                ),
                            ))
                        }
                        Op::Multiply => {
                            let c = timing::multiply_cycles(word) as u64;
                            (f * (prefix + c), f * len, f)
                        }
                        Op::Divide => {
                            let c = timing::divide_cycles(word) as u64;
                            (f * (prefix + c), f * len, f)
                        }
                        Op::Remainder => {
                            let c = timing::remainder_cycles(word) as u64;
                            (f * (prefix + c), f * len, f)
                        }
                        Op::ShiftLeft | Op::ShiftRight => {
                            let a = const_areg(cfg, i, insn, word)?;
                            let c = timing::shift_cycles(a.min(word.bits())) as u64;
                            (f * (prefix + c), f * len, f)
                        }
                        Op::LongShiftLeft | Op::LongShiftRight => {
                            let a = const_areg(cfg, i, insn, word)?;
                            let c = timing::shift_cycles(a.min(2 * word.bits())) as u64;
                            (f * (prefix + c), f * len, f)
                        }
                        Op::Product => {
                            let a = const_areg(cfg, i, insn, word)?;
                            let c = timing::product_cycles(a) as u64;
                            (f * (prefix + c), f * len, f)
                        }
                        op => match timing::op_fixed_cycles(op) {
                            Some(c) => (f * (prefix + c as u64), f * len, f),
                            None => {
                                return Err(Unpredictable::at(
                                    insn,
                                    format!("`{}` has data-dependent timing", insn.mnemonic()),
                                ))
                            }
                        },
                    }
                }
                fun => {
                    let c = timing::direct_cycles(fun, false) as u64;
                    (f * (prefix + c), f * len, f)
                }
            };
            bc.cycles += cycles;
            bc.bytes += bytes;
            bc.ops += ops;
        }
        report.cycles += bc.cycles;
        report.instruction_bytes += bc.bytes;
        report.operations += bc.ops;
        report.blocks.push(bc);
    }
    Ok(report)
}

/// Execution frequency of the instruction at `offset`: the product of
/// the counts of every counted loop whose body contains it, optionally
/// excluding one loop (for `lend`'s own accounting). `None` on
/// overflow.
fn freq(loops: &[CountedLoop], offset: u32, skip: Option<usize>) -> Option<u64> {
    let mut f: u64 = 1;
    for (k, l) in loops.iter().enumerate() {
        if Some(k) == skip {
            continue;
        }
        if l.head <= offset && offset < l.end {
            f = f.checked_mul(l.count as u64)?;
        }
    }
    Some(f)
}

/// The machine value of the A register at entry to instruction `i`,
/// required to be a dataflow constant (shift counts, `prod` operands).
fn const_areg(cfg: &Cfg, i: usize, insn: &Insn, word: WordLength) -> Result<u32, Unpredictable> {
    match cfg.reg_consts[i][0] {
        Some(v) => Ok(word.mask(v as u32)),
        None => Err(Unpredictable::at(
            insn,
            format!(
                "`{}` by a non-constant amount: timing depends on the operand",
                insn.mnemonic()
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transputer::instr::{encode_into, encode_op};
    use transputer::{Cpu, CpuConfig};

    /// Run a raw image on a default T424 and return (cycles, bytes, ops).
    fn measure_raw(code: &[u8]) -> (u64, u64, u64) {
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_boot_program(code).expect("image fits");
        cpu.run(1_000_000).expect("program halts");
        (
            cpu.cycles(),
            cpu.stats().instructions,
            cpu.stats().operations,
        )
    }

    fn predict_raw(code: &[u8], loops: &[CountedLoop]) -> CostReport {
        let cfg = Cfg::recover(code);
        analyze_cost(&cfg, loops, WordLength::Bits32).expect("analyzable")
    }

    #[test]
    fn straight_line_is_exact() {
        // ldc 6; ldc 7; mul; stl 0; haltsim
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 6, &mut code);
        encode_into(Direct::LoadConstant, 7, &mut code);
        code.extend(encode_op(Op::Multiply));
        encode_into(Direct::StoreLocal, 0, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let report = predict_raw(&code, &[]);
        let (cycles, bytes, ops) = measure_raw(&code);
        assert_eq!(report.cycles, cycles);
        assert_eq!(report.instruction_bytes, bytes);
        assert_eq!(report.operations, ops);
    }

    #[test]
    fn constant_shift_is_exact() {
        // ldc 5; ldc 3; shl; stl 0; haltsim
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 5, &mut code);
        encode_into(Direct::LoadConstant, 3, &mut code);
        code.extend(encode_op(Op::ShiftLeft));
        encode_into(Direct::StoreLocal, 0, &mut code);
        code.extend(encode_op(Op::HaltSimulation));
        let report = predict_raw(&code, &[]);
        let (cycles, bytes, ops) = measure_raw(&code);
        assert_eq!(report.cycles, cycles);
        assert_eq!(report.instruction_bytes, bytes);
        assert_eq!(report.operations, ops);
    }

    #[test]
    fn non_constant_shift_is_refused() {
        // ldl 1; ldl 0; shl — shift count comes from memory.
        let mut code = Vec::new();
        encode_into(Direct::LoadLocal, 1, &mut code);
        encode_into(Direct::LoadLocal, 0, &mut code);
        code.extend(encode_op(Op::ShiftLeft));
        code.extend(encode_op(Op::HaltSimulation));
        let cfg = Cfg::recover(&code);
        let err = analyze_cost(&cfg, &[], WordLength::Bits32).unwrap_err();
        assert!(err.reason.contains("non-constant"), "{err}");
    }

    #[test]
    fn communication_is_refused() {
        let mut code = Vec::new();
        encode_into(Direct::LoadLocalPointer, 0, &mut code);
        encode_into(Direct::LoadLocalPointer, 1, &mut code);
        encode_into(Direct::LoadConstant, 4, &mut code);
        code.extend(encode_op(Op::InputMessage));
        code.extend(encode_op(Op::HaltSimulation));
        let cfg = Cfg::recover(&code);
        let err = analyze_cost(&cfg, &[], WordLength::Bits32).unwrap_err();
        assert!(err.reason.contains("data-dependent timing"), "{err}");
    }

    #[test]
    fn self_modifying_is_refused() {
        let mut code = Vec::new();
        encode_into(Direct::LoadConstant, 0x41, &mut code);
        encode_into(Direct::LoadConstant, 0, &mut code);
        code.extend(encode_op(Op::LoadPointerToInstruction));
        code.extend(encode_op(Op::StoreByte));
        code.extend(encode_op(Op::HaltSimulation));
        let cfg = Cfg::recover(&code);
        let err = analyze_cost(&cfg, &[], WordLength::Bits32).unwrap_err();
        assert!(err.reason.contains("self-modifying"), "{err}");
    }

    /// Compile occam, predict, then run and compare exactly.
    fn assert_occam_exact(source: &str) {
        let program = occam::compile(source).expect("compiles");
        let report = analyze_program(&program, WordLength::Bits32).expect("analyzable");
        let mut cpu = Cpu::new(CpuConfig::default());
        program.load(&mut cpu).expect("loads");
        cpu.run(10_000_000).expect("halts");
        assert_eq!(report.cycles, cpu.cycles(), "cycles");
        assert_eq!(
            report.instruction_bytes,
            cpu.stats().instructions,
            "instruction bytes"
        );
        assert_eq!(report.operations, cpu.stats().operations, "operations");
    }

    #[test]
    fn counted_loop_is_exact() {
        assert_occam_exact(
            "VAR a, b, t:\n\
             SEQ\n\
             \x20 a := 0\n\
             \x20 b := 1\n\
             \x20 SEQ i = [0 FOR 10]\n\
             \x20   SEQ\n\
             \x20     t := a + b\n\
             \x20     a := b\n\
             \x20     b := t",
        );
    }

    #[test]
    fn nested_counted_loops_are_exact() {
        assert_occam_exact(
            "VAR s:\n\
             SEQ\n\
             \x20 s := 0\n\
             \x20 SEQ i = [0 FOR 4]\n\
             \x20   SEQ j = [0 FOR 5]\n\
             \x20     s := s + (i * j)",
        );
    }

    #[test]
    fn zero_trip_loop_is_exact() {
        assert_occam_exact(
            "VAR s:\n\
             SEQ\n\
             \x20 s := 1\n\
             \x20 SEQ i = [0 FOR 0]\n\
             \x20   s := s + 1",
        );
    }

    #[test]
    fn while_loop_is_refused() {
        let program = occam::compile(
            "VAR x:\n\
             SEQ\n\
             \x20 x := 10\n\
             \x20 WHILE x > 0\n\
             \x20   x := x - 1",
        )
        .expect("compiles");
        let err = analyze_program(&program, WordLength::Bits32).unwrap_err();
        assert!(
            err.reason.contains("data-dependent branch") || err.reason.contains("unstructured"),
            "{err}"
        );
    }

    #[test]
    fn block_costs_sum_to_total() {
        let program = occam::compile(
            "VAR s:\n\
             SEQ\n\
             \x20 s := 0\n\
             \x20 SEQ i = [0 FOR 7]\n\
             \x20   s := s + i",
        )
        .expect("compiles");
        let report = analyze_program(&program, WordLength::Bits32).expect("analyzable");
        let cycles: u64 = report.blocks.iter().map(|b| b.cycles).sum();
        let bytes: u64 = report.blocks.iter().map(|b| b.bytes).sum();
        let ops: u64 = report.blocks.iter().map(|b| b.ops).sum();
        assert_eq!(cycles, report.cycles);
        assert_eq!(bytes, report.instruction_bytes);
        assert_eq!(ops, report.operations);
        assert!(report.cpi() > 0.0);
    }
}
