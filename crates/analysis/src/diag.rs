//! Structured diagnostics shared by both analysis layers.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly intended; never fails a build.
    Warning,
    /// Definitely wrong: the program violates a usage rule or the
    /// bytecode cannot execute as encoded.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where a finding is anchored: occam source for layer 1, code offsets
/// for layer 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// A source position (1-based line; 0 column = whole line).
    Source {
        /// Line number, 1-based.
        line: u32,
        /// Column, 1-based; 0 when only the line is known.
        col: u32,
    },
    /// A byte range in assembled code.
    Code {
        /// Offset of the first byte of the instruction.
        offset: u32,
        /// Instruction length in bytes (prefix chain included).
        len: u32,
    },
    /// No position applies (e.g. whole-program findings).
    None,
}

impl Span {
    /// A whole-line source span.
    pub fn line(line: u32) -> Span {
        Span::Source { line, col: 0 }
    }

    /// A source span with a column.
    pub fn at(line: u32, col: u32) -> Span {
        Span::Source { line, col }
    }

    /// A code span of `len` bytes at `offset`.
    pub fn code(offset: u32, len: u32) -> Span {
        Span::Code { offset, len }
    }

    /// The source line, when this is a source span.
    pub fn source_line(&self) -> Option<u32> {
        match self {
            Span::Source { line, .. } => Some(*line),
            _ => None,
        }
    }

    /// The code offset, when this is a code span.
    pub fn code_offset(&self) -> Option<u32> {
        match self {
            Span::Code { offset, .. } => Some(*offset),
            _ => None,
        }
    }

    /// Ordering key so diagnostics sort by position.
    fn key(&self) -> (u8, u32, u32) {
        match self {
            Span::Source { line, col } => (0, *line, *col),
            Span::Code { offset, len } => (1, *offset, *len),
            Span::None => (2, 0, 0),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Source { line, col: 0 } => write!(f, "line {line}"),
            Span::Source { line, col } => write!(f, "line {line}:{col}"),
            Span::Code { offset, .. } => write!(f, "offset {offset:#06x}"),
            Span::None => f.write_str("<program>"),
        }
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code, e.g. `par-chan-input` or
    /// `stack-underflow`.
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Anchor.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build an error.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    /// Build a warning.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }

    /// Whether this finding should fail a strict run.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] at {}",
            self.severity, self.message, self.code, self.span
        )
    }
}

/// Sort by position, errors before warnings at the same spot.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.span
            .key()
            .cmp(&b.span.key())
            .then(b.severity.cmp(&a.severity))
            .then(a.code.cmp(b.code))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let d = Diagnostic::error(
            "stack-underflow",
            Span::code(0x12, 2),
            "pop from empty stack",
        );
        let s = d.to_string();
        assert!(s.contains("error"));
        assert!(s.contains("stack-underflow"));
        assert!(s.contains("0x0012"));
        let w = Diagnostic::warning("x", Span::at(3, 7), "m");
        assert!(w.to_string().contains("line 3:7"));
        assert!(Diagnostic::warning("x", Span::line(4), "m")
            .to_string()
            .contains("line 4"));
    }

    #[test]
    fn sorting_orders_by_position_then_severity() {
        let mut v = vec![
            Diagnostic::warning("b", Span::line(5), "w"),
            Diagnostic::error("a", Span::line(5), "e"),
            Diagnostic::error("c", Span::line(1), "first"),
        ];
        sort(&mut v);
        assert_eq!(v[0].code, "c");
        assert_eq!(v[1].code, "a");
        assert_eq!(v[2].code, "b");
    }
}
