//! Property tests for CFG recovery: the block partition must cover
//! every reachable code byte exactly once, and block successor edges
//! must agree with the verifier's own jump-target computation.
//!
//! The same instruction generator also feeds the translation-tier
//! differential battery: every generated program must behave
//! bit-identically with the threaded-code tier on and off.

use proptest::prelude::*;

use transputer::instr::{encode_into, encode_op, Direct, Op};
use transputer::{Cpu, CpuConfig};
use transputer_analysis::cfg::{Cfg, EdgeKind};

/// One generated instruction for a random-but-decodable image.
#[derive(Debug, Clone)]
enum GenInsn {
    Direct(Direct, i64),
    Op(Op),
}

fn gen_insn() -> impl Strategy<Value = GenInsn> {
    prop_oneof![
        3 => (0i64..16).prop_map(|n| GenInsn::Direct(Direct::LoadConstant, n)),
        2 => (0i64..4).prop_map(|n| GenInsn::Direct(Direct::LoadLocal, n)),
        2 => (0i64..4).prop_map(|n| GenInsn::Direct(Direct::StoreLocal, n)),
        1 => (0i64..4).prop_map(|n| GenInsn::Direct(Direct::LoadLocalPointer, n)),
        1 => (0i64..4).prop_map(|n| GenInsn::Direct(Direct::LoadNonLocal, n)),
        1 => (0i64..4).prop_map(|n| GenInsn::Direct(Direct::StoreNonLocal, n)),
        1 => (0i64..4).prop_map(|n| GenInsn::Direct(Direct::LoadNonLocalPointer, n)),
        1 => (-2i64..4).prop_map(|n| GenInsn::Direct(Direct::AdjustWorkspace, n)),
        1 => (-300i64..300).prop_map(|n| GenInsn::Direct(Direct::AddConstant, n)),
        1 => (0i64..8).prop_map(|n| GenInsn::Direct(Direct::EqualsConstant, n)),
        // Jump displacements both in and out of range, forward and
        // backward, landing on and off instruction boundaries.
        2 => (-40i64..40).prop_map(|d| GenInsn::Direct(Direct::Jump, d)),
        2 => (-40i64..40).prop_map(|d| GenInsn::Direct(Direct::ConditionalJump, d)),
        1 => (-40i64..40).prop_map(|d| GenInsn::Direct(Direct::Call, d)),
        1 => Just(GenInsn::Op(Op::Add)),
        1 => Just(GenInsn::Op(Op::GreaterThan)),
        1 => Just(GenInsn::Op(Op::Return)),
        1 => Just(GenInsn::Op(Op::HaltSimulation)),
    ]
}

fn assemble(insns: &[GenInsn]) -> Vec<u8> {
    let mut code = Vec::new();
    for g in insns {
        match *g {
            GenInsn::Direct(fun, n) => {
                encode_into(fun, n, &mut code);
            }
            GenInsn::Op(op) => code.extend(encode_op(op)),
        }
    }
    code
}

proptest! {
    /// Every decoded instruction (and therefore every decodable byte)
    /// belongs to exactly one block, and together the instruction
    /// spans cover the image without gaps or overlaps.
    #[test]
    fn blocks_cover_every_byte_exactly_once(
        insns in proptest::collection::vec(gen_insn(), 1..40)
    ) {
        let code = assemble(&insns);
        let cfg = Cfg::recover(&code);

        // Instruction spans tile the image.
        let mut offset = 0usize;
        for insn in &cfg.insns {
            prop_assert_eq!(insn.offset, offset, "gap or overlap before {:#x}", insn.offset);
            offset = insn.end();
        }
        prop_assert_eq!(offset, code.len(), "decode stopped short");

        // Blocks tile the instruction list.
        let mut seen = vec![0u32; cfg.insns.len()];
        for b in &cfg.blocks {
            prop_assert!(b.first <= b.last);
            for s in &mut seen[b.first..=b.last] {
                *s += 1;
            }
        }
        prop_assert!(
            seen.iter().all(|&s| s == 1),
            "membership counts {:?} not all 1",
            seen
        );
    }

    /// For every block ending in a static control transfer whose
    /// target is a valid instruction boundary, the CFG has an edge of
    /// the right kind to the block starting at that target — the same
    /// target arithmetic the verifier uses (`end + operand`).
    #[test]
    fn successors_agree_with_verifier_targets(
        insns in proptest::collection::vec(gen_insn(), 1..40)
    ) {
        let code = assemble(&insns);
        let cfg = Cfg::recover(&code);
        for b in &cfg.blocks {
            let insn = cfg.insns[b.last];
            let kind = match insn.fun {
                Direct::Jump => EdgeKind::Jump,
                Direct::ConditionalJump => EdgeKind::Taken,
                Direct::Call => EdgeKind::Call,
                _ => continue,
            };
            let target = insn.end() as i64 + insn.operand;
            let boundary = cfg.insns.iter().position(|x| x.offset as i64 == target);
            match boundary {
                Some(t) => {
                    let edge = b.succs.iter().find(|e| e.kind == kind);
                    prop_assert!(edge.is_some(), "missing {:?} edge at {:#x}", kind, insn.offset);
                    let to = &cfg.blocks[edge.unwrap().to];
                    prop_assert_eq!(
                        to.first, t,
                        "edge at {:#x} lands at insn {} not {}",
                        insn.offset, to.first, t
                    );
                }
                None => {
                    // Invalid target: no such edge, and the linear
                    // verifier must have diagnosed it.
                    prop_assert!(
                        b.succs.iter().all(|e| e.kind != kind),
                        "edge for invalid target at {:#x}",
                        insn.offset
                    );
                    prop_assert!(
                        !cfg.diags.is_empty(),
                        "invalid target at {:#x} undiagnosed",
                        insn.offset
                    );
                }
            }
        }
    }

    /// The threaded-code translation tier is bit-invisible on random
    /// programs: whatever a generated instruction stream does — halt,
    /// fault on a wild address, spin until the budget expires — the
    /// run outcome, cycle count, simulated statistics, and the entire
    /// final memory image are identical with translation on
    /// (threshold 1, so every block leader translates immediately)
    /// and off.
    #[test]
    fn translation_is_bit_identical_on_random_programs(
        insns in proptest::collection::vec(gen_insn(), 1..60)
    ) {
        let code = assemble(&insns);
        let run = |translate: bool| {
            let mut cpu = Cpu::new(
                CpuConfig::t424()
                    .with_translate(translate)
                    .with_translate_threshold(1),
            );
            cpu.load_boot_program(&code).expect("program fits");
            let outcome = format!("{:?}", cpu.run_batched(200_000));
            (cpu, outcome)
        };
        let (on, out_on) = run(true);
        let (off, out_off) = run(false);
        prop_assert_eq!(out_on, out_off, "run outcomes diverged");
        prop_assert_eq!(on.cycles(), off.cycles(), "cycle counts diverged");
        prop_assert_eq!(
            on.stats().simulated(),
            off.stats().simulated(),
            "simulated statistics diverged"
        );
        let base = on.memory().base();
        let size = on.memory().size() as usize;
        prop_assert_eq!(
            on.memory().dump(base, size).unwrap(),
            off.memory().dump(base, size).unwrap(),
            "memory images diverged"
        );
        prop_assert_eq!(
            off.stats().trans_enters + off.stats().trans_blocks,
            0,
            "disabled translation still ran"
        );
    }
}
