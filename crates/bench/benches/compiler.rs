//! Criterion: occam compiler performance over the workload corpus.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use transputer_bench::corpus;

fn compile_corpus(c: &mut Criterion) {
    c.bench_function("compiler/corpus", |b| {
        b.iter(|| {
            for item in corpus::CORPUS {
                let program = occam::compile(item.source).expect("compiles");
                black_box(program.code.len());
            }
        })
    });
    // End to end: compile + load + run the sieve.
    c.bench_function("compiler/sieve_end_to_end", |b| {
        b.iter(|| {
            let program = occam::compile(corpus::SIEVE.source).expect("compiles");
            let mut cpu = transputer::Cpu::new(transputer::CpuConfig::t424());
            let wptr = program.load(&mut cpu).expect("loads");
            cpu.run(10_000_000).expect("halts");
            black_box(program.read_global(&mut cpu, wptr, "count").unwrap())
        })
    });
}

criterion_group!(benches, compile_corpus);
criterion_main!(benches);
