//! Criterion ablations: the design choices the paper argues for,
//! benchmarked against their alternatives (DESIGN.md §5).
//!
//! * prefix encoding vs fixed two-byte operands — static code size;
//! * early acknowledge vs ack-after-stop — link streaming time;
//! * word-independent vs word-targeted code generation — size and speed;
//! * bounds checks on vs off — execution cycles;
//! * on-chip vs off-chip memory — execution cycles with a penalty.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use transputer::{Cpu, CpuConfig, MemoryConfig};
use transputer_asm::disassemble;
use transputer_bench::corpus;

/// Static code size with the real prefix encoding vs a hypothetical
/// fixed-16-bit-operand encoding (every instruction two bytes, the
/// "simple" alternative the paper rejects in §3.2.7).
fn prefix_encoding(c: &mut Criterion) {
    let mut real = 0usize;
    let mut fixed = 0usize;
    for item in corpus::CORPUS {
        let program = occam::compile(item.source).expect("compiles");
        real += program.code.len();
        fixed += disassemble(&program.code)
            .iter()
            .map(|d| {
                // Fixed encoding: 2 bytes per operation (1 opcode + 1
                // operand byte), 3 when the operand exceeds 8 bits.
                if (-128..256).contains(&d.operand) {
                    2
                } else {
                    3
                }
            })
            .sum::<usize>();
    }
    println!(
        "\nablation/prefix-encoding: corpus code size {real} bytes with prefixing, \
         {fixed} bytes with fixed 2-byte operands ({:.0}% larger)\n",
        100.0 * (fixed as f64 - real as f64) / real as f64
    );
    c.bench_function("ablation/prefix_vs_fixed_static_size", |b| {
        b.iter(|| black_box((real, fixed)))
    });
}

/// Word-independent code (`ldc 1; bcnt`) vs word-targeted constants.
fn word_independence(c: &mut Criterion) {
    let src = corpus::PIPELINE.source;
    let independent = occam::compile(src).expect("compiles");
    let targeted = occam::compile_with(
        src,
        occam::Options {
            word_independent: false,
            ..occam::Options::default()
        },
    )
    .expect("compiles");
    let run = |program: &occam::Program| {
        let mut cpu = Cpu::new(CpuConfig::t424());
        program.load(&mut cpu).expect("loads");
        cpu.run(10_000_000).expect("halts");
        cpu.cycles()
    };
    println!(
        "\nablation/word-independence: {} bytes / {} cycles independent, \
         {} bytes / {} cycles word-targeted\n",
        independent.code.len(),
        run(&independent),
        targeted.code.len(),
        run(&targeted)
    );
    c.bench_function("ablation/word_independent_codegen", |b| {
        b.iter(|| black_box(run(&independent)))
    });
}

/// Bounds checking: simulated cycles with and without `csub0` checks.
fn bounds_checks(c: &mut Criterion) {
    let src = corpus::SIEVE.source;
    let unchecked = occam::compile(src).expect("compiles");
    let checked = occam::compile_with(
        src,
        occam::Options {
            bounds_checks: true,
            ..occam::Options::default()
        },
    )
    .expect("compiles");
    let run = |program: &occam::Program| {
        let mut cpu = Cpu::new(CpuConfig::t424());
        program.load(&mut cpu).expect("loads");
        cpu.run(50_000_000).expect("halts");
        cpu.cycles()
    };
    let (u, k) = (run(&unchecked), run(&checked));
    println!(
        "\nablation/bounds-checks: sieve takes {u} cycles unchecked, {k} checked \
         (+{:.1}%) — the cost §3.2.4 avoids by letting the compiler prove safety\n",
        100.0 * (k as f64 - u as f64) / u as f64
    );
    c.bench_function("ablation/bounds_checks_off", |b| {
        b.iter(|| black_box(run(&unchecked)))
    });
}

/// Off-chip memory penalty: the paper's figures assume on-chip program
/// and data (§3.2.1); re-run the sieve with a per-access penalty.
fn off_chip(c: &mut Criterion) {
    let src = corpus::SIEVE.source;
    let program = occam::compile(src).expect("compiles");
    let run = |penalty: u32| {
        // Shrink on-chip memory to zero-ish so everything is "external".
        let mem = MemoryConfig {
            on_chip_bytes: 0,
            off_chip_bytes: 64 * 1024,
            off_chip_penalty: penalty,
        };
        let mut cpu = Cpu::new(CpuConfig::t424().with_memory(mem));
        program.load(&mut cpu).expect("loads");
        cpu.run(100_000_000).expect("halts");
        cpu.cycles()
    };
    let on = run(0);
    let off2 = run(2);
    println!(
        "\nablation/off-chip: sieve takes {on} cycles on-chip-equivalent, {off2} with a \
         2-cycle external access penalty (+{:.0}%) — why §3.3 argues for spending \
         area on RAM rather than cache\n",
        100.0 * (off2 as f64 - on as f64) / on as f64
    );
    c.bench_function("ablation/off_chip_penalty_2", |b| {
        b.iter(|| black_box(run(2)))
    });
}

/// The acknowledge policy at system level: the database search's
/// first-answer latency with the paper's early acknowledge versus
/// ack-after-stop-bit (§2.3's "transmission may be continuous" claim).
fn ack_policy_system(c: &mut Criterion) {
    use transputer_apps::{DbSearch, DbSearchConfig};
    use transputer_link::AckPolicy;
    use transputer_net::NetworkConfig;

    let run = |policy: AckPolicy| {
        let config = DbSearchConfig {
            width: 3,
            height: 3,
            records_per_node: 30,
            requests: 3,
            seed: 5,
            key_space: 60,
            net: NetworkConfig {
                ack_policy: policy,
                ..NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build(config).expect("builds");
        let report = sim.run(1_000_000_000_000).expect("runs");
        assert!(report.all_correct());
        report.first_answer_ns
    };
    let early = run(AckPolicy::Early);
    let late = run(AckPolicy::AfterStop);
    println!(
        "\nablation/ack-policy: 3×3 search first answer {} µs with early acknowledge, \
         {} µs with ack-after-stop (+{:.1}%)\n",
        early / 1000,
        late / 1000,
        100.0 * (late as f64 - early as f64) / early as f64
    );
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("ack_policy_early_system", |b| {
        b.iter(|| black_box(run(AckPolicy::Early)))
    });
    g.finish();
}

criterion_group!(
    benches,
    prefix_encoding,
    word_independence,
    bounds_checks,
    off_chip,
    ack_policy_system
);
criterion_main!(benches);
