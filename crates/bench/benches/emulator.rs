//! Criterion: raw emulator performance (host-side) — instruction
//! dispatch rate and the cost of the scheduler machinery.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::{Cpu, CpuConfig, Priority};

/// A straight-line block of 1000 single-cycle instructions ending in
/// halt: the dispatch-rate workload.
fn dispatch_rate(c: &mut Criterion) {
    let mut code = Vec::new();
    for _ in 0..250 {
        code.extend(encode(Direct::LoadConstant, 1));
        code.extend(encode(Direct::AddConstant, 1));
        code.extend(encode(Direct::StoreLocal, 1));
        code.extend(encode(Direct::LoadLocal, 1));
    }
    code.extend(encode_op(Op::HaltSimulation));

    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("dispatch_1000_instructions", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(CpuConfig::t424());
            cpu.load_boot_program(&code).expect("loads");
            cpu.run(1_000_000).expect("halts");
            black_box(cpu.cycles())
        })
    });
    g.finish();
}

/// Round-robin between 8 processes through the hardware scheduler.
fn scheduler(c: &mut Criterion) {
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadConstant, 200));
    code.extend(encode(Direct::StoreLocal, 1));
    let top = code.len();
    code.extend(encode(Direct::LoadLocal, 1));
    code.extend(encode(Direct::AddConstant, -1));
    code.extend(encode(Direct::StoreLocal, 1));
    code.extend(encode(Direct::LoadLocal, 1));
    code.extend(encode(Direct::ConditionalJump, 2));
    let dist = top as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, dist));
    code.extend(encode_op(Op::HaltSimulation));

    c.bench_function("emulator/8_process_round_robin", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(CpuConfig::t424());
            let entry = cpu.memory().mem_start();
            cpu.load(entry, &code).expect("loads");
            let top_w = cpu.default_boot_workspace();
            for i in 0..8u32 {
                cpu.spawn(top_w.wrapping_sub(i * 256), entry, Priority::Low);
            }
            let _ = cpu.run(10_000_000);
            black_box(cpu.stats().dispatches)
        })
    });
}

criterion_group!(benches, dispatch_rate, scheduler);
criterion_main!(benches);
