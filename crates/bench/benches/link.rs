//! Criterion: link engine performance — cost of simulating the wire.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use transputer_link::{AckPolicy, DuplexLink, End, LinkEvent, LinkSpeed};

fn stream_bytes(n: u64, policy: AckPolicy) -> u64 {
    let mut link = DuplexLink::new(LinkSpeed::standard());
    let mut now = 0u64;
    let mut sent = 1u64;
    let mut acked = 0u64;
    link.send_data(End::A, 0xA5, now);
    while acked < n {
        let evs = link.advance(now);
        if evs.is_empty() {
            now = link.next_deadline().expect("active");
            continue;
        }
        for ev in evs {
            match ev {
                LinkEvent::DataStarted { to: End::B } if policy == AckPolicy::Early => {
                    link.send_ack(End::B, now)
                }
                LinkEvent::DataDelivered { to: End::B, .. } if policy == AckPolicy::AfterStop => {
                    link.send_ack(End::B, now)
                }
                LinkEvent::AckDelivered { to: End::A, .. } => {
                    acked += 1;
                    if sent < n {
                        link.send_data(End::A, 0xA5, now);
                        sent += 1;
                    }
                }
                _ => {}
            }
        }
    }
    now
}

fn wire_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("link");
    g.throughput(Throughput::Bytes(10_000));
    g.bench_function("stream_10k_bytes_early_ack", |b| {
        b.iter(|| black_box(stream_bytes(10_000, AckPolicy::Early)))
    });
    g.bench_function("stream_10k_bytes_late_ack", |b| {
        b.iter(|| black_box(stream_bytes(10_000, AckPolicy::AfterStop)))
    });
    g.finish();
}

criterion_group!(benches, wire_throughput);
criterion_main!(benches);
