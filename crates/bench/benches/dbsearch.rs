//! Criterion: end-to-end database-search simulation (host performance of
//! the whole stack: compiler + 16-node network + bit-level links).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use transputer_apps::{DbSearch, DbSearchConfig};
use transputer_net::NetworkConfig;

fn dbsearch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dbsearch");
    g.sample_size(10);
    g.bench_function("4x4_array_2_requests", |b| {
        b.iter(|| {
            let config = DbSearchConfig {
                width: 4,
                height: 4,
                records_per_node: 50,
                requests: 2,
                seed: 7,
                key_space: 100,
                net: NetworkConfig::default(),
            };
            let mut sim = DbSearch::build(config).expect("builds");
            let report = sim.run(1_000_000_000_000).expect("runs");
            assert!(report.all_correct());
            black_box(report.total_ns)
        })
    });
    g.finish();
}

criterion_group!(benches, dbsearch);
criterion_main!(benches);
