//! The occam workload corpus.
//!
//! A set of small but non-trivial programs used by the dynamic-behaviour
//! experiments: instruction encoding density (E12), execution rate (E13),
//! word-length independence (E15), and the compiler benchmarks. Each
//! program leaves a checkable result in a named top-level variable.

/// One corpus program.
#[derive(Debug, Clone, Copy)]
pub struct CorpusItem {
    /// Short name for reports.
    pub name: &'static str,
    /// Occam source.
    pub source: &'static str,
    /// Top-level variable holding the result.
    pub check_global: &'static str,
    /// Expected value.
    pub expected: i64,
    /// Whether every intermediate value fits a 16-bit word, so the
    /// program behaves identically on the T222 (§3.3's independence
    /// claim excludes "overflow conditions resulting from word length
    /// dependencies").
    pub word16_safe: bool,
}

/// Sieve of Eratosthenes: count primes below 100.
pub const SIEVE: CorpusItem = CorpusItem {
    name: "sieve",
    source: "\
DEF limit = 100:
VAR flags[100], count:
SEQ
  SEQ i = [0 FOR limit]
    flags[i] := TRUE
  flags[0] := FALSE
  flags[1] := FALSE
  SEQ i = [2 FOR 8]
    IF
      flags[i]
        VAR j:
        SEQ
          j := i * i
          WHILE j < limit
            SEQ
              flags[j] := FALSE
              j := j + i
      TRUE
        SKIP
  count := 0
  SEQ i = [0 FOR limit]
    IF
      flags[i]
        count := count + 1
      TRUE
        SKIP",
    check_global: "count",
    expected: 25,
    word16_safe: true,
};

/// Bubble sort of a pseudo-random vector; result = checksum of sorted
/// order.
pub const SORT: CorpusItem = CorpusItem {
    name: "bubble-sort",
    source: "\
DEF n = 24:
VAR v[24], seed, check:
SEQ
  seed := 12345
  SEQ i = [0 FOR n]
    SEQ
      seed := ((seed * 75) + 74) \\ 65537
      v[i] := seed
  SEQ pass = [0 FOR n]
    SEQ i = [0 FOR n - 1]
      IF
        v[i] > v[i + 1]
          VAR t:
          SEQ
            t := v[i]
            v[i] := v[i + 1]
            v[i + 1] := t
        TRUE
          SKIP
  check := 0
  SEQ i = [0 FOR n]
    check := ((check * 31) + v[i]) \\ 100000",
    check_global: "check",
    expected: {
        // Reference computation mirrored in Rust.
        const N: usize = 24;
        let mut v = [0i64; N];
        let mut seed = 12345i64;
        let mut i = 0;
        while i < N {
            seed = (seed * 75 + 74) % 65537;
            v[i] = seed;
            i += 1;
        }
        let mut pass = 0;
        while pass < N {
            let mut j = 0;
            while j + 1 < N {
                if v[j] > v[j + 1] {
                    let t = v[j];
                    v[j] = v[j + 1];
                    v[j + 1] = t;
                }
                j += 1;
            }
            pass += 1;
        }
        let mut check = 0i64;
        let mut k = 0;
        while k < N {
            check = (check * 31 + v[k]) % 100000;
            k += 1;
        }
        check
    },
    // Seeds range over 0..65537: comparisons differ on a 16-bit part.
    word16_safe: false,
};

/// Iterative Fibonacci.
pub const FIB: CorpusItem = CorpusItem {
    name: "fibonacci",
    source: "\
VAR a, b, fib:
SEQ
  a := 0
  b := 1
  SEQ i = [0 FOR 30]
    VAR t:
    SEQ
      t := a + b
      a := b
      b := t
  fib := a",
    check_global: "fib",
    expected: 832_040,
    // The 30th Fibonacci number overflows 16 bits.
    word16_safe: false,
};

/// Greatest common divisor by repeated remainder.
pub const GCD: CorpusItem = CorpusItem {
    name: "gcd",
    source: "\
VAR a, b, g:
SEQ
  a := 1071 * 11
  b := 462 * 11
  WHILE b <> 0
    VAR t:
    SEQ
      t := a \\ b
      a := b
      b := t
  g := a",
    check_global: "g",
    expected: 231,
    word16_safe: true,
};

/// Producer/consumer pipeline over internal channels.
pub const PIPELINE: CorpusItem = CorpusItem {
    name: "pipeline",
    source: "\
VAR total:
CHAN raw, squared:
SEQ
  total := 0
  PAR
    SEQ i = [1 FOR 20]
      raw ! i
    VAR x:
    SEQ i = [0 FOR 20]
      SEQ
        raw ? x
        squared ! x * x
    VAR y:
    SEQ i = [0 FOR 20]
      SEQ
        squared ? y
        total := total + y",
    check_global: "total",
    expected: {
        // Sum of squares 1..=20.
        let mut s = 0i64;
        let mut x = 1i64;
        while x <= 20 {
            s += x * x;
            x += 1;
        }
        s
    },
    word16_safe: true,
};

/// Small dense matrix multiply (4x4).
pub const MATMUL: CorpusItem = CorpusItem {
    name: "matmul",
    source: "\
DEF n = 4:
VAR a[16], b[16], c[16], check:
SEQ
  SEQ i = [0 FOR 16]
    SEQ
      a[i] := i + 1
      b[i] := 16 - i
  SEQ i = [0 FOR n]
    SEQ j = [0 FOR n]
      VAR acc:
      SEQ
        acc := 0
        SEQ k = [0 FOR n]
          acc := acc + (a[(i * 4) + k] * b[(k * 4) + j])
        c[(i * 4) + j] := acc
  check := 0
  SEQ i = [0 FOR 16]
    check := check + c[i]",
    check_global: "check",
    expected: {
        let mut a = [0i64; 16];
        let mut b = [0i64; 16];
        let mut c = [0i64; 16];
        let mut i = 0;
        while i < 16 {
            a[i] = i as i64 + 1;
            b[i] = 16 - i as i64;
            i += 1;
        }
        let mut s = 0i64;
        let mut r = 0;
        while r < 4 {
            let mut col = 0;
            while col < 4 {
                let mut acc = 0;
                let mut k = 0;
                while k < 4 {
                    acc += a[r * 4 + k] * b[k * 4 + col];
                    k += 1;
                }
                c[r * 4 + col] = acc;
                col += 1;
            }
            r += 1;
        }
        let mut t = 0;
        while t < 16 {
            s += c[t];
            t += 1;
        }
        s
    },
    word16_safe: true,
};

/// Worker farm: replicated PAR over a channel vector.
pub const FARM: CorpusItem = CorpusItem {
    name: "farm",
    source: "\
VAR results[4], total:
CHAN work[4]:
SEQ
  PAR
    SEQ i = [0 FOR 4]
      work[i] ! (i + 1) * 100
    PAR w = [0 FOR 4]
      VAR job:
      SEQ
        work[w] ? job
        results[w] := job + w
  total := ((results[0] + results[1]) + results[2]) + results[3]",
    check_global: "total",
    expected: 100 + 200 + 1 + 300 + 2 + 400 + 3,
    word16_safe: true,
};

/// Byte-wise checksum: packs values into a word vector with `BYTE`
/// subscripts and folds them (exercises `load byte`/`store byte`).
pub const BYTESUM: CorpusItem = CorpusItem {
    name: "byte-checksum",
    source: "\
DEF words = 8:
VAR buf[8], check, i:
SEQ
  SEQ k = [0 FOR 32]
    buf[BYTE k] := (k * 37) /\\ #FF
  check := 0
  i := 0
  WHILE i < 32
    SEQ
      check := ((check << 1) + buf[BYTE i]) \\ 65521
      i := i + 1",
    check_global: "check",
    expected: {
        let mut check = 0i64;
        let mut i = 0i64;
        while i < 32 {
            let b = (i * 37) & 0xFF;
            check = ((check << 1) + b) % 65521;
            i += 1;
        }
        check
    },
    // Byte subscripts are inherently word-length dependent: eight words
    // hold 32 bytes on a T424 but only 16 on a T222 (and the checksum
    // modulus exceeds the 16-bit range) — a concrete illustration of
    // §3.3's overflow caveat.
    word16_safe: false,
};

/// The whole corpus.
pub const CORPUS: &[CorpusItem] = &[SIEVE, SORT, FIB, GCD, PIPELINE, MATMUL, FARM, BYTESUM];

/// Horner polynomial evaluation: counted loops, multiply, subscripts.
/// `acc := acc*3 + c[i]` over `c = [2,3,4,5,6]`.
pub const POLY: CorpusItem = CorpusItem {
    name: "poly",
    source: "\
VAR c[5], acc, y:
SEQ
  SEQ i = [0 FOR 5]
    c[i] := i + 2
  acc := 0
  SEQ i = [0 FOR 5]
    acc := (acc * 3) + c[i]
  y := acc",
    check_global: "y",
    expected: 300,
    word16_safe: true,
};

/// Constant-distance shifts in a counted loop (the shift count is an
/// immediate, so `shl`/`shr` timing is statically known).
pub const SHIFTS: CorpusItem = CorpusItem {
    name: "shifts",
    source: "\
VAR x, y:
SEQ
  x := 1
  SEQ i = [0 FOR 5]
    x := (x << 2) + 1
  y := x >> 3",
    check_global: "y",
    expected: 1365 >> 3,
    word16_safe: true,
};

/// Division and remainder folded over a counted loop.
pub const DIVSUM: CorpusItem = CorpusItem {
    name: "divsum",
    source: "\
VAR s:
SEQ
  s := 0
  SEQ i = [0 FOR 10]
    s := (s + (((i * 7) + 5) / 3)) + (((i * 11) + 2) \\ 4)",
    check_global: "s",
    expected: {
        let mut s = 0i64;
        let mut i = 0i64;
        while i < 10 {
            s += ((i * 7) + 5) / 3 + ((i * 11) + 2) % 4;
            i += 1;
        }
        s
    },
    word16_safe: true,
};

/// The compute-class programs whose cycle counts the static cost model
/// ([`transputer_analysis::cost`]) must predict: straight-line or
/// counted-loop kernels with no data-dependent control flow or timing.
/// `lint_corpus` runs the model against the emulator over this list and
/// gates on ≤5 % error; the result lands in BENCH_host.json's
/// `"static_model"` section. `FIB` and `MATMUL` come from the main
/// corpus; the other three widen the instruction coverage (multiply,
/// constant shifts, divide/remainder) without touching `CORPUS` — the
/// benchmark fingerprints are derived from `CORPUS` and must not move.
pub const STATIC_MODEL_CORPUS: &[CorpusItem] = &[FIB, MATMUL, POLY, SHIFTS, DIVSUM];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_named() {
        assert!(CORPUS.len() >= 5);
        for item in CORPUS {
            assert!(!item.name.is_empty());
            assert!(!item.source.is_empty());
        }
    }

    #[test]
    fn static_model_corpus_computes_expected_values() {
        for item in STATIC_MODEL_CORPUS {
            let program = occam::compile(item.source).expect(item.name);
            let mut cpu = transputer::Cpu::new(transputer::CpuConfig::t424());
            let wptr = program.load(&mut cpu).expect(item.name);
            cpu.run(500_000_000).expect(item.name);
            let got = program
                .read_global(&mut cpu, wptr, item.check_global)
                .unwrap();
            assert_eq!(
                cpu.word_length().to_signed(got),
                item.expected,
                "static-model corpus `{}`",
                item.name
            );
        }
    }
}
