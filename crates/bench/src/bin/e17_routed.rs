//! E17 — the virtual-channel packet router.
//!
//! The planned spanning trees of e09–e16 are a compile-time answer to
//! §4.2's wiring freedom: every topology needs its own tree layout.
//! The T9000 generation answered at run time instead — a virtual
//! channel processor that packetizes messages and routes them hop by
//! hop, so an occam channel connects *any* two processes regardless of
//! the wiring between them. This experiment runs the same 256-node
//! hypercube database search as e16 over virtual channels — no
//! per-topology planning, one uniform node program — and checks the
//! answers against the planned build over the identical workload. A
//! 1024-node grid then shows the router completing at four times the
//! acceptance node count.

use transputer_apps::dbsearch::{DbSearch, HypercubeConfig};
use transputer_bench::hostperf::{fault_plan_from_env, grid32x32_stress, run_long_path, wormhole};
use transputer_bench::{cells, table};
use transputer_net::{Engine, RouterStats, Switching};

fn router_rows(prefix: &str, stats: Option<RouterStats>) {
    let Some(s) = stats else { return };
    table::row(cells![
        format!("{prefix}packets"),
        format!(
            "{} sent, {} forwarded, {} delivered, {} dropped",
            s.packets_sent, s.packets_forwarded, s.packets_delivered, s.packets_dropped
        ),
        "—"
    ]);
    table::row(cells![
        format!("{prefix}hop latency (header forwarding)"),
        format!(
            "mean {} ns, p50 {} ns, p99 {} ns, max {} ns",
            s.mean_hop_ns(),
            s.p50_hop_ns(),
            s.p99_hop_ns(),
            s.max_hop_ns
        ),
        "—"
    ]);
}

fn main() {
    table::heading(
        "E17",
        "the virtual-channel packet router",
        "run-time routing instead of planned trees",
    );

    let mut config = HypercubeConfig::hypercube256();
    if let Some(plan) = fault_plan_from_env() {
        println!(
            "\nfault injection: uniform rate {} (seed {}) on every link",
            plan.drop_rate, plan.seed
        );
        config.net.fault = Some(plan);
    }
    println!(
        "\nrouted hypercube(4,4): 2^{} clusters of {}×{} = {} transputers, \
         {} records ({} requests pipelined)",
        config.dim,
        config.side,
        config.side,
        config.node_count(),
        config.total_records(),
        config.requests
    );

    // The acceptance cross-check: the routed machine and the planned
    // machine search the same records for the same keys, so their
    // answer vectors must be equal element for element.
    let mut planned = DbSearch::build_hypercube(config.clone()).expect("planned builds");
    let planned_report = planned.run(10_000_000_000_000).expect("planned runs");
    let mut routed = DbSearch::build_routed_hypercube(config).expect("routed builds");
    let report = routed.run(10_000_000_000_000).expect("routed runs");
    let stats = routed.network().router_stats();

    table::header(&["metric", "measured", "paper"]);
    table::row(cells!["answers correct", report.all_correct(), "—"]);
    table::row(cells![
        "answers match planned trees",
        report.answers == planned_report.answers,
        "same search, different routing"
    ]);
    table::row(cells![
        "first-answer latency",
        table::ms(report.first_answer_ns),
        "less than 1.3 ms at 25k records"
    ]);
    table::row(cells![
        "pipelined answer interval",
        table::ms(report.pipeline_interval_ns),
        "—"
    ]);
    router_rows("", stats);
    let cube_ok = report.all_correct()
        && !report.degraded
        && report.answers == planned_report.answers
        && stats.is_some_and(|s| s.packets_dropped == 0);

    // The stress shape: 1024 transputers on a 32×32 grid, every answer
    // crossing the router to the collector's host node — run in both
    // switching modes as the ablation. Store-and-forward reassembles
    // each packet at every hop; wormhole forwards the header as soon
    // as it decodes, so on the grid's long paths the per-hop
    // header-forwarding latency collapses from a full packet time to a
    // few byte times.
    let stress = grid32x32_stress();
    println!(
        "\nrouted grid(32,32): {} transputers, {} records ({} requests pipelined)",
        stress.width * stress.height,
        stress.width * stress.height * stress.records_per_node,
        stress.requests
    );
    let mut big = DbSearch::build_routed(stress.clone()).expect("stress builds");
    let big_report = big.run(10_000_000_000_000).expect("stress runs");
    let big_stats = big.network().router_stats();
    table::header(&["metric", "measured", "paper"]);
    table::row(cells!["answers correct", big_report.all_correct(), "—"]);
    table::row(cells![
        "first-answer latency",
        table::ms(big_report.first_answer_ns),
        "—"
    ]);
    router_rows("", big_stats);
    let stress_ok = big_report.all_correct()
        && !big_report.degraded
        && big_stats.is_some_and(|s| s.packets_dropped == 0);

    println!("\nrouted grid(32,32), wormhole switching: the ablation");
    let mut worm = DbSearch::build_routed(wormhole(stress)).expect("wormhole stress builds");
    let worm_report = worm.run(10_000_000_000_000).expect("wormhole stress runs");
    let worm_stats = worm.network().router_stats();
    table::header(&["metric", "measured", "paper"]);
    table::row(cells!["answers correct", worm_report.all_correct(), "—"]);
    table::row(cells![
        "answers match store-and-forward",
        worm_report.answers == big_report.answers,
        "same search, different switching"
    ]);
    table::row(cells![
        "cut-through active",
        worm.network().router_cut_through() == Some(true),
        "grid tables: acyclic channel dependencies"
    ]);
    table::row(cells![
        "first-answer latency",
        table::ms(worm_report.first_answer_ns),
        "—"
    ]);
    router_rows("", worm_stats);
    let hop_reduction = match (big_stats, worm_stats) {
        (Some(s), Some(w)) if w.mean_hop_ns() > 0 => {
            s.mean_hop_ns() as f64 / w.mean_hop_ns() as f64
        }
        _ => 0.0,
    };
    table::row(cells![
        "mean hop-latency reduction",
        format!("{hop_reduction:.2}x"),
        "congestion-bound: hops wait in queues, not in switches"
    ]);
    let worm_ok = worm_report.all_correct()
        && !worm_report.degraded
        && worm_report.answers == big_report.answers
        && worm.network().router_cut_through() == Some(true);

    // The tentpole measurement: one packet over the 62-hop diagonal of
    // the same 1024-node grid with nothing else in flight, so every
    // hop shows the switching cost itself — a full packet reassembly
    // under store-and-forward, a few header byte-times under
    // cut-through. The congested stress rows above cannot show this:
    // wormhole does not shorten a wait behind another packet.
    println!("\nlong-path probe: one packet, corner to corner (62 hops), idle grid");
    let lp_sf = run_long_path(
        "e17_longpath1024",
        Switching::StoreAndForward,
        Engine::Sliced,
    );
    let lp_worm = run_long_path("e17_longpath1024_worm", Switching::Wormhole, Engine::Sliced);
    table::header(&["metric", "measured", "paper"]);
    table::row(cells![
        "word delivered",
        lp_sf.answers_ok && lp_worm.answers_ok,
        "—"
    ]);
    table::row(cells![
        "cut-through active",
        lp_worm.cut_through == Some(true),
        "grid tables: acyclic channel dependencies"
    ]);
    router_rows("store-and-forward ", lp_sf.router);
    router_rows("wormhole ", lp_worm.router);
    let lp_reduction = match (lp_sf.router, lp_worm.router) {
        (Some(s), Some(w)) if w.mean_hop_ns() > 0 => {
            s.mean_hop_ns() as f64 / w.mean_hop_ns() as f64
        }
        _ => 0.0,
    };
    table::row(cells![
        "mean hop-latency reduction",
        format!("{lp_reduction:.2}x"),
        "at least 2x on the grid's long paths"
    ]);
    let longpath_ok = lp_sf.answers_ok
        && lp_worm.answers_ok
        && lp_worm.cut_through == Some(true)
        && lp_reduction >= 2.0;

    table::verdict(
        cube_ok && stress_ok && worm_ok && longpath_ok,
        "virtual-channel routing reproduces the planned-tree answers on the hypercube, scales to a 1024-node grid, and wormhole switching at least halves the hop latency on the grid's long paths",
    );
}
