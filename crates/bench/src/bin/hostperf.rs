//! Host-performance harness: times the experiment suite and the e09/e10
//! network benchmarks under the per-instruction event engine and the
//! lookahead-batched engines, writing `BENCH_host.json`.
//!
//! Usage:
//!   `cargo run --release -p transputer-bench --bin hostperf`
//!   `hostperf --smoke`   — fast outcome-only gate for the tier-1 flow:
//!                          fails on panics or regressed simulated
//!                          outcomes, never on wall time.
//!
//! Output path: `BENCH_host.json` in the current directory, or the path
//! named by the `BENCH_HOST_OUT` environment variable. Every run also
//! appends a one-line JSONL record of the CPU-corpus throughput
//! (decode-cache and translated tiers) to `BENCH_history.jsonl`
//! (override with `BENCH_HISTORY_OUT`). A >20% emulated-MIPS regression
//! against the committed baseline — on either tier — prints a WARN;
//! with `PERF_GATE=hard` (set by CI) a collapse below 50% of the
//! baseline fails the run.

use std::process::Command;
use std::time::Instant;

use transputer_bench::hostperf::{
    baseline_cpu_mips, baseline_translated_mips, board128, cpu_corpus_bench, cpu_cross_check,
    cross_check, faulted, figure8, figure8_smoke, run_network, static_model_runs, to_json, CpuRun,
    NetRun, EXPERIMENTS, FAULT_RATE_DEFAULT, FAULT_SEED_DEFAULT,
};
use transputer_net::Engine;

/// Per-packet fault rate for the faulted variants: `FAULT_RATE` when
/// set, otherwise the default. The smoke variant scales the rate up so
/// faults actually fire on its much shorter run.
fn fault_rate() -> f64 {
    std::env::var("FAULT_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|r| *r > 0.0)
        .unwrap_or(FAULT_RATE_DEFAULT)
}

fn time_experiments() -> (Vec<(String, f64)>, Vec<String>) {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let mut rows = Vec::new();
    let mut problems = Vec::new();
    for name in EXPERIMENTS {
        let path = dir.join(name);
        let start = Instant::now();
        match Command::new(&path).output() {
            Ok(out) => {
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let text = String::from_utf8_lossy(&out.stdout).to_string();
                if !out.status.success() || text.contains("FAIL:") {
                    problems.push(format!("{name}: failed"));
                }
                println!("  {name:<24} {wall_ms:>9.1} ms");
                rows.push((name.to_string(), wall_ms));
            }
            Err(e) => problems.push(format!("{name}: failed to launch: {e}")),
        }
    }
    (rows, problems)
}

fn print_net(r: &NetRun) {
    println!(
        "  {:<20} {:<9} {:>9.1} ms   {:>12.0} cyc/s   {:>7.2} MIPS   ok={}   \
         dcache {}h/{}m/{}i/{}b",
        r.bench,
        format!("{:?}", r.engine),
        r.wall_ms,
        r.cycles_per_sec(),
        r.emulated_mips(),
        r.answers_ok,
        r.decode.0,
        r.decode.1,
        r.decode.2,
        r.decode.3,
    );
}

fn print_cpu(r: &CpuRun) {
    println!(
        "  cpu_corpus decode_cache={:<5} translate={:<5} {:>9.1} ms   {:>7.2} MIPS   \
         dcache {}h/{}m/{}i/{}b (hit rate {:.1}%)   trans {}blk/{}ent/{}deopt/{}inv",
        r.decode_cache,
        r.translate,
        r.wall_ms,
        r.emulated_mips(),
        r.decode.0,
        r.decode.1,
        r.decode.2,
        r.decode.3,
        r.hit_rate() * 100.0,
        r.trans.0,
        r.trans.1,
        r.trans.2,
        r.trans.3,
    );
}

/// Append one JSONL record of this run's CPU-corpus throughput to the
/// append-only history (`BENCH_history.jsonl`, or the path named by
/// `BENCH_HISTORY_OUT`). The history makes a slow drift visible that
/// any single committed-baseline comparison would miss.
fn append_history(
    smoke: bool,
    current: &CpuRun,
    translated: &CpuRun,
    baseline: Option<f64>,
    trans_baseline: Option<f64>,
) {
    let path =
        std::env::var("BENCH_HISTORY_OUT").unwrap_or_else(|_| "BENCH_history.jsonl".to_string());
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let ratio_pair = |now: f64, baseline: Option<f64>| match baseline {
        Some(b) if b > 0.0 => (format!("{b:.2}"), format!("{:.3}", now / b)),
        _ => ("null".to_string(), "null".to_string()),
    };
    let now = current.emulated_mips();
    let tnow = translated.emulated_mips();
    let (baseline_s, ratio_s) = ratio_pair(now, baseline);
    let (tbaseline_s, tratio_s) = ratio_pair(tnow, trans_baseline);
    let line = format!(
        "{{\"unix_s\": {unix_s}, \"smoke\": {smoke}, \"cpu_mips\": {now:.2}, \
         \"baseline_mips\": {baseline_s}, \"ratio\": {ratio_s}, \
         \"translated_mips\": {tnow:.2}, \"translated_baseline_mips\": {tbaseline_s}, \
         \"translated_ratio\": {tratio_s}}}\n",
    );
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = f.write_all(line.as_bytes());
            println!("  perf history: appended to {path}");
        }
        Err(e) => println!("  perf history: cannot append to {path}: {e}"),
    }
}

/// Perf check for one throughput row: a >20% regression against the
/// committed baseline prints a WARN, and with `PERF_GATE=hard` (set by
/// CI) a collapse below half the committed baseline becomes a hard
/// failure. Wall-clock numbers vary between machines, so the hard gate
/// only catches order-of-magnitude breakage.
fn check_mips_row(label: &str, now: f64, baseline: Option<f64>, problems: &mut Vec<String>) {
    let Some(baseline) = baseline else {
        println!("  perf check: no committed {label} baseline here; skipping");
        return;
    };
    let ratio = now / baseline;
    let hard = std::env::var("PERF_GATE").is_ok_and(|v| v == "hard");
    if hard && ratio < 0.5 {
        problems.push(format!(
            "emulated MIPS collapse: {label} {now:.2} MIPS vs committed {baseline:.2} MIPS \
             ({:.0}% of baseline, PERF_GATE=hard)",
            ratio * 100.0
        ));
    } else if ratio < 0.8 {
        println!(
            "WARN: emulated MIPS regression: {label} {now:.2} MIPS vs committed \
             {baseline:.2} MIPS ({:.0}% of baseline)",
            ratio * 100.0
        );
    } else {
        println!(
            "  perf check: {label} {now:.2} MIPS vs committed {baseline:.2} MIPS \
             ({:.0}% of baseline) — ok",
            ratio * 100.0
        );
    }
}

/// Perf check against the committed `BENCH_host.json`: every run is
/// appended to the history, then both the decode-cache-only and the
/// translated-tier CPU-corpus rows go through the soft regression gate
/// ([`check_mips_row`]).
fn check_mips_regression(
    smoke: bool,
    current: &CpuRun,
    translated: &CpuRun,
    problems: &mut Vec<String>,
) {
    let committed = std::fs::read_to_string("BENCH_host.json").ok();
    let baseline = committed
        .as_deref()
        .and_then(baseline_cpu_mips)
        .filter(|b| *b > 0.0);
    let trans_baseline = committed
        .as_deref()
        .and_then(baseline_translated_mips)
        .filter(|b| *b > 0.0);
    append_history(smoke, current, translated, baseline, trans_baseline);
    check_mips_row("cpu corpus", current.emulated_mips(), baseline, problems);
    check_mips_row(
        "translated tier",
        translated.emulated_mips(),
        trans_baseline,
        problems,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut networks: Vec<NetRun> = Vec::new();
    let mut cpu_runs: Vec<CpuRun> = Vec::new();
    let mut problems: Vec<String> = Vec::new();
    let mut experiments: Vec<(String, f64)> = Vec::new();

    if smoke {
        println!("hostperf --smoke: outcome gate (wall times informational)");
        println!("hostperf --smoke: cpu corpus (translated/decode-cache/plain must agree)");
        let trans = cpu_corpus_bench(true, true, 1);
        let on = cpu_corpus_bench(true, false, 1);
        let off = cpu_corpus_bench(false, false, 1);
        print_cpu(&trans);
        print_cpu(&on);
        print_cpu(&off);
        problems.extend(cpu_cross_check(&[trans.clone(), on.clone(), off.clone()]));
        check_mips_regression(smoke, &on, &trans, &mut problems);
        cpu_runs.push(trans);
        cpu_runs.push(on);
        cpu_runs.push(off);
        let runs: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_network("e09_figure8_smoke", figure8_smoke(), e))
            .collect();
        for r in &runs {
            print_net(r);
        }
        problems.extend(cross_check(&runs));
        networks.extend(runs);

        // The same topology under injected link faults: the retry
        // machinery must hide every fault and stay bit-identical
        // across engines. The short smoke run sees few packets, so the
        // rate is scaled up to make faults certain to fire.
        let smoke_rate = (fault_rate() * 20.0).min(0.01);
        println!("hostperf --smoke: faulted variant (rate {smoke_rate})");
        let faulted_runs: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_network(
                    "e09_smoke_faulted",
                    faulted(figure8_smoke(), FAULT_SEED_DEFAULT, smoke_rate),
                    e,
                )
            })
            .collect();
        for r in &faulted_runs {
            print_net(r);
        }
        problems.extend(cross_check(&faulted_runs));
        networks.extend(faulted_runs);
    } else {
        println!("hostperf: timing experiment binaries");
        let (rows, probs) = time_experiments();
        experiments = rows;
        problems.extend(probs);

        println!("hostperf: cpu corpus (pure-CPU emulation throughput)");
        let trans = cpu_corpus_bench(true, true, 20);
        let on = cpu_corpus_bench(true, false, 20);
        let off = cpu_corpus_bench(false, false, 20);
        print_cpu(&trans);
        print_cpu(&on);
        print_cpu(&off);
        println!(
            "  cpu corpus decode-cache speedup: {:.2}x (off {:.2} MIPS -> on {:.2} MIPS)",
            on.emulated_mips() / off.emulated_mips(),
            off.emulated_mips(),
            on.emulated_mips()
        );
        println!(
            "  cpu corpus translated speedup: {:.2}x (decode {:.2} MIPS -> translated {:.2} MIPS)",
            trans.emulated_mips() / on.emulated_mips(),
            on.emulated_mips(),
            trans.emulated_mips()
        );
        problems.extend(cpu_cross_check(&[trans.clone(), on.clone(), off.clone()]));
        check_mips_regression(smoke, &on, &trans, &mut problems);
        cpu_runs.push(trans);
        cpu_runs.push(on);
        cpu_runs.push(off);

        println!("hostperf: e09 figure-8 (16 transputers)");
        let e09: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_network("e09_figure8", figure8(), e))
            .collect();
        for r in &e09 {
            print_net(r);
        }
        problems.extend(cross_check(&e09));
        networks.extend(e09);

        println!("hostperf: e10 board (128 transputers)");
        let e10: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_network("e10_board128", board128(), e))
            .collect();
        for r in &e10 {
            print_net(r);
        }
        let event = e10[0].wall_ms;
        let sliced = e10[1].wall_ms;
        println!(
            "  e10 speedup: {:.2}x (event {:.1} ms -> sliced {:.1} ms)",
            event / sliced,
            event,
            sliced
        );
        problems.extend(cross_check(&e10));
        networks.extend(e10);

        // Faulted variants: the acceptance bar for the fault layer is
        // that the search completes correct (possibly degraded-flagged)
        // with identical fingerprints on every engine while each link
        // suffers deterministic drops, corruption, and jitter.
        let rate = fault_rate();
        println!("hostperf: e09 figure-8 under faults (rate {rate})");
        let e09f: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_network(
                    "e09_faulted",
                    faulted(figure8(), FAULT_SEED_DEFAULT, rate),
                    e,
                )
            })
            .collect();
        for r in &e09f {
            print_net(r);
        }
        problems.extend(cross_check(&e09f));
        networks.extend(e09f);

        println!("hostperf: e10 board (128 transputers) under faults (rate {rate})");
        let e10f: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_network(
                    "e10_faulted",
                    faulted(board128(), FAULT_SEED_DEFAULT, rate),
                    e,
                )
            })
            .collect();
        for r in &e10f {
            print_net(r);
        }
        problems.extend(cross_check(&e10f));
        networks.extend(e10f);
    }

    println!("hostperf: static cost model vs emulator");
    let static_model = static_model_runs(&mut problems);
    for r in &static_model {
        println!(
            "  static_model {:<14} predicted {:>8}  measured {:>8}  error {}",
            r.name,
            r.predicted.map_or("refused".to_string(), |p| p.to_string()),
            r.measured,
            r.error_pct()
                .map_or("—".to_string(), |e| format!("{e:.3}%")),
        );
    }

    let json = to_json(
        smoke,
        &experiments,
        &cpu_runs,
        &static_model,
        &networks,
        &problems,
    );
    let out_path =
        std::env::var("BENCH_HOST_OUT").unwrap_or_else(|_| "BENCH_host.json".to_string());
    std::fs::write(&out_path, &json).expect("write BENCH_host.json");
    println!("wrote {out_path}");

    if problems.is_empty() {
        println!("hostperf PASS");
    } else {
        for p in &problems {
            println!("FAIL: {p}");
        }
        std::process::exit(1);
    }
}
