//! Host-performance harness: times the experiment suite and the e09/e10
//! network benchmarks under the per-instruction event engine and the
//! lookahead-batched engines, writing `BENCH_host.json`.
//!
//! Usage:
//!   `cargo run --release -p transputer-bench --bin hostperf`
//!   `hostperf --smoke`   — fast outcome-only gate for the tier-1 flow:
//!                          fails on panics or regressed simulated
//!                          outcomes, never on wall time.
//!
//! Output path: `BENCH_host.json` in the current directory, or the path
//! named by the `BENCH_HOST_OUT` environment variable. Every run also
//! appends a one-line JSONL record of the CPU-corpus throughput
//! (decode-cache and translated tiers) to `BENCH_history.jsonl`
//! (override with `BENCH_HISTORY_OUT`). A >20% emulated-MIPS regression
//! against the committed baseline — on either tier — prints a WARN;
//! with `PERF_GATE=hard` (set by CI) a collapse below 50% of the
//! baseline fails the run.

use std::process::Command;
use std::time::Instant;

use transputer_bench::hostperf::{
    baseline_cpu_mips, baseline_translated_mips, board128, cpu_corpus_bench, cpu_cross_check,
    cross_check, faulted, faulted_hypercube, figure8, figure8_smoke, grid32x32_stress,
    history_ratchet_mips, host_cores, hypercube256, parallel_speedup, routed_hypercube256,
    routed_smoke, run_hypercube, run_long_path, run_network, run_routed, run_routed_hypercube,
    static_model_runs, switching_pairs, to_json, wormhole, wormhole_hypercube, CpuRun, NetRun,
    EXPERIMENTS, FAULT_RATE_DEFAULT, FAULT_SEED_DEFAULT,
};
use transputer_net::{Engine, Switching};

/// Per-packet fault rate for the faulted variants: `FAULT_RATE` when
/// set, otherwise the default. The smoke variant scales the rate up so
/// faults actually fire on its much shorter run.
fn fault_rate() -> f64 {
    std::env::var("FAULT_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|r| *r > 0.0)
        .unwrap_or(FAULT_RATE_DEFAULT)
}

fn time_experiments() -> (Vec<(String, f64)>, Vec<String>) {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let mut rows = Vec::new();
    let mut problems = Vec::new();
    for name in EXPERIMENTS {
        let path = dir.join(name);
        let start = Instant::now();
        match Command::new(&path).output() {
            Ok(out) => {
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let text = String::from_utf8_lossy(&out.stdout).to_string();
                if !out.status.success() || text.contains("FAIL:") {
                    problems.push(format!("{name}: failed"));
                }
                println!("  {name:<24} {wall_ms:>9.1} ms");
                rows.push((name.to_string(), wall_ms));
            }
            Err(e) => problems.push(format!("{name}: failed to launch: {e}")),
        }
    }
    (rows, problems)
}

fn print_net(r: &NetRun) {
    println!(
        "  {:<20} {:<9} {:>9.1} ms   {:>12.0} cyc/s   {:>7.2} MIPS   ok={}   \
         dcache {}h/{}m/{}i/{}b",
        r.bench,
        format!("{:?}", r.engine),
        r.wall_ms,
        r.cycles_per_sec(),
        r.emulated_mips(),
        r.answers_ok,
        r.decode.0,
        r.decode.1,
        r.decode.2,
        r.decode.3,
    );
}

fn print_cpu(r: &CpuRun) {
    println!(
        "  cpu_corpus decode_cache={:<5} translate={:<5} {:>9.1} ms   {:>7.2} MIPS   \
         dcache {}h/{}m/{}i/{}b (hit rate {:.1}%)   trans {}blk/{}ent/{}deopt/{}inv",
        r.decode_cache,
        r.translate,
        r.wall_ms,
        r.emulated_mips(),
        r.decode.0,
        r.decode.1,
        r.decode.2,
        r.decode.3,
        r.hit_rate() * 100.0,
        r.trans.0,
        r.trans.1,
        r.trans.2,
        r.trans.3,
    );
}

fn history_path() -> String {
    std::env::var("BENCH_HISTORY_OUT").unwrap_or_else(|_| "BENCH_history.jsonl".to_string())
}

fn perf_gate_hard() -> bool {
    std::env::var("PERF_GATE").is_ok_and(|v| v == "hard")
}

/// Append one JSONL record of this run's CPU-corpus throughput, worker
/// configuration, and e10 Parallel-vs-Sliced speedup to the append-only
/// history (`BENCH_history.jsonl`, or the path named by
/// `BENCH_HISTORY_OUT`). The history makes a slow drift visible that
/// any single committed-baseline comparison would miss, and is what the
/// smoke ratchet compares the next run against.
fn append_history(
    smoke: bool,
    current: &CpuRun,
    translated: &CpuRun,
    baseline: Option<f64>,
    trans_baseline: Option<f64>,
    networks: &[NetRun],
) {
    let path = history_path();
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let ratio_pair = |now: f64, baseline: Option<f64>| match baseline {
        Some(b) if b > 0.0 => (format!("{b:.2}"), format!("{:.3}", now / b)),
        _ => ("null".to_string(), "null".to_string()),
    };
    let now = current.emulated_mips();
    let tnow = translated.emulated_mips();
    let (baseline_s, ratio_s) = ratio_pair(now, baseline);
    let (tbaseline_s, tratio_s) = ratio_pair(tnow, trans_baseline);
    let par_workers = networks
        .iter()
        .find(|r| r.engine == Engine::Parallel)
        .map_or("null".to_string(), |r| r.par_workers.to_string());
    let e10_speedup = parallel_speedup(networks, "e10_board128")
        .map_or("null".to_string(), |s| format!("{s:.3}"));
    // Both switching modes land in the history: the store-and-forward
    // and wormhole mean hop latencies of the corner-to-corner long-path
    // probe (the pair the >= 2x tentpole gate judges; both smoke and
    // full runs produce it), falling back to whichever congested grid
    // pair the mode ran, so a hop-latency drift in either mode is
    // visible run over run.
    let grid_pair = ["e17_longpath1024", "e17_grid1024", "e17_routed_smoke"]
        .into_iter()
        .find_map(|want| {
            switching_pairs(networks)
                .into_iter()
                .find(|(base, _, _)| *base == want)
        });
    let (sf_hop, worm_hop, hop_reduction) = grid_pair.map_or(
        ("null".to_string(), "null".to_string(), "null".to_string()),
        |(_, sf, worm)| {
            let (s, w) = (sf.router.unwrap(), worm.router.unwrap());
            let reduction = if w.mean_hop_ns() == 0 {
                "null".to_string()
            } else {
                format!("{:.2}", s.mean_hop_ns() as f64 / w.mean_hop_ns() as f64)
            };
            (
                s.mean_hop_ns().to_string(),
                w.mean_hop_ns().to_string(),
                reduction,
            )
        },
    );
    let line = format!(
        "{{\"unix_s\": {unix_s}, \"smoke\": {smoke}, \"cpu_mips\": {now:.2}, \
         \"baseline_mips\": {baseline_s}, \"ratio\": {ratio_s}, \
         \"translated_mips\": {tnow:.2}, \"translated_baseline_mips\": {tbaseline_s}, \
         \"translated_ratio\": {tratio_s}, \"host_cores\": {}, \
         \"par_workers\": {par_workers}, \"e10_parallel_speedup\": {e10_speedup}, \
         \"e17_sf_mean_hop_ns\": {sf_hop}, \"e17_worm_mean_hop_ns\": {worm_hop}, \
         \"e17_hop_reduction\": {hop_reduction}}}\n",
        host_cores(),
    );
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = f.write_all(line.as_bytes());
            println!("  perf history: appended to {path}");
        }
        Err(e) => println!("  perf history: cannot append to {path}: {e}"),
    }
}

/// Print the engine speedup table (one `SPEEDUP` line per benchmark —
/// CI lifts these into the step summary) and apply the parallel-engine
/// ratchet: on a host with ≥ 4 cores, an e10 Parallel-vs-Sliced speedup
/// below 1.5x is a WARN, and a hard failure under `PERF_GATE=hard`.
/// Hosts with fewer cores cannot demonstrate the speedup, so the gate
/// reports and stands down.
fn speedup_table_and_gate(networks: &[NetRun], problems: &mut Vec<String>) {
    let mut benches: Vec<&str> = networks.iter().map(|r| r.bench).collect();
    benches.dedup();
    println!("hostperf: engine speedup table");
    for bench in benches {
        let sliced = networks
            .iter()
            .find(|r| r.bench == bench && r.engine == Engine::Sliced);
        let parallel = networks
            .iter()
            .find(|r| r.bench == bench && r.engine == Engine::Parallel);
        if let (Some(s), Some(p)) = (sliced, parallel) {
            println!(
                "SPEEDUP {bench}: sliced {:.1} ms / parallel {:.1} ms = {:.2}x \
                 (workers {}, cores {}, identical {})",
                s.wall_ms,
                p.wall_ms,
                s.wall_ms / p.wall_ms,
                p.par_workers,
                p.host_cores,
                s.fingerprint == p.fingerprint,
            );
        }
    }
    let Some(speedup) = parallel_speedup(networks, "e10_board128") else {
        return;
    };
    let cores = host_cores();
    if cores < 4 {
        println!(
            "  parallel ratchet: host has {cores} core(s); speedup not demonstrable, gate stands down"
        );
        return;
    }
    if speedup < 1.5 {
        let msg = format!(
            "parallel engine regression: e10 Parallel-vs-Sliced speedup {speedup:.2}x \
             below the 1.5x ratchet on a {cores}-core host"
        );
        if perf_gate_hard() {
            problems.push(format!("{msg} (PERF_GATE=hard)"));
        } else {
            println!("WARN: {msg}");
        }
    } else {
        println!("  parallel ratchet: e10 speedup {speedup:.2}x on {cores} cores — ok");
    }
}

/// Print the router hop-latency table: one `ROUTER` line per routed
/// benchmark (CI lifts these into the step summary alongside the
/// `SPEEDUP` lines). Stats come from the Sliced row when present —
/// hop counters may trail by a packet between engines because closing
/// acks race the all-halted detection, so one engine's row is quoted
/// rather than a cross-engine mix.
fn router_table(networks: &[NetRun]) {
    let mut benches: Vec<&str> = networks
        .iter()
        .filter(|r| r.router.is_some())
        .map(|r| r.bench)
        .collect();
    benches.dedup();
    if benches.is_empty() {
        return;
    }
    println!("hostperf: router hop-latency table");
    for bench in benches {
        let row = networks
            .iter()
            .filter(|r| r.bench == bench)
            .find(|r| r.engine == Engine::Sliced)
            .or_else(|| networks.iter().find(|r| r.bench == bench));
        let Some(r) = row else { continue };
        let Some(s) = r.router else { continue };
        println!(
            "ROUTER {bench}: {} sent / {} forwarded / {} delivered / {} dropped, \
             {} hops, hop ns mean {} / p50 {} / p99 {} / max {}, cut-through {}",
            s.packets_sent,
            s.packets_forwarded,
            s.packets_delivered,
            s.packets_dropped,
            s.hops,
            s.mean_hop_ns(),
            s.p50_hop_ns(),
            s.p99_hop_ns(),
            s.max_hop_ns,
            r.cut_through.map_or("n/a".to_string(), |c| c.to_string()),
        );
    }
}

/// Print the switching-ablation table: one `SWITCH` line per
/// store-and-forward/wormhole benchmark pair (CI lifts these into the
/// step summary), and gate the tentpole claim — on the 1024-node
/// grid's longest path (the uncontended corner-to-corner probe),
/// wormhole must at least halve the mean header-forwarding hop
/// latency. The congested stress pair is reported but not gated: its
/// hop latencies are queue-wait dominated, and cut-through cannot
/// shorten a wait behind another packet. Hop latencies are simulated
/// nanoseconds, so the gate is deterministic and machine-independent;
/// a miss is a WARN normally and a hard failure under
/// `PERF_GATE=hard`.
fn switching_table_and_gate(networks: &[NetRun], problems: &mut Vec<String>) {
    let pairs = switching_pairs(networks);
    if pairs.is_empty() {
        return;
    }
    println!("hostperf: switching ablation (store-and-forward vs wormhole)");
    for (base, sf, worm) in pairs {
        let (s, w) = (sf.router.unwrap(), worm.router.unwrap());
        let reduction = if w.mean_hop_ns() == 0 {
            f64::NAN
        } else {
            s.mean_hop_ns() as f64 / w.mean_hop_ns() as f64
        };
        println!(
            "SWITCH {base}: sf hop ns mean {} / p50 {} / p99 {} / max {} -> \
             wormhole mean {} / p50 {} / p99 {} / max {} = {reduction:.2}x mean reduction \
             (cut-through {})",
            s.mean_hop_ns(),
            s.p50_hop_ns(),
            s.p99_hop_ns(),
            s.max_hop_ns,
            w.mean_hop_ns(),
            w.p50_hop_ns(),
            w.p99_hop_ns(),
            w.max_hop_ns,
            worm.cut_through
                .map_or("n/a".to_string(), |c| c.to_string()),
        );
        if base == "e17_longpath1024" && !(reduction >= 2.0) {
            let msg = format!(
                "wormhole ablation: e17_longpath1024 mean hop reduction {reduction:.2}x \
                 below the 2x bar"
            );
            if perf_gate_hard() {
                problems.push(format!("{msg} (PERF_GATE=hard)"));
            } else {
                println!("WARN: {msg}");
            }
        }
    }
}

/// Perf check for one throughput row: a >20% regression against the
/// committed baseline prints a WARN, and with `PERF_GATE=hard` (set by
/// CI) a collapse below half the committed baseline becomes a hard
/// failure. Wall-clock numbers vary between machines, so the
/// committed-baseline hard gate only catches order-of-magnitude
/// breakage.
fn check_mips_row(label: &str, now: f64, baseline: Option<f64>, problems: &mut Vec<String>) {
    let Some(baseline) = baseline else {
        println!("  perf check: no committed {label} baseline here; skipping");
        return;
    };
    let ratio = now / baseline;
    if perf_gate_hard() && ratio < 0.5 {
        problems.push(format!(
            "emulated MIPS collapse: {label} {now:.2} MIPS vs committed {baseline:.2} MIPS \
             ({:.0}% of baseline, PERF_GATE=hard)",
            ratio * 100.0
        ));
    } else if ratio < 0.8 {
        println!(
            "WARN: emulated MIPS regression: {label} {now:.2} MIPS vs committed \
             {baseline:.2} MIPS ({:.0}% of baseline)",
            ratio * 100.0
        );
    } else {
        println!(
            "  perf check: {label} {now:.2} MIPS vs committed {baseline:.2} MIPS \
             ({:.0}% of baseline) — ok",
            ratio * 100.0
        );
    }
}

/// The history ratchet: compare this run's CPU-corpus throughput to the
/// *last* `BENCH_history.jsonl` entry — same machine, recent run, so a
/// drop of more than 20% is a real regression, not machine variance.
/// The comparison is skipped when the last entry came from a host with
/// a different logical core count (CI mixes runner sizes; MIPS across
/// them is not a regression signal). A WARN normally; a hard failure
/// under `PERF_GATE=hard`.
fn check_history_ratchet(now: f64, last: Option<f64>, problems: &mut Vec<String>) {
    let Some(last) = last.filter(|l| *l > 0.0) else {
        println!("  perf ratchet: no comparable prior history entry (missing, or a host with a different core count); skipping");
        return;
    };
    let ratio = now / last;
    if ratio < 0.8 {
        let msg = format!(
            "cpu corpus throughput ratchet: {now:.2} MIPS vs last recorded {last:.2} MIPS \
             ({:.0}% of previous run)",
            ratio * 100.0
        );
        if perf_gate_hard() {
            problems.push(format!("{msg} (PERF_GATE=hard)"));
        } else {
            println!("WARN: {msg}");
        }
    } else {
        println!(
            "  perf ratchet: {now:.2} MIPS vs last recorded {last:.2} MIPS \
             ({:.0}% of previous run) — ok",
            ratio * 100.0
        );
    }
}

/// Perf checks: read the committed `BENCH_host.json` baseline and the
/// last history entry, append this run to the history, then gate — the
/// soft committed-baseline check on both CPU-corpus tiers, plus the
/// hard history ratchet.
fn check_mips_regression(
    smoke: bool,
    current: &CpuRun,
    translated: &CpuRun,
    networks: &[NetRun],
    problems: &mut Vec<String>,
) {
    let committed = std::fs::read_to_string("BENCH_host.json").ok();
    let baseline = committed
        .as_deref()
        .and_then(baseline_cpu_mips)
        .filter(|b| *b > 0.0);
    let trans_baseline = committed
        .as_deref()
        .and_then(baseline_translated_mips)
        .filter(|b| *b > 0.0);
    // The last history line must be read before this run appends its
    // own, and only counts when it was produced on a host with the same
    // core count as this one.
    let last_mips = std::fs::read_to_string(history_path())
        .ok()
        .and_then(|h| history_ratchet_mips(&h, host_cores()));
    append_history(
        smoke,
        current,
        translated,
        baseline,
        trans_baseline,
        networks,
    );
    check_mips_row("cpu corpus", current.emulated_mips(), baseline, problems);
    check_mips_row(
        "translated tier",
        translated.emulated_mips(),
        trans_baseline,
        problems,
    );
    check_history_ratchet(current.emulated_mips(), last_mips, problems);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut networks: Vec<NetRun> = Vec::new();
    let mut cpu_runs: Vec<CpuRun> = Vec::new();
    let mut problems: Vec<String> = Vec::new();
    let mut experiments: Vec<(String, f64)> = Vec::new();

    if smoke {
        println!("hostperf --smoke: outcome gate (wall times informational)");
        println!("hostperf --smoke: cpu corpus (translated/decode-cache/plain must agree)");
        let trans = cpu_corpus_bench(true, true, 1);
        let on = cpu_corpus_bench(true, false, 1);
        let off = cpu_corpus_bench(false, false, 1);
        print_cpu(&trans);
        print_cpu(&on);
        print_cpu(&off);
        problems.extend(cpu_cross_check(&[trans.clone(), on.clone(), off.clone()]));
        cpu_runs.push(trans);
        cpu_runs.push(on);
        cpu_runs.push(off);
        let runs: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_network("e09_figure8_smoke", figure8_smoke(), e))
            .collect();
        for r in &runs {
            print_net(r);
        }
        problems.extend(cross_check(&runs));
        networks.extend(runs);

        // The same topology under injected link faults: the retry
        // machinery must hide every fault and stay bit-identical
        // across engines. The short smoke run sees few packets, so the
        // rate is scaled up to make faults certain to fire.
        let smoke_rate = (fault_rate() * 20.0).min(0.01);
        println!("hostperf --smoke: faulted variant (rate {smoke_rate})");
        let faulted_runs: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_network(
                    "e09_smoke_faulted",
                    faulted(figure8_smoke(), FAULT_SEED_DEFAULT, smoke_rate),
                    e,
                )
            })
            .collect();
        for r in &faulted_runs {
            print_net(r);
        }
        problems.extend(cross_check(&faulted_runs));
        networks.extend(faulted_runs);

        // The routed variant of the trimmed grid: every engine must
        // packetize, forward, and deliver bit-identically, clean and
        // under injected faults.
        println!("hostperf --smoke: routed grid (virtual-channel router)");
        let routed: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_routed("e17_routed_smoke", routed_smoke(), e))
            .collect();
        for r in &routed {
            print_net(r);
        }
        problems.extend(cross_check(&routed));
        networks.extend(routed);

        println!("hostperf --smoke: routed grid under faults (rate {smoke_rate})");
        let routed_faulted: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_routed(
                    "e17_routed_smoke_faulted",
                    faulted(routed_smoke(), FAULT_SEED_DEFAULT, smoke_rate),
                    e,
                )
            })
            .collect();
        for r in &routed_faulted {
            print_net(r);
        }
        problems.extend(cross_check(&routed_faulted));
        networks.extend(routed_faulted);

        // The wormhole switching mode over the same grid, clean and
        // faulted: cut-through streaming must stay bit-identical
        // across engines exactly like store-and-forward, and the pair
        // of rows feeds the SWITCH ablation table and the history's
        // hop-reduction field.
        println!("hostperf --smoke: routed grid, wormhole switching");
        let routed_worm: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_routed("e17_routed_smoke_worm", wormhole(routed_smoke()), e))
            .collect();
        for r in &routed_worm {
            print_net(r);
        }
        problems.extend(cross_check(&routed_worm));
        networks.extend(routed_worm);

        println!("hostperf --smoke: routed grid, wormhole under faults (rate {smoke_rate})");
        let routed_worm_faulted: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_routed(
                    "e17_routed_smoke_worm_faulted",
                    wormhole(faulted(routed_smoke(), FAULT_SEED_DEFAULT, smoke_rate)),
                    e,
                )
            })
            .collect();
        for r in &routed_worm_faulted {
            print_net(r);
        }
        problems.extend(cross_check(&routed_worm_faulted));
        networks.extend(routed_worm_faulted);

        // The corner-to-corner long-path probe on the full 1024-node
        // grid, both switching modes under every engine: one packet on
        // an otherwise idle machine, so it costs milliseconds even in
        // the smoke run, and it is the pair the >= 2x tentpole gate
        // judges (congestion-free, the reduction is a deterministic
        // property of the switching mode, safe under PERF_GATE=hard).
        println!("hostperf --smoke: e17 long-path probe (corner to corner, 1024-node grid)");
        let longpath: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_long_path("e17_longpath1024", Switching::StoreAndForward, e))
            .collect();
        for r in &longpath {
            print_net(r);
        }
        problems.extend(cross_check(&longpath));
        networks.extend(longpath);
        let longpath_worm: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_long_path("e17_longpath1024_worm", Switching::Wormhole, e))
            .collect();
        for r in &longpath_worm {
            print_net(r);
        }
        problems.extend(cross_check(&longpath_worm));
        networks.extend(longpath_worm);

        // The full e10 board under the two batched engines: the rows the
        // parallel ratchet compares (the event engine would dominate the
        // smoke's wall time without adding a ratchet signal).
        println!("hostperf --smoke: e10 board (parallel ratchet rows)");
        let e10: Vec<NetRun> = [Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_network("e10_board128", board128(), e))
            .collect();
        for r in &e10 {
            print_net(r);
        }
        problems.extend(cross_check(&e10));
        networks.extend(e10);
    } else {
        println!("hostperf: timing experiment binaries");
        let (rows, probs) = time_experiments();
        experiments = rows;
        problems.extend(probs);

        println!("hostperf: cpu corpus (pure-CPU emulation throughput)");
        let trans = cpu_corpus_bench(true, true, 20);
        let on = cpu_corpus_bench(true, false, 20);
        let off = cpu_corpus_bench(false, false, 20);
        print_cpu(&trans);
        print_cpu(&on);
        print_cpu(&off);
        println!(
            "  cpu corpus decode-cache speedup: {:.2}x (off {:.2} MIPS -> on {:.2} MIPS)",
            on.emulated_mips() / off.emulated_mips(),
            off.emulated_mips(),
            on.emulated_mips()
        );
        println!(
            "  cpu corpus translated speedup: {:.2}x (decode {:.2} MIPS -> translated {:.2} MIPS)",
            trans.emulated_mips() / on.emulated_mips(),
            on.emulated_mips(),
            trans.emulated_mips()
        );
        problems.extend(cpu_cross_check(&[trans.clone(), on.clone(), off.clone()]));
        cpu_runs.push(trans);
        cpu_runs.push(on);
        cpu_runs.push(off);

        println!("hostperf: e09 figure-8 (16 transputers)");
        let e09: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_network("e09_figure8", figure8(), e))
            .collect();
        for r in &e09 {
            print_net(r);
        }
        problems.extend(cross_check(&e09));
        networks.extend(e09);

        println!("hostperf: e10 board (128 transputers)");
        let e10: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_network("e10_board128", board128(), e))
            .collect();
        for r in &e10 {
            print_net(r);
        }
        let event = e10[0].wall_ms;
        let sliced = e10[1].wall_ms;
        println!(
            "  e10 speedup: {:.2}x (event {:.1} ms -> sliced {:.1} ms)",
            event / sliced,
            event,
            sliced
        );
        problems.extend(cross_check(&e10));
        networks.extend(e10);

        println!("hostperf: e16 hypercube (256 transputers)");
        let e16: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_hypercube("e16_hypercube256", hypercube256(), e))
            .collect();
        for r in &e16 {
            print_net(r);
        }
        problems.extend(cross_check(&e16));
        networks.extend(e16);

        // Faulted variants: the acceptance bar for the fault layer is
        // that the search completes correct (possibly degraded-flagged)
        // with identical fingerprints on every engine while each link
        // suffers deterministic drops, corruption, and jitter.
        let rate = fault_rate();
        println!("hostperf: e09 figure-8 under faults (rate {rate})");
        let e09f: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_network(
                    "e09_faulted",
                    faulted(figure8(), FAULT_SEED_DEFAULT, rate),
                    e,
                )
            })
            .collect();
        for r in &e09f {
            print_net(r);
        }
        problems.extend(cross_check(&e09f));
        networks.extend(e09f);

        println!("hostperf: e10 board (128 transputers) under faults (rate {rate})");
        let e10f: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_network(
                    "e10_faulted",
                    faulted(board128(), FAULT_SEED_DEFAULT, rate),
                    e,
                )
            })
            .collect();
        for r in &e10f {
            print_net(r);
        }
        problems.extend(cross_check(&e10f));
        networks.extend(e10f);

        // The faulted hypercube runs under the two batched engines only:
        // the new-engine-critical check is Sliced↔Parallel identity
        // (Event↔Sliced equivalence under faults is pinned on e09/e10).
        println!("hostperf: e16 hypercube under faults (rate {rate})");
        let e16f: Vec<NetRun> = [Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_hypercube(
                    "e16_faulted",
                    faulted_hypercube(hypercube256(), FAULT_SEED_DEFAULT, rate),
                    e,
                )
            })
            .collect();
        for r in &e16f {
            print_net(r);
        }
        problems.extend(cross_check(&e16f));
        networks.extend(e16f);

        // The routed hypercube: the e17 acceptance shape — the same
        // 256-node machine as e16 searched over virtual channels, no
        // per-topology tree planning.
        println!("hostperf: e17 routed hypercube (256 transputers)");
        let e17: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_routed_hypercube("e17_routed256", routed_hypercube256(), e))
            .collect();
        for r in &e17 {
            print_net(r);
        }
        problems.extend(cross_check(&e17));
        networks.extend(e17);

        // The wormhole hypercube: the cluster hypercube's e-cube
        // tables have a cyclic channel-dependency graph, so the router
        // degrades cut-through to store-and-forward at build time; the
        // rows must fingerprint identically to the plain e17 rows
        // (checked below), making the degrade visible and harmless at
        // full scale.
        println!("hostperf: e17 routed hypercube, wormhole switching (degrades to SF)");
        let e17w: Vec<NetRun> = [Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| {
                run_routed_hypercube(
                    "e17_routed256_worm",
                    wormhole_hypercube(routed_hypercube256()),
                    e,
                )
            })
            .collect();
        for r in &e17w {
            print_net(r);
        }
        problems.extend(cross_check(&e17w));
        if let (Some(sf), Some(worm)) = (
            networks
                .iter()
                .find(|r| r.bench == "e17_routed256" && r.engine == Engine::Sliced),
            e17w.iter().find(|r| r.engine == Engine::Sliced),
        ) {
            if sf.fingerprint != worm.fingerprint {
                problems.push(
                    "e17_routed256_worm: degraded wormhole run diverged from store-and-forward"
                        .to_string(),
                );
            }
        }
        networks.extend(e17w);

        // The 1024-node routed stress grid under the batched engines:
        // proves the router completes at 4x the acceptance node count
        // (the per-instruction engine adds wall time, not signal).
        println!("hostperf: e17 routed stress grid (1024 transputers)");
        let e17s: Vec<NetRun> = [Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_routed("e17_grid1024", grid32x32_stress(), e))
            .collect();
        for r in &e17s {
            print_net(r);
        }
        problems.extend(cross_check(&e17s));
        networks.extend(e17s);

        // The same stress grid under wormhole switching. The grid's
        // dimension-order tables keep the channel-dependency graph
        // acyclic, so cut-through stays armed; the pair is reported in
        // the SWITCH table but not gated — the stress workload's hop
        // latencies are queue-wait dominated, so the reduction it shows
        // is congestion relief, not the switching cost itself.
        println!("hostperf: e17 routed stress grid, wormhole switching");
        let e17sw: Vec<NetRun> = [Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_routed("e17_grid1024_worm", wormhole(grid32x32_stress()), e))
            .collect();
        for r in &e17sw {
            print_net(r);
        }
        problems.extend(cross_check(&e17sw));
        networks.extend(e17sw);

        // The corner-to-corner long-path probe on the same 1024-node
        // grid: one packet over the 62-hop diagonal of an idle machine,
        // the pair the >= 2x tentpole gate judges (store-and-forward
        // pays a full packet reassembly per hop; cut-through pays three
        // header byte-times).
        println!("hostperf: e17 long-path probe (corner to corner, 1024-node grid)");
        let e17lp: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_long_path("e17_longpath1024", Switching::StoreAndForward, e))
            .collect();
        for r in &e17lp {
            print_net(r);
        }
        problems.extend(cross_check(&e17lp));
        networks.extend(e17lp);
        let e17lpw: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_long_path("e17_longpath1024_worm", Switching::Wormhole, e))
            .collect();
        for r in &e17lpw {
            print_net(r);
        }
        problems.extend(cross_check(&e17lpw));
        networks.extend(e17lpw);
    }

    // The speedup table, the parallel ratchet, and the throughput
    // regression checks run over whichever rows the mode produced; the
    // history line carries this run's e10 speedup for the next ratchet.
    speedup_table_and_gate(&networks, &mut problems);
    router_table(&networks);
    switching_table_and_gate(&networks, &mut problems);
    if let (Some(on), Some(trans)) = (
        cpu_runs.iter().find(|r| r.decode_cache && !r.translate),
        cpu_runs.iter().find(|r| r.translate),
    ) {
        check_mips_regression(smoke, on, trans, &networks, &mut problems);
    }

    println!("hostperf: static cost model vs emulator");
    let static_model = static_model_runs(&mut problems);
    for r in &static_model {
        println!(
            "  static_model {:<14} predicted {:>8}  measured {:>8}  error {}",
            r.name,
            r.predicted.map_or("refused".to_string(), |p| p.to_string()),
            r.measured,
            r.error_pct()
                .map_or("—".to_string(), |e| format!("{e:.3}%")),
        );
    }

    let json = to_json(
        smoke,
        &experiments,
        &cpu_runs,
        &static_model,
        &networks,
        &problems,
    );
    let out_path =
        std::env::var("BENCH_HOST_OUT").unwrap_or_else(|_| "BENCH_host.json".to_string());
    std::fs::write(&out_path, &json).expect("write BENCH_host.json");
    println!("wrote {out_path}");

    if problems.is_empty() {
        println!("hostperf PASS");
    } else {
        for p in &problems {
            println!("FAIL: {p}");
        }
        std::process::exit(1);
    }
}
