//! E11 — Figure 6: the personal workstation, and the paper's
//! configuration claim: "the disk controller can double as the
//! applications processor, and the applications transputer removed
//! completely"; more generally a program "may be configured for
//! execution by a single transputer (low cost), or for execution by a
//! network of transputers (high performance)" (§1).
//!
//! The same three occam PROCs (application, disk server, graphics
//! server) run in all three placements; only `PLACE` directives differ.

use transputer_apps::{Placement, Workstation, WorkstationConfig};
use transputer_bench::{cells, table};

fn main() {
    table::heading("E11", "personal workstation placements", "Figure 6, §4.1");

    let config = WorkstationConfig::default();
    println!(
        "{} commands; disk service {} ticks (64 µs each), render {} ticks, {} compute iterations per command\n",
        config.commands, config.disk_service_ticks, config.render_ticks, config.compute_iters
    );

    table::header(&[
        "placement",
        "transputers",
        "elapsed",
        "per command",
        "checksum",
        "instructions per node",
    ]);
    let mut results = Vec::new();
    for placement in Placement::ALL {
        let ws = Workstation::build(placement, config.clone()).expect("builds");
        let report = ws.run(1_000_000_000_000).expect("runs");
        let links: Vec<String> = report
            .wire_utilization
            .iter()
            .map(|(a, b)| format!("{:.1}%/{:.1}%", a * 100.0, b * 100.0))
            .collect();
        table::row(cells![
            format!("{placement:?}"),
            placement.transputers(),
            table::ms(report.total_ns),
            table::us(report.ns_per_command),
            format!("{:#X}", report.checksum),
            format!(
                "{:?} (links {})",
                report.instructions_per_node,
                links.join(", ")
            )
        ]);
        results.push(report);
    }

    let checksums_equal = results.windows(2).all(|w| w[0].checksum == w[1].checksum);
    let speedup = results[0].total_ns as f64 / results[2].total_ns as f64;
    println!();
    println!(
        "identical logical behaviour in every placement (checksums equal: {checksums_equal}); \
         three transputers run the command stream ×{speedup:.2} faster than one \
         (devices overlap seek, render and compute)."
    );
    table::verdict(
        checksums_equal && results[2].total_ns <= results[0].total_ns,
        "the same occam processes reconfigure across 1/2/3 transputers with identical results",
    );
}
