//! E6 — §3.2.4: "the maximum time taken to switch from priority 1 to
//! priority 0 is 58 cycles (less than three microseconds with a 50ns
//! processor cycle time). ... The time taken for the [0→1] switch is 17
//! cycles."
//!
//! A high-priority process wakes on its timer every few ticks while a
//! low-priority process executes adversarial instruction mixes (the
//! longest instructions in the set); the worst observed wake-to-dispatch
//! latency must stay within the bound.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::{timing, Cpu, CpuConfig, Priority};
use transputer_bench::{cells, table};

/// Build a low-priority busy loop from an instruction mix, run the
/// high-priority timer waker over it, and return the worst latency.
fn worst_latency(mix: &str, body: &[u8]) -> (String, u64) {
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    // Low-priority loop: body; j back.
    let lo_entry = code.len();
    code.extend_from_slice(body);
    let back = lo_entry as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, back));
    assert_eq!(
        encode(Direct::Jump, back).len(),
        2,
        "loop body sized for a 2-byte jump"
    );
    let hi_entry = code.len();
    // High priority: 200 wakes, 3 ticks apart.
    code.extend(encode(Direct::LoadConstant, 200));
    code.extend(encode(Direct::StoreLocal, 2));
    let loop_top = code.len();
    code.extend(encode_op(Op::LoadTimer));
    code.extend(encode(Direct::AddConstant, 3));
    code.extend(encode_op(Op::TimerInput));
    code.extend(encode(Direct::LoadLocal, 2));
    code.extend(encode(Direct::AddConstant, -1));
    code.extend(encode(Direct::StoreLocal, 2));
    code.extend(encode(Direct::LoadLocal, 2));
    code.extend(encode(Direct::ConditionalJump, 2));
    let dist = loop_top as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, dist));
    code.extend(encode_op(Op::HaltSimulation));

    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).expect("loads");
    let top = cpu.default_boot_workspace();
    cpu.spawn(top, entry + lo_entry as u32, Priority::Low);
    cpu.spawn(
        top.wrapping_sub(256),
        entry + hi_entry as u32,
        Priority::High,
    );
    cpu.run(50_000_000).expect("completes");
    let s = cpu.stats();
    assert!(
        s.preemptions >= 100,
        "mix `{mix}`: too few preemptions ({})",
        s.preemptions
    );
    (mix.to_string(), s.max_preempt_latency)
}

fn main() {
    table::heading(
        "E6",
        "priority switch latency",
        "§3.2.4: ≤ 58 cycles low→high, 17 cycles high→low",
    );

    let mixes: Vec<(&str, Vec<u8>)> = vec![
        ("multiply storm", {
            let mut b = Vec::new();
            b.extend(encode(Direct::LoadConstant, 3));
            b.extend(encode(Direct::LoadConstant, 3));
            b.extend(encode_op(Op::Multiply));
            b.extend(encode(Direct::StoreLocal, 1));
            b
        }),
        ("divide storm", {
            let mut b = Vec::new();
            b.extend(encode(Direct::LoadConstant, 7));
            b.extend(encode(Direct::LoadConstant, 3));
            b.extend(encode_op(Op::Divide));
            b.extend(encode(Direct::StoreLocal, 1));
            b
        }),
        ("block move storm", {
            // move 32 bytes between local buffers each iteration
            // (interruptible: resumes after the switch).
            let mut b = Vec::new();
            b.extend(encode(Direct::LoadLocalPointer, 24)); // dst -> C
            b.extend(encode(Direct::LoadLocalPointer, 8)); // src -> B
            b.extend(encode(Direct::LoadConstant, 32)); // count -> A
            b.extend(encode_op(Op::Move));
            b
        }),
        ("long shift storm", {
            let mut b = Vec::new();
            b.extend(encode(Direct::LoadConstant, 1)); // high
            b.extend(encode(Direct::LoadConstant, 1)); // low
            b.extend(encode(Direct::LoadConstant, 40)); // places
            b.extend(encode_op(Op::LongShiftLeft));
            b.extend(encode(Direct::StoreLocal, 1));
            b.extend(encode(Direct::StoreLocal, 2));
            b
        }),
    ];

    table::header(&[
        "low-priority mix",
        "worst latency (cycles)",
        "bound (paper)",
        "within",
    ]);
    let mut worst = 0u64;
    for (mix, body) in mixes {
        let (name, latency) = worst_latency(mix, &body);
        worst = worst.max(latency);
        table::row(cells![
            name,
            latency,
            timing::PRIORITY_RAISE_MAX,
            if latency <= u64::from(timing::PRIORITY_RAISE_MAX) {
                "yes"
            } else {
                "NO"
            }
        ]);
    }
    println!();
    println!(
        "worst observed: {} cycles = {:.2} µs at 50 ns/cycle (paper: < 3 µs)",
        worst,
        worst as f64 * 0.05
    );
    println!(
        "high→low switch (shadow restore): {} cycles by construction (paper: 17)",
        timing::PRIORITY_LOWER_SWITCH
    );
    table::verdict(
        worst <= u64::from(timing::PRIORITY_RAISE_MAX),
        "priority-1 → priority-0 latency stays within the paper's 58-cycle bound",
    );
}
