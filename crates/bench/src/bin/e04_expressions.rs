//! E4 — §3.2.9 table: expression evaluation on the three-register stack.
//! `x + 2` (2 bytes, 3 cycles) and `(v + w) * (y + z)` (8 bytes,
//! 11 + multiply = 11 + (7 + wordlength) cycles with the final multiply
//! sequence taking 2 bytes and 7+wordlength cycles).

use transputer::{timing, CpuConfig, WordLength};
use transputer_asm::disassemble;
use transputer_bench::{asm, cells, measure_sequence, table};

fn main() {
    table::heading("E4", "expression evaluation", "§3.2.9 table");
    table::header(&[
        "occam",
        "sequence",
        "bytes (paper)",
        "bytes",
        "cycles (paper)",
        "cycles",
    ]);

    // x + 2: load local x (1 byte, 2 cycles); add constant 2 (1, 1).
    let m = measure_sequence(CpuConfig::t424(), &asm("ldl 1\nadc 2"));
    table::row(cells!["x + 2", "ldl x; adc 2", 2, m.bytes, 3, m.cycles]);
    let ok1 = m.bytes == 2 && m.cycles == 3;

    // (v + w) * (y + z): four loads (2 cycles each), two adds (1 each),
    // multiply (2 bytes, 7 + wordlength cycles).
    let src = "ldl 1\nldl 2\nadd\nldl 3\nldl 4\nadd\nmul";
    let m32 = measure_sequence(CpuConfig::t424(), &asm(src));
    let paper32 = 4 * 2 + 2 + u64::from(timing::multiply_sequence_cycles(WordLength::Bits32));
    table::row(cells![
        "(v+w)*(y+z) [32-bit]",
        "4×ldl, 2×add, mul",
        8,
        m32.bytes,
        paper32,
        m32.cycles
    ]);
    let ok2 = m32.bytes == 8 && m32.cycles == paper32;

    let m16 = measure_sequence(CpuConfig::t222(), &asm(src));
    let paper16 = 4 * 2 + 2 + u64::from(timing::multiply_sequence_cycles(WordLength::Bits16));
    table::row(cells![
        "(v+w)*(y+z) [16-bit]",
        "4×ldl, 2×add, mul",
        8,
        m16.bytes,
        paper16,
        m16.cycles
    ]);
    let ok3 = m16.cycles == paper16;

    // Multiply alone: 2 bytes, 7 + wordlength cycles.
    println!();
    println!(
        "multiply sequence: 2 bytes, 7 + wordlength = {} cycles (32-bit), {} cycles (16-bit)",
        timing::multiply_sequence_cycles(WordLength::Bits32),
        timing::multiply_sequence_cycles(WordLength::Bits16),
    );

    // The occam compiler's output for x + 2 is the paper's sequence.
    let program = occam::compile("VAR x, r:\nSEQ\n  x := 5\n  r := x + 2").expect("compiles");
    let has_adc = disassemble(&program.code)
        .windows(2)
        .any(|w| w[0].to_string().starts_with("ldl") && w[1].to_string() == "adc 2");
    println!(
        "compiler emits ldl x; adc 2 for `x + 2`: {}",
        if has_adc { "yes" } else { "NO" }
    );

    table::verdict(
        ok1 && ok2 && ok3 && has_adc,
        "expression byte/cycle counts match §3.2.9, including multiply = 7 + wordlength",
    );
}
