//! E10 — §4.2 / Figure 7: the 128-transputer board.
//!
//! "Each transputer can hold 200 records and the whole system can hold
//! 25,000 records. For each transputer to search its own records against
//! a request will take less than a millisecond. The time taken to
//! transmit a search request to each transputer in the array is
//! proportional to the longest path across the system, in this case 24
//! links. It takes about 6 microseconds to send a 4 byte message ... It
//! will thus take about 150 microseconds to transmit a search request to
//! the whole array, and about another 150 microseconds to transmit the
//! answer. The whole search of 25,000 records will take less than 1.3
//! milliseconds. ... The size of the database partition can be increased
//! by adding more boards. The search throughput is not adversely
//! affected."
//!
//! Our 128 transputers are arranged 16×8 (longest path 22 links; the
//! paper's unstated arrangement gives 24). The two-board scaling run
//! doubles the array to 256 transputers and 51,200 records.

use transputer_apps::{DbSearch, DbSearchConfig};
use transputer_bench::hostperf::fault_plan_from_env;
use transputer_bench::{cells, table};

fn run_one(label: &str, mut config: DbSearchConfig) -> transputer_apps::DbSearchReport {
    if let Some(plan) = fault_plan_from_env() {
        println!(
            "\nfault injection: uniform rate {} (seed {}) on every link",
            plan.drop_rate, plan.seed
        );
        config.net.fault = Some(plan);
    }
    println!(
        "\n{label}: {}×{} = {} transputers, {} records ({} requests pipelined)",
        config.width,
        config.height,
        config.width * config.height,
        config.total_records(),
        config.requests
    );
    let mut sim = DbSearch::build(config).expect("builds");
    let report = sim.run(10_000_000_000_000).expect("runs");
    table::header(&["metric", "measured", "paper"]);
    table::row(cells!["answers correct", report.all_correct(), "—"]);
    table::row(cells![
        "longest path",
        format!("{} links", report.longest_path_links),
        "24 links"
    ]);
    let prop_us = report.longest_path_links as f64 * 6.0;
    table::row(cells![
        "request propagation (path × 6 µs)",
        format!("~{prop_us:.0} µs"),
        "about 150 µs"
    ]);
    table::row(cells![
        "first-answer latency",
        table::ms(report.first_answer_ns),
        "less than 1.3 ms"
    ]);
    table::row(cells![
        "pipelined answer interval",
        table::ms(report.pipeline_interval_ns),
        "—"
    ]);
    table::row(cells![
        "throughput",
        format!("{:.0} searches/s", report.throughput_per_sec()),
        "not adversely affected by scale"
    ]);
    if report.degraded {
        table::row(cells![
            "degraded",
            format!(
                "{} of {} answers, {} node(s) excluded",
                report.received,
                report.expected.len(),
                report.excluded_nodes
            ),
            "—"
        ]);
    }
    report
}

fn main() {
    table::heading("E10", "the 128-transputer board", "§4.2, Figure 7");

    let one = run_one("one board", DbSearchConfig::board128());

    let mut two_cfg = DbSearchConfig::board128();
    two_cfg.width = 16;
    two_cfg.height = 16;
    two_cfg.requests = 3;
    let two = run_one("two boards", two_cfg);

    println!();
    let ratio = two.pipeline_interval_ns as f64 / one.pipeline_interval_ns.max(1) as f64;
    println!(
        "scaling: doubling the array to {} records changes the pipelined \
         answer interval by ×{ratio:.2} (paper: \"throughput is not adversely affected\")",
        two.total_records
    );
    table::verdict(
        one.all_correct()
            && two.all_correct()
            && one.first_answer_ns < 1_300_000 * 2
            && ratio < 1.5,
        "search of 25k+ records completes in the paper's latency band and throughput survives scaling",
    );
}
