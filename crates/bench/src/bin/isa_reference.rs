//! Generate the I1 instruction-set reference: every direct and indirect
//! function with its encoding, cycle cost and published name — the
//! machine this repository models, in one table.
//!
//! ```sh
//! cargo run -p transputer-bench --bin isa_reference > ISA.md
//! ```

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::timing;
use transputer::WordLength;

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02X}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    println!("# The I1 instruction set, as modelled");
    println!();
    println!(
        "Every instruction is one byte: a 4-bit function and a 4-bit datum \
         (§3.2.5); `prefix`/`negative prefix` extend operands, `operate` \
         reaches the indirect functions (§3.2.8). Cycle entries marked * \
         are operand- or state-dependent; see `transputer::timing`."
    );
    println!();
    println!("## Direct functions");
    println!();
    println!("| code | mnemonic | full name | cycles |");
    println!("|---|---|---|---|");
    for d in Direct::ALL {
        let cycles = match d {
            Direct::Operate => "(per operation)".to_string(),
            Direct::ConditionalJump => format!(
                "{} taken / {} not",
                timing::direct_cycles(d, true),
                timing::direct_cycles(d, false)
            ),
            _ => timing::direct_cycles(d, false).to_string(),
        };
        println!(
            "| #{:X} | `{}` | {} | {} |",
            d.nibble(),
            d.mnemonic(),
            d.full_name(),
            cycles
        );
    }
    println!();
    println!("## Indirect functions (via `operate`)");
    println!();
    println!("| code | encoding | mnemonic | full name | cycles |");
    println!("|---|---|---|---|---|");
    for op in Op::ALL {
        if op == Op::HaltSimulation {
            continue; // emulator extension, listed separately
        }
        let cycles = match timing::op_fixed_cycles(op) {
            Some(c) => c.to_string(),
            None => match op {
                Op::Multiply => format!(
                    "{} (seq. total {} = 7+wordlength)",
                    timing::multiply_cycles(WordLength::Bits32),
                    timing::multiply_sequence_cycles(WordLength::Bits32)
                ),
                Op::Divide => timing::divide_cycles(WordLength::Bits32).to_string(),
                Op::Remainder => timing::remainder_cycles(WordLength::Bits32).to_string(),
                Op::InputMessage | Op::OutputMessage | Op::OutputByte | Op::OutputWord => {
                    "max(24, 21+8n/wordlength) total*".to_string()
                }
                _ => "*".to_string(),
            },
        };
        println!(
            "| #{:02X} | `{}` | `{}` | {} | {} |",
            op.code(),
            hex(&encode_op(op)),
            op.mnemonic(),
            op.full_name(),
            cycles
        );
    }
    println!();
    println!("## Emulator extension");
    println!();
    println!(
        "| #17F | `{}` | `haltsim` | halt simulation | 1 | cleanly ends a hosted run |",
        hex(&encode_op(Op::HaltSimulation))
    );
    println!();
    println!("## Prefixing examples (§3.2.7)");
    println!();
    println!("| operand | `ldc` encoding |");
    println!("|---|---|");
    for v in [
        0i64,
        15,
        16,
        0x754,
        255,
        256,
        -1,
        -256,
        -257,
        i32::MAX as i64,
    ] {
        println!(
            "| {v} (#{v:X}) | `{}` |",
            hex(&encode(Direct::LoadConstant, v))
        );
    }
}
