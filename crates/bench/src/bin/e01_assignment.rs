//! E1 — §3.2.6 table 1: code bytes and cycles for the assignment
//! fragments `x := 0` and `x := y`, both as the paper's hand-written
//! sequences and as emitted by the occam compiler.

use transputer::CpuConfig;
use transputer_asm::disassemble;
use transputer_bench::{asm, cells, measure_sequence, table};

fn main() {
    table::heading("E1", "assignment sequences", "§3.2.6 table 1");
    table::header(&[
        "occam",
        "sequence",
        "bytes (paper)",
        "bytes",
        "cycles (paper)",
        "cycles",
    ]);

    // x := 0 — "load constant 0 (1 byte, 1 cycle); store local x (1, 1)".
    let seq = asm("load constant 0\nstore local 1");
    let m = measure_sequence(CpuConfig::t424(), &seq);
    table::row(cells!["x := 0", "ldc 0; stl x", 2, m.bytes, 2, m.cycles]);
    let ok1 = m.bytes == 2 && m.cycles == 2;

    // x := y — "load local y (1, 2); store local x (1, 1)".
    let seq = asm("load local 2\nstore local 1");
    let m = measure_sequence(CpuConfig::t424(), &seq);
    table::row(cells!["x := y", "ldl y; stl x", 2, m.bytes, 3, m.cycles]);
    let ok2 = m.bytes == 2 && m.cycles == 3;

    // The compiler must emit the same sequences. `x := 0` body ends with
    // ldc 0; stl <x>.
    let program = occam::compile("VAR x, y:\nSEQ\n  y := 9\n  x := y").expect("compiles");
    let listing = disassemble(&program.code);
    let has_pair = listing
        .windows(2)
        .any(|w| w[0].to_string().starts_with("ldl") && w[1].to_string().starts_with("stl"));
    println!();
    println!(
        "compiler output contains the paper's ldl/stl pair: {}",
        if has_pair { "yes" } else { "NO" }
    );

    table::verdict(
        ok1 && ok2 && has_pair,
        "assignment byte and cycle counts match §3.2.6 exactly",
    );
}
