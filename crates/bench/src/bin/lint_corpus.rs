//! Lint gate over the occam workload corpus: every program must pass
//! the `transputer-analysis` checks that back `txlint` — source-level
//! channel-usage lints, compiler PAR-usage warnings, and bytecode
//! verification of the emitted I1 code.
//!
//! Usage: `cargo run --release -p transputer-bench --bin lint_corpus`
//!
//! Warnings are reported but only errors fail the gate (the corpus is
//! expected to be warning-clean too; a count is printed either way).

use transputer_analysis::{verifier, Diagnostic, Span};
use transputer_bench::corpus::CORPUS;

fn main() {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for item in CORPUS {
        let mut diags = transputer_analysis::lint_source(item.source);
        match occam::compile(item.source) {
            Ok(program) => {
                diags.extend(program.warnings.iter().map(|w| {
                    Diagnostic::warning("par-usage", Span::line(w.line), w.message.clone())
                }));
                diags.extend(verifier::verify_program(&program));
            }
            Err(e) => diags.push(Diagnostic::error("compile", Span::line(0), e.to_string())),
        }
        for d in &diags {
            println!("{}: {d}", item.name);
            if d.is_error() {
                errors += 1;
            } else {
                warnings += 1;
            }
        }
        if diags.is_empty() {
            println!("{}: ok", item.name);
        }
    }
    println!(
        "\nlint gate: {} program(s), {errors} error(s), {warnings} warning(s)",
        CORPUS.len()
    );
    if errors > 0 {
        println!("FAIL: lint errors in the occam corpus");
        std::process::exit(1);
    }
}
