//! Lint gate over everything the benchmarks execute: the occam
//! workload corpus, the generated experiment sources, and the
//! hand-assembled experiment images — every program must pass the
//! `transputer-analysis` checks that back `txlint`.
//!
//! Usage: `cargo run --release -p transputer-bench --bin lint_corpus`
//!
//! Four passes, all gating on errors (warnings are reported and
//! counted but do not fail):
//!
//! 1. **Corpus sources** — channel-usage lints, compiler PAR-usage
//!    warnings, and the CFG-based bytecode verifier over the emitted
//!    code; plus a differential proving the CFG verifier's findings
//!    are a superset of the linear pass on every program.
//! 2. **Experiment sources** — the same stack over every occam source
//!    the experiment binaries generate (compiler-shape checks, the
//!    e09 database-search node programs, the e11 workstation
//!    placements).
//! 3. **Experiment images** — CFG recovery and bytecode verification
//!    over every hand-assembled image e01–e14 load into a CPU.
//! 4. **Static cost model** — `cost::analyze_program` versus the
//!    emulator over the compute-class validation corpus; any program
//!    the model refuses, or predicts with more than 5 % cycle error,
//!    fails the gate. The table is printed with a `static-model: `
//!    prefix so CI can lift it into the job summary.

use transputer::{Cpu, CpuConfig, HaltReason, RunOutcome, WordLength};
use transputer_analysis::cfg::Cfg;
use transputer_analysis::{cost, verifier, Diagnostic, Span};
use transputer_bench::corpus::{CORPUS, STATIC_MODEL_CORPUS};
use transputer_bench::expimages;

/// Largest tolerated |predicted − measured| / measured, in percent.
const MODEL_ERROR_LIMIT: f64 = 5.0;

struct Tally {
    errors: usize,
    warnings: usize,
}

impl Tally {
    fn report(&mut self, name: &str, diags: &[Diagnostic]) {
        for d in diags {
            println!("{name}: {d}");
            if d.is_error() {
                self.errors += 1;
            } else {
                self.warnings += 1;
            }
        }
        if diags.is_empty() {
            println!("{name}: ok");
        }
    }
}

/// Lint an occam source end to end: source lints, PAR-usage warnings,
/// CFG-based bytecode verification of the emitted code.
fn lint_occam(source: &str) -> Vec<Diagnostic> {
    let mut diags = transputer_analysis::lint_source(source);
    match occam::compile(source) {
        Ok(program) => {
            diags.extend(
                program.warnings.iter().map(|w| {
                    Diagnostic::warning("par-usage", Span::line(w.line), w.message.clone())
                }),
            );
            diags.extend(transputer_analysis::verify_program_cfg(&program));
        }
        Err(e) => diags.push(Diagnostic::error("compile", Span::line(0), e.to_string())),
    }
    diags
}

/// Check the CFG verifier reproduces (or strictly extends) the linear
/// verifier on a program; returns the findings the CFG pass missed.
fn cfg_misses(program: &occam::Program) -> Vec<String> {
    let linear: Vec<String> = verifier::verify_program(program)
        .iter()
        .map(|d| d.to_string())
        .collect();
    let cfg: Vec<String> = transputer_analysis::verify_program_cfg(program)
        .iter()
        .map(|d| d.to_string())
        .collect();
    linear.into_iter().filter(|d| !cfg.contains(d)).collect()
}

/// Run a compiled program to a clean halt and return its cycle count.
fn measure_cycles(program: &occam::Program) -> u64 {
    let mut cpu = Cpu::new(CpuConfig::t424());
    program.load(&mut cpu).expect("validation program loads");
    match cpu.run(500_000_000).expect("validation program runs") {
        RunOutcome::Halted(HaltReason::Stopped) => {}
        other => panic!("validation program did not halt cleanly: {other:?}"),
    }
    cpu.cycles()
}

fn main() {
    let mut tally = Tally {
        errors: 0,
        warnings: 0,
    };

    // Pass 1: the occam workload corpus, plus the linear-vs-CFG
    // differential.
    println!("== occam corpus ==");
    for item in CORPUS {
        tally.report(item.name, &lint_occam(item.source));
        if let Ok(program) = occam::compile(item.source) {
            for missed in cfg_misses(&program) {
                println!("{}: CFG pass lost a linear finding: {missed}", item.name);
                tally.errors += 1;
            }
        }
    }

    // Pass 2: generated experiment sources.
    println!("\n== experiment sources ==");
    let sources = expimages::experiment_sources();
    for (name, source) in &sources {
        tally.report(name, &lint_occam(source));
    }

    // Pass 3: hand-assembled experiment images.
    println!("\n== experiment images ==");
    let images = expimages::experiment_images();
    for img in &images {
        let cfg = Cfg::recover(&img.code);
        tally.report(img.name, &cfg.diags);
        for u in &cfg.unanalyzable {
            println!("{}: note: {u}", img.name);
        }
    }

    // Pass 4: the static cost model against the emulator.
    println!("\n== static cost model ==");
    println!("static-model: | program | predicted cycles | measured cycles | error |");
    println!("static-model: |---|---:|---:|---:|");
    for item in STATIC_MODEL_CORPUS {
        let program = occam::compile(item.source).expect("validation program compiles");
        let measured = measure_cycles(&program);
        match cost::analyze_program(&program, WordLength::Bits32) {
            Ok(report) => {
                let err = 100.0 * (report.cycles as f64 - measured as f64).abs() / measured as f64;
                println!(
                    "static-model: | {} | {} | {measured} | {err:.3}% |",
                    item.name, report.cycles
                );
                if err > MODEL_ERROR_LIMIT {
                    println!(
                        "{}: static model off by {err:.3}% (limit {MODEL_ERROR_LIMIT}%)",
                        item.name
                    );
                    tally.errors += 1;
                }
            }
            Err(e) => {
                println!(
                    "static-model: | {} | (refused) | {measured} | — |",
                    item.name
                );
                println!("{}: static model refused: {e}", item.name);
                tally.errors += 1;
            }
        }
    }

    println!(
        "\nlint gate: {} corpus + {} experiment source(s) + {} image(s) + {} model check(s), \
         {} error(s), {} warning(s)",
        CORPUS.len(),
        sources.len(),
        images.len(),
        STATIC_MODEL_CORPUS.len(),
        tally.errors,
        tally.warnings
    );
    if tally.errors > 0 {
        println!("FAIL: lint errors in the benchmark workloads");
        std::process::exit(1);
    }
}
