//! E5 — §3.2.10: "A communication primitive communicating a block of
//! size n bytes requires only one byte of program, and on average the
//! maximum of (24, 21+(8*n/wordlength)) cycles (including the scheduling
//! overhead)."
//!
//! Two processes rendezvous on an internal channel for a sweep of
//! message sizes; the cycles attributable to the communication are the
//! total minus the (exactly known) cost of the surrounding instructions.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::{timing, Cpu, CpuConfig, Priority, WordLength};
use transputer_bench::{cells, table};

/// Run one rendezvous of `n` bytes; return the communication cycles.
fn comm_cycles(config: CpuConfig, n: u32) -> u64 {
    let mut cpu = Cpu::new(config);
    let word = cpu.word_length();
    let bpw = word.bytes_per_word() as i64;

    // Layout: receiver workspace near the top; sender 64 words below;
    // channel at receiver w[1]; receiver buffer at w[8..]; sender buffer
    // at its w[8..].
    let mut code = Vec::new();
    // Receiver: chan := NotProcess; in(n, chan, buf); haltsim.
    code.extend(encode_op(Op::MinimumInteger));
    code.extend(encode(Direct::StoreLocal, 1));
    code.extend(encode(Direct::LoadLocalPointer, 8)); // dest buffer
    code.extend(encode(Direct::LoadLocalPointer, 1)); // channel address
    code.extend(encode(Direct::LoadConstant, i64::from(n)));
    code.extend(encode_op(Op::InputMessage));
    code.extend(encode_op(Op::HaltSimulation));
    let sender_entry = code.len();
    // Sender: out(n, chan, buf); stopp. Channel is 64 words above its
    // workspace: receiver w[1] = sender w[65].
    code.extend(encode(Direct::LoadLocalPointer, 8));
    code.extend(encode(Direct::LoadLocalPointer, 65));
    code.extend(encode(Direct::LoadConstant, i64::from(n)));
    code.extend(encode_op(Op::OutputMessage));
    code.extend(encode_op(Op::StopProcess));

    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).expect("loads");
    let top = cpu.default_boot_workspace();
    let recv_w = top;
    let send_w = word.mask(top.wrapping_sub((64 * bpw) as u32));
    cpu.spawn(recv_w, entry, Priority::Low);
    cpu.spawn(send_w, entry + sender_entry as u32, Priority::Low);
    cpu.run(1_000_000).expect("completes");

    // Known non-communication instruction cost (prefix bytes cost one
    // cycle each, §3.2.7):
    //   receiver: mint (2 bytes = 2 cycles) + stl (1) + ldlp (1) +
    //   ldlp (1) + ldc (1 cycle/byte) + haltsim (3);
    //   sender: ldlp (1) + ldlp 65 (1 cycle/byte) + ldc + stopp
    //   (prefix 1 + operation 11).
    let ldc_cost = |v: i64| encode(Direct::LoadConstant, v).len() as u64;
    let receiver_setup = 2 + 1 + 1 + 1 + ldc_cost(i64::from(n)) + 3;
    let sender_setup =
        1 + encode(Direct::LoadLocalPointer, 65).len() as u64 + ldc_cost(i64::from(n));
    let stopp = 1 + 11;
    cpu.cycles() - receiver_setup - sender_setup - stopp
}

fn main() {
    table::heading(
        "E5",
        "internal channel communication cost",
        "§3.2.10: max(24, 21 + 8n/wordlength) cycles",
    );

    let mut all_ok = true;
    for (label, config, word) in [
        ("T424 (32-bit)", CpuConfig::t424(), WordLength::Bits32),
        ("T222 (16-bit)", CpuConfig::t222(), WordLength::Bits16),
    ] {
        println!("\n{label}:");
        table::header(&["message bytes", "formula cycles", "measured cycles"]);
        for n in [1u32, 2, 4, 8, 12, 16, 24, 32, 48, 64, 128] {
            let formula = u64::from(timing::comm_total_cycles(n, word));
            let measured = comm_cycles(config.clone(), n);
            table::row(cells![n, formula, measured]);
            all_ok &= formula == measured;
        }
    }
    println!();
    println!("crossover: the 24-cycle floor binds until 8n/wordlength > 3,");
    println!("i.e. beyond 12 bytes on a 32-bit part and 6 bytes on a 16-bit part.");
    table::verdict(
        all_ok,
        "measured communication cycles equal the paper's formula at every size",
    );
}
