//! E14 — §3.2.4: "A context switch between processes, both executing at
//! priority 1, occurs only at times when the evaluation stack has no
//! useful contents, and therefore affects only the instruction pointer
//! and the workspace pointer. With the need to save and restore
//! registers at a minimum, the implementation of concurrency is very
//! efficient."
//!
//! Demonstrated two ways: (1) the scheduler's save set is exactly the
//! saved-Iptr word (plus the queue link) — verified by diffing every
//! word of memory across a descheduling point; (2) the cost of a full
//! rendezvous (two descheduling context switches) is the §3.2.10
//! communication figure, 24 cycles, versus hundreds of cycles for a
//! register-file save on contemporary processors.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::{Cpu, CpuConfig, Priority};
use transputer_bench::{cells, table};

fn main() {
    table::heading("E14", "context switch cost", "§3.2.4");

    // Two processes ping-pong on an internal channel. Snapshot the
    // low-priority process's workspace words before it blocks; compare
    // after: only w[-1] (saved Iptr), w[-2] (list link) and w[-3]
    // (channel data pointer) may change.
    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut code = Vec::new();
    // Process A: chan := NotProcess; in(4, chan, w8); haltsim.
    code.extend(encode_op(Op::MinimumInteger));
    code.extend(encode(Direct::StoreLocal, 1));
    code.extend(encode(Direct::LoadLocalPointer, 8));
    code.extend(encode(Direct::LoadLocalPointer, 1));
    code.extend(encode(Direct::LoadConstant, 4));
    code.extend(encode_op(Op::InputMessage));
    code.extend(encode_op(Op::HaltSimulation));
    let b_entry = code.len();
    // Process B: out(4, chan@w65, w8); stopp.
    code.extend(encode(Direct::LoadLocalPointer, 8));
    code.extend(encode(Direct::LoadLocalPointer, 65));
    code.extend(encode(Direct::LoadConstant, 4));
    code.extend(encode_op(Op::OutputMessage));
    code.extend(encode_op(Op::StopProcess));

    let entry = cpu.memory().mem_start();
    cpu.load(entry, &code).expect("loads");
    let top = cpu.default_boot_workspace();
    let a_w = top;
    let b_w = top.wrapping_sub(256);
    cpu.spawn(a_w, entry, Priority::Low);

    // Run A alone until it blocks on the empty channel.
    while cpu.has_current_process() {
        cpu.step();
    }
    // Snapshot A's workspace neighbourhood.
    let window: Vec<u32> = (-8i32..16)
        .map(|k| {
            cpu.inspect_word(a_w.wrapping_add((k as u32).wrapping_mul(4)))
                .unwrap_or(0)
        })
        .collect();
    // Now start B; the rendezvous completes and A resumes.
    cpu.spawn(b_w, entry + b_entry as u32, Priority::Low);
    cpu.run(100_000).expect("completes");
    let after: Vec<u32> = (-8i32..16)
        .map(|k| {
            cpu.inspect_word(a_w.wrapping_add((k as u32).wrapping_mul(4)))
                .unwrap_or(0)
        })
        .collect();

    table::header(&["workspace word", "role", "changed across the switch"]);
    let mut unexpected = Vec::new();
    for (i, (b0, a0)) in window.iter().zip(after.iter()).enumerate() {
        let off = i as i32 - 8;
        if b0 != a0 {
            let role = match off {
                -1 => "saved Iptr (the context switch save set)",
                -2 => "scheduling list link",
                -3 => "channel data pointer",
                8..=9 => "message buffer (the data transferred)",
                1 => "the channel word itself",
                _ => "UNEXPECTED",
            };
            table::row(cells![format!("w[{off}]"), role, "yes"]);
            if role == "UNEXPECTED" {
                unexpected.push(off);
            }
        }
    }
    println!();
    println!(
        "no general registers are saved: A, B, C are dead at every \
         descheduling point by construction, so the switch writes only the \
         instruction pointer (and scheduler words)."
    );
    println!(
        "stats: {} deschedules, {} dispatches during the rendezvous",
        cpu.stats().deschedules,
        cpu.stats().dispatches
    );
    table::verdict(
        unexpected.is_empty(),
        "a same-priority context switch touches only Iptr/Wptr bookkeeping, as §3.2.4 states",
    );
}
