//! E15 — §3.3: word-length independence. "A program which manipulates
//! bytes, words and truth values can be translated into an instruction
//! sequence which behaves identically whatever the wordlength of the
//! processor executing it."
//!
//! The whole occam corpus is compiled once (word-independent code
//! generation) and the same binary is executed on the 32-bit T424 model
//! and the 16-bit T222 model; results must be identical.

use transputer::{Cpu, CpuConfig};
use transputer_bench::{cells, corpus, table};

fn run_binary(program: &occam::Program, config: CpuConfig) -> (i64, String) {
    let mut cpu = Cpu::new(config);
    let wptr = program.load(&mut cpu).expect("loads");
    match cpu.run(500_000_000).expect("runs") {
        transputer::RunOutcome::Halted(transputer::HaltReason::Stopped) => {}
        other => panic!("did not halt cleanly: {other:?}"),
    }
    (0, format!("{wptr:x}"))
}

fn main() {
    table::heading("E15", "word-length independence", "§3.3");

    table::header(&[
        "program",
        "result on T424 (32-bit)",
        "result on T222 (16-bit)",
        "identical",
    ]);
    let mut all_ok = true;
    for item in corpus::CORPUS {
        // One compilation, two executions: "a program can be executed
        // using processors of different word lengths without
        // recompilation" (§3.1).
        let program = occam::compile(item.source).expect("compiles");
        let results: Vec<i64> = [CpuConfig::t424(), CpuConfig::t222()]
            .into_iter()
            .map(|config| {
                let mut cpu = Cpu::new(config);
                let wptr = program.load(&mut cpu).expect("loads");
                match cpu.run(500_000_000).expect("runs") {
                    transputer::RunOutcome::Halted(transputer::HaltReason::Stopped) => {}
                    other => panic!("{}: did not halt cleanly: {other:?}", item.name),
                }
                let raw = program
                    .read_global(&mut cpu, wptr, item.check_global)
                    .expect("global");
                cpu.word_length().to_signed(raw)
            })
            .collect();
        // Programs whose intermediates overflow 16 bits legitimately
        // differ: the paper claims identical behaviour "apart from
        // overflow conditions resulting from word length dependencies"
        // (§3.3).
        let same = results[0] == results[1];
        let verdict = if item.word16_safe {
            if same {
                "yes"
            } else {
                "NO"
            }
        } else {
            "n/a — overflow-dependent (§3.3's stated exception)"
        };
        table::row(cells![item.name, results[0], results[1], verdict]);
        if item.word16_safe {
            all_ok &= same;
        }
        let _ = run_binary; // (helper reserved for extensions)
    }
    println!();
    println!(
        "the identical binary ran on both parts: single-byte instructions, \
         prefix-encoded operands and `ldc 1; bcnt` word-size computation make \
         the code word-length independent (§3.2.5, §3.2.7, §3.3)."
    );
    table::verdict(
        all_ok,
        "the same binaries behave identically on 16- and 32-bit parts",
    );
}
