//! E16 — the 256-transputer hypercube machine.
//!
//! "The system illustrated is ... one of many identical transputers,
//! each connected to its four nearest neighbours" (§4.2) — but four
//! links do not confine a system to a mesh. Joining sixteen 4×4 arrays
//! through their spare corner ports into a dimension-4 hypercube (the
//! RTNN-style 256-node machine) doubles the paper's two-board database
//! to 51,200 records while the longest request path grows only
//! modestly: hypercube hops replace long Manhattan walks. The same
//! per-node occam runs unchanged — only the spanning trees are planned
//! over the new wiring, which is §2.1's claim that system structure is
//! a wiring choice.

use transputer_apps::dbsearch::{DbSearch, HypercubeConfig};
use transputer_bench::hostperf::fault_plan_from_env;
use transputer_bench::{cells, table};

fn run_one(label: &str, mut config: HypercubeConfig) -> transputer_apps::DbSearchReport {
    if let Some(plan) = fault_plan_from_env() {
        println!(
            "\nfault injection: uniform rate {} (seed {}) on every link",
            plan.drop_rate, plan.seed
        );
        config.net.fault = Some(plan);
    }
    println!(
        "\n{label}: 2^{} clusters of {}×{} = {} transputers, {} records \
         ({} requests pipelined)",
        config.dim,
        config.side,
        config.side,
        config.node_count(),
        config.total_records(),
        config.requests
    );
    let longest = config.longest_path_links();
    let mut sim = DbSearch::build_hypercube(config).expect("builds");
    let report = sim.run(10_000_000_000_000).expect("runs");
    table::header(&["metric", "measured", "paper"]);
    table::row(cells!["answers correct", report.all_correct(), "—"]);
    table::row(cells![
        "longest path",
        format!("{} links", report.longest_path_links),
        "grows as log2 of cluster count"
    ]);
    assert_eq!(report.longest_path_links, longest);
    let prop_us = report.longest_path_links as f64 * 6.0;
    table::row(cells![
        "request propagation (path × 6 µs)",
        format!("~{prop_us:.0} µs"),
        "about 150 µs at 128 nodes"
    ]);
    table::row(cells![
        "first-answer latency",
        table::ms(report.first_answer_ns),
        "less than 1.3 ms at 25k records"
    ]);
    table::row(cells![
        "pipelined answer interval",
        table::ms(report.pipeline_interval_ns),
        "—"
    ]);
    table::row(cells![
        "throughput",
        format!("{:.0} searches/s", report.throughput_per_sec()),
        "not adversely affected by scale"
    ]);
    if report.degraded {
        table::row(cells![
            "degraded",
            format!(
                "{} of {} answers, {} node(s) excluded",
                report.received,
                report.expected.len(),
                report.excluded_nodes
            ),
            "—"
        ]);
    }
    report
}

fn main() {
    table::heading(
        "E16",
        "the 256-transputer hypercube",
        "§4.2 scaled past the mesh",
    );

    let cube = run_one("hypercube(4,4)", HypercubeConfig::hypercube256());

    // The flat 16x16 board of e10's scaling run holds the same 256
    // nodes with a longest path of 30 links; the hypercube's is shorter.
    println!();
    println!(
        "path contraction: 256 nodes flat = 30 links; hypercube(4,4) = {} links",
        cube.longest_path_links
    );
    table::verdict(
        cube.all_correct() && !cube.degraded && cube.longest_path_links < 30,
        "the 51,200-record hypercube search completes correctly with a shorter longest path than a flat board",
    );
}
