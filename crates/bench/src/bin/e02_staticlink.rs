//! E2 — §3.2.6 table 2: the non-local store through the static link,
//! `z := 1` inside a PROC where `z` is declared outside it:
//! "load constant 1 (1 byte, 1 cycle); load local staticlink (1, 2);
//! store non local z (1, 2)".

use transputer::CpuConfig;
use transputer_asm::disassemble;
use transputer_bench::{asm, cells, measure_sequence_with_setup, table};

fn main() {
    table::heading("E2", "non-local store via static link", "§3.2.6 table 2");
    table::header(&[
        "occam",
        "sequence",
        "bytes (paper)",
        "bytes",
        "cycles (paper)",
        "cycles",
    ]);

    // Setup (uncounted): the static link slot (local 2) points at an
    // outer workspace — here, eight words above our own.
    let setup = asm("load local pointer 8\nstore local 2");
    let seq = asm("load constant 1\nload local 2\nstore non local 3");
    let m = measure_sequence_with_setup(CpuConfig::t424(), &setup, &seq);
    table::row(cells![
        "z := 1",
        "ldc 1; ldl staticlink; stnl z",
        3,
        m.bytes,
        5,
        m.cycles
    ]);
    let counts_ok = m.bytes == 3 && m.cycles == 5;

    // The compiler emits exactly this shape for a free-variable store.
    let program = occam::compile(
        "VAR z:\n\
         PROC setz =\n\
         \x20 z := 1\n\
         :\n\
         SEQ\n\
         \x20 z := 0\n\
         \x20 setz ()",
    )
    .expect("compiles");
    let listing = disassemble(&program.code);
    let mut found = false;
    for w in listing.windows(3) {
        if w[0].to_string() == "ldc 1"
            && w[1].to_string().starts_with("ldl")
            && w[2].to_string().starts_with("stnl")
        {
            found = true;
            println!(
                "\ncompiler emits: {} ; {} ; {}  — the paper's sequence",
                w[0], w[1], w[2]
            );
        }
    }

    // And run it, proving the store lands.
    let mut cpu = transputer::Cpu::new(CpuConfig::t424());
    let wptr = program.load(&mut cpu).expect("loads");
    cpu.run(100_000).expect("runs");
    let z = program.read_global(&mut cpu, wptr, "z").expect("readable");
    println!("executed: z = {z}");

    table::verdict(
        counts_ok && found && z == 1,
        "static-link store matches §3.2.6 table 2 (3 bytes, 5 cycles) and the compiler emits it",
    );
}
