//! E7 — §2.3 / Figure 1 / §2.3.1: the link protocol and its bandwidth.
//!
//! "Each byte is transmitted as a start bit followed by a one bit
//! followed by the eight data bits followed by a stop bit" (11 bit
//! times); "an acknowledge ... consists of a start bit followed by a
//! zero bit" (2 bit times). "The standard transmission rate is 10MHz,
//! providing a maximum performance of about 1 Mbyte/sec in each
//! direction on each link"; four links give "a total of 8Mbytes per
//! second of communications bandwidth" (§3.1).

use transputer_bench::{cells, table};
use transputer_link::{AckPolicy, DuplexLink, End, LinkEvent, LinkSpeed, PacketKind};

/// Stream `n` bytes and return (last delivery time, total time) in ns.
fn stream(n: u64, policy: AckPolicy) -> u64 {
    let mut link = DuplexLink::new(LinkSpeed::standard());
    let mut now = 0u64;
    let mut sent = 1u64;
    let mut delivered = 0u64;
    link.send_data(End::A, 0x5A, now);
    loop {
        let evs = link.advance(now);
        if evs.is_empty() {
            match link.next_deadline() {
                Some(d) => {
                    now = d;
                    continue;
                }
                None => break,
            }
        }
        for ev in evs {
            match ev {
                LinkEvent::DataStarted { to: End::B } if policy == AckPolicy::Early => {
                    link.send_ack(End::B, now);
                }
                LinkEvent::DataDelivered { to: End::B, .. } => {
                    delivered += 1;
                    if policy == AckPolicy::AfterStop {
                        link.send_ack(End::B, now);
                    }
                }
                LinkEvent::AckDelivered { to: End::A, .. } if sent < n => {
                    link.send_data(End::A, 0x5A, now);
                    sent += 1;
                }
                _ => {}
            }
        }
        if delivered == n && link.is_quiescent() {
            break;
        }
    }
    now
}

fn main() {
    table::heading(
        "E7",
        "link protocol timing and bandwidth",
        "§2.3, Figure 1, §2.3.1",
    );

    println!("packet formats (Figure 1):");
    table::header(&["packet", "bits (paper)", "bits", "wire pattern"]);
    let data = PacketKind::Data(0xA5);
    let ack = PacketKind::Ack;
    let fmt = |bits: &[bool]| {
        bits.iter()
            .map(|b| if *b { '1' } else { '0' })
            .collect::<String>()
    };
    table::row(cells!["data", 11, data.bits(), fmt(&data.wire_bits())]);
    table::row(cells!["acknowledge", 2, ack.bits(), fmt(&ack.wire_bits())]);
    let ok_fmt = data.bits() == 11 && ack.bits() == 2;

    let n = 10_000u64;
    let t_early = stream(n, AckPolicy::Early);
    let t_late = stream(n, AckPolicy::AfterStop);
    let bw_early = n as f64 / (t_early as f64 / 1e9) / 1e6;
    let bw_late = n as f64 / (t_late as f64 / 1e9) / 1e6;

    println!("\nstreaming {n} bytes at 10 MHz:");
    table::header(&["acknowledge policy", "time", "bandwidth", "paper"]);
    table::row(cells![
        "early (as reception starts)",
        table::ms(t_early),
        format!("{bw_early:.3} MB/s"),
        "\"about 1 Mbyte/sec\", continuous"
    ]);
    table::row(cells![
        "after stop bit (ablation)",
        table::ms(t_late),
        format!("{bw_late:.3} MB/s"),
        "—"
    ]);
    println!();
    println!(
        "early acknowledge lets transmission run continuously: 11 bit-times/byte \
         = {:.3} MB/s; waiting for the stop bit costs 13 bit-times/byte.",
        LinkSpeed::standard().streaming_bandwidth_bytes_per_sec() / 1e6
    );
    println!(
        "a link is bidirectional ({:.2} MB/s both ways), and the T424 has four:",
        2.0 * bw_early
    );
    println!(
        "total communications bandwidth = 4 × 2 × {bw_early:.3} MB/s = {:.1} MB/s (paper: \"a total of 8Mbytes per second\")",
        8.0 * bw_early
    );

    let ok_bw = bw_early > 0.85 && bw_early < 1.0 && bw_late < bw_early;
    table::verdict(
        ok_fmt && ok_bw,
        "packet sizes match Figure 1; early-ack streaming reaches ~0.9 MB/s (\"about 1 Mbyte/sec\")",
    );
}
