//! E8 — §4.2: "It takes about 6 microseconds to send a 4 byte message
//! from one transputer to another."
//!
//! Two transputers, one wire: the sender outputs an n-byte message, the
//! receiver inputs it; the simulated time from start to both processes
//! proceeding is the end-to-end message latency, including instruction
//! and scheduling overhead on both ends.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::memory::{LINK_IN_BASE, LINK_OUT_BASE};
use transputer_bench::{cells, table};
use transputer_net::{NetworkBuilder, NetworkConfig};

fn message_latency_ns(n: u32) -> u64 {
    let mut b = NetworkBuilder::new(NetworkConfig::default());
    let tx = b.add_node();
    let rx = b.add_node();
    b.connect((tx, 0), (rx, 0));
    let mut net = b.build();

    let mut sender = Vec::new();
    sender.extend(encode(Direct::LoadLocalPointer, 1));
    sender.extend(encode_op(Op::MinimumInteger));
    sender.extend(encode(Direct::LoadNonLocalPointer, LINK_OUT_BASE as i64));
    sender.extend(encode(Direct::LoadConstant, i64::from(n)));
    sender.extend(encode_op(Op::OutputMessage));
    sender.extend(encode_op(Op::HaltSimulation));

    let mut receiver = Vec::new();
    receiver.extend(encode(Direct::LoadLocalPointer, 1));
    receiver.extend(encode_op(Op::MinimumInteger));
    receiver.extend(encode(Direct::LoadNonLocalPointer, LINK_IN_BASE as i64));
    receiver.extend(encode(Direct::LoadConstant, i64::from(n)));
    receiver.extend(encode_op(Op::InputMessage));
    receiver.extend(encode_op(Op::HaltSimulation));

    net.node_mut(tx).load_boot_program(&sender).expect("loads");
    net.node_mut(rx)
        .load_boot_program(&receiver)
        .expect("loads");
    net.run_until_all_halted(1_000_000_000).expect("completes");
    net.time_ns()
}

fn main() {
    table::heading(
        "E8",
        "inter-transputer message latency",
        "§4.2: ~6 µs for a 4-byte message",
    );

    table::header(&["message bytes", "latency", "per-byte wire time", "note"]);
    let mut four_byte_us = 0.0;
    for n in [1u32, 2, 4, 8, 16, 32, 64] {
        let t = message_latency_ns(n);
        let note = if n == 4 {
            four_byte_us = t as f64 / 1000.0;
            "paper: about 6 µs"
        } else {
            ""
        };
        table::row(cells![
            n,
            table::us(t),
            format!("{} ns", u64::from(n) * 1100),
            note
        ]);
    }
    println!();
    println!(
        "a data byte occupies 11 bit-times = 1.1 µs at 10 MHz; the 4-byte \
         message costs 4.4 µs of wire time plus instruction, scheduling and \
         acknowledge overhead at both ends."
    );
    table::verdict(
        (4.0..8.0).contains(&four_byte_us),
        "the 4-byte message lands in the paper's ~6 µs band",
    );
}
