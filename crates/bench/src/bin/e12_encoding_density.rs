//! E12 — §3.2.3: "The evaluation stack removes the need for instructions
//! to specify registers explicitly. Consequently, most of the executed
//! operations (typically 80%) are encoded in a single byte."
//!
//! Runs the occam workload corpus and histograms the *dynamic* encoded
//! length of every executed operation (prefix chains folded into the
//! operation they extend).

use transputer::CpuConfig;
use transputer_bench::{cells, corpus, run_occam, table};

fn main() {
    table::heading(
        "E12",
        "dynamic instruction encoding density",
        "§3.2.3: \"typically 80%\" single byte",
    );

    table::header(&[
        "program",
        "operations",
        "1 byte",
        "2 bytes",
        "3+ bytes",
        "single-byte %",
    ]);
    let mut total_ops = 0u64;
    let mut total_hist = [0u64; 9];
    for item in corpus::CORPUS {
        let (_, cpu, _) = run_occam(item.source, CpuConfig::t424());
        let s = cpu.stats();
        let h = s.length_histogram;
        let three_plus: u64 = h[3..].iter().sum();
        table::row(cells![
            item.name,
            s.operations,
            h[1],
            h[2],
            three_plus,
            format!("{:.1}%", 100.0 * s.single_byte_fraction())
        ]);
        total_ops += s.operations;
        for (t, v) in total_hist.iter_mut().zip(h.iter()) {
            *t += v;
        }
    }
    let single = total_hist[1] as f64 / total_ops as f64;
    let three_plus: u64 = total_hist[3..].iter().sum();
    table::row(cells![
        "ALL",
        total_ops,
        total_hist[1],
        total_hist[2],
        three_plus,
        format!("{:.1}%", 100.0 * single)
    ]);

    // Which operations dominate — the paper chose the direct functions
    // to be "the most important functions performed by any computer"
    // (§3.2.6); the dynamic profile should be dominated by them.
    let mut freq: Vec<(String, u64)> = Vec::new();
    {
        let mut direct_totals = [0u64; 16];
        let mut op_totals = vec![0u64; 0x60];
        for item in corpus::CORPUS {
            let (_, cpu, _) = run_occam(item.source, CpuConfig::t424());
            for (i, c) in cpu.stats().direct_counts.iter().enumerate() {
                direct_totals[i] += c;
            }
            for (i, c) in cpu.stats().op_counts.iter().enumerate() {
                op_totals[i] += c;
            }
        }
        for d in transputer::instr::Direct::ALL {
            if d != transputer::instr::Direct::Operate {
                freq.push((
                    d.full_name().to_string(),
                    direct_totals[d.nibble() as usize],
                ));
            }
        }
        for op in transputer::instr::Op::ALL {
            let code = op.code() as usize;
            if code < op_totals.len() && op_totals[code] > 0 {
                freq.push((op.full_name().to_string(), op_totals[code]));
            }
        }
    }
    freq.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\nmost executed operations:");
    table::header(&["operation", "executions", "share"]);
    for (name, n) in freq.iter().take(10) {
        table::row(cells![
            name,
            n,
            format!("{:.1}%", 100.0 * *n as f64 / total_ops as f64)
        ]);
    }
    println!();
    println!(
        "corpus-wide, {:.1}% of executed operations are a single byte (paper: \"typically 80%\").",
        100.0 * single
    );
    table::verdict(
        (0.70..=0.95).contains(&single),
        "single-byte fraction lands in the paper's \"typically 80%\" band",
    );
}
