//! E3 — Figure 5 / §3.2.7: the operand register during prefixing.
//! "The following example shows the instruction sequence for loading the
//! hexadecimal constant #754 into the A register, and gives the contents
//! of the O register and the A register after executing each
//! instruction."

use transputer::instr::{encode, Direct};
use transputer::{Cpu, CpuConfig, StepEvent};
use transputer_bench::{cells, table};

fn main() {
    table::heading(
        "E3",
        "operand register trace while loading #754",
        "§3.2.7 Figure 5",
    );

    let code = encode(Direct::LoadConstant, 0x754);
    assert_eq!(code, vec![0x27, 0x25, 0x44], "pfix 7; pfix 5; ldc 4");

    let mut cpu = Cpu::new(CpuConfig::t424());
    let mut full = code.clone();
    full.extend(transputer::instr::encode_op(
        transputer::instr::Op::HaltSimulation,
    ));
    cpu.load_boot_program(&full).expect("loads");

    table::header(&[
        "instruction",
        "O register (paper)",
        "O register",
        "A register (paper)",
        "A register",
    ]);
    let names = ["prefix #7", "prefix #5", "load constant #4"];
    let paper_o = ["#7 << 4 pending", "#75 << 4 pending", "0"];
    let paper_a = ["?", "?", "#754"];
    // The paper prints the O register *after* loading the data bits but
    // conceptually the shifted value is what carries; we show the live
    // register, which holds the shifted accumulation.
    let mut ok = true;
    for i in 0..3 {
        match cpu.step() {
            StepEvent::Ran { .. } => {}
            other => panic!("trace step failed: {other:?}"),
        }
        let o = cpu.oreg();
        let a = cpu.areg();
        table::row(cells![
            names[i],
            paper_o[i],
            format!("#{o:X}"),
            paper_a[i],
            format!("#{a:X}")
        ]);
        match i {
            0 => ok &= o == 0x70,
            1 => ok &= o == 0x750,
            _ => ok &= o == 0 && a == 0x754,
        }
    }
    println!();
    println!(
        "each prefix: 1 byte, 1 cycle (§3.2.7); total sequence 3 bytes, {} cycles",
        cpu.cycles()
    );
    table::verdict(
        ok && cpu.cycles() == 3,
        "operand register builds #754 exactly as Figure 5 shows, then clears",
    );
}
