//! E13 — §3.2.1: "Many of the instructions execute in a single cycle,
//! and typical sequences of commonly used instructions can deliver a
//! 15 MIPS execution rate" (at the expected 20 MHz internal clock).
//!
//! Measures instructions per cycle over the occam corpus; MIPS at 20 MHz
//! = instructions × 20e6 / cycles.

use transputer::CpuConfig;
use transputer_bench::hostperf::cpu_corpus_bench;
use transputer_bench::{asm, cells, corpus, measure_sequence, run_occam, table};

fn main() {
    table::heading(
        "E13",
        "execution rate",
        "§3.2.1: \"a 15 MIPS execution rate\" at 20 MHz",
    );

    // "Typical sequences of commonly used instructions": the
    // load/modify/store pattern of sequential code. ldl (2 cycles) +
    // adc (1) + stl (1) = 3 instructions in 4 cycles = exactly 15 MIPS
    // at 20 MHz.
    let mut typical = String::new();
    for _ in 0..100 {
        typical.push_str("ldl 1\nadc 1\nstl 1\n");
    }
    let m = measure_sequence(CpuConfig::t424(), &asm(&typical));
    let typical_mips = 300.0 * 20.0 / m.cycles as f64;
    println!(
        "typical sequence (ldl; adc; stl ×100): {} instructions in {} cycles = {:.1} MIPS at 20 MHz\n",
        300, m.cycles, typical_mips
    );

    table::header(&[
        "program",
        "instructions",
        "cycles",
        "cycles/instr",
        "MIPS @ 20 MHz",
    ]);
    let mut ti = 0u64;
    let mut tc = 0u64;
    for item in corpus::CORPUS {
        let (_, cpu, _) = run_occam(item.source, CpuConfig::t424());
        let s = cpu.stats();
        let cycles = cpu.cycles();
        table::row(cells![
            item.name,
            s.instructions,
            cycles,
            format!("{:.2}", s.cycles_per_instruction(cycles)),
            format!("{:.1}", s.mips(cycles, 20.0))
        ]);
        ti += s.instructions;
        tc += cycles;
    }
    let mips = ti as f64 * 20.0 / tc as f64;
    table::row(cells![
        "ALL",
        ti,
        tc,
        format!("{:.2}", tc as f64 / ti as f64),
        format!("{mips:.1}")
    ]);
    println!();
    println!(
        "the paper's \"typical sequences of commonly used instructions\" — \
         load/modify/store — deliver {typical_mips:.1} MIPS; whole programs \
         average {mips:.1} MIPS, pulled below the mark by 38-cycle multiplies \
         and above it by single-cycle constant/jump code."
    );

    // Host-side throughput: how fast this emulator executes the same
    // corpus under each execution tier — plain byte decode, the
    // predecoded instruction cache, and the threaded-code translation
    // tier on top of it. The simulated numbers above are invariant;
    // only wall clock moves.
    println!();
    let trans = cpu_corpus_bench(true, true, 20);
    let on = cpu_corpus_bench(true, false, 20);
    let off = cpu_corpus_bench(false, false, 20);
    assert_eq!(
        on.fingerprint, off.fingerprint,
        "decode cache changed a simulated outcome"
    );
    assert_eq!(
        trans.fingerprint, off.fingerprint,
        "translation tier changed a simulated outcome"
    );
    println!(
        "host throughput over the corpus: decode cache off {:.1} emulated MIPS, \
         on {:.1} emulated MIPS ({:.2}x); cache {} hits / {} misses / \
         {} invalidations / {} bypassed ops ({:.1}% hit rate)",
        off.emulated_mips(),
        on.emulated_mips(),
        on.emulated_mips() / off.emulated_mips(),
        on.decode.0,
        on.decode.1,
        on.decode.2,
        on.decode.3,
        on.hit_rate() * 100.0,
    );
    println!(
        "translated tier: {:.1} emulated MIPS ({:.2}x over the decode cache); \
         {} blocks / {} enters / {} deopts / {} invalidations",
        trans.emulated_mips(),
        trans.emulated_mips() / on.emulated_mips(),
        trans.trans.0,
        trans.trans.1,
        trans.trans.2,
        trans.trans.3,
    );

    table::verdict(
        (14.5..=15.5).contains(&typical_mips) && (6.0..=20.0).contains(&mips),
        "typical load/modify/store sequences deliver the paper's 15 MIPS at 20 MHz",
    );
}
