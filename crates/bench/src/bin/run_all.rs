//! Run every experiment binary in order, producing the complete
//! paper-vs-measured report (the source of EXPERIMENTS.md), then the
//! `hostperf --smoke` outcome gate.
//!
//! Usage: `cargo run --release -p transputer-bench --bin run_all`

use std::process::Command;

use transputer_bench::hostperf::EXPERIMENTS;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let path = dir.join(name);
        let out = Command::new(&path)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        print!("{}", String::from_utf8_lossy(&out.stdout));
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        if !out.status.success() || text.contains("FAIL:") {
            failures.push(*name);
        }
    }
    // The host-performance smoke gate: all engines must produce
    // bit-identical simulated outcomes (wall time is informational).
    // Its JSON goes next to the binaries so the full `hostperf` run's
    // committed BENCH_host.json is not clobbered.
    let smoke = Command::new(dir.join("hostperf"))
        .arg("--smoke")
        .env("BENCH_HOST_OUT", dir.join("BENCH_host_smoke.json"))
        .output()
        .expect("failed to launch hostperf");
    print!("{}", String::from_utf8_lossy(&smoke.stdout));
    if !smoke.status.success() {
        failures.push("hostperf_smoke");
    }
    println!("\n---\n");
    if failures.is_empty() {
        println!("all {} experiments PASS", EXPERIMENTS.len());
    } else {
        println!("FAILING experiments: {failures:?}");
        std::process::exit(1);
    }
}
