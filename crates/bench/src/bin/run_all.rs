//! Run every experiment binary in order, producing the complete
//! paper-vs-measured report (the source of EXPERIMENTS.md), then the
//! corpus lint gate and the `hostperf --smoke` outcome gate.
//!
//! Usage: `cargo run --release -p transputer-bench --bin run_all`
//!
//! Exits non-zero if any experiment exits non-zero (including panics,
//! which surface as a non-success status with their message echoed
//! from stderr), prints a `FAIL:` marker, or fails a gate; each
//! failure is reported with its cause.

use std::path::Path;
use std::process::Command;

use transputer_bench::hostperf::EXPERIMENTS;

/// Run one binary, echoing its stdout (and stderr, so panic messages
/// are not swallowed), and describe the failure if it failed.
fn run_gate(path: &Path, name: &str, args: &[&str], envs: &[(&str, &str)]) -> Option<String> {
    let mut cmd = Command::new(path);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = match cmd.output() {
        Ok(out) => out,
        Err(e) => return Some(format!("{name}: failed to launch: {e}")),
    };
    print!("{}", String::from_utf8_lossy(&out.stdout));
    eprint!("{}", String::from_utf8_lossy(&out.stderr));
    if !out.status.success() {
        let cause = match out.status.code() {
            // 101 is the Rust panic exit status.
            Some(101) => "panicked (exit status 101)".to_string(),
            Some(code) => format!("exit status {code}"),
            None => "killed by a signal".to_string(),
        };
        return Some(format!("{name}: {cause}"));
    }
    if String::from_utf8_lossy(&out.stdout).contains("FAIL:") {
        return Some(format!("{name}: FAIL marker in output"));
    }
    None
}

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        if let Some(failure) = run_gate(&dir.join(name), name, &[], &[]) {
            failures.push(failure);
        }
    }
    // The lint gate: the occam corpus must pass the txlint checks.
    if let Some(failure) = run_gate(&dir.join("lint_corpus"), "lint_corpus", &[], &[]) {
        failures.push(failure);
    }
    // The host-performance smoke gate: all engines must produce
    // bit-identical simulated outcomes (wall time is informational),
    // clean and under injected link faults. Its JSON goes next to the
    // binaries so the full `hostperf` run's committed BENCH_host.json
    // is not clobbered.
    let smoke_out = dir.join("BENCH_host_smoke.json");
    if let Some(failure) = run_gate(
        &dir.join("hostperf"),
        "hostperf_smoke",
        &["--smoke"],
        &[("BENCH_HOST_OUT", smoke_out.to_str().expect("utf-8 path"))],
    ) {
        failures.push(failure);
    }
    println!("\n---\n");
    if failures.is_empty() {
        println!("all {} experiments PASS", EXPERIMENTS.len());
    } else {
        println!("FAILING experiments:");
        for f in &failures {
            println!("  {f}");
        }
        std::process::exit(1);
    }
}
