//! Run every experiment binary in order, producing the complete
//! paper-vs-measured report (the source of EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p transputer-bench --bin run_all`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "e01_assignment",
    "e02_staticlink",
    "e03_prefix",
    "e04_expressions",
    "e05_comm_cost",
    "e06_priority_latency",
    "e07_link_protocol",
    "e08_message_latency",
    "e09_dbsearch16",
    "e10_board128",
    "e11_workstation",
    "e12_encoding_density",
    "e13_mips",
    "e14_context_switch",
    "e15_wordlength",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let path = dir.join(name);
        let out = Command::new(&path)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        print!("{}", String::from_utf8_lossy(&out.stdout));
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        if !out.status.success() || text.contains("FAIL:") {
            failures.push(*name);
        }
    }
    println!("\n---\n");
    if failures.is_empty() {
        println!("all {} experiments PASS", EXPERIMENTS.len());
    } else {
        println!("FAILING experiments: {failures:?}");
        std::process::exit(1);
    }
}
