//! E9 — Figure 8: "16 transputers are connected into a square array with
//! search requests input at one corner ... and answers being output from
//! the other corner. Each transputer keeps a small part of the database
//! in its local memory."
//!
//! Runs the full stack: per-node occam programs compiled to I1 code,
//! executed on 16 emulated T424s (plus host injector/collector nodes)
//! wired with bit-level links; 200 records per node, pipelined requests.

use transputer_apps::{DbSearch, DbSearchConfig};
use transputer_bench::hostperf::fault_plan_from_env;
use transputer_bench::{cells, table};

fn main() {
    table::heading(
        "E9",
        "concurrent database search, 4×4 array",
        "Figure 8, §4.2",
    );

    let mut config = DbSearchConfig::figure8();
    if let Some(plan) = fault_plan_from_env() {
        println!(
            "fault injection: uniform rate {} (seed {}) on every link\n",
            plan.drop_rate, plan.seed
        );
        config.net.fault = Some(plan);
    }
    println!(
        "{} transputers, {} records each ({} total), {} pipelined requests\n",
        config.width * config.height,
        config.records_per_node,
        config.total_records(),
        config.requests
    );
    let mut sim = DbSearch::build(config).expect("builds");
    let report = sim.run(1_000_000_000_000).expect("runs");

    table::header(&["metric", "measured", "paper"]);
    table::row(cells![
        "answers correct",
        format!("{:?} = {:?}", report.answers, report.expected),
        "—"
    ]);
    table::row(cells![
        "longest request path",
        format!("{} links", report.longest_path_links),
        "path-proportional propagation"
    ]);
    table::row(cells![
        "first-answer latency",
        table::ms(report.first_answer_ns),
        "\"less than a millisecond\" per node search"
    ]);
    table::row(cells![
        "pipelined answer interval",
        table::ms(report.pipeline_interval_ns),
        "\"requests can be pipelined\""
    ]);
    table::row(cells![
        "throughput",
        format!("{:.0} searches/s", report.throughput_per_sec()),
        "—"
    ]);
    table::row(cells![
        "total instructions (array)",
        report.total_instructions,
        "—"
    ]);
    if report.degraded {
        table::row(cells![
            "degraded",
            format!(
                "{} of {} answers, {} node(s) excluded",
                report.received,
                report.expected.len(),
                report.excluded_nodes
            ),
            "—"
        ]);
    }

    let per_node_search_ms = report.pipeline_interval_ns as f64 / 1e6;
    println!();
    println!(
        "the local search of 200 records dominates each stage at ~{per_node_search_ms:.2} ms \
         (paper: \"for each transputer to search its own records ... will take less \
         than a millisecond\")"
    );
    table::verdict(
        report.all_correct()
            && report.pipeline_interval_ns < report.first_answer_ns
            && per_node_search_ms < 1.0,
        "answers correct; per-stage search below 1 ms; pipelining beats single-request latency",
    );
}
