//! # transputer-bench
//!
//! The experiment harness: one binary per table/figure of the ISCA 1985
//! paper (see DESIGN.md's experiment index), plus Criterion
//! micro-benchmarks and ablations. Shared here: exact sequence
//! measurement, the occam workload corpus, and table printing.

use transputer::{Cpu, CpuConfig, StepEvent};

pub mod corpus;
pub mod expimages;
pub mod hostperf;
pub mod table;

/// Measure an exact instruction sequence: load `code` at the first user
/// address, run a single process over it, and count the cycles consumed
/// before the instruction pointer passes the end of the sequence.
///
/// # Panics
///
/// Panics if the program halts or idles before completing the sequence —
/// sequences measured this way must be straight-line.
pub fn measure_sequence(config: CpuConfig, code: &[u8]) -> SequenceMeasure {
    measure_sequence_with_setup(config, &[], code)
}

/// As [`measure_sequence`], with uncounted setup instructions executed
/// first (initialising workspace words the sequence depends on).
///
/// # Panics
///
/// Panics if setup or sequence halt or idle before completing.
pub fn measure_sequence_with_setup(
    config: CpuConfig,
    setup: &[u8],
    code: &[u8],
) -> SequenceMeasure {
    let mut full = setup.to_vec();
    full.extend_from_slice(code);
    // Terminator so the run is bounded even if stepped past.
    full.extend(transputer::instr::encode_op(
        transputer::instr::Op::HaltSimulation,
    ));
    let mut cpu = Cpu::new(config);
    cpu.load_boot_program(&full)
        .expect("sequence fits in memory");
    let entry = cpu.memory().mem_start();
    let start = entry + setup.len() as u32;
    let end = start + code.len() as u32;
    while cpu.iptr() < start {
        match cpu.step() {
            StepEvent::Ran { .. } => {}
            other => panic!("setup did not run to completion: {other:?}"),
        }
    }
    let mut cycles = 0u64;
    while cpu.iptr() < end {
        match cpu.step() {
            StepEvent::Ran { cycles: c } => cycles += u64::from(c),
            other => panic!("sequence did not run to completion: {other:?}"),
        }
    }
    SequenceMeasure {
        bytes: code.len(),
        cycles,
        areg: cpu.areg(),
    }
}

/// Result of [`measure_sequence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceMeasure {
    /// Code bytes in the sequence.
    pub bytes: usize,
    /// Processor cycles consumed.
    pub cycles: u64,
    /// Final A register (sanity checks).
    pub areg: u32,
}

/// Assemble with the `transputer-asm` crate, panicking on error (bench
/// sources are fixed strings).
///
/// # Panics
///
/// Panics on assembly errors.
pub fn asm(source: &str) -> Vec<u8> {
    transputer_asm::assemble(source).expect("bench assembly source is valid")
}

/// Compile occam, run to a clean halt on the given part, and return the
/// CPU for inspection.
///
/// # Panics
///
/// Panics if the program does not compile, load and halt cleanly.
pub fn run_occam(source: &str, config: CpuConfig) -> (occam::Program, Cpu, u32) {
    let program = occam::compile(source).expect("corpus program compiles");
    let mut cpu = Cpu::new(config);
    let wptr = program.load(&mut cpu).expect("corpus program loads");
    match cpu.run(500_000_000).expect("corpus program within budget") {
        transputer::RunOutcome::Halted(transputer::HaltReason::Stopped) => {}
        other => panic!("corpus program did not halt cleanly: {other:?}"),
    }
    (program, cpu, wptr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_paper_assignment() {
        // x := 0 → ldc 0; stl 1: 2 bytes, 2 cycles (§3.2.6).
        let m = measure_sequence(CpuConfig::t424(), &asm("ldc 0\nstl 1"));
        assert_eq!(m.bytes, 2);
        assert_eq!(m.cycles, 2);
    }

    #[test]
    fn measure_counts_expression() {
        // x + 2 → ldl x; adc 2: 2 bytes, 3 cycles (§3.2.9).
        let m = measure_sequence(CpuConfig::t424(), &asm("ldl 1\nadc 2"));
        assert_eq!(m.bytes, 2);
        assert_eq!(m.cycles, 3);
    }

    #[test]
    fn corpus_runs_everywhere() {
        for item in corpus::CORPUS {
            let (p, mut cpu, wptr) = run_occam(item.source, CpuConfig::t424());
            let got = p.read_global(&mut cpu, wptr, item.check_global).unwrap();
            assert_eq!(
                cpu.word_length().to_signed(got),
                item.expected,
                "corpus `{}`",
                item.name
            );
        }
    }
}
