//! Host-side performance measurement of the simulator itself.
//!
//! Everything else in this crate measures *simulated* quantities —
//! cycle counts, link utilisation, paper tables. This module measures
//! the *host*: how fast the emulator executes, and what the
//! lookahead-batched engines buy over the per-instruction event engine.
//! Results are written to `BENCH_host.json`.
//!
//! Wall-clock numbers vary between machines; outcome fingerprints must
//! not. The smoke mode (`hostperf --smoke`) therefore gates only on
//! panics and regressed simulated outcomes, never on wall time.

use std::time::Instant;

use transputer::{Cpu, CpuConfig, HaltReason, RunOutcome};
use transputer_apps::dbsearch::{DbSearch, DbSearchConfig, HypercubeConfig};
use transputer_link::FaultPlan;
use transputer_net::{Engine, RouterConfig, Switching};

use crate::corpus;

/// Every experiment binary, in report order (shared with `run_all`).
pub const EXPERIMENTS: &[&str] = &[
    "e01_assignment",
    "e02_staticlink",
    "e03_prefix",
    "e04_expressions",
    "e05_comm_cost",
    "e06_priority_latency",
    "e07_link_protocol",
    "e08_message_latency",
    "e09_dbsearch16",
    "e10_board128",
    "e11_workstation",
    "e12_encoding_density",
    "e13_mips",
    "e14_context_switch",
    "e15_wordlength",
    "e16_hypercube256",
    "e17_routed",
];

/// One timed network simulation.
#[derive(Debug, Clone)]
pub struct NetRun {
    /// Which benchmark network ran.
    pub bench: &'static str,
    /// Engine used.
    pub engine: Engine,
    /// Host wall-clock time, milliseconds.
    pub wall_ms: f64,
    /// Simulated nanoseconds elapsed.
    pub sim_ns: u64,
    /// Processor cycles summed over all nodes.
    pub cycles: u64,
    /// Instructions executed summed over all nodes.
    pub instructions: u64,
    /// Whether every search answer matched the reference.
    pub answers_ok: bool,
    /// FNV-1a hash over answers, answer times, per-node halt cycles and
    /// instruction counters, and per-wire delivered-byte counters. Equal
    /// fingerprints mean bit-identical simulated outcomes.
    pub fingerprint: u64,
    /// Aggregate decode-cache counters over all nodes:
    /// `(hits, misses, invalidations, bypasses)`. Host-side only,
    /// excluded from the fingerprint.
    pub decode: (u64, u64, u64, u64),
    /// Aggregate translation-tier counters over all nodes:
    /// `(blocks, enters, deopts, invalidations)`. Host-side only,
    /// excluded from the fingerprint.
    pub trans: (u64, u64, u64, u64),
    /// Worker count the parallel engine would use on this network
    /// (recorded for every engine so Parallel rows are interpretable
    /// across machines). Host-side only, excluded from the fingerprint.
    pub par_workers: usize,
    /// Logical cores of the host that produced this row. Host-side
    /// only, excluded from the fingerprint.
    pub host_cores: usize,
    /// Aggregate virtual-channel router counters, `None` on unrouted
    /// networks. Excluded from the fingerprint: trailing queue-pop acks
    /// race the all-halted detection, whose time is engine-dependent,
    /// so the hop counters may legitimately differ by a packet between
    /// engines (the wire delivered-byte counters, which *are*
    /// fingerprinted, do not).
    pub router: Option<transputer_net::RouterStats>,
    /// Whether wormhole cut-through was active when the run ended,
    /// `None` on unrouted networks. `Some(false)` on a run configured
    /// for wormhole means the router proved the topology's
    /// channel-dependency graph cyclic and degraded to
    /// store-and-forward (the cluster hypercube's e-cube tables do
    /// this). Host-side only, excluded from the fingerprint.
    pub cut_through: Option<bool>,
}

impl NetRun {
    /// Simulated processor cycles executed per host second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / (self.wall_ms / 1e3)
    }

    /// Emulated millions of instructions per host second.
    pub fn emulated_mips(&self) -> f64 {
        self.instructions as f64 / (self.wall_ms / 1e3) / 1e6
    }
}

fn fnv1a(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// Logical cores of this host (1 when the count is unavailable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Build and run one grid search network, timing the run and
/// fingerprinting every engine-visible outcome.
///
/// # Panics
///
/// Panics if the network fails to build or faults while running — a
/// panic here is exactly what the smoke gate exists to catch.
pub fn run_network(bench: &'static str, config: DbSearchConfig, engine: Engine) -> NetRun {
    let config = DbSearchConfig {
        net: transputer_net::NetworkConfig {
            engine,
            ..config.net.clone()
        },
        ..config
    };
    measure(
        bench,
        engine,
        DbSearch::build(config).expect("benchmark network builds"),
    )
}

/// [`run_network`] for a hypercube-of-clusters machine (e16).
///
/// # Panics
///
/// Panics if the network fails to build or faults while running.
pub fn run_hypercube(bench: &'static str, config: HypercubeConfig, engine: Engine) -> NetRun {
    let config = HypercubeConfig {
        net: transputer_net::NetworkConfig {
            engine,
            ..config.net.clone()
        },
        ..config
    };
    measure(
        bench,
        engine,
        DbSearch::build_hypercube(config).expect("benchmark network builds"),
    )
}

/// [`run_network`] over the virtual-channel router instead of the
/// planned spanning tree: same grid, same workload, but every message
/// is packetized and hops through per-node routing tables.
///
/// # Panics
///
/// Panics if the network fails to build or faults while running.
pub fn run_routed(bench: &'static str, config: DbSearchConfig, engine: Engine) -> NetRun {
    let config = DbSearchConfig {
        net: transputer_net::NetworkConfig {
            engine,
            ..config.net.clone()
        },
        ..config
    };
    measure(
        bench,
        engine,
        DbSearch::build_routed(config).expect("benchmark network builds"),
    )
}

/// [`run_hypercube`] over the virtual-channel router.
///
/// # Panics
///
/// Panics if the network fails to build or faults while running.
pub fn run_routed_hypercube(
    bench: &'static str,
    config: HypercubeConfig,
    engine: Engine,
) -> NetRun {
    let config = HypercubeConfig {
        net: transputer_net::NetworkConfig {
            engine,
            ..config.net.clone()
        },
        ..config
    };
    measure(
        bench,
        engine,
        DbSearch::build_routed_hypercube(config).expect("benchmark network builds"),
    )
}

fn measure(bench: &'static str, engine: Engine, mut sim: DbSearch) -> NetRun {
    let start = Instant::now();
    let report = sim
        .run(100_000_000_000_000)
        .expect("benchmark network runs");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let net = sim.network();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &a in &report.answers {
        fnv1a(&mut hash, u64::from(a));
    }
    for &t in &report.answer_times_ns {
        fnv1a(&mut hash, t);
    }
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    for id in 0..net.len() {
        let node = net.node(id);
        cycles += node.cycles();
        instructions += node.stats().instructions;
        fnv1a(&mut hash, node.cycles());
        fnv1a(&mut hash, node.stats().instructions);
    }
    for w in 0..net.wire_count() {
        let (a, b) = net.wire_delivered(w);
        fnv1a(&mut hash, a);
        fnv1a(&mut hash, b);
    }
    NetRun {
        bench,
        engine,
        wall_ms,
        sim_ns: report.total_ns,
        cycles,
        instructions,
        answers_ok: report.all_correct(),
        fingerprint: hash,
        decode: net.decode_stats(),
        trans: net.trans_stats(),
        par_workers: net.par_workers(),
        host_cores: host_cores(),
        router: net.router_stats(),
        cut_through: net.router_cut_through(),
    }
}

/// One timed run of the occam corpus on a standalone processor: the
/// pure-CPU emulation throughput the decode cache targets, without any
/// network scheduling in the way (the e13 "emulated MIPS" measurement).
#[derive(Debug, Clone)]
pub struct CpuRun {
    /// Whether the predecoded instruction cache was enabled.
    pub decode_cache: bool,
    /// Whether the threaded-code translation tier was enabled.
    pub translate: bool,
    /// Host wall-clock time over all programs and repeats, milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles summed over all runs.
    pub cycles: u64,
    /// Instruction bytes executed summed over all runs.
    pub instructions: u64,
    /// Decode-cache counters summed over all runs:
    /// `(hits, misses, invalidations, bypasses)`.
    pub decode: (u64, u64, u64, u64),
    /// Translation-tier counters summed over all runs:
    /// `(blocks, enters, deopts, invalidations)`.
    pub trans: (u64, u64, u64, u64),
    /// FNV-1a hash over each program's result word, halt cycle count and
    /// instruction count. Every tier combination must produce equal
    /// fingerprints.
    pub fingerprint: u64,
}

impl CpuRun {
    /// Emulated millions of instructions per host second.
    pub fn emulated_mips(&self) -> f64 {
        self.instructions as f64 / (self.wall_ms / 1e3) / 1e6
    }

    /// Cache hit rate over all lookups (hits + misses), in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.decode.0 + self.decode.1;
        if lookups == 0 {
            return 0.0;
        }
        self.decode.0 as f64 / lookups as f64
    }
}

/// Run every corpus program `repeats` times on a fresh T424 through the
/// batched engine, timing the whole sweep. Compilation happens outside
/// the timed region; execution, including boot-program loading, is
/// timed.
///
/// # Panics
///
/// Panics if a corpus program fails to compile, halt cleanly, or
/// produce its expected answer — wrong results must never become a
/// performance number.
pub fn cpu_corpus_bench(decode_cache: bool, translate: bool, repeats: u32) -> CpuRun {
    let programs: Vec<(&corpus::CorpusItem, occam::Program)> = corpus::CORPUS
        .iter()
        .map(|item| {
            (
                item,
                occam::compile(item.source).expect("corpus program compiles"),
            )
        })
        .collect();
    let config = CpuConfig::t424()
        .with_decode_cache(decode_cache)
        .with_translate(translate);
    // One untimed warm-up sweep: the first execution pays one-off host
    // costs (page faults, frequency ramp-up, cold caches) that are not
    // emulation throughput and would otherwise swamp short runs.
    for (_, program) in &programs {
        let mut cpu = Cpu::new(config.clone());
        program.load(&mut cpu).expect("corpus program loads");
        cpu.run_batched(500_000_000).expect("corpus program runs");
    }
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut decode = (0u64, 0u64, 0u64, 0u64);
    let mut trans = (0u64, 0u64, 0u64, 0u64);
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    // Only execution is timed: processor construction and program
    // loading are setup, not emulation throughput.
    let mut wall = std::time::Duration::ZERO;
    for rep in 0..repeats {
        for (item, program) in &programs {
            let mut cpu = Cpu::new(config.clone());
            let wptr = program.load(&mut cpu).expect("corpus program loads");
            let start = Instant::now();
            let outcome = cpu.run_batched(500_000_000);
            wall += start.elapsed();
            match outcome {
                Ok(RunOutcome::Halted(HaltReason::Stopped)) => {}
                other => panic!(
                    "corpus program {} did not halt cleanly: {other:?}",
                    item.name
                ),
            }
            let value = program
                .read_global(&mut cpu, wptr, item.check_global)
                .expect("check global exists");
            assert_eq!(
                cpu.word_length().to_signed(value),
                item.expected,
                "corpus program {} produced a wrong answer",
                item.name
            );
            let s = cpu.stats();
            cycles += cpu.cycles();
            instructions += s.instructions;
            decode.0 += s.decode_hits;
            decode.1 += s.decode_misses;
            decode.2 += s.decode_invalidations;
            decode.3 += s.decode_bypasses;
            trans.0 += s.trans_blocks;
            trans.1 += s.trans_enters;
            trans.2 += s.trans_deopts;
            trans.3 += s.trans_invalidations;
            if rep == 0 {
                fnv1a(&mut hash, u64::from(value));
                fnv1a(&mut hash, cpu.cycles());
                fnv1a(&mut hash, s.instructions);
            }
        }
    }
    CpuRun {
        decode_cache,
        translate,
        wall_ms: wall.as_secs_f64() * 1e3,
        cycles,
        instructions,
        decode,
        trans,
        fingerprint: hash,
    }
}

/// The e09 figure-8 network, full size.
pub fn figure8() -> DbSearchConfig {
    DbSearchConfig::figure8()
}

/// The e09 topology with a trimmed database: seconds, not minutes,
/// under the per-instruction engine in debug builds.
pub fn figure8_smoke() -> DbSearchConfig {
    DbSearchConfig {
        records_per_node: 40,
        requests: 3,
        ..DbSearchConfig::figure8()
    }
}

/// The e10 128-transputer board.
pub fn board128() -> DbSearchConfig {
    DbSearchConfig::board128()
}

/// The e10 topology with a trimmed database, for debug-mode
/// determinism sweeps over many worker counts.
pub fn board128_smoke() -> DbSearchConfig {
    DbSearchConfig {
        records_per_node: 12,
        requests: 3,
        ..DbSearchConfig::board128()
    }
}

/// The e16 256-node hypercube machine.
pub fn hypercube256() -> HypercubeConfig {
    HypercubeConfig::hypercube256()
}

/// An e16-shaped machine trimmed for debug-mode determinism sweeps:
/// the full dimension count (all four anchor kinds exercised) over the
/// smallest clusters.
pub fn hypercube_smoke() -> HypercubeConfig {
    HypercubeConfig {
        side: 2,
        records_per_node: 12,
        requests: 3,
        ..HypercubeConfig::hypercube256()
    }
}

/// A routed grid trimmed for smoke runs and determinism sweeps: large
/// enough that packets genuinely queue behind each other on interior
/// wires, small enough for debug builds.
pub fn routed_smoke() -> DbSearchConfig {
    DbSearchConfig {
        width: 3,
        height: 3,
        records_per_node: 12,
        requests: 3,
        ..DbSearchConfig::figure8()
    }
}

/// The e17 acceptance shape: the full 256-node hypercube-of-clusters
/// machine searched over virtual channels instead of the planned
/// spanning tree.
pub fn routed_hypercube256() -> HypercubeConfig {
    HypercubeConfig::hypercube256()
}

/// A routed hypercube trimmed for debug-mode determinism sweeps.
pub fn routed_hypercube_smoke() -> HypercubeConfig {
    HypercubeConfig {
        side: 2,
        records_per_node: 12,
        requests: 3,
        ..HypercubeConfig::hypercube256()
    }
}

/// The ≥512-node routed stress shape: a 32×32 grid (1024 transputers
/// plus host nodes) with a thin database, so the run is dominated by
/// router forwarding rather than record scanning.
pub fn grid32x32_stress() -> DbSearchConfig {
    DbSearchConfig {
        width: 32,
        height: 32,
        records_per_node: 20,
        requests: 2,
        ..DbSearchConfig::figure8()
    }
}

/// `config` switched to wormhole (cut-through) forwarding: transit
/// nodes start retransmitting a packet at header decode instead of
/// after full reassembly, streaming the payload hop by hop under
/// flit-level withheld-ack credits.
pub fn wormhole(config: DbSearchConfig) -> DbSearchConfig {
    DbSearchConfig {
        net: transputer_net::NetworkConfig {
            router: RouterConfig {
                switching: Switching::Wormhole,
                ..config.net.router
            },
            ..config.net.clone()
        },
        ..config
    }
}

/// [`wormhole`] for a hypercube-of-clusters machine. The cluster
/// hypercube's e-cube tables carry a cyclic channel-dependency graph,
/// so the router degrades this request to store-and-forward at build
/// time — the run must be byte-identical to the plain configuration,
/// which is exactly what benchmarking it demonstrates.
pub fn wormhole_hypercube(config: HypercubeConfig) -> HypercubeConfig {
    HypercubeConfig {
        net: transputer_net::NetworkConfig {
            router: RouterConfig {
                switching: Switching::Wormhole,
                ..config.net.router
            },
            ..config.net.clone()
        },
        ..config
    }
}

/// One-packet corner-to-corner probe over the e17 stress grid's
/// wiring: a single word crosses the 62-hop diagonal of an otherwise
/// idle 32×32 routed grid (1024 transputers), so every recorded hop is
/// a pure, uncontended header-forwarding latency on the machine's
/// longest path. The congested `e17_grid1024` rows measure queueing —
/// wormhole cannot remove a wait behind another packet — while this
/// row isolates what switching itself buys: store-and-forward pays a
/// full packet reassembly per hop, cut-through pays a few byte times.
///
/// # Panics
///
/// Panics if the probe network fails to build, run, or deliver its
/// word — the smoke gate exists to catch exactly that.
pub fn run_long_path(bench: &'static str, switching: Switching, engine: Engine) -> NetRun {
    use transputer::instr::{encode, encode_op, Direct, Op};
    use transputer::memory::{LINK_IN_BASE, LINK_OUT_BASE};
    const SIDE: usize = 32;
    let n = SIDE * SIDE;
    let word: i64 = 0x0BEE_F123;
    let mut b = transputer_net::NetworkBuilder::new(transputer_net::NetworkConfig {
        engine,
        router: RouterConfig {
            switching,
            ..RouterConfig::default()
        },
        ..transputer_net::NetworkConfig::default()
    });
    for _ in 0..n {
        b.add_node();
    }
    b.enable_router(transputer_net::grid_adjacency(SIDE, SIDE));
    // Corner CPUs talk over their unwired ports: north of (0,0),
    // south of (31,31) — the receiver reads the channel word of link
    // port 2 to match.
    b.add_vc((0, 0), (n - 1, 2));
    let mut net = b.build();

    let mut sender = Vec::new();
    sender.extend(encode(Direct::LoadConstant, word));
    sender.extend(encode(Direct::StoreLocal, 1));
    sender.extend(encode(Direct::LoadLocalPointer, 1));
    sender.extend(encode_op(Op::MinimumInteger));
    sender.extend(encode(Direct::LoadNonLocalPointer, LINK_OUT_BASE as i64));
    sender.extend(encode(Direct::LoadConstant, 4));
    sender.extend(encode_op(Op::OutputMessage));
    sender.extend(encode(Direct::LoadConstant, 1));
    sender.extend(encode_op(Op::HaltSimulation));
    let mut receiver = Vec::new();
    receiver.extend(encode(Direct::LoadLocalPointer, 1));
    receiver.extend(encode_op(Op::MinimumInteger));
    receiver.extend(encode(
        Direct::LoadNonLocalPointer,
        i64::from(LINK_IN_BASE) + 2,
    ));
    receiver.extend(encode(Direct::LoadConstant, 4));
    receiver.extend(encode_op(Op::InputMessage));
    receiver.extend(encode(Direct::LoadConstant, 1));
    receiver.extend(encode_op(Op::HaltSimulation));
    let mut halting = Vec::new();
    halting.extend(encode(Direct::LoadConstant, 1));
    halting.extend(encode_op(Op::HaltSimulation));

    net.node_mut(0)
        .load_boot_program(&sender)
        .expect("probe sender loads");
    for id in 1..n - 1 {
        net.node_mut(id)
            .load_boot_program(&halting)
            .expect("probe transit node loads");
    }
    net.node_mut(n - 1)
        .load_boot_program(&receiver)
        .expect("probe receiver loads");

    let start = Instant::now();
    let out = net
        .run_until_all_halted(1_000_000_000_000)
        .expect("probe runs");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(out, transputer_net::SimOutcome::AllHalted, "probe halts");
    let addr = net.node(n - 1).default_boot_workspace() + 4;
    let got = net
        .node_mut(n - 1)
        .peek_word(addr)
        .expect("probe word peeks");

    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    for id in 0..net.len() {
        let node = net.node(id);
        cycles += node.cycles();
        instructions += node.stats().instructions;
        fnv1a(&mut hash, node.cycles());
        fnv1a(&mut hash, node.stats().instructions);
    }
    for w in 0..net.wire_count() {
        let (a, b) = net.wire_delivered(w);
        fnv1a(&mut hash, a);
        fnv1a(&mut hash, b);
    }
    NetRun {
        bench,
        engine,
        wall_ms,
        sim_ns: net.time_ns(),
        cycles,
        instructions,
        answers_ok: i64::from(got) == word,
        fingerprint: hash,
        decode: net.decode_stats(),
        trans: net.trans_stats(),
        par_workers: net.par_workers(),
        host_cores: host_cores(),
        router: net.router_stats(),
        cut_through: net.router_cut_through(),
    }
}

/// The switching-ablation pairs in a run set: rows named `<base>_worm`
/// matched with their `<base>` store-and-forward counterparts (the
/// Sliced row of each is quoted, falling back to whichever engine ran).
/// Returns `(base, store_and_forward_row, wormhole_row)` triples.
pub fn switching_pairs(networks: &[NetRun]) -> Vec<(&str, &NetRun, &NetRun)> {
    let quoted = |bench: &str| {
        networks
            .iter()
            .filter(|r| r.bench == bench && r.router.is_some())
            .find(|r| r.engine == Engine::Sliced)
            .or_else(|| {
                networks
                    .iter()
                    .find(|r| r.bench == bench && r.router.is_some())
            })
    };
    let mut benches: Vec<&str> = networks.iter().map(|r| r.bench).collect();
    benches.dedup();
    let mut pairs = Vec::new();
    for bench in benches {
        let Some(base) = bench.strip_suffix("_worm") else {
            continue;
        };
        if let (Some(sf), Some(worm)) = (quoted(base), quoted(bench)) {
            pairs.push((base, sf, worm));
        }
    }
    pairs
}

/// `config` with a uniform deterministic fault plan injected (hypercube
/// variant of [`faulted`]).
pub fn faulted_hypercube(config: HypercubeConfig, seed: u64, rate: f64) -> HypercubeConfig {
    HypercubeConfig {
        net: transputer_net::NetworkConfig {
            fault: Some(FaultPlan::uniform(seed, rate)),
            ..config.net.clone()
        },
        ..config
    }
}

/// Parallel-engine speedup over the sliced engine for `bench`, when the
/// run set holds both rows: `sliced_wall / parallel_wall`.
pub fn parallel_speedup(networks: &[NetRun], bench: &str) -> Option<f64> {
    let sliced = networks
        .iter()
        .find(|r| r.bench == bench && r.engine == Engine::Sliced)?;
    let parallel = networks
        .iter()
        .find(|r| r.bench == bench && r.engine == Engine::Parallel)?;
    Some(sliced.wall_ms / parallel.wall_ms)
}

/// Default per-packet fault rate for the faulted benchmark variants:
/// drop, corruption, and jitter each at one packet in ten thousand.
pub const FAULT_RATE_DEFAULT: f64 = 1e-4;

/// Default fault seed (the paper's year, matching the workload seed).
pub const FAULT_SEED_DEFAULT: u64 = 1985;

/// `config` with a uniform deterministic fault plan injected: every
/// link switches to the robust sequenced protocol and suffers drops,
/// corruption, and jitter at `rate` per packet.
pub fn faulted(config: DbSearchConfig, seed: u64, rate: f64) -> DbSearchConfig {
    DbSearchConfig {
        net: transputer_net::NetworkConfig {
            fault: Some(FaultPlan::uniform(seed, rate)),
            ..config.net.clone()
        },
        ..config
    }
}

/// Fault plan selected by the `FAULT_RATE` / `FAULT_SEED` environment
/// variables; `None` when `FAULT_RATE` is unset, unparsable, or zero.
/// The experiment binaries (e09, e10) consult this so the whole report
/// can be regenerated under injected link faults.
pub fn fault_plan_from_env() -> Option<FaultPlan> {
    let rate: f64 = std::env::var("FAULT_RATE").ok()?.parse().ok()?;
    if rate <= 0.0 {
        return None;
    }
    let seed = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(FAULT_SEED_DEFAULT);
    Some(FaultPlan::uniform(seed, rate))
}

/// Outcome checks over a set of runs of the *same* benchmark: all
/// answers correct and every fingerprint identical. Returns error lines,
/// empty when healthy.
pub fn cross_check(runs: &[NetRun]) -> Vec<String> {
    let mut problems = Vec::new();
    for r in runs {
        if !r.answers_ok {
            problems.push(format!("{} [{:?}]: wrong answers", r.bench, r.engine));
        }
    }
    if let Some(first) = runs.first() {
        for r in &runs[1..] {
            if r.fingerprint != first.fingerprint {
                problems.push(format!(
                    "{}: {:?} fingerprint {:016x} != {:?} fingerprint {:016x}",
                    r.bench, r.engine, r.fingerprint, first.engine, first.fingerprint
                ));
            }
        }
    }
    problems
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The static cost model checked against the emulator on one program.
#[derive(Debug, Clone)]
pub struct StaticModelRun {
    /// Validation-corpus program name.
    pub name: &'static str,
    /// Cycles the model predicts, `None` when it refuses the program.
    pub predicted: Option<u64>,
    /// Cycles the emulator measured.
    pub measured: u64,
}

impl StaticModelRun {
    /// |predicted − measured| / measured, in percent; `None` when the
    /// model refused.
    pub fn error_pct(&self) -> Option<f64> {
        self.predicted
            .map(|p| 100.0 * (p as f64 - self.measured as f64).abs() / self.measured as f64)
    }
}

/// Largest model-vs-measured cycle error tolerated, in percent.
pub const STATIC_MODEL_ERROR_LIMIT: f64 = 5.0;

/// Run the static cycle-cost model against the emulator over the
/// compute-class validation corpus ([`corpus::STATIC_MODEL_CORPUS`]).
/// Returns one row per program; `problems` gains a line for every
/// refusal or error beyond [`STATIC_MODEL_ERROR_LIMIT`].
pub fn static_model_runs(problems: &mut Vec<String>) -> Vec<StaticModelRun> {
    let mut runs = Vec::new();
    for item in corpus::STATIC_MODEL_CORPUS {
        let program = occam::compile(item.source).expect("validation program compiles");
        let mut cpu = Cpu::new(CpuConfig::t424());
        program.load(&mut cpu).expect("validation program loads");
        match cpu.run(500_000_000).expect("validation program runs") {
            RunOutcome::Halted(HaltReason::Stopped) => {}
            other => panic!("validation program did not halt cleanly: {other:?}"),
        }
        let measured = cpu.cycles();
        let predicted = match transputer_analysis::cost::analyze_program(
            &program,
            transputer::WordLength::Bits32,
        ) {
            Ok(report) => Some(report.cycles),
            Err(e) => {
                problems.push(format!("static_model: {} refused: {e}", item.name));
                None
            }
        };
        let run = StaticModelRun {
            name: item.name,
            predicted,
            measured,
        };
        if let Some(err) = run.error_pct() {
            if err > STATIC_MODEL_ERROR_LIMIT {
                problems.push(format!(
                    "static_model: {} off by {err:.3}% (limit {STATIC_MODEL_ERROR_LIMIT}%)",
                    item.name
                ));
            }
        }
        runs.push(run);
    }
    runs
}

/// Outcome checks over CPU-corpus runs: every tier combination
/// (translated, decode-cache only, neither) must fingerprint
/// identically. Returns error lines, empty when healthy.
pub fn cpu_cross_check(runs: &[CpuRun]) -> Vec<String> {
    let mut problems = Vec::new();
    if let Some(first) = runs.first() {
        for r in &runs[1..] {
            if r.fingerprint != first.fingerprint {
                problems.push(format!(
                    "cpu_corpus: decode_cache={}/translate={} fingerprint {:016x} != \
                     decode_cache={}/translate={} fingerprint {:016x}",
                    r.decode_cache,
                    r.translate,
                    r.fingerprint,
                    first.decode_cache,
                    first.translate,
                    first.fingerprint
                ));
            }
        }
    }
    problems
}

/// Pull the committed cache-on, translation-off CPU-corpus emulated
/// MIPS out of a `BENCH_host.json` rendered by [`to_json`] (hand-rolled
/// companion to the hand-rolled renderer). Files from before the
/// translation tier carry no `"translate"` key and read as
/// translation-off. `None` when the file predates the `cpu` section or
/// the number fails to parse.
pub fn baseline_cpu_mips(json: &str) -> Option<f64> {
    let entry = json.lines().find(|l| {
        l.contains("\"decode_cache\": true")
            && l.contains("\"emulated_mips\"")
            && !l.contains("\"translate\": true")
    })?;
    parse_field(entry, "emulated_mips")
}

/// Pull the committed translated-tier emulated MIPS out of the
/// `"translated"` section of a `BENCH_host.json`. `None` when the file
/// predates the translation tier.
pub fn baseline_translated_mips(json: &str) -> Option<f64> {
    let entry = json
        .lines()
        .find(|l| l.contains("\"translated\":") && l.contains("\"emulated_mips\""))?;
    parse_field(entry, "emulated_mips")
}

/// Pull a numeric field out of the last non-empty line of a
/// `BENCH_history.jsonl` body — the ratchet compares each smoke run
/// against the previous recorded run, not just the committed baseline.
/// `None` when the history is empty or the field is absent (older
/// history lines predate some fields).
pub fn history_last_field(jsonl: &str, field: &str) -> Option<f64> {
    let line = jsonl.lines().rev().find(|l| !l.trim().is_empty())?;
    parse_field(line, field)
}

/// The CPU-corpus MIPS baseline the history ratchet may compare this
/// run against: the last history entry's `cpu_mips`, but only when that
/// entry was produced on a host with the same logical core count.
/// Emulated MIPS is a property of the machine as much as of the code,
/// so comparing across runners with different core counts (CI regularly
/// mixes them) manufactures phantom regressions. Entries that predate
/// the `host_cores` field are compared as before — they cannot be told
/// apart, and silently skipping them would disable the ratchet on old
/// histories.
pub fn history_ratchet_mips(jsonl: &str, current_cores: usize) -> Option<f64> {
    let line = jsonl.lines().rev().find(|l| !l.trim().is_empty())?;
    if let Some(last_cores) = parse_field(line, "host_cores") {
        if last_cores as usize != current_cores {
            return None;
        }
    }
    parse_field(line, "cpu_mips")
}

fn parse_field(line: &str, field: &str) -> Option<f64> {
    let rest = line.split(&format!("\"{field}\": ")).nth(1)?;
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Render the report as JSON (hand-rolled: no serialisation deps).
pub fn to_json(
    smoke: bool,
    experiments: &[(String, f64)],
    cpu_runs: &[CpuRun],
    static_model: &[StaticModelRun],
    networks: &[NetRun],
    problems: &[String],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, (name, wall_ms)) in experiments.iter().enumerate() {
        let comma = if i + 1 < experiments.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {wall_ms:.1}}}{comma}\n",
            json_escape(name)
        ));
    }
    out.push_str("  ],\n  \"cpu\": [\n");
    for (i, r) in cpu_runs.iter().enumerate() {
        let comma = if i + 1 < cpu_runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"decode_cache\": {}, \"translate\": {}, \"wall_ms\": {:.1}, \
             \"cycles\": {}, \
             \"instructions\": {}, \"emulated_mips\": {:.2}, \"decode_hits\": {}, \
             \"decode_misses\": {}, \"decode_invalidations\": {}, \
             \"decode_bypasses\": {}, \"trans_blocks\": {}, \"trans_enters\": {}, \
             \"trans_deopts\": {}, \"trans_invalidations\": {}, \
             \"fingerprint\": \"{:016x}\"}}{comma}\n",
            r.decode_cache,
            r.translate,
            r.wall_ms,
            r.cycles,
            r.instructions,
            r.emulated_mips(),
            r.decode.0,
            r.decode.1,
            r.decode.2,
            r.decode.3,
            r.trans.0,
            r.trans.1,
            r.trans.2,
            r.trans.3,
            r.fingerprint,
        ));
    }
    // Single-line summary of the translated tier against the
    // decode-cache-only baseline from the same sweep, so line-scraping
    // baseline parsers keep working. `null` when the sweep skipped the
    // translated tier.
    let translated = cpu_runs.iter().find(|r| r.translate);
    let decode_only = cpu_runs.iter().find(|r| r.decode_cache && !r.translate);
    match (translated, decode_only) {
        (Some(t), Some(d)) => out.push_str(&format!(
            "  ],\n  \"translated\": {{\"emulated_mips\": {:.2}, \
             \"baseline_decode_mips\": {:.2}, \"speedup\": {:.2}, \
             \"trans_blocks\": {}, \"trans_enters\": {}, \"trans_deopts\": {}, \
             \"trans_invalidations\": {}, \"fingerprint\": \"{:016x}\"}},\n",
            t.emulated_mips(),
            d.emulated_mips(),
            t.emulated_mips() / d.emulated_mips(),
            t.trans.0,
            t.trans.1,
            t.trans.2,
            t.trans.3,
            t.fingerprint,
        )),
        _ => out.push_str("  ],\n  \"translated\": null,\n"),
    }
    out.push_str("  \"static_model\": [\n");
    for (i, r) in static_model.iter().enumerate() {
        let comma = if i + 1 < static_model.len() { "," } else { "" };
        let predicted = r.predicted.map_or("null".to_string(), |p| p.to_string());
        let error = r
            .error_pct()
            .map_or("null".to_string(), |e| format!("{e:.3}"));
        out.push_str(&format!(
            "    {{\"program\": \"{}\", \"predicted_cycles\": {predicted}, \
             \"measured_cycles\": {}, \"error_pct\": {error}}}{comma}\n",
            json_escape(r.name),
            r.measured,
        ));
    }
    out.push_str("  ],\n  \"networks\": [\n");
    for (i, r) in networks.iter().enumerate() {
        let comma = if i + 1 < networks.len() { "," } else { "" };
        let cut_through = r.cut_through.map_or("null".to_string(), |c| c.to_string());
        let router = r.router.map_or("null".to_string(), |s| {
            format!(
                "{{\"packets_sent\": {}, \"packets_forwarded\": {}, \
                 \"packets_delivered\": {}, \"packets_dropped\": {}, \
                 \"hops\": {}, \"mean_hop_ns\": {}, \"p50_hop_ns\": {}, \
                 \"p99_hop_ns\": {}, \"max_hop_ns\": {}, \
                 \"cut_through\": {cut_through}}}",
                s.packets_sent,
                s.packets_forwarded,
                s.packets_delivered,
                s.packets_dropped,
                s.hops,
                s.mean_hop_ns(),
                s.p50_hop_ns(),
                s.p99_hop_ns(),
                s.max_hop_ns,
            )
        });
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"engine\": \"{:?}\", \"wall_ms\": {:.1}, \
             \"sim_ns\": {}, \"cycles\": {}, \"instructions\": {}, \
             \"sim_cycles_per_sec\": {:.0}, \"emulated_mips\": {:.2}, \
             \"decode_hits\": {}, \"decode_misses\": {}, \"decode_invalidations\": {}, \
             \"decode_bypasses\": {}, \"trans_blocks\": {}, \"trans_enters\": {}, \
             \"trans_deopts\": {}, \"trans_invalidations\": {}, \
             \"par_workers\": {}, \"host_cores\": {}, \"router\": {router}, \
             \"answers_ok\": {}, \"fingerprint\": \"{:016x}\"}}{comma}\n",
            r.bench,
            r.engine,
            r.wall_ms,
            r.sim_ns,
            r.cycles,
            r.instructions,
            r.cycles_per_sec(),
            r.emulated_mips(),
            r.decode.0,
            r.decode.1,
            r.decode.2,
            r.decode.3,
            r.trans.0,
            r.trans.1,
            r.trans.2,
            r.trans.3,
            r.par_workers,
            r.host_cores,
            r.answers_ok,
            r.fingerprint,
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    let mut lines = Vec::new();
    let benches: Vec<&str> = {
        let mut b: Vec<&str> = networks.iter().map(|r| r.bench).collect();
        b.dedup();
        b
    };
    for bench in benches {
        let event = networks
            .iter()
            .find(|r| r.bench == bench && r.engine == Engine::Event);
        let sliced = networks
            .iter()
            .find(|r| r.bench == bench && r.engine == Engine::Sliced);
        let parallel = networks
            .iter()
            .find(|r| r.bench == bench && r.engine == Engine::Parallel);
        let Some(s) = sliced else { continue };
        let mut entry = format!(
            "    {{\"bench\": \"{bench}\", \"sliced_wall_ms\": {:.1}",
            s.wall_ms
        );
        if let Some(e) = event {
            entry.push_str(&format!(
                ", \"event_wall_ms\": {:.1}, \"speedup\": {:.2}, \"identical\": {}",
                e.wall_ms,
                e.wall_ms / s.wall_ms,
                e.fingerprint == s.fingerprint,
            ));
        }
        if let Some(p) = parallel {
            entry.push_str(&format!(
                ", \"parallel_wall_ms\": {:.1}, \"parallel_speedup\": {:.2}, \
                 \"parallel_identical\": {}, \"par_workers\": {}, \"host_cores\": {}",
                p.wall_ms,
                s.wall_ms / p.wall_ms,
                p.fingerprint == s.fingerprint,
                p.par_workers,
                p.host_cores,
            ));
        }
        entry.push('}');
        lines.push(entry);
    }
    out.push_str(&lines.join(",\n"));
    if !lines.is_empty() {
        out.push('\n');
    }
    out.push_str("  ],\n  \"switching\": [\n");
    let mut lines = Vec::new();
    for (base, sf, worm) in switching_pairs(networks) {
        let (s, w) = (sf.router.unwrap(), worm.router.unwrap());
        let ratio = |a: u64, b: u64| {
            if b == 0 {
                "null".to_string()
            } else {
                format!("{:.2}", a as f64 / b as f64)
            }
        };
        lines.push(format!(
            "    {{\"bench\": \"{base}\", \"sf_mean_hop_ns\": {}, \
             \"sf_p50_hop_ns\": {}, \"sf_p99_hop_ns\": {}, \"sf_max_hop_ns\": {}, \
             \"worm_mean_hop_ns\": {}, \"worm_p50_hop_ns\": {}, \
             \"worm_p99_hop_ns\": {}, \"worm_max_hop_ns\": {}, \
             \"mean_reduction\": {}, \"p99_reduction\": {}, \
             \"worm_cut_through\": {}}}",
            s.mean_hop_ns(),
            s.p50_hop_ns(),
            s.p99_hop_ns(),
            s.max_hop_ns,
            w.mean_hop_ns(),
            w.p50_hop_ns(),
            w.p99_hop_ns(),
            w.max_hop_ns,
            ratio(s.mean_hop_ns(), w.mean_hop_ns()),
            ratio(s.p99_hop_ns(), w.p99_hop_ns()),
            worm.cut_through
                .map_or("null".to_string(), |c| c.to_string()),
        ));
    }
    out.push_str(&lines.join(",\n"));
    if !lines.is_empty() {
        out.push('\n');
    }
    out.push_str("  ],\n  \"problems\": [\n");
    for (i, p) in problems.iter().enumerate() {
        let comma = if i + 1 < problems.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\"{comma}\n", json_escape(p)));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_engines_agree_and_json_renders() {
        let runs: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_network("e09_figure8_smoke", figure8_smoke(), e))
            .collect();
        let problems = cross_check(&runs);
        assert!(problems.is_empty(), "{problems:?}");
        let json = to_json(true, &[], &[], &[], &runs, &problems);
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"parallel_speedup\""));
        assert!(json.contains("\"parallel_identical\": true"));
        assert!(json.contains("\"par_workers\""));
        assert!(json.contains("\"host_cores\""));
        assert!(parallel_speedup(&runs, "e09_figure8_smoke").is_some());
    }

    #[test]
    fn routed_smoke_engines_agree_and_json_carries_router_stats() {
        let runs: Vec<NetRun> = [Engine::Event, Engine::Sliced, Engine::Parallel]
            .into_iter()
            .map(|e| run_routed("e17_routed_smoke", routed_smoke(), e))
            .collect();
        let problems = cross_check(&runs);
        assert!(problems.is_empty(), "{problems:?}");
        for r in &runs {
            let stats = r.router.expect("routed run must carry router stats");
            assert!(stats.packets_delivered > 0, "{:?}", r.engine);
            assert_eq!(stats.packets_dropped, 0, "{:?}", r.engine);
        }
        let json = to_json(true, &[], &[], &[], &runs, &problems);
        assert!(json.contains("\"router\": {\"packets_sent\""));
        assert!(json.contains("\"mean_hop_ns\""));
    }

    #[test]
    fn long_path_probe_shows_the_cut_through_win() {
        // The tentpole pair: on the idle 62-hop diagonal, wormhole must
        // at least halve the mean header-forwarding hop latency, and
        // the pair must surface in the switching section of the JSON.
        let sf = run_long_path(
            "e17_longpath1024",
            Switching::StoreAndForward,
            Engine::Sliced,
        );
        let worm = run_long_path("e17_longpath1024_worm", Switching::Wormhole, Engine::Sliced);
        assert!(sf.answers_ok && worm.answers_ok, "probe word must arrive");
        assert_eq!(worm.cut_through, Some(true), "grid CDG must prove acyclic");
        let (s, w) = (sf.router.unwrap(), worm.router.unwrap());
        assert_eq!(s.packets_delivered, 1);
        assert_eq!(w.packets_delivered, 1);
        assert!(
            s.mean_hop_ns() >= 2 * w.mean_hop_ns(),
            "long-path hop latency must at least halve: sf {} vs wormhole {}",
            s.mean_hop_ns(),
            w.mean_hop_ns()
        );
        let runs = vec![sf, worm];
        let pairs = switching_pairs(&runs);
        assert_eq!(pairs.len(), 1, "probe rows must pair for the SWITCH table");
        assert_eq!(pairs[0].0, "e17_longpath1024");
        let json = to_json(true, &[], &[], &[], &runs, &[]);
        assert!(json.contains("\"switching\""));
        assert!(json.contains("\"p99_hop_ns\""));
        assert!(json.contains("\"cut_through\": true"));
    }

    #[test]
    fn unrouted_rows_render_null_router() {
        let run = run_network("e09_figure8_smoke", figure8_smoke(), Engine::Sliced);
        assert!(run.router.is_none());
        let json = to_json(true, &[], &[], &[], &[run], &[]);
        assert!(json.contains("\"router\": null"));
    }

    #[test]
    fn history_ratchet_skips_mismatched_host_cores() {
        let same = "{\"cpu_mips\": 4.00, \"host_cores\": 8}\n";
        assert_eq!(history_ratchet_mips(same, 8), Some(4.0));
        let different = "{\"cpu_mips\": 4.00, \"host_cores\": 2}\n";
        assert_eq!(history_ratchet_mips(different, 8), None);
        // Pre-host_cores history lines keep ratcheting as before.
        let legacy = "{\"cpu_mips\": 4.00}\n";
        assert_eq!(history_ratchet_mips(legacy, 8), Some(4.0));
        // Only the *last* line counts — older mismatches are irrelevant.
        let mixed = "{\"cpu_mips\": 9.00, \"host_cores\": 2}\n\
                     {\"cpu_mips\": 4.00, \"host_cores\": 8}\n";
        assert_eq!(history_ratchet_mips(mixed, 8), Some(4.0));
        assert_eq!(history_ratchet_mips("", 8), None);
    }

    #[test]
    fn history_last_field_reads_the_last_line() {
        let jsonl = "{\"cpu_mips\": 1.00, \"e10_parallel_speedup\": 0.90}\n\
                     {\"cpu_mips\": 2.50, \"e10_parallel_speedup\": 1.75}\n";
        assert_eq!(history_last_field(jsonl, "cpu_mips"), Some(2.5));
        assert_eq!(
            history_last_field(jsonl, "e10_parallel_speedup"),
            Some(1.75)
        );
        assert_eq!(history_last_field(jsonl, "absent"), None);
        assert_eq!(history_last_field("", "cpu_mips"), None);
    }

    #[test]
    fn cpu_corpus_cache_is_transparent_and_effective() {
        let trans = cpu_corpus_bench(true, true, 1);
        let on = cpu_corpus_bench(true, false, 1);
        let off = cpu_corpus_bench(false, false, 1);
        let problems = cpu_cross_check(&[trans.clone(), on.clone(), off.clone()]);
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(on.cycles, off.cycles);
        assert_eq!(on.instructions, off.instructions);
        assert_eq!(trans.cycles, off.cycles);
        assert!(on.decode.0 > 0, "cache-on run recorded no hits");
        assert_eq!(off.decode, (0, 0, 0, 0), "cache-off run touched the cache");
        assert!(trans.trans.1 > 0, "translated run never entered a block");
        assert_eq!(on.trans, (0, 0, 0, 0), "translation-off run built blocks");
        let json = to_json(
            true,
            &[],
            &[trans.clone(), on.clone(), off],
            &[],
            &[],
            &problems,
        );
        assert!(json.contains("\"decode_cache\": true"));
        let baseline = baseline_cpu_mips(&json).expect("cpu section parses back");
        assert!((baseline - (on.emulated_mips() * 100.0).round() / 100.0).abs() < 0.01);
        let tmips = baseline_translated_mips(&json).expect("translated section parses back");
        assert!((tmips - (trans.emulated_mips() * 100.0).round() / 100.0).abs() < 0.01);
    }

    #[test]
    fn translated_section_is_null_without_a_translated_run() {
        let json = to_json(true, &[], &[], &[], &[], &[]);
        assert!(json.contains("\"translated\": null"));
        assert!(baseline_translated_mips(&json).is_none());
    }

    #[test]
    fn static_model_is_exact_and_renders() {
        let mut problems = Vec::new();
        let runs = static_model_runs(&mut problems);
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(runs.len(), corpus::STATIC_MODEL_CORPUS.len());
        for r in &runs {
            assert_eq!(
                r.predicted,
                Some(r.measured),
                "static model drifted on `{}`",
                r.name
            );
        }
        let json = to_json(true, &[], &[], &runs, &[], &problems);
        assert!(json.contains("\"static_model\""));
        assert!(json.contains("\"error_pct\": 0.000"));
    }
}
