//! Registry of everything the experiment binaries (e01–e16) execute,
//! reconstructed for static analysis: the hand-assembled I1 images and
//! the generated occam sources. `lint_corpus` runs the CFG-based
//! bytecode verifier over every image and the full lint stack over
//! every source, so a change that makes an experiment workload
//! unverifiable fails the gate even if the experiment itself still
//! runs.
//!
//! Images are reconstructed with the same builders the experiments use
//! ([`crate::asm`], [`transputer::instr::encode`]) rather than
//! captured from the binaries, so they stay in lock-step with the
//! experiment sources by construction. Experiments that only exercise
//! the link layer (e07) or run corpus/occam programs covered elsewhere
//! (e09–e12, e15, e16) contribute no raw image.

use transputer::instr::{encode, encode_op, Direct, Op};
use transputer::memory::{LINK_IN_BASE, LINK_OUT_BASE};
use transputer_apps::dbsearch::{self, DbSearchConfig, HypercubeConfig};
use transputer_apps::workstation::{self, Placement, WorkstationConfig};

/// A raw I1 image as an experiment executes it.
pub struct ExpImage {
    /// `eNN-<what>` label for gate output.
    pub name: &'static str,
    /// The code bytes, terminator included.
    pub code: Vec<u8>,
}

/// Mirror of [`crate::measure_sequence_with_setup`]'s image layout:
/// setup, then the measured sequence, then the halt terminator.
fn measured(setup: &str, seq: &str) -> Vec<u8> {
    let mut code = crate::asm(setup);
    code.extend(crate::asm(seq));
    code.extend(encode_op(Op::HaltSimulation));
    code
}

/// E5/E14's two-process rendezvous image: receiver at offset 0, sender
/// concatenated after it (the sender entry is spawned directly, so the
/// sender body is reachable only as a second entry point).
fn rendezvous_image(n: u32) -> Vec<u8> {
    let mut code = Vec::new();
    code.extend(encode_op(Op::MinimumInteger));
    code.extend(encode(Direct::StoreLocal, 1));
    code.extend(encode(Direct::LoadLocalPointer, 8));
    code.extend(encode(Direct::LoadLocalPointer, 1));
    code.extend(encode(Direct::LoadConstant, i64::from(n)));
    code.extend(encode_op(Op::InputMessage));
    code.extend(encode_op(Op::HaltSimulation));
    code.extend(encode(Direct::LoadLocalPointer, 8));
    code.extend(encode(Direct::LoadLocalPointer, 65));
    code.extend(encode(Direct::LoadConstant, i64::from(n)));
    code.extend(encode_op(Op::OutputMessage));
    code.extend(encode_op(Op::StopProcess));
    code
}

/// E6's image for one low-priority instruction mix: the busy loop, then
/// the high-priority timer waker.
fn priority_image(body: &[u8]) -> Vec<u8> {
    let mut code = Vec::new();
    let lo_entry = code.len();
    code.extend_from_slice(body);
    let back = lo_entry as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, back));
    code.extend(encode(Direct::LoadConstant, 200));
    code.extend(encode(Direct::StoreLocal, 2));
    let loop_top = code.len();
    code.extend(encode_op(Op::LoadTimer));
    code.extend(encode(Direct::AddConstant, 3));
    code.extend(encode_op(Op::TimerInput));
    code.extend(encode(Direct::LoadLocal, 2));
    code.extend(encode(Direct::AddConstant, -1));
    code.extend(encode(Direct::StoreLocal, 2));
    code.extend(encode(Direct::LoadLocal, 2));
    code.extend(encode(Direct::ConditionalJump, 2));
    let dist = loop_top as i64 - (code.len() as i64 + 2);
    code.extend(encode(Direct::Jump, dist));
    code.extend(encode_op(Op::HaltSimulation));
    code
}

/// E6's four adversarial low-priority instruction mixes.
fn priority_mixes() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("e06-multiply-storm", {
            let mut b = Vec::new();
            b.extend(encode(Direct::LoadConstant, 3));
            b.extend(encode(Direct::LoadConstant, 3));
            b.extend(encode_op(Op::Multiply));
            b.extend(encode(Direct::StoreLocal, 1));
            b
        }),
        ("e06-divide-storm", {
            let mut b = Vec::new();
            b.extend(encode(Direct::LoadConstant, 7));
            b.extend(encode(Direct::LoadConstant, 3));
            b.extend(encode_op(Op::Divide));
            b.extend(encode(Direct::StoreLocal, 1));
            b
        }),
        ("e06-block-move-storm", {
            let mut b = Vec::new();
            b.extend(encode(Direct::LoadLocalPointer, 24));
            b.extend(encode(Direct::LoadLocalPointer, 8));
            b.extend(encode(Direct::LoadConstant, 32));
            b.extend(encode_op(Op::Move));
            b
        }),
        ("e06-long-shift-storm", {
            let mut b = Vec::new();
            b.extend(encode(Direct::LoadConstant, 1));
            b.extend(encode(Direct::LoadConstant, 1));
            b.extend(encode(Direct::LoadConstant, 40));
            b.extend(encode_op(Op::LongShiftLeft));
            b.extend(encode(Direct::StoreLocal, 1));
            b.extend(encode(Direct::StoreLocal, 2));
            b
        }),
    ]
}

/// E8's link sender/receiver, one image per transputer.
fn link_image(port_base: i64, op: Op, n: u32) -> Vec<u8> {
    let mut code = Vec::new();
    code.extend(encode(Direct::LoadLocalPointer, 1));
    code.extend(encode_op(Op::MinimumInteger));
    code.extend(encode(Direct::LoadNonLocalPointer, port_base));
    code.extend(encode(Direct::LoadConstant, i64::from(n)));
    code.extend(encode_op(op));
    code.extend(encode_op(Op::HaltSimulation));
    code
}

/// Every hand-assembled image an experiment loads into a CPU.
pub fn experiment_images() -> Vec<ExpImage> {
    let mut images = vec![
        ExpImage {
            name: "e01-assign-constant",
            code: measured("", "load constant 0\nstore local 1"),
        },
        ExpImage {
            name: "e01-assign-variable",
            code: measured("", "load local 2\nstore local 1"),
        },
        ExpImage {
            name: "e02-static-link-store",
            code: measured(
                "load local pointer 8\nstore local 2",
                "load constant 1\nload local 2\nstore non local 3",
            ),
        },
        ExpImage {
            name: "e03-prefixed-constant",
            code: {
                let mut code = encode(Direct::LoadConstant, 0x754);
                code.extend(encode_op(Op::HaltSimulation));
                code
            },
        },
        ExpImage {
            name: "e04-add-constant",
            code: measured("", "ldl 1\nadc 2"),
        },
        ExpImage {
            name: "e04-expression",
            code: measured("", "ldl 1\nldl 2\nadd\nldl 3\nldl 4\nadd\nmul"),
        },
        ExpImage {
            name: "e05-internal-rendezvous",
            code: rendezvous_image(4),
        },
        ExpImage {
            name: "e08-link-sender",
            code: link_image(LINK_OUT_BASE as i64, Op::OutputMessage, 4),
        },
        ExpImage {
            name: "e08-link-receiver",
            code: link_image(LINK_IN_BASE as i64, Op::InputMessage, 4),
        },
        ExpImage {
            name: "e13-typical-sequence",
            code: {
                let mut src = String::new();
                for _ in 0..100 {
                    src.push_str("ldl 1\nadc 1\nstl 1\n");
                }
                measured("", &src)
            },
        },
        ExpImage {
            name: "e14-context-switch",
            code: rendezvous_image(4),
        },
    ];
    for (name, body) in priority_mixes() {
        images.push(ExpImage {
            name,
            code: priority_image(&body),
        });
    }
    images
}

/// Every generated occam source an experiment compiles (beyond the
/// shared corpus): the compiler-shape checks from e01/e02/e04, the
/// per-node application sources from e09–e11 and e16, and the uniform
/// routed programs from e17.
pub fn experiment_sources() -> Vec<(String, String)> {
    let mut sources: Vec<(String, String)> = vec![
        (
            "e01-compiler-check".to_string(),
            "VAR x, y:\nSEQ\n  y := 9\n  x := y".to_string(),
        ),
        (
            "e02-compiler-check".to_string(),
            "VAR z:\n\
             PROC setz =\n\
             \x20 z := 1\n\
             :\n\
             SEQ\n\
             \x20 z := 0\n\
             \x20 setz ()"
                .to_string(),
        ),
        (
            "e04-compiler-check".to_string(),
            "VAR x, r:\nSEQ\n  x := 5\n  r := x + 2".to_string(),
        ),
    ];
    for (name, source) in dbsearch::array_sources(&DbSearchConfig::figure8()) {
        sources.push((format!("e09-{name}"), source));
    }
    for (name, source) in dbsearch::hypercube_sources(&HypercubeConfig::hypercube256()) {
        sources.push((format!("e16-{name}"), source));
    }
    for (name, source) in dbsearch::routed_sources(&DbSearchConfig::figure8()) {
        sources.push((format!("e17-{name}"), source));
    }
    let wcfg = WorkstationConfig::default();
    for placement in Placement::ALL {
        for (i, source) in workstation::placement_sources(placement, &wcfg)
            .into_iter()
            .enumerate()
        {
            sources.push((
                format!("e11-placement{}-node{i}", placement.transputers()),
                source,
            ));
        }
    }
    sources
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated() {
        let images = experiment_images();
        assert!(images.len() >= 14);
        for img in &images {
            assert!(!img.code.is_empty(), "{} is empty", img.name);
        }
        let sources = experiment_sources();
        assert!(sources.len() >= 3 + 18 + 6, "{} sources", sources.len());
        // The e16 hypercube contributes its deduplicated node programs
        // plus the two hosts.
        let e16 = sources
            .iter()
            .filter(|(n, _)| n.starts_with("e16-"))
            .count();
        assert!(e16 >= 3, "{e16} e16 sources");
        // The e17 routed search contributes its uniform node program
        // plus the two hosts.
        let e17 = sources
            .iter()
            .filter(|(n, _)| n.starts_with("e17-"))
            .count();
        assert!(e17 >= 3, "{e17} e17 sources");
    }

    #[test]
    fn rendezvous_image_has_both_entries() {
        // The sender entry sits right after the receiver's haltsim, as
        // e05/e14 compute it when spawning the second process.
        let img = rendezvous_image(4);
        let receiver_len = encode_op(Op::MinimumInteger).len()
            + encode(Direct::StoreLocal, 1).len()
            + encode(Direct::LoadLocalPointer, 8).len()
            + encode(Direct::LoadLocalPointer, 1).len()
            + encode(Direct::LoadConstant, 4).len()
            + encode_op(Op::InputMessage).len()
            + encode_op(Op::HaltSimulation).len();
        assert_eq!(
            &img[receiver_len..receiver_len + 1],
            &encode(Direct::LoadLocalPointer, 8)[..1],
            "sender entry starts with ldlp 8"
        );
    }
}
