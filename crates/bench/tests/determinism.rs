//! Engine determinism: the lookahead-batched engines must be
//! bit-identical to the per-instruction event engine.
//!
//! Two layers of evidence:
//!
//! * every corpus program, standalone: [`Cpu::run`] vs
//!   [`Cpu::run_batched`] agree on halt cycle, instruction counters,
//!   the checked global, and the complete final memory image;
//! * the e09 16-node database-search network under all three
//!   [`Engine`]s (plus the parallel engine at forced worker counts
//!   1, 2, 3 and 7, so its window-batching path runs even on
//!   single-core hosts and at counts misaligned with the node count):
//!   identical answers and answer times, per-node halt
//!   cycle counts, per-wire delivered-byte counters, per-node
//!   instruction counters (the stats audit), and final memory images;
//! * the same worker-count sweep on e10-shaped (128-node board) and
//!   e16-shaped (64-node hypercube) machines with trimmed databases,
//!   against a sliced-engine reference.

use transputer::{Cpu, CpuConfig, HaltReason, RunOutcome};
use transputer_apps::dbsearch::{DbSearch, DbSearchConfig};
use transputer_apps::DbSearchReport;
use transputer_bench::corpus::CORPUS;
use transputer_bench::hostperf::{
    board128_smoke, hypercube_smoke, routed_hypercube_smoke, routed_smoke,
};
use transputer_link::FaultPlan;
use transputer_net::topology::grid_edge_wire;
use transputer_net::{Engine, RouterConfig, Switching};

fn full_image(cpu: &Cpu) -> Vec<u8> {
    let base = cpu.memory().base();
    let len = cpu.memory().size() as usize;
    cpu.memory().dump(base, len).expect("whole memory dumps")
}

/// One engine/worker-count variant must match the reference run on
/// every observable: answers, arrival times, the stats audit, per-node
/// halt cycles, instruction counters, memory images, and per-wire
/// delivered-byte counters.
fn assert_run_matches(
    label: &str,
    sim: &DbSearch,
    report: &DbSearchReport,
    base_sim: &DbSearch,
    base_report: &DbSearchReport,
) {
    let net = sim.network();
    let base_net = base_sim.network();
    assert_eq!(report.answers, base_report.answers, "{label}: answers");
    assert_eq!(
        report.answer_times_ns, base_report.answer_times_ns,
        "{label}: answer arrival times"
    );
    assert_eq!(
        report.total_instructions, base_report.total_instructions,
        "{label}: stats audit (instruction totals)"
    );
    assert_eq!(net.len(), base_net.len());
    for id in 0..net.len() {
        assert_eq!(
            net.node(id).cycles(),
            base_net.node(id).cycles(),
            "{label}: node {id} halt cycle count"
        );
        assert_eq!(
            net.node(id).stats().instructions,
            base_net.node(id).stats().instructions,
            "{label}: node {id} instruction counter"
        );
        assert_eq!(
            full_image(net.node(id)),
            full_image(base_net.node(id)),
            "{label}: node {id} memory image"
        );
    }
    assert_eq!(net.wire_count(), base_net.wire_count());
    for w in 0..net.wire_count() {
        assert_eq!(
            net.wire_delivered(w),
            base_net.wire_delivered(w),
            "{label}: wire {w} delivered-byte counters"
        );
    }
}

#[test]
fn corpus_programs_agree_between_engines() {
    for item in CORPUS {
        let program = occam::compile(item.source).expect("corpus program compiles");
        let run_one = |batched: bool| {
            let mut cpu = Cpu::new(CpuConfig::t424());
            let wptr = program.load(&mut cpu).expect("loads");
            let out = if batched {
                cpu.run_batched(500_000_000)
            } else {
                cpu.run(500_000_000)
            };
            assert_eq!(
                out.expect("halts"),
                RunOutcome::Halted(HaltReason::Stopped),
                "corpus `{}`",
                item.name
            );
            (cpu, wptr)
        };
        let (mut event, we) = run_one(false);
        let (mut sliced, ws) = run_one(true);
        assert_eq!(we, ws);
        assert_eq!(event.cycles(), sliced.cycles(), "corpus `{}`", item.name);
        assert_eq!(
            event.stats().instructions,
            sliced.stats().instructions,
            "corpus `{}`",
            item.name
        );
        let got_e = program
            .read_global(&mut event, we, item.check_global)
            .unwrap();
        let got_s = program
            .read_global(&mut sliced, ws, item.check_global)
            .unwrap();
        assert_eq!(
            event.word_length().to_signed(got_e),
            item.expected,
            "corpus `{}`",
            item.name
        );
        assert_eq!(got_e, got_s, "corpus `{}`", item.name);
        assert_eq!(
            full_image(&event),
            full_image(&sliced),
            "corpus `{}` memory image",
            item.name
        );
    }
}

#[test]
fn corpus_is_identical_with_decode_cache_disabled() {
    // The predecoded instruction cache is a host-side instrument: with
    // it force-disabled, every corpus program must land on identical
    // answers, cycle counts, simulated statistics, and memory images.
    for item in CORPUS {
        let program = occam::compile(item.source).expect("corpus program compiles");
        let run_one = |decode_cache: bool| {
            let mut cpu = Cpu::new(CpuConfig::t424().with_decode_cache(decode_cache));
            let wptr = program.load(&mut cpu).expect("loads");
            assert_eq!(
                cpu.run_batched(500_000_000).expect("halts"),
                RunOutcome::Halted(HaltReason::Stopped),
                "corpus `{}`",
                item.name
            );
            (cpu, wptr)
        };
        let (mut on, wo) = run_one(true);
        let (mut off, wf) = run_one(false);
        assert_eq!(wo, wf);
        assert_eq!(on.cycles(), off.cycles(), "corpus `{}` cycles", item.name);
        assert_eq!(
            on.stats().simulated(),
            off.stats().simulated(),
            "corpus `{}` simulated statistics",
            item.name
        );
        assert!(
            on.stats().decode_hits > 0,
            "corpus `{}` never used the cache",
            item.name
        );
        assert_eq!(
            off.stats().decode_hits + off.stats().decode_misses,
            0,
            "corpus `{}` used a disabled cache",
            item.name
        );
        let got_on = program.read_global(&mut on, wo, item.check_global).unwrap();
        let got_off = program
            .read_global(&mut off, wf, item.check_global)
            .unwrap();
        assert_eq!(
            on.word_length().to_signed(got_on),
            item.expected,
            "corpus `{}`",
            item.name
        );
        assert_eq!(got_on, got_off, "corpus `{}`", item.name);
        assert_eq!(
            full_image(&on),
            full_image(&off),
            "corpus `{}` memory image",
            item.name
        );
    }
}

#[test]
fn corpus_is_identical_with_translation_disabled() {
    // The threaded-code translation tier is the second host-side
    // instrument: force-disabled (the `TRANSLATE=off` CI leg does the
    // same to the whole suite via the environment hook), every corpus
    // program must land on identical answers, cycle counts, simulated
    // statistics, and memory images. Threshold 1 on the enabled side
    // so even briefly-hot leaders run translated.
    for item in CORPUS {
        let program = occam::compile(item.source).expect("corpus program compiles");
        let run_one = |translate: bool| {
            let mut cpu = Cpu::new(
                CpuConfig::t424()
                    .with_translate(translate)
                    .with_translate_threshold(1),
            );
            let wptr = program.load(&mut cpu).expect("loads");
            assert_eq!(
                cpu.run_batched(500_000_000).expect("halts"),
                RunOutcome::Halted(HaltReason::Stopped),
                "corpus `{}`",
                item.name
            );
            (cpu, wptr)
        };
        let (mut on, wo) = run_one(true);
        let (mut off, wf) = run_one(false);
        assert_eq!(wo, wf);
        assert_eq!(on.cycles(), off.cycles(), "corpus `{}` cycles", item.name);
        assert_eq!(
            on.stats().simulated(),
            off.stats().simulated(),
            "corpus `{}` simulated statistics",
            item.name
        );
        assert!(
            on.stats().trans_enters > 0,
            "corpus `{}` never entered a translated block",
            item.name
        );
        assert_eq!(
            off.stats().trans_enters + off.stats().trans_blocks,
            0,
            "corpus `{}` used disabled translation",
            item.name
        );
        let got_on = program.read_global(&mut on, wo, item.check_global).unwrap();
        let got_off = program
            .read_global(&mut off, wf, item.check_global)
            .unwrap();
        assert_eq!(
            on.word_length().to_signed(got_on),
            item.expected,
            "corpus `{}`",
            item.name
        );
        assert_eq!(got_on, got_off, "corpus `{}`", item.name);
        assert_eq!(
            full_image(&on),
            full_image(&off),
            "corpus `{}` memory image",
            item.name
        );
    }
}

#[test]
fn e09_network_agrees_across_all_engines() {
    // The e09 figure-8 topology (4x4 grid plus sender and collector),
    // trimmed to a test-sized database so the per-instruction engine
    // finishes promptly in debug builds.
    let config = |engine| DbSearchConfig {
        records_per_node: 40,
        requests: 3,
        net: transputer_net::NetworkConfig {
            engine,
            ..transputer_net::NetworkConfig::default()
        },
        ..DbSearchConfig::figure8()
    };

    // (engine, forced worker count). The forced counts exercise the
    // parallel engine's window-batching path even on single-core CI
    // hosts (where it would otherwise fall back to the sliced loop),
    // at counts deliberately misaligned with the 18-node machine so
    // chunk boundaries land everywhere.
    let variants = [
        (Engine::Event, None),
        (Engine::Sliced, None),
        (Engine::Parallel, None),
        (Engine::Parallel, Some(1)),
        (Engine::Parallel, Some(2)),
        (Engine::Parallel, Some(3)),
        (Engine::Parallel, Some(7)),
    ];
    let mut runs = Vec::new();
    for (engine, workers) in variants {
        let mut sim = DbSearch::build(config(engine)).expect("builds");
        if let Some(w) = workers {
            sim.network_mut().set_par_workers(w);
        }
        let report = sim.run(1_000_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "{engine:?} ({workers:?} workers): answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        runs.push((engine, workers, sim, report));
    }

    let (_, _, ref base_sim, ref base_report) = runs[0];
    for (engine, workers, sim, report) in &runs[1..] {
        let label = format!("{engine:?} ({workers:?} workers)");
        assert_run_matches(&label, sim, report, base_sim, base_report);
    }
}

#[test]
fn e10_board_is_worker_count_invariant() {
    // The e10 16×8 board with a trimmed database: sliced engine as
    // reference, then the parallel engine at worker counts 1, 2, 3
    // and 7 — odd counts misaligned with the 130-node machine so the
    // work-stealing chunk boundaries land at different nodes in every
    // window.
    let config = |engine| DbSearchConfig {
        net: transputer_net::NetworkConfig {
            engine,
            ..transputer_net::NetworkConfig::default()
        },
        ..board128_smoke()
    };
    let mut base = DbSearch::build(config(Engine::Sliced)).expect("builds");
    let base_report = base.run(1_000_000_000_000).expect("runs");
    assert!(base_report.all_correct(), "sliced reference");
    for workers in [1usize, 2, 3, 7] {
        let mut sim = DbSearch::build(config(Engine::Parallel)).expect("builds");
        sim.network_mut().set_par_workers(workers);
        let report = sim.run(1_000_000_000_000).expect("runs");
        assert!(report.all_correct(), "parallel, {workers} workers");
        assert_run_matches(
            &format!("parallel, {workers} workers"),
            &sim,
            &report,
            &base,
            &base_report,
        );
    }
}

#[test]
fn e16_hypercube_is_worker_count_invariant() {
    // The e16-shaped machine (full dimension count over the smallest
    // clusters: 64 nodes) with a trimmed database, swept over the same
    // worker counts against the sliced reference. This pins the
    // parallel engine's merge-order determinism on the hypercube
    // wiring, where dimension links give nodes four active neighbours
    // in distant index ranges.
    let config = |engine| transputer_apps::dbsearch::HypercubeConfig {
        net: transputer_net::NetworkConfig {
            engine,
            ..transputer_net::NetworkConfig::default()
        },
        ..hypercube_smoke()
    };
    let mut base = DbSearch::build_hypercube(config(Engine::Sliced)).expect("builds");
    let base_report = base.run(1_000_000_000_000).expect("runs");
    assert!(base_report.all_correct(), "sliced reference");
    for workers in [1usize, 2, 3, 7] {
        let mut sim = DbSearch::build_hypercube(config(Engine::Parallel)).expect("builds");
        sim.network_mut().set_par_workers(workers);
        let report = sim.run(1_000_000_000_000).expect("runs");
        assert!(report.all_correct(), "parallel, {workers} workers");
        assert_run_matches(
            &format!("parallel, {workers} workers"),
            &sim,
            &report,
            &base,
            &base_report,
        );
    }
}

#[test]
fn routed_grid_agrees_across_all_engines() {
    // The virtual-channel router replaces the planned spanning trees:
    // every message is packetized, multiplexed, and forwarded hop by
    // hop through bounded store-and-forward queues. All of that state
    // machinery advances only at wire events and stamped CPU service
    // points, so the engine and worker count must remain unobservable —
    // the same sweep as e09, over the routed build, in both switching
    // modes (wormhole forwards at header decode, so its wire schedule
    // differs from store-and-forward — each mode gets its own
    // reference run).
    let config = |engine, switching| DbSearchConfig {
        net: transputer_net::NetworkConfig {
            engine,
            router: RouterConfig {
                switching,
                ..RouterConfig::default()
            },
            ..transputer_net::NetworkConfig::default()
        },
        ..routed_smoke()
    };

    let variants = [
        (Engine::Event, None),
        (Engine::Sliced, None),
        (Engine::Parallel, None),
        (Engine::Parallel, Some(1)),
        (Engine::Parallel, Some(2)),
        (Engine::Parallel, Some(3)),
        (Engine::Parallel, Some(7)),
    ];
    for switching in [Switching::StoreAndForward, Switching::Wormhole] {
        let mut runs = Vec::new();
        for (engine, workers) in variants {
            let mut sim = DbSearch::build_routed(config(engine, switching)).expect("builds");
            if let Some(w) = workers {
                sim.network_mut().set_par_workers(w);
            }
            let report = sim.run(1_000_000_000_000).expect("runs");
            assert!(
                report.all_correct(),
                "{switching:?} {engine:?} ({workers:?} workers): answers {:?} != expected {:?}",
                report.answers,
                report.expected
            );
            runs.push((engine, workers, sim, report));
        }

        let (_, _, ref base_sim, ref base_report) = runs[0];
        for (engine, workers, sim, report) in &runs[1..] {
            let label = format!("routed {switching:?} {engine:?} ({workers:?} workers)");
            assert_run_matches(&label, sim, report, base_sim, base_report);
        }
    }
}

#[test]
fn routed_grid_agrees_across_engines_under_faults() {
    // The routed sweep under a seeded fault plan: the robust link
    // protocol retries the router's framed packets exactly as it
    // retries planned-tree traffic, and the outcome must stay
    // bit-identical across engines and worker counts — in both
    // switching modes, since wormhole streams ride the same robust
    // per-byte retry machinery (the withheld credit ack is just a
    // delayed ack to the protocol).
    let config = |engine, switching| DbSearchConfig {
        net: transputer_net::NetworkConfig {
            engine,
            fault: Some(FaultPlan::uniform(1985, 2e-3)),
            router: RouterConfig {
                switching,
                ..RouterConfig::default()
            },
            ..transputer_net::NetworkConfig::default()
        },
        ..routed_smoke()
    };

    let variants = [
        (Engine::Event, None),
        (Engine::Sliced, None),
        (Engine::Parallel, None),
        (Engine::Parallel, Some(1)),
        (Engine::Parallel, Some(2)),
        (Engine::Parallel, Some(3)),
        (Engine::Parallel, Some(7)),
    ];
    for switching in [Switching::StoreAndForward, Switching::Wormhole] {
        let mut runs = Vec::new();
        for (engine, workers) in variants {
            let mut sim = DbSearch::build_routed(config(engine, switching)).expect("builds");
            if let Some(w) = workers {
                sim.network_mut().set_par_workers(w);
            }
            let report = sim.run(1_000_000_000_000).expect("runs");
            assert!(
                report.all_correct(),
                "{switching:?} {engine:?} ({workers:?} workers): answers {:?} != expected {:?}",
                report.answers,
                report.expected
            );
            assert!(
                !report.degraded,
                "{switching:?} {engine:?}: retries must hide the faults"
            );
            runs.push((engine, workers, sim, report));
        }

        let (_, _, ref base_sim, ref base_report) = runs[0];
        for (engine, workers, sim, report) in &runs[1..] {
            let label = format!("routed faulted {switching:?} {engine:?} ({workers:?} workers)");
            assert_run_matches(&label, sim, report, base_sim, base_report);
        }
    }
}

#[test]
fn routed_hypercube_is_worker_count_invariant() {
    // The routed hypercube: requests and answers cross dimension links
    // through several routers at once, so transit queues at distinct
    // nodes are live simultaneously — the strongest worker-interleaving
    // pressure the router sees in the debug-mode suite. Swept in both
    // switching modes; on the cluster hypercube the e-cube tables have
    // a cyclic channel-dependency graph, so `Wormhole` provably
    // degrades to store-and-forward at build time (the runs must still
    // be deterministic — and byte-identical to the store-and-forward
    // mode's).
    let config = |engine, switching| transputer_apps::dbsearch::HypercubeConfig {
        net: transputer_net::NetworkConfig {
            engine,
            router: RouterConfig {
                switching,
                ..RouterConfig::default()
            },
            ..transputer_net::NetworkConfig::default()
        },
        ..routed_hypercube_smoke()
    };
    let mut modes = Vec::new();
    for switching in [Switching::StoreAndForward, Switching::Wormhole] {
        let mut base =
            DbSearch::build_routed_hypercube(config(Engine::Sliced, switching)).expect("builds");
        let base_report = base.run(1_000_000_000_000).expect("runs");
        assert!(base_report.all_correct(), "{switching:?} sliced reference");
        for workers in [1usize, 2, 3, 7] {
            let mut sim = DbSearch::build_routed_hypercube(config(Engine::Parallel, switching))
                .expect("builds");
            sim.network_mut().set_par_workers(workers);
            let report = sim.run(1_000_000_000_000).expect("runs");
            assert!(
                report.all_correct(),
                "routed {switching:?} parallel, {workers} workers"
            );
            assert_run_matches(
                &format!("routed {switching:?} parallel, {workers} workers"),
                &sim,
                &report,
                &base,
                &base_report,
            );
        }
        modes.push((base, base_report));
    }
    // The degrade is total: wormhole on a cyclic-CDG topology is not
    // merely deterministic but the same simulation as store-and-forward.
    let (ref sf, ref sf_report) = modes[0];
    let (ref worm, ref worm_report) = modes[1];
    assert_run_matches("hypercube wormhole==sf", worm, worm_report, sf, sf_report);
}

#[test]
fn e09_network_agrees_across_engines_under_faults() {
    // The same e09 topology with a seeded fault plan on every link:
    // packets are dropped, corrupted, and jittered, the robust protocol
    // retries them, and every engine must still land on bit-identical
    // outcomes — answers, arrival times, per-node cycle and instruction
    // counters, per-wire delivered bytes, memory images, and the link
    // fault counters themselves. The rate is high enough that the
    // retry machinery demonstrably fires (asserted below).
    let config = |engine| DbSearchConfig {
        records_per_node: 40,
        requests: 3,
        net: transputer_net::NetworkConfig {
            engine,
            fault: Some(FaultPlan::uniform(1985, 2e-3)),
            ..transputer_net::NetworkConfig::default()
        },
        ..DbSearchConfig::figure8()
    };

    let variants = [
        (Engine::Event, None),
        (Engine::Sliced, None),
        (Engine::Parallel, None),
        (Engine::Parallel, Some(1)),
        (Engine::Parallel, Some(2)),
        (Engine::Parallel, Some(3)),
        (Engine::Parallel, Some(7)),
    ];
    let mut runs = Vec::new();
    for (engine, workers) in variants {
        let mut sim = DbSearch::build(config(engine)).expect("builds");
        if let Some(w) = workers {
            sim.network_mut().set_par_workers(w);
        }
        let report = sim.run(1_000_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "{engine:?} ({workers:?} workers): answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        assert!(!report.degraded, "{engine:?}: retries must hide the faults");
        runs.push((engine, workers, sim, report));
    }

    let (_, _, ref base_sim, ref base_report) = runs[0];
    let base_net = base_sim.network();
    let base_retries: u64 = (0..base_net.len())
        .map(|id| base_net.node(id).stats().link_retries)
        .sum();
    let base_rx_errors: u64 = (0..base_net.len())
        .map(|id| base_net.node(id).stats().link_rx_errors)
        .sum();
    assert!(
        base_retries > 0,
        "the fault rate must be high enough to force retransmissions"
    );
    for (engine, workers, sim, report) in &runs[1..] {
        let label = format!("{engine:?} ({workers:?} workers)");
        assert_run_matches(&label, sim, report, base_sim, base_report);
        let net = sim.network();
        let retries: u64 = (0..net.len())
            .map(|id| net.node(id).stats().link_retries)
            .sum();
        let rx_errors: u64 = (0..net.len())
            .map(|id| net.node(id).stats().link_rx_errors)
            .sum();
        assert_eq!(retries, base_retries, "{label}: retry counters");
        assert_eq!(rx_errors, base_rx_errors, "{label}: rx-error counters");
    }
}

/// A wire on the answer path dies mid-run, in both switching modes.
/// The router rebuilds its tables and re-sends whatever the break cut
/// off (a parked packet, a queued packet, or a wormhole stream folded
/// back at the break), so delivery on the rerouted path is
/// at-least-once — DESIGN.md §11's documented duplicate-delivery
/// window. The collector's merge folds answer words in arrival order
/// with an order-independent sum, so what this test pins is that every
/// engine and worker count lands on the identical merged state,
/// duplicates included: same answers, same memory images, same
/// per-wire byte counters.
#[test]
fn routed_wire_death_merges_identically_across_engines() {
    // routed_smoke is the 3x3 grid with the collector on node 8's
    // south port; the east edge (1,2)-(2,2) carries answer traffic
    // into the exit corner, and killing it forces the reroute through
    // node 5 while answers are in flight.
    let dying = grid_edge_wire(3, 3, 1, 2, true);
    // 180 us lands inside the answer burst: the store-and-forward run
    // discovers the death mid-packet (retry exhaustion, partial bytes
    // already across), and the wormhole run has a live multi-node
    // stream cut at the break (asserted below via the drop counter).
    let kill_ns = 180_000;
    let config = |engine, switching| DbSearchConfig {
        net: transputer_net::NetworkConfig {
            engine,
            fault: Some(FaultPlan::uniform(77, 0.0).with_dead_link(dying, kill_ns)),
            router: RouterConfig {
                switching,
                ..RouterConfig::default()
            },
            ..transputer_net::NetworkConfig::default()
        },
        ..routed_smoke()
    };

    let variants = [
        (Engine::Event, None),
        (Engine::Sliced, None),
        (Engine::Parallel, None),
        (Engine::Parallel, Some(1)),
        (Engine::Parallel, Some(2)),
        (Engine::Parallel, Some(3)),
        (Engine::Parallel, Some(7)),
    ];
    for switching in [Switching::StoreAndForward, Switching::Wormhole] {
        let mut runs = Vec::new();
        for (engine, workers) in variants {
            let mut sim = DbSearch::build_routed(config(engine, switching)).expect("builds");
            if let Some(w) = workers {
                sim.network_mut().set_par_workers(w);
            }
            let report = sim.run(1_000_000_000_000).expect("runs");
            assert!(
                sim.network().any_link_failed(),
                "{switching:?} {engine:?}: the wire must actually die"
            );
            if switching == Switching::Wormhole {
                let stats = sim.network().router_stats().expect("routed build");
                assert!(
                    stats.packets_dropped > 0,
                    "{engine:?}: the break must cut a live wormhole stream"
                );
            }
            // The re-sent copies land in the collector's additive
            // order-independent merge; the answers still come out
            // right, and identically so under every engine below.
            assert!(
                report.all_correct(),
                "{switching:?} {engine:?} ({workers:?} workers): answers {:?} != expected {:?}",
                report.answers,
                report.expected
            );
            runs.push((engine, workers, sim, report));
        }
        let (_, _, ref base_sim, ref base_report) = runs[0];
        for (engine, workers, sim, report) in &runs[1..] {
            let label = format!("wire-death {switching:?} {engine:?} ({workers:?} workers)");
            assert_run_matches(&label, sim, report, base_sim, base_report);
        }
    }
}
