//! Disassembler: byte streams back to instruction listings.

use std::fmt;

use transputer::instr::{Direct, Op};

/// One decoded logical instruction (a prefix chain folded into the
/// instruction it extends, as the architecture intends — §3.2.7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Byte offset of the first (prefix) byte.
    pub offset: usize,
    /// The raw bytes.
    pub bytes: Vec<u8>,
    /// The final function code.
    pub fun: Direct,
    /// The accumulated operand (sign-extended from 32 bits).
    pub operand: i64,
    /// For `operate`: the decoded operation, if defined.
    pub op: Option<Op>,
}

impl Decoded {
    /// Render with full published names instead of mnemonics.
    pub fn full_name(&self) -> String {
        match (self.fun, self.op) {
            (Direct::Operate, Some(op)) => op.full_name().to_string(),
            (Direct::Operate, None) => format!("operate #{:X}", self.operand),
            (fun, _) => format!("{} {}", fun.full_name(), format_operand(self.operand)),
        }
    }
}

impl fmt::Display for Decoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.fun, self.op) {
            (Direct::Operate, Some(op)) => f.write_str(op.mnemonic()),
            (Direct::Operate, None) => write!(f, "opr #{:X}", self.operand),
            (fun, _) => write!(f, "{} {}", fun.mnemonic(), format_operand(self.operand)),
        }
    }
}

fn format_operand(v: i64) -> String {
    if (-255..=255).contains(&v) {
        format!("{v}")
    } else {
        // Wide operands read better in hex (addresses, magic values).
        if v < 0 {
            format!("-#{:X}", -v)
        } else {
            format!("#{v:X}")
        }
    }
}

/// Decode a byte stream into logical instructions. Decoding always
/// succeeds — undefined operations are reported in the listing rather
/// than failing, since any byte sequence is decodable as instructions.
pub fn disassemble(code: &[u8]) -> Vec<Decoded> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut oreg: u32 = 0;
    let mut start = 0;
    while i < code.len() {
        let byte = code[i];
        let fun = Direct::from_nibble(byte >> 4);
        let data = u32::from(byte & 0xF);
        i += 1;
        match fun {
            Direct::Prefix => {
                oreg = (oreg | data) << 4;
            }
            Direct::NegativePrefix => {
                oreg = !(oreg | data) << 4;
            }
            _ => {
                let operand_u = oreg | data;
                let operand = i64::from(operand_u as i32);
                let op = if fun == Direct::Operate {
                    Op::from_code(operand_u)
                } else {
                    None
                };
                out.push(Decoded {
                    offset: start,
                    bytes: code[start..i].to_vec(),
                    fun,
                    operand,
                    op,
                });
                oreg = 0;
                start = i;
            }
        }
    }
    out
}

/// Render a full listing with offsets and bytes, one instruction per
/// line — handy for debugging compiler output.
pub fn listing(code: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for d in disassemble(code) {
        let bytes: Vec<String> = d.bytes.iter().map(|b| format!("{b:02X}")).collect();
        let _ = writeln!(s, "{:06X}  {:<12} {}", d.offset, bytes.join(" "), d);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use transputer::instr::{encode, encode_op};

    #[test]
    fn simple_decode() {
        let d = disassemble(&[0x45, 0x82, 0xD1]);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].fun, Direct::LoadConstant);
        assert_eq!(d[0].operand, 5);
        assert_eq!(d[1].fun, Direct::AddConstant);
        assert_eq!(d[2].to_string(), "stl 1");
    }

    #[test]
    fn prefix_chains_fold() {
        let code = encode(Direct::LoadConstant, 0x754);
        let d = disassemble(&code);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].operand, 0x754);
        assert_eq!(d[0].bytes.len(), 3);
        assert_eq!(d[0].to_string(), "ldc #754");
    }

    #[test]
    fn negative_operands() {
        let code = encode(Direct::Jump, -3);
        let d = disassemble(&code);
        assert_eq!(d[0].operand, -3);
        assert_eq!(d[0].to_string(), "j -3");
    }

    #[test]
    fn operations_decode() {
        let code = encode_op(Op::Multiply);
        let d = disassemble(&code);
        assert_eq!(d[0].op, Some(Op::Multiply));
        assert_eq!(d[0].to_string(), "mul");
        assert_eq!(d[0].full_name(), "multiply");
    }

    #[test]
    fn undefined_operation_reported() {
        let d = disassemble(&[0xF1]); // opr 1? 0xF1 = opr 1: defined (lb)
        assert_eq!(d[0].op, Some(Op::LoadByte));
        let d = disassemble(&[0x21, 0xF1]); // opr 0x11: undefined
        assert_eq!(d[0].op, None);
        assert!(d[0].to_string().contains("opr"));
    }

    #[test]
    fn listing_contains_offsets() {
        let code = [0x45u8, 0x82];
        let text = listing(&code);
        assert!(text.contains("000000"));
        assert!(text.contains("ldc 5"));
        assert!(text.contains("adc 2"));
    }

    #[test]
    fn full_names() {
        let d = disassemble(&[0x45]);
        assert_eq!(d[0].full_name(), "load constant 5");
    }
}
