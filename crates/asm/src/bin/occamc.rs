//! `occamc` — compile (and optionally run) occam programs from the
//! command line.
//!
//! ```text
//! occamc [options] <file.occ>
//!   --run              execute on an emulated T424 and print globals
//!   --t222             target/execute the 16-bit part
//!   --listing          print the disassembly
//!   --bounds-checks    emit csub0 subscript checks
//!   --out <file>       write the raw code bytes
//!   --trace <n>        (with --run) print the last n executed operations
//!   --lint             run the channel-usage lints and bytecode
//!                      verifier (the default)
//!   --no-lint          skip them
//! ```
//!
//! With linting enabled (the default), occamc runs the
//! `transputer-analysis` checks after compilation: the occam
//! channel-usage rules over the source, and the I1 bytecode verifier
//! over the emitted code. Lint *errors* fail the build; warnings are
//! printed but do not.

use std::process::ExitCode;

use transputer::{Cpu, CpuConfig, HaltReason, RunOutcome};

struct Args {
    file: Option<String>,
    run: bool,
    t222: bool,
    listing: bool,
    bounds_checks: bool,
    lint: bool,
    out: Option<String>,
    trace: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        run: false,
        t222: false,
        listing: false,
        bounds_checks: false,
        lint: true,
        out: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--run" => args.run = true,
            "--t222" => args.t222 = true,
            "--listing" => args.listing = true,
            "--bounds-checks" => args.bounds_checks = true,
            "--lint" => args.lint = true,
            "--no-lint" => args.lint = false,
            "--out" => args.out = Some(it.next().ok_or("--out needs a file name")?),
            "--trace" => {
                let n = it.next().ok_or("--trace needs a count")?;
                args.trace = Some(n.parse().map_err(|_| "--trace needs a number")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: occamc [--run] [--t222] [--listing] [--bounds-checks] \
                            [--lint|--no-lint] [--out FILE] [--trace N] <file.occ>"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"))
            }
            file => {
                if args.file.replace(file.to_string()).is_some() {
                    return Err("exactly one source file expected".to_string());
                }
            }
        }
    }
    if args.file.is_none() {
        return Err("no source file given (try --help)".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let path = args.file.as_deref().expect("checked");
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("occamc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = occam::Options {
        bounds_checks: args.bounds_checks,
        word_length: if args.t222 {
            transputer::WordLength::Bits16
        } else {
            transputer::WordLength::Bits32
        },
        ..occam::Options::default()
    };
    let program = match occam::compile_with(&source, options) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.lint {
        for w in &program.warnings {
            eprintln!("{path}: {w}");
        }
        let mut diags = transputer_analysis::lint_source(&source);
        diags.extend(transputer_analysis::verify_program_cfg(&program));
        let mut failed = false;
        for d in &diags {
            eprintln!("{path}: {d}");
            failed |= d.is_error();
        }
        if failed {
            eprintln!("{path}: lint errors (use --no-lint to bypass)");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "{path}: {} bytes of code, {} words of frame, {} words below",
        program.code.len(),
        program.locals,
        program.depth
    );
    if args.listing {
        print!("{}", transputer_asm::dis::listing(&program.code));
    }
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &program.code) {
            eprintln!("occamc: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out}");
    }
    if args.run {
        let config = if args.t222 {
            CpuConfig::t222()
        } else {
            CpuConfig::t424()
        };
        let mut cpu = Cpu::new(config);
        if let Some(n) = args.trace {
            cpu.enable_trace(n);
        }
        let wptr = match program.load(&mut cpu) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("occamc: load failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match cpu.run(2_000_000_000) {
            Ok(RunOutcome::Halted(HaltReason::Stopped)) => {
                println!(
                    "halted after {} cycles ({} µs at 50 ns/cycle), {} instructions",
                    cpu.cycles(),
                    cpu.time_ns() / 1000,
                    cpu.stats().instructions
                );
            }
            Ok(other) => {
                eprintln!("occamc: program ended abnormally: {other:?}");
                if let Some(trace) = cpu.trace() {
                    eprint!("{}", trace.render());
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("occamc: {e}");
                return ExitCode::FAILURE;
            }
        }
        let mut names: Vec<&String> = program.globals.keys().collect();
        names.sort();
        for name in names {
            if let Ok(v) = program.read_global(&mut cpu, wptr, name) {
                println!("  {name} = {}", cpu.word_length().to_signed(v));
            }
        }
        if let Some(trace) = cpu.trace() {
            println!("--- trace (most recent last) ---");
            print!("{}", trace.render());
        }
    }
    ExitCode::SUCCESS
}
