//! `txdis` — disassemble a raw transputer code image.
//!
//! ```text
//! txdis [--full-names] <file>
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut full_names = false;
    let mut file = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--full-names" => full_names = true,
            "--help" | "-h" => {
                eprintln!("usage: txdis [--full-names] <file>");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                return ExitCode::FAILURE;
            }
            f => file = Some(f.to_string()),
        }
    }
    let Some(path) = file else {
        eprintln!("txdis: no input file");
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("txdis: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for d in transputer_asm::disassemble(&bytes) {
        let hex: Vec<String> = d.bytes.iter().map(|b| format!("{b:02X}")).collect();
        let text = if full_names {
            d.full_name()
        } else {
            d.to_string()
        };
        println!("{:06X}  {:<12} {}", d.offset, hex.join(" "), text);
    }
    ExitCode::SUCCESS
}
