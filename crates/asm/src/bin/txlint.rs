//! `txlint` — standalone front end for the `transputer-analysis`
//! checks.
//!
//! ```text
//! txlint [options] <file>
//!   <file>            raw I1 bytecode image (the default),
//!                     assembler source with --asm,
//!                     or occam source with --occam
//!   --asm             assemble <file> first, then verify the bytes
//!   --occam           parse and compile <file> as occam: run the
//!                     channel-usage lints and verify the emitted code
//!   --locals <n>      workspace words at/above the entry Wptr
//!   --depth <n>       workspace words below the entry Wptr
//!   --deny-warnings   treat warnings as errors (exit 2)
//!   --strict          synonym for --deny-warnings
//!   --cfg-dot         print the recovered control-flow graph as
//!                     Graphviz DOT instead of lint output
//!   --cost            print the static cycle-cost prediction (or why
//!                     the image is unpredictable)
//!   --deadlock        report only `par-deadlock` findings (occam)
//! ```
//!
//! Diagnostics are printed one per line as
//! `severity: message [code] at span`. Exit codes are stable so
//! scripts and CI can gate on them:
//!
//! * `0` — clean: no findings,
//! * `1` — warnings only (becomes `2` under `--deny-warnings`),
//! * `2` — errors, bad usage, or unreadable input.
//!
//! The bytecode pass is the CFG-based verifier
//! ([`transputer_analysis::verify_bytecode_cfg`]), whose findings are
//! a superset of the linear pass. The workspace-bounds check needs a
//! frame shape: for occam input it comes from the compiler, for raw
//! or assembled images pass `--locals`/`--depth` (otherwise that
//! check is skipped).

use std::process::ExitCode;

use transputer::WordLength;
use transputer_analysis::cfg::Cfg;
use transputer_analysis::{cost, CodeShape, Diagnostic};

const EXIT_CLEAN: u8 = 0;
const EXIT_WARNINGS: u8 = 1;
const EXIT_ERRORS: u8 = 2;

#[derive(PartialEq)]
enum Input {
    Raw,
    Asm,
    Occam,
}

struct Args {
    file: Option<String>,
    input: Input,
    locals: Option<u32>,
    depth: Option<u32>,
    deny_warnings: bool,
    cfg_dot: bool,
    cost: bool,
    deadlock_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        input: Input::Raw,
        locals: None,
        depth: None,
        deny_warnings: false,
        cfg_dot: false,
        cost: false,
        deadlock_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--asm" => args.input = Input::Asm,
            "--occam" => args.input = Input::Occam,
            "--strict" | "--deny-warnings" => args.deny_warnings = true,
            "--cfg-dot" => args.cfg_dot = true,
            "--cost" => args.cost = true,
            "--deadlock" => args.deadlock_only = true,
            "--locals" => {
                let n = it.next().ok_or("--locals needs a count")?;
                args.locals = Some(n.parse().map_err(|_| "--locals needs a number")?);
            }
            "--depth" => {
                let n = it.next().ok_or("--depth needs a count")?;
                args.depth = Some(n.parse().map_err(|_| "--depth needs a number")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: txlint [--asm|--occam] [--locals N] [--depth N] [--deny-warnings] \
                     [--cfg-dot] [--cost] [--deadlock] <file>"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"))
            }
            file => {
                if args.file.replace(file.to_string()).is_some() {
                    return Err("exactly one input file expected".to_string());
                }
            }
        }
    }
    if args.file.is_none() {
        return Err("no input file given (try --help)".to_string());
    }
    Ok(args)
}

/// What the front end produced for the back half of the run.
struct Analyzed {
    diags: Vec<Diagnostic>,
    /// The compiled/assembled/raw image, when there is one.
    code: Option<Vec<u8>>,
    /// Frame shape for the image, when known.
    shape: Option<CodeShape>,
    /// Counted-loop metadata (occam input only).
    loops: Vec<cost::CountedLoop>,
}

fn print_cost(path: &str, cfg: &Cfg, loops: &[cost::CountedLoop]) {
    match cost::analyze_cost(cfg, loops, WordLength::Bits32) {
        Ok(report) => {
            println!(
                "{path}: predicted {} cycles, {} instruction bytes, {} operations \
                 (CPI {:.3})",
                report.cycles,
                report.instruction_bytes,
                report.operations,
                report.cpi()
            );
            for b in &report.blocks {
                println!(
                    "{path}:   block {:>3}  {:#06x}..{:#06x}  freq {:>8}  {:>10} cycles",
                    b.block, b.start, b.end, b.freq, b.cycles
                );
            }
        }
        Err(e) => println!("{path}: cost model refused: {e}"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_ERRORS);
        }
    };
    let path = args.file.as_deref().expect("checked");

    let arg_shape = match (args.locals, args.depth) {
        (None, None) => None,
        (locals, depth) => Some(CodeShape {
            locals: locals.unwrap_or(0),
            depth: depth.unwrap_or(0),
        }),
    };

    let analyzed: Analyzed = match args.input {
        Input::Raw => {
            let code = match std::fs::read(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("txlint: cannot read {path}: {e}");
                    return ExitCode::from(EXIT_ERRORS);
                }
            };
            Analyzed {
                diags: Vec::new(),
                code: Some(code),
                shape: arg_shape,
                loops: Vec::new(),
            }
        }
        Input::Asm => {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("txlint: cannot read {path}: {e}");
                    return ExitCode::from(EXIT_ERRORS);
                }
            };
            let code = match transputer_asm::assemble(&source) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::from(EXIT_ERRORS);
                }
            };
            Analyzed {
                diags: Vec::new(),
                code: Some(code),
                shape: arg_shape,
                loops: Vec::new(),
            }
        }
        Input::Occam => {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("txlint: cannot read {path}: {e}");
                    return ExitCode::from(EXIT_ERRORS);
                }
            };
            let mut diags = transputer_analysis::lint_source(&source);
            match occam::compile(&source) {
                Ok(program) => {
                    diags.extend(program.warnings.iter().map(|w| {
                        Diagnostic::warning(
                            "par-usage",
                            transputer_analysis::Span::line(w.line),
                            w.message.clone(),
                        )
                    }));
                    let shape = CodeShape::of(&program);
                    let loops = program.loops.iter().map(cost::CountedLoop::from).collect();
                    Analyzed {
                        diags,
                        code: Some(program.code),
                        shape: Some(shape),
                        loops,
                    }
                }
                Err(e) => {
                    // A parse failure is already in `diags`; other
                    // compile phases surface here.
                    if !diags.iter().any(|d| d.code == "parse") {
                        eprintln!("{path}: {e}");
                    }
                    Analyzed {
                        diags,
                        code: None,
                        shape: None,
                        loops: Vec::new(),
                    }
                }
            }
        }
    };

    let mut diags = analyzed.diags;
    if let Some(code) = &analyzed.code {
        let cfg = Cfg::recover_with_shape(code, analyzed.shape.as_ref());
        if args.cfg_dot {
            print!("{}", cfg.to_dot(path));
            return ExitCode::from(EXIT_CLEAN);
        }
        if args.cost {
            print_cost(path, &cfg, &analyzed.loops);
        }
        diags.extend(cfg.diags);
        transputer_analysis::diag::sort(&mut diags);
    } else if args.cfg_dot || args.cost {
        eprintln!("txlint: {path} did not compile; no code to analyze");
        return ExitCode::from(EXIT_ERRORS);
    }

    if args.deadlock_only {
        diags.retain(|d| d.code == "par-deadlock");
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for d in &diags {
        println!("{path}: {d}");
        if d.is_error() {
            errors += 1;
        } else {
            warnings += 1;
        }
    }
    if errors + warnings > 0 {
        println!("{path}: {errors} error(s), {warnings} warning(s)");
    } else {
        println!("{path}: ok");
    }
    if errors > 0 || (args.deny_warnings && warnings > 0) {
        ExitCode::from(EXIT_ERRORS)
    } else if warnings > 0 {
        ExitCode::from(EXIT_WARNINGS)
    } else {
        ExitCode::from(EXIT_CLEAN)
    }
}
