//! `txlint` — standalone front end for the `transputer-analysis`
//! checks.
//!
//! ```text
//! txlint [options] <file>
//!   <file>            raw I1 bytecode image (the default),
//!                     assembler source with --asm,
//!                     or occam source with --occam
//!   --asm             assemble <file> first, then verify the bytes
//!   --occam           parse and compile <file> as occam: run the
//!                     channel-usage lints and verify the emitted code
//!   --locals <n>      workspace words at/above the entry Wptr
//!   --depth <n>       workspace words below the entry Wptr
//!   --strict          exit nonzero on warnings too
//! ```
//!
//! Diagnostics are printed one per line as
//! `severity: message [code] at span`. The exit code is nonzero when
//! any error (or, with `--strict`, any finding at all) is reported.
//! The workspace-bounds check needs a frame shape: for occam input it
//! comes from the compiler, for raw or assembled images pass
//! `--locals`/`--depth` (otherwise that check is skipped).

use std::process::ExitCode;

use transputer_analysis::{verifier, CodeShape, Diagnostic};

#[derive(PartialEq)]
enum Input {
    Raw,
    Asm,
    Occam,
}

struct Args {
    file: Option<String>,
    input: Input,
    locals: Option<u32>,
    depth: Option<u32>,
    strict: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        input: Input::Raw,
        locals: None,
        depth: None,
        strict: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--asm" => args.input = Input::Asm,
            "--occam" => args.input = Input::Occam,
            "--strict" => args.strict = true,
            "--locals" => {
                let n = it.next().ok_or("--locals needs a count")?;
                args.locals = Some(n.parse().map_err(|_| "--locals needs a number")?);
            }
            "--depth" => {
                let n = it.next().ok_or("--depth needs a count")?;
                args.depth = Some(n.parse().map_err(|_| "--depth needs a number")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: txlint [--asm|--occam] [--locals N] [--depth N] [--strict] <file>"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"))
            }
            file => {
                if args.file.replace(file.to_string()).is_some() {
                    return Err("exactly one input file expected".to_string());
                }
            }
        }
    }
    if args.file.is_none() {
        return Err("no input file given (try --help)".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let path = args.file.as_deref().expect("checked");

    let shape = match (args.locals, args.depth) {
        (None, None) => None,
        (locals, depth) => Some(CodeShape {
            locals: locals.unwrap_or(0),
            depth: depth.unwrap_or(0),
        }),
    };

    let diags: Vec<Diagnostic> = match args.input {
        Input::Raw => {
            let code = match std::fs::read(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("txlint: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            verifier::verify_bytecode(&code, shape.as_ref())
        }
        Input::Asm => {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("txlint: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let code = match transputer_asm::assemble(&source) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            verifier::verify_bytecode(&code, shape.as_ref())
        }
        Input::Occam => {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("txlint: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut diags = transputer_analysis::lint_source(&source);
            match occam::compile(&source) {
                Ok(program) => {
                    diags.extend(program.warnings.iter().map(|w| {
                        Diagnostic::warning(
                            "par-usage",
                            transputer_analysis::Span::line(w.line),
                            w.message.clone(),
                        )
                    }));
                    diags.extend(verifier::verify_program(&program));
                }
                Err(e) => {
                    // A parse failure is already in `diags`; other
                    // compile phases surface here.
                    if !diags.iter().any(|d| d.code == "parse") {
                        eprintln!("{path}: {e}");
                    }
                }
            }
            diags
        }
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for d in &diags {
        println!("{path}: {d}");
        if d.is_error() {
            errors += 1;
        } else {
            warnings += 1;
        }
    }
    if errors + warnings > 0 {
        println!("{path}: {errors} error(s), {warnings} warning(s)");
    } else {
        println!("{path}: ok");
    }
    if errors > 0 || (args.strict && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
