//! # transputer-asm
//!
//! Assembler and disassembler for the I1 instruction set.
//!
//! The paper notes that "it is not common practice to abbreviate the
//! names of the instructions, or to use mnemonics ... using full names
//! aids readability" (§3.1). The assembler therefore accepts both the
//! published full names and the conventional short mnemonics:
//!
//! ```
//! use transputer_asm::assemble;
//!
//! let a = assemble(
//!     "load constant 0\n\
//!      store local 1",
//! )?;
//! let b = assemble("ldc 0\nstl 1")?;
//! assert_eq!(a, b);
//! # Ok::<(), transputer_asm::AsmError>(())
//! ```
//!
//! Labels (`name:`) and label operands (`@name`) are supported for the
//! jump, conditional-jump and call instructions, with operands measured
//! — as the hardware requires — from the end of the instruction, and
//! sized by iterative relaxation exactly like the occam compiler's
//! emitter.

pub mod dis;

pub use dis::{disassemble, Decoded};

use std::collections::HashMap;
use std::fmt;

use transputer::instr::{encode_into, encoded_len, Direct, Op};

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: u32, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

#[derive(Debug, Clone)]
enum Stmt {
    Direct { fun: Direct, operand: OperandSpec },
    Operation(Op),
    Byte(u8),
    Label(String),
}

#[derive(Debug, Clone)]
enum OperandSpec {
    Imm(i64),
    LabelRel(String),
}

/// Assemble a program.
///
/// One statement per line; `--` or `;` starts a comment. A statement is:
/// a label (`name:`), a byte directive (`.byte n`), or an instruction —
/// a full name or mnemonic, with a numeric operand (decimal or `#hex`)
/// for the direct functions, or `@label` for `j`, `cj` and `call`.
///
/// # Errors
///
/// Returns [`AsmError`] for unknown instructions, malformed operands or
/// undefined labels.
pub fn assemble(source: &str) -> Result<Vec<u8>, AsmError> {
    let stmts = parse(source)?;
    lower(&stmts)
}

fn parse(source: &str) -> Result<Vec<Stmt>, AsmError> {
    // Tables from the instruction definitions: longest names first so
    // "load non local pointer" wins over "load non local".
    let mut directs: Vec<(String, Direct)> = Direct::ALL
        .iter()
        .flat_map(|d| {
            [
                (d.full_name().to_string(), *d),
                (d.mnemonic().to_string(), *d),
            ]
        })
        .collect();
    directs.sort_by_key(|(n, _)| std::cmp::Reverse(n.len()));
    let ops: HashMap<String, Op> = Op::ALL
        .iter()
        .flat_map(|o| {
            [
                (o.full_name().to_string(), *o),
                (o.mnemonic().to_string(), *o),
            ]
        })
        .collect();

    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let text = raw
            .split("--")
            .next()
            .unwrap_or("")
            .split(';')
            .next()
            .unwrap_or("")
            .trim();
        if text.is_empty() {
            continue;
        }
        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(err(line_no, format!("malformed label `{label}`")));
            }
            out.push(Stmt::Label(label.to_string()));
            continue;
        }
        if let Some(rest) = text.strip_prefix(".byte") {
            let v = parse_number(rest.trim(), line_no)?;
            if !(0..=255).contains(&v) {
                return Err(err(line_no, format!("byte value {v} out of range")));
            }
            out.push(Stmt::Byte(v as u8));
            continue;
        }
        if let Some(rest) = text.strip_prefix(".word") {
            // Little-endian 32-bit datum, as the memory stores words.
            let v = parse_number(rest.trim(), line_no)?;
            if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&v) {
                return Err(err(line_no, format!("word value {v} out of range")));
            }
            for b in (v as u32).to_le_bytes() {
                out.push(Stmt::Byte(b));
            }
            continue;
        }
        // Try direct functions (longest name first), expecting an
        // operand after the name.
        let lower_text = text.to_ascii_lowercase();
        let mut matched = false;
        for (name, fun) in &directs {
            if let Some(rest) = lower_text.strip_prefix(name.as_str()) {
                if !rest.is_empty() && !rest.starts_with(' ') {
                    continue; // prefix of a longer word
                }
                let rest = rest.trim();
                let operand = if let Some(label) = rest.strip_prefix('@') {
                    if !matches!(fun, Direct::Jump | Direct::ConditionalJump | Direct::Call) {
                        return Err(err(
                            line_no,
                            "label operands are only supported on jump, conditional jump and call",
                        ));
                    }
                    OperandSpec::LabelRel(label.trim().to_string())
                } else if rest.is_empty() {
                    return Err(err(line_no, format!("`{name}` needs an operand")));
                } else {
                    OperandSpec::Imm(parse_number(rest, line_no)?)
                };
                out.push(Stmt::Direct { fun: *fun, operand });
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        // Operations take no operand.
        if let Some(op) = ops.get(&lower_text) {
            out.push(Stmt::Operation(*op));
            continue;
        }
        return Err(err(line_no, format!("unknown instruction `{text}`")));
    }
    Ok(out)
}

fn parse_number(s: &str, line: u32) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b.trim()),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix('#') {
        i64::from_str_radix(hex, 16)
    } else if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("malformed number `{s}`")))?;
    Ok(if neg { -v } else { v })
}

fn lower(stmts: &[Stmt]) -> Result<Vec<u8>, AsmError> {
    // Initial sizes; relax until label distances stabilise.
    let n = stmts.len();
    let mut sizes = vec![0usize; n];
    for (i, s) in stmts.iter().enumerate() {
        sizes[i] = match s {
            Stmt::Direct {
                operand: OperandSpec::Imm(v),
                ..
            } => encoded_len(*v),
            Stmt::Direct { .. } => 1,
            Stmt::Operation(op) => encoded_len(op.code() as i64),
            Stmt::Byte(_) => 1,
            Stmt::Label(_) => 0,
        };
    }
    let mut labels: HashMap<&str, usize> = HashMap::new();
    loop {
        let mut addr = vec![0usize; n + 1];
        for i in 0..n {
            addr[i + 1] = addr[i] + sizes[i];
        }
        labels.clear();
        for (i, s) in stmts.iter().enumerate() {
            if let Stmt::Label(name) = s {
                labels.insert(name.as_str(), addr[i]);
            }
        }
        let mut changed = false;
        for (i, s) in stmts.iter().enumerate() {
            if let Stmt::Direct {
                operand: OperandSpec::LabelRel(name),
                ..
            } = s
            {
                let target = *labels
                    .get(name.as_str())
                    .ok_or_else(|| err(0, format!("undefined label `{name}`")))?;
                let v = target as i64 - addr[i + 1] as i64;
                let need = encoded_len(v);
                if need > sizes[i] {
                    sizes[i] = need;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut addr = vec![0usize; n + 1];
    for i in 0..n {
        addr[i + 1] = addr[i] + sizes[i];
    }
    let mut out = Vec::with_capacity(addr[n]);
    for (i, s) in stmts.iter().enumerate() {
        match s {
            Stmt::Label(_) => {}
            Stmt::Byte(b) => out.push(*b),
            Stmt::Operation(op) => {
                encode_into(Direct::Operate, op.code() as i64, &mut out);
            }
            Stmt::Direct { fun, operand } => {
                let v = match operand {
                    OperandSpec::Imm(v) => *v,
                    OperandSpec::LabelRel(name) => {
                        labels[name.as_str()] as i64 - addr[i + 1] as i64
                    }
                };
                encode_into(*fun, v, &mut out);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_names_and_mnemonics_agree() {
        let a = assemble("load constant 5\nadd constant 2\nstore local 1").unwrap();
        let b = assemble("ldc 5\nadc 2\nstl 1").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, vec![0x45, 0x82, 0xD1]);
    }

    #[test]
    fn operations() {
        let code = assemble("add\nmultiply\ninput message").unwrap();
        assert_eq!(code, vec![0xF5, 0x25, 0xF3, 0xF7]);
    }

    #[test]
    fn prefix_encoding() {
        // The paper's #754 example.
        let code = assemble("load constant #754").unwrap();
        assert_eq!(code, vec![0x27, 0x25, 0x44]);
        let neg = assemble("ldc -1").unwrap();
        assert_eq!(neg, vec![0x60, 0x4F]);
    }

    #[test]
    fn labels_and_jumps() {
        let code = assemble(
            "ldc 0\n\
             loop:\n\
             adc 1\n\
             j @loop",
        )
        .unwrap();
        // adc 1 (1 byte) + j back: distance -(1+2) = -3 → nfix, j.
        assert_eq!(code, vec![0x40, 0x81, 0x60, 0x0D]);
    }

    #[test]
    fn forward_label() {
        let code = assemble("cj @end\nldc 1\nend:\nhaltsim").unwrap();
        assert_eq!(code[0], 0xA1, "cj skips the 1-byte ldc");
    }

    #[test]
    fn comments_and_blank_lines() {
        let code = assemble("-- a comment\nldc 1 ; trailing\n\n").unwrap();
        assert_eq!(code, vec![0x41]);
    }

    #[test]
    fn byte_directive() {
        assert_eq!(assemble(".byte 255\n.byte #10").unwrap(), vec![0xFF, 0x10]);
    }

    #[test]
    fn word_directive_is_little_endian() {
        assert_eq!(
            assemble(".word #01020304").unwrap(),
            vec![0x04, 0x03, 0x02, 0x01]
        );
        assert_eq!(assemble(".word -1").unwrap(), vec![0xFF; 4]);
        assert!(assemble(".word 4294967296").is_err());
    }

    #[test]
    fn longest_name_wins() {
        // "load non local pointer 1" must not parse as "load non local".
        let a = assemble("load non local pointer 1").unwrap();
        let b = assemble("ldnlp 1").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, vec![0x51]);
    }

    #[test]
    fn errors() {
        assert!(assemble("frobnicate 1").is_err());
        assert!(assemble("ldc").is_err());
        assert!(assemble("ldc zork").is_err());
        assert!(assemble("j @nowhere").is_err());
        assert!(assemble(".byte 300").is_err());
        assert!(
            assemble("ldc @label\nlabel:").is_err(),
            "ldc rejects labels"
        );
    }

    #[test]
    fn assembled_code_runs() {
        use transputer::{Cpu, CpuConfig};
        let code = assemble(
            "ldc 6\n\
             ldc 7\n\
             multiply\n\
             haltsim",
        )
        .unwrap();
        let mut cpu = Cpu::new(CpuConfig::t424());
        cpu.load_boot_program(&code).unwrap();
        cpu.run(10_000).unwrap();
        assert_eq!(cpu.areg(), 42);
    }

    #[test]
    fn roundtrip_through_disassembler() {
        let code = assemble("ldc #754\nstl 1\nldl 1\nadc 2\nmul\nhaltsim").unwrap();
        let decoded = crate::disassemble(&code);
        let text: Vec<String> = decoded.iter().map(|d| d.to_string()).collect();
        let reassembled = assemble(&text.join("\n")).unwrap();
        assert_eq!(code, reassembled);
    }
}
