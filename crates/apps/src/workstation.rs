//! The personal workstation of Figure 6.
//!
//! "One transputer, the applications processor, accepts the user's
//! commands and carries out the appropriate processing, calling on two
//! other transputers, which look after a disk system and a graphics
//! display system respectively." The paper stresses that "the
//! architecture permits a number of variations on the implementation of
//! the workstation to be made without major redesign" — "the disk
//! controller can double as the applications processor", or everything
//! can run on one transputer.
//!
//! That is exactly what this module demonstrates: the *same* occam
//! `PROC`s (application, disk server, graphics server) are configured
//! onto three transputers, two, or one, switching channels between link
//! interfaces and in-memory words purely with `PLACE` — the process code
//! is untouched (§2.1: a program "may be configured for execution by a
//! single transputer (low cost), or for execution by a network of
//! transputers (high performance)").

use transputer::WordLength;
use transputer_net::topology::{PORT_EAST, PORT_WEST};
use transputer_net::{Network, NetworkBuilder, NetworkConfig, NodeId, SimError};

/// How the three logical processes are placed onto transputers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// One transputer runs application, disk and graphics concurrently.
    One,
    /// The disk controller doubles as the applications processor; a
    /// second transputer drives graphics (the paper's variation).
    Two,
    /// The full Figure 6 system: three functionally-distributed
    /// transputers.
    Three,
}

impl Placement {
    /// All placements, smallest first.
    pub const ALL: [Placement; 3] = [Placement::One, Placement::Two, Placement::Three];

    /// Number of transputers used.
    pub fn transputers(self) -> usize {
        match self {
            Placement::One => 1,
            Placement::Two => 2,
            Placement::Three => 3,
        }
    }
}

/// Workstation workload parameters.
#[derive(Debug, Clone)]
pub struct WorkstationConfig {
    /// Commands the application issues.
    pub commands: u32,
    /// Disk service time per request, in low-priority timer ticks
    /// (64 µs each at the nominal clock — the tick rate of §2.2.2's
    /// priority-1 timer).
    pub disk_service_ticks: u32,
    /// Graphics render time per request, in low-priority timer ticks.
    pub render_ticks: u32,
    /// Application compute per command: iterations of a checksum loop
    /// (models "carries out the appropriate processing").
    pub compute_iters: u32,
    /// Network configuration.
    pub net: NetworkConfig,
}

impl Default for WorkstationConfig {
    fn default() -> Self {
        WorkstationConfig {
            commands: 10,
            disk_service_ticks: 40,
            render_ticks: 25,
            compute_iters: 60,
            net: NetworkConfig::default(),
        }
    }
}

/// A built workstation simulation.
#[derive(Debug)]
pub struct Workstation {
    net: Network,
    app_node: NodeId,
    nodes: Vec<NodeId>,
    check_addr: u32,
    placement: Placement,
    config: WorkstationConfig,
}

/// Results of a workstation run.
#[derive(Debug, Clone)]
pub struct WorkstationReport {
    /// Which placement ran.
    pub placement: Placement,
    /// Commands completed.
    pub commands: u32,
    /// Total simulated time.
    pub total_ns: u64,
    /// Nanoseconds per command.
    pub ns_per_command: u64,
    /// Application checksum (placement-independent correctness witness).
    pub checksum: u32,
    /// Instructions executed per transputer.
    pub instructions_per_node: Vec<u64>,
    /// Per-wire link utilisation (fraction of elapsed time each
    /// direction spent transmitting).
    pub wire_utilization: Vec<(f64, f64)>,
}

/// The three logical processes, shared by every placement. The channels
/// are `PROC` parameters, so the same text runs whether they are wired to
/// memory words or to link interfaces (§3.2.10).
fn logical_procs(cfg: &WorkstationConfig) -> String {
    format!(
        "PROC app (CHAN dreq, drsp, greq, grsp, VAR check) =\n\
         \x20 VAR block, ack, acc:\n\
         \x20 SEQ\n\
         \x20\x20\x20 check := 0\n\
         \x20\x20\x20 SEQ k = [0 FOR {commands}]\n\
         \x20\x20\x20\x20\x20 SEQ\n\
         \x20\x20\x20\x20\x20\x20\x20 dreq ! k\n\
         \x20\x20\x20\x20\x20\x20\x20 drsp ? block\n\
         \x20\x20\x20\x20\x20\x20\x20 acc := block\n\
         \x20\x20\x20\x20\x20\x20\x20 SEQ i = [0 FOR {iters}]\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20 acc := (acc * 3) + i\n\
         \x20\x20\x20\x20\x20\x20\x20 greq ! acc\n\
         \x20\x20\x20\x20\x20\x20\x20 grsp ? ack\n\
         \x20\x20\x20\x20\x20\x20\x20 check := check + ack\n\
         :\n\
         PROC disk (CHAN req, rsp) =\n\
         \x20 VAR b, now:\n\
         \x20 SEQ k = [0 FOR {commands}]\n\
         \x20\x20\x20 SEQ\n\
         \x20\x20\x20\x20\x20 req ? b\n\
         \x20\x20\x20\x20\x20 TIME ? now\n\
         \x20\x20\x20\x20\x20 TIME ? AFTER now + {disk}\n\
         \x20\x20\x20\x20\x20 rsp ! (b * 7) + 1\n\
         :\n\
         PROC graphics (CHAN req, rsp) =\n\
         \x20 VAR cmd, now:\n\
         \x20 SEQ k = [0 FOR {commands}]\n\
         \x20\x20\x20 SEQ\n\
         \x20\x20\x20\x20\x20 req ? cmd\n\
         \x20\x20\x20\x20\x20 TIME ? now\n\
         \x20\x20\x20\x20\x20 TIME ? AFTER now + {render}\n\
         \x20\x20\x20\x20\x20 rsp ! cmd >< #55\n\
         :\n",
        commands = cfg.commands,
        iters = cfg.compute_iters,
        disk = cfg.disk_service_ticks,
        render = cfg.render_ticks,
    )
}

/// The occam program text loaded onto each transputer of a placement,
/// application node first — the exact sources [`Workstation::build`]
/// compiles. Public so the corpus lint gate can run the static checks
/// over every program the simulation executes.
pub fn placement_sources(placement: Placement, config: &WorkstationConfig) -> Vec<String> {
    let procs = logical_procs(config);
    match placement {
        Placement::One => vec![format!(
            "{procs}\
             VAR check:\n\
             CHAN dreq, drsp, greq, grsp:\n\
             PAR\n\
             \x20 app (dreq, drsp, greq, grsp, check)\n\
             \x20 disk (dreq, drsp)\n\
             \x20 graphics (greq, grsp)\n"
        )],
        Placement::Two => {
            let main_ad = format!(
                "{procs}\
                 VAR check:\n\
                 CHAN dreq, drsp:\n\
                 CHAN greq, grsp:\n\
                 PLACE greq AT {go}:\n\
                 PLACE grsp AT {gi}:\n\
                 PAR\n\
                 \x20 app (dreq, drsp, greq, grsp, check)\n\
                 \x20 disk (dreq, drsp)\n",
                go = occam::places::link_out(PORT_EAST as u32),
                gi = occam::places::link_in(PORT_EAST as u32),
            );
            let main_g = format!(
                "{procs}\
                 CHAN req, rsp:\n\
                 PLACE req AT {ri}:\n\
                 PLACE rsp AT {ro}:\n\
                 graphics (req, rsp)\n",
                ri = occam::places::link_in(PORT_WEST as u32),
                ro = occam::places::link_out(PORT_WEST as u32),
            );
            vec![main_ad, main_g]
        }
        Placement::Three => {
            let main_a = format!(
                "{procs}\
                 VAR check:\n\
                 CHAN dreq, drsp, greq, grsp:\n\
                 PLACE dreq AT {dout}:\n\
                 PLACE drsp AT {din}:\n\
                 PLACE greq AT {gout}:\n\
                 PLACE grsp AT {gin}:\n\
                 app (dreq, drsp, greq, grsp, check)\n",
                dout = occam::places::link_out(PORT_WEST as u32),
                din = occam::places::link_in(PORT_WEST as u32),
                gout = occam::places::link_out(PORT_EAST as u32),
                gin = occam::places::link_in(PORT_EAST as u32),
            );
            let main_d = format!(
                "{procs}\
                 CHAN req, rsp:\n\
                 PLACE req AT {ri}:\n\
                 PLACE rsp AT {ro}:\n\
                 disk (req, rsp)\n",
                ri = occam::places::link_in(PORT_EAST as u32),
                ro = occam::places::link_out(PORT_EAST as u32),
            );
            let main_g = format!(
                "{procs}\
                 CHAN req, rsp:\n\
                 PLACE req AT {ri}:\n\
                 PLACE rsp AT {ro}:\n\
                 graphics (req, rsp)\n",
                ri = occam::places::link_in(PORT_WEST as u32),
                ro = occam::places::link_out(PORT_WEST as u32),
            );
            vec![main_a, main_d, main_g]
        }
    }
}

impl Workstation {
    /// Build a workstation with the given placement.
    ///
    /// # Errors
    ///
    /// Propagates compile and load failures.
    pub fn build(
        placement: Placement,
        config: WorkstationConfig,
    ) -> Result<Workstation, Box<dyn std::error::Error>> {
        let word = WordLength::Bits32;
        let mut b = NetworkBuilder::new(config.net.clone());
        let nodes: Vec<NodeId> = match placement {
            Placement::One => vec![b.add_node()],
            Placement::Two => {
                let ad = b.add_node();
                let g = b.add_node();
                b.connect((ad, PORT_EAST), (g, PORT_WEST));
                vec![ad, g]
            }
            Placement::Three => {
                let a = b.add_node();
                let d = b.add_node();
                let g = b.add_node();
                b.connect((a, PORT_WEST), (d, PORT_EAST));
                b.connect((a, PORT_EAST), (g, PORT_WEST));
                vec![a, d, g]
            }
        };
        let app_node = nodes[0];
        let net: Network = b.build();
        let program_srcs: Vec<(NodeId, String)> = nodes
            .iter()
            .copied()
            .zip(placement_sources(placement, &config))
            .collect();

        let mut net = net;
        let mut check_addr = 0;
        for (node, src) in &program_srcs {
            let program = occam::compile(src)
                .map_err(|e| format!("workstation program failed to compile: {e}\n{src}"))?;
            let cpu = net.node_mut(*node);
            let wptr = program.load(cpu)?;
            if *node == app_node {
                check_addr = program
                    .global_addr(word, wptr, "check")
                    .ok_or("application program lacks check variable")?;
            }
        }

        Ok(Workstation {
            net,
            app_node,
            nodes,
            check_addr,
            placement,
            config,
        })
    }

    /// Run to completion.
    ///
    /// # Errors
    ///
    /// Propagates simulation faults and budget exhaustion.
    pub fn run(mut self, budget_ns: u64) -> Result<WorkstationReport, SimError> {
        self.net.run_until_all_halted(budget_ns)?;
        let checksum = self
            .net
            .node(self.app_node)
            .inspect_word(self.check_addr)
            .unwrap_or(0);
        let total_ns = self.net.time_ns();
        let instructions_per_node = self
            .nodes
            .iter()
            .map(|n| self.net.node(*n).stats().instructions)
            .collect();
        let wire_utilization = (0..self.net.wire_count())
            .map(|w| self.net.wire_utilization(w))
            .collect();
        Ok(WorkstationReport {
            placement: self.placement,
            commands: self.config.commands,
            total_ns,
            ns_per_command: total_ns / u64::from(self.config.commands.max(1)),
            checksum,
            instructions_per_node,
            wire_utilization,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkstationConfig {
        WorkstationConfig {
            commands: 3,
            disk_service_ticks: 10,
            render_ticks: 5,
            compute_iters: 8,
            net: NetworkConfig::default(),
        }
    }

    #[test]
    fn all_placements_agree_on_the_checksum() {
        // The paper's configuration claim: identical logical behaviour
        // whatever the placement.
        let mut checksums = Vec::new();
        for placement in Placement::ALL {
            let ws = Workstation::build(placement, small()).expect("builds");
            let report = ws.run(10_000_000_000).expect("runs");
            assert_eq!(report.commands, 3);
            assert!(report.total_ns > 0);
            checksums.push(report.checksum);
        }
        assert_eq!(checksums[0], checksums[1]);
        assert_eq!(checksums[1], checksums[2]);
    }

    #[test]
    fn three_way_placement_uses_three_transputers() {
        let ws = Workstation::build(Placement::Three, small()).expect("builds");
        let report = ws.run(10_000_000_000).expect("runs");
        assert_eq!(report.instructions_per_node.len(), 3);
        for (i, count) in report.instructions_per_node.iter().enumerate() {
            assert!(*count > 0, "node {i} executed nothing");
        }
    }
}
