//! # transputer-apps
//!
//! The applications sketched in §4 of the ISCA 1985 transputer paper,
//! built on the full stack (occam → I1 code → emulated transputers →
//! bit-level links):
//!
//! * [`dbsearch`] — the concurrent database search of Figure 8 (a square
//!   array of transputers, requests entering one corner, answers leaving
//!   the other) and the 128-transputer board analysis of §4.2.
//! * [`workstation`] — the personal workstation of Figure 6 (application,
//!   disk and graphics transputers), including the paper's
//!   re-configuration claim: the same logical occam processes placed on
//!   three, two or one transputer without changing their code.
//! * [`workload`] — deterministic synthetic data generation (the paper's
//!   16-byte records with 4-byte keys).

pub mod dbsearch;
pub mod workload;
pub mod workstation;

pub use dbsearch::{DbSearch, DbSearchConfig, DbSearchReport};
pub use workload::Workload;
pub use workstation::{Placement, Workstation, WorkstationConfig, WorkstationReport};
