//! Synthetic data generation.
//!
//! §4.2 of the paper assumes "each record is 16 bytes long, and ... a
//! search key is four bytes long" — one machine word of key and three of
//! payload on a 32-bit part. The paper's own data is synthetic, so the
//! substitution here is exact in structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Words per record: 4 words = 16 bytes (§4.2).
pub const RECORD_WORDS: usize = 4;

/// Deterministic workload generator.
#[derive(Debug)]
pub struct Workload {
    rng: StdRng,
    key_space: u32,
}

impl Workload {
    /// A generator with a fixed seed and key space. Keys are drawn from
    /// `[1, key_space]`; 0 and negative values are reserved for protocol
    /// use (poison).
    pub fn new(seed: u64, key_space: u32) -> Workload {
        Workload {
            rng: StdRng::seed_from_u64(seed),
            key_space: key_space.max(1),
        }
    }

    /// Generate `n` records: each is `RECORD_WORDS` words, word 0 the key.
    pub fn records(&mut self, n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n * RECORD_WORDS);
        for _ in 0..n {
            out.push(self.rng.gen_range(1..=self.key_space));
            for _ in 1..RECORD_WORDS {
                out.push(self.rng.gen());
            }
        }
        out
    }

    /// Generate `n` search keys from the same space.
    pub fn keys(&mut self, n: usize) -> Vec<u32> {
        (0..n)
            .map(|_| self.rng.gen_range(1..=self.key_space))
            .collect()
    }

    /// Count matches of `key` in a record vector (reference answer).
    pub fn count_matches(records: &[u32], key: u32) -> u32 {
        records
            .chunks_exact(RECORD_WORDS)
            .filter(|r| r[0] == key)
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Workload::new(42, 100);
        let mut b = Workload::new(42, 100);
        assert_eq!(a.records(10), b.records(10));
        assert_eq!(a.keys(5), b.keys(5));
    }

    #[test]
    fn record_shape() {
        let mut w = Workload::new(1, 50);
        let r = w.records(7);
        assert_eq!(r.len(), 7 * RECORD_WORDS);
        for rec in r.chunks_exact(RECORD_WORDS) {
            assert!((1..=50).contains(&rec[0]));
        }
    }

    #[test]
    fn reference_matcher() {
        let records = vec![
            5, 0, 0, 0, //
            7, 1, 1, 1, //
            5, 2, 2, 2, //
        ];
        assert_eq!(Workload::count_matches(&records, 5), 2);
        assert_eq!(Workload::count_matches(&records, 7), 1);
        assert_eq!(Workload::count_matches(&records, 9), 0);
    }

    #[test]
    fn keys_avoid_reserved_values() {
        let mut w = Workload::new(3, 10);
        for k in w.keys(1000) {
            assert!(k >= 1);
        }
    }
}
