//! Concurrent database search (Figure 8 and §4.2 of the paper).
//!
//! "Here 16 transputers are connected into a square array with search
//! requests input at one corner of the array, and answers being output
//! from the other corner. Each transputer keeps a small part of the
//! database in its local memory. ... A search request is forwarded to any
//! connected transputer which has not yet received the request and
//! simultaneously a search is made through the local data. ... answers
//! \[are\] merged with the answer generated from the local data and
//! forwarded."
//!
//! The flood and merge are deterministic here: requests enter at the
//! north-west corner, propagate east along every row and south along
//! column 0; partial answers accumulate eastwards along each row and then
//! southwards down the last column, leaving at the south-east corner.
//! Requests pipeline: "requests can be pipelined through the system with
//! a further request being input before the previous one has come out"
//! (§4.2).
//!
//! Every node runs the same occam program (specialised only by its edge
//! position), compiled by the `occam` crate and executed on emulated
//! transputers wired with bit-level links.

use crate::workload::{Workload, RECORD_WORDS};
use occam::places;
use transputer::WordLength;
use transputer_net::topology::{PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use transputer_net::{Network, NetworkBuilder, NetworkConfig, NodeId, SimError};

/// Configuration of a database-search array.
#[derive(Debug, Clone)]
pub struct DbSearchConfig {
    /// Grid width (≥ 2).
    pub width: usize,
    /// Grid height (≥ 2).
    pub height: usize,
    /// Records held by each transputer (the paper: 200).
    pub records_per_node: usize,
    /// Number of pipelined search requests to issue.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// Key space size (controls expected match counts).
    pub key_space: u32,
    /// Network configuration.
    pub net: NetworkConfig,
}

impl DbSearchConfig {
    /// Figure 8: 16 transputers in a square array.
    pub fn figure8() -> DbSearchConfig {
        DbSearchConfig {
            width: 4,
            height: 4,
            records_per_node: 200,
            requests: 4,
            seed: 1985,
            key_space: 500,
            net: NetworkConfig::default(),
        }
    }

    /// §4.2: the 128-transputer board holding 25 600 records.
    pub fn board128() -> DbSearchConfig {
        DbSearchConfig {
            width: 16,
            height: 8,
            records_per_node: 200,
            requests: 4,
            seed: 1985,
            key_space: 2000,
            net: NetworkConfig::default(),
        }
    }

    /// Total records in the array.
    pub fn total_records(&self) -> usize {
        self.width * self.height * self.records_per_node
    }

    /// The longest request path in links: across the top row plus down
    /// column 0, then the answer path back along the bottom row and down
    /// the last column is symmetric. (§4.2's "longest path across the
    /// system".)
    pub fn longest_path_links(&self) -> usize {
        (self.width - 1) + (self.height - 1)
    }
}

/// A built, loaded search array ready to run.
#[derive(Debug)]
pub struct DbSearch {
    config: DbSearchConfig,
    net: Network,
    collector: NodeId,
    collector_word: WordLength,
    answers_addr: u32,
    expected: Vec<u32>,
    node_ids: Vec<NodeId>,
}

/// Results of a search run.
#[derive(Debug, Clone)]
pub struct DbSearchReport {
    /// Match counts received at the output corner, in request order.
    pub answers: Vec<u32>,
    /// Reference answers computed in Rust from the same records.
    pub expected: Vec<u32>,
    /// Simulated nanoseconds at which each answer arrived.
    pub answer_times_ns: Vec<u64>,
    /// Time of the first answer: request propagation + one search wave +
    /// answer merge (the paper's ~1.3 ms for 25 000 records).
    pub first_answer_ns: u64,
    /// Mean gap between consecutive answers once the pipeline is full —
    /// the reciprocal of the search throughput.
    pub pipeline_interval_ns: u64,
    /// Total simulated time.
    pub total_ns: u64,
    /// Longest request path in links.
    pub longest_path_links: usize,
    /// Total records searched per request.
    pub total_records: usize,
    /// Instructions executed across all array nodes.
    pub total_instructions: u64,
}

impl DbSearchReport {
    /// Whether every answer matched the reference count.
    pub fn all_correct(&self) -> bool {
        self.answers == self.expected
    }

    /// Searches per second once the pipeline is full.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.pipeline_interval_ns == 0 {
            0.0
        } else {
            1e9 / self.pipeline_interval_ns as f64
        }
    }
}

impl DbSearch {
    /// Build the array: generate per-node occam, compile, wire, load,
    /// and poke the synthetic database into each node's memory.
    ///
    /// # Errors
    ///
    /// Propagates compile and load failures.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 2×2.
    pub fn build(config: DbSearchConfig) -> Result<DbSearch, Box<dyn std::error::Error>> {
        assert!(
            config.width >= 2 && config.height >= 2,
            "grid must be at least 2x2"
        );
        let (w, h) = (config.width, config.height);
        let mut b = NetworkBuilder::new(config.net.clone());
        let node_ids: Vec<NodeId> = (0..w * h).map(|_| b.add_node()).collect();
        let at = |x: usize, y: usize| node_ids[y * w + x];
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.connect((at(x, y), PORT_EAST), (at(x + 1, y), PORT_WEST));
                }
                if y + 1 < h {
                    b.connect((at(x, y), PORT_SOUTH), (at(x, y + 1), PORT_NORTH));
                }
            }
        }
        let sender = b.add_node();
        let collector = b.add_node();
        b.connect((sender, PORT_SOUTH), (at(0, 0), PORT_NORTH));
        b.connect((at(w - 1, h - 1), PORT_SOUTH), (collector, PORT_NORTH));
        let mut net = b.build();

        // Per-node programs and databases.
        let mut workload = Workload::new(config.seed, config.key_space);
        let mut all_records: Vec<Vec<u32>> = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let src = node_source(x, y, w, h, config.records_per_node);
                let program = occam::compile(&src)
                    .map_err(|e| format!("node ({x},{y}) source failed to compile: {e}\n{src}"))?;
                let cpu = net.node_mut(at(x, y));
                let word = cpu.word_length();
                let wptr = program.load(cpu)?;
                let records = workload.records(config.records_per_node);
                let db_addr = program
                    .global_addr(word, wptr, "db")
                    .ok_or("node program lacks a db vector")?;
                for (i, v) in records.iter().enumerate() {
                    cpu.poke_word(word.index_word(db_addr, i as u32), *v)?;
                }
                // Reference counting respects the node's word width.
                let records = records.iter().map(|v| word.mask(*v)).collect();
                all_records.push(records);
            }
        }

        // Keys (plus the poison terminator) into the sender.
        let keys = workload.keys(config.requests);
        let sender_src = sender_source(config.requests);
        let sender_prog = occam::compile(&sender_src)?;
        let cpu = net.node_mut(sender);
        let word = cpu.word_length();
        let wptr = sender_prog.load(cpu)?;
        let keys_addr = sender_prog
            .global_addr(word, wptr, "keys")
            .ok_or("sender lacks keys vector")?;
        for (i, k) in keys.iter().enumerate() {
            cpu.poke_word(word.index_word(keys_addr, i as u32), *k)?;
        }
        cpu.poke_word(
            word.index_word(keys_addr, config.requests as u32),
            word.mask(u32::MAX), // poison = -1
        )?;

        // Collector.
        let collector_src = collector_source(config.requests);
        let collector_prog = occam::compile(&collector_src)?;
        let cpu = net.node_mut(collector);
        let collector_word = cpu.word_length();
        let cwptr = collector_prog.load(cpu)?;
        let answers_addr = collector_prog
            .global_addr(word, cwptr, "answers")
            .ok_or("collector lacks answers vector")?;

        // Reference answers: each request key against every record.
        let expected = keys
            .iter()
            .map(|k| {
                all_records
                    .iter()
                    .map(|r| Workload::count_matches(r, *k))
                    .sum()
            })
            .collect();

        Ok(DbSearch {
            config,
            net,
            collector,
            collector_word,
            answers_addr,
            expected,
            node_ids,
        })
    }

    /// Access the underlying network (for instrumentation).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the underlying network (for driving the
    /// simulation in custom increments).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Run the search to completion.
    ///
    /// # Errors
    ///
    /// Propagates simulation faults and budget exhaustion.
    pub fn run(&mut self, budget_ns: u64) -> Result<DbSearchReport, SimError> {
        let n = self.config.requests;
        let mut answer_times = vec![0u64; n];
        let mut seen = 0usize;
        // Answers are observed as delivered bytes on the collector's
        // wire (the last wire built, collector at end 1). Wire counters
        // advance at exact packet-delivery events in every engine, so
        // the recorded answer times are engine-independent — unlike
        // polling collector memory, which the sliced engines only expose
        // at slice boundaries.
        let answer_wire = self.net.wire_count() - 1;
        let bytes_per_answer = u64::from(self.collector_word.bytes_per_word());
        self.net.run_until(budget_ns, |net| {
            let (_, to_collector) = net.wire_delivered(answer_wire);
            let got = (to_collector / bytes_per_answer) as usize;
            while seen < got.min(n) {
                answer_times[seen] = net.time_ns();
                seen += 1;
            }
            if net.all_halted() {
                Some(transputer_net::SimOutcome::AllHalted)
            } else {
                None
            }
        })?;

        let word = self.collector_word;
        let answers: Vec<u32> = (0..n)
            .map(|i| {
                self.net
                    .node(self.collector)
                    .inspect_word(word.index_word(self.answers_addr, i as u32))
                    .unwrap_or(u32::MAX)
            })
            .collect();
        let first = answer_times.first().copied().unwrap_or(0);
        let pipeline_interval = if n >= 2 {
            (answer_times[n - 1] - answer_times[0]) / (n as u64 - 1)
        } else {
            0
        };
        let total_instructions = self
            .node_ids
            .iter()
            .map(|id| self.net.node(*id).stats().instructions)
            .sum();
        Ok(DbSearchReport {
            answers,
            expected: self.expected.clone(),
            answer_times_ns: answer_times,
            first_answer_ns: first,
            pipeline_interval_ns: pipeline_interval,
            total_ns: self.net.time_ns(),
            longest_path_links: self.config.longest_path_links(),
            total_records: self.config.total_records(),
            total_instructions,
        })
    }
}

/// Occam source for the array node at `(x, y)`.
fn node_source(x: usize, y: usize, w: usize, h: usize, nrec: usize) -> String {
    let mut s = String::new();
    let words = nrec * RECORD_WORDS;
    s.push_str(&format!("DEF nrec = {nrec}:\n"));
    s.push_str(&format!("VAR db[{words}]:\n"));
    s.push_str("VAR going, key, count, partial:\n");
    // Request input: west for inner columns, north for column 0 and the
    // origin (whose north link goes to the host).
    let reqin_place = if x > 0 {
        places::link_in(PORT_WEST as u32)
    } else {
        places::link_in(PORT_NORTH as u32)
    };
    s.push_str("CHAN reqin:\n");
    s.push_str(&format!("PLACE reqin AT {reqin_place}:\n"));
    if x + 1 < w {
        s.push_str("CHAN east:\n");
        s.push_str(&format!(
            "PLACE east AT {}:\n",
            places::link_out(PORT_EAST as u32)
        ));
    }
    if x == 0 && y + 1 < h {
        s.push_str("CHAN southreq:\n");
        s.push_str(&format!(
            "PLACE southreq AT {}:\n",
            places::link_out(PORT_SOUTH as u32)
        ));
    }
    if x == w - 1 && y > 0 {
        s.push_str("CHAN northin:\n");
        s.push_str(&format!(
            "PLACE northin AT {}:\n",
            places::link_in(PORT_NORTH as u32)
        ));
    }
    if x == w - 1 {
        s.push_str("CHAN ansout:\n");
        s.push_str(&format!(
            "PLACE ansout AT {}:\n",
            places::link_out(PORT_SOUTH as u32)
        ));
    }
    s.push_str("SEQ\n");
    s.push_str("  going := TRUE\n");
    s.push_str("  WHILE going\n");
    s.push_str("    SEQ\n");
    s.push_str("      reqin ? key\n");
    s.push_str("      IF\n");
    s.push_str("        key = -1\n");
    s.push_str("          SEQ\n");
    if x + 1 < w {
        s.push_str("            east ! -1\n");
    }
    if x == 0 && y + 1 < h {
        s.push_str("            southreq ! -1\n");
    }
    s.push_str("            going := FALSE\n");
    s.push_str("        TRUE\n");
    s.push_str("          SEQ\n");
    // Forward the request before searching, so the flood proceeds while
    // the local search runs (§4.2).
    if x + 1 < w {
        s.push_str("            east ! key\n");
    }
    if x == 0 && y + 1 < h {
        s.push_str("            southreq ! key\n");
    }
    s.push_str("            count := 0\n");
    s.push_str("            SEQ i = [0 FOR nrec]\n");
    s.push_str("              IF\n");
    s.push_str("                db[i * 4] = key\n");
    s.push_str("                  count := count + 1\n");
    s.push_str("                TRUE\n");
    s.push_str("                  SKIP\n");
    if x > 0 {
        s.push_str("            reqin ? partial\n");
        s.push_str("            count := count + partial\n");
    }
    if x == w - 1 && y > 0 {
        s.push_str("            northin ? partial\n");
        s.push_str("            count := count + partial\n");
    }
    if x + 1 < w {
        s.push_str("            east ! count\n");
    } else {
        s.push_str("            ansout ! count\n");
    }
    s
}

/// Occam source for the request-injecting host.
fn sender_source(nreq: usize) -> String {
    format!(
        "VAR keys[{size}]:\n\
         CHAN out:\n\
         PLACE out AT {place}:\n\
         SEQ k = [0 FOR {count}]\n\
         \x20 out ! keys[k]\n",
        size = nreq + 1,
        place = places::link_out(PORT_SOUTH as u32),
        count = nreq + 1,
    )
}

/// Occam source for the answer-collecting host.
fn collector_source(nreq: usize) -> String {
    format!(
        "VAR answers[{nreq}]:\n\
         VAR got:\n\
         CHAN in:\n\
         PLACE in AT {place}:\n\
         SEQ\n\
         \x20 got := 0\n\
         \x20 SEQ k = [0 FOR {nreq}]\n\
         \x20\x20\x20 SEQ\n\
         \x20\x20\x20\x20\x20 in ? answers[k]\n\
         \x20\x20\x20\x20\x20 got := got + 1\n",
        place = places::link_in(PORT_NORTH as u32),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_array_answers_correctly() {
        let config = DbSearchConfig {
            width: 2,
            height: 2,
            records_per_node: 12,
            requests: 3,
            seed: 7,
            key_space: 20,
            net: NetworkConfig::default(),
        };
        let mut sim = DbSearch::build(config).expect("builds");
        let report = sim.run(2_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        assert!(report.first_answer_ns > 0);
        assert_eq!(report.total_records, 48);
    }

    #[test]
    fn three_by_three_pipeline() {
        let config = DbSearchConfig {
            width: 3,
            height: 3,
            records_per_node: 10,
            requests: 4,
            seed: 11,
            key_space: 15,
            net: NetworkConfig::default(),
        };
        let mut sim = DbSearch::build(config).expect("builds");
        let report = sim.run(5_000_000_000).expect("runs");
        assert!(report.all_correct());
        // With pipelining the inter-answer gap is much smaller than the
        // first-answer latency (propagation + search).
        assert!(report.pipeline_interval_ns > 0);
        assert!(report.pipeline_interval_ns < report.first_answer_ns);
    }

    #[test]
    fn node_source_compiles_for_all_positions() {
        for (x, y) in [
            (0, 0),
            (1, 0),
            (3, 0),
            (0, 1),
            (3, 1),
            (0, 3),
            (3, 3),
            (2, 2),
        ] {
            let src = node_source(x, y, 4, 4, 5);
            occam::compile(&src).unwrap_or_else(|e| panic!("({x},{y}): {e}\n{src}"));
        }
    }

    #[test]
    fn search_array_of_16_bit_parts() {
        // §3.3's word-length independence at application level: the same
        // generated occam runs the search on a grid of T222s.
        let config = DbSearchConfig {
            width: 2,
            height: 2,
            records_per_node: 8,
            requests: 2,
            seed: 21,
            key_space: 12,
            net: transputer_net::NetworkConfig {
                cpu: transputer::CpuConfig::t222(),
                ..transputer_net::NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build(config).expect("builds");
        let report = sim.run(2_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
    }

    #[test]
    fn longest_path_matches_grid() {
        assert_eq!(DbSearchConfig::figure8().longest_path_links(), 6);
        assert_eq!(DbSearchConfig::board128().longest_path_links(), 22);
        assert_eq!(DbSearchConfig::board128().total_records(), 25_600);
    }
}
