//! Concurrent database search (Figure 8 and §4.2 of the paper).
//!
//! "Here 16 transputers are connected into a square array with search
//! requests input at one corner of the array, and answers being output
//! from the other corner. Each transputer keeps a small part of the
//! database in its local memory. ... A search request is forwarded to any
//! connected transputer which has not yet received the request and
//! simultaneously a search is made through the local data. ... answers
//! \[are\] merged with the answer generated from the local data and
//! forwarded."
//!
//! The flood and merge are deterministic here: requests flow down a
//! breadth-first spanning tree rooted at the north-west corner, and
//! partial answers merge up a second spanning tree rooted at the
//! south-east corner, leaving through that corner. On an intact grid the
//! parent preferences (west-then-north for requests, east-then-south for
//! answers) reproduce the classic routing of the paper's figure —
//! requests east along every row and south down column 0, answers east
//! along each row and south down the last column. When a
//! [`transputer_link::FaultPlan`] declares grid wires dead at boot, both
//! trees are recomputed over the surviving links: the search routes
//! around the damage, and any node cut off from either corner is excluded
//! from the search (its records drop out of the expected counts and the
//! report is flagged degraded). Requests pipeline: "requests can be
//! pipelined through the system with a further request being input before
//! the previous one has come out" (§4.2).
//!
//! Every node runs the same occam program (specialised only by its
//! position in the two trees), compiled by the `occam` crate and executed
//! on emulated transputers wired with bit-level links.

use std::collections::HashSet;

use crate::workload::{Workload, RECORD_WORDS};
use occam::places;
use transputer::WordLength;
use transputer_net::topology::{
    adjacency_add_wire, bfs_dist, grid_adjacency, hypercube_adjacency, wire_hypercube, Adjacency,
    PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST,
};
use transputer_net::{Network, NetworkBuilder, NetworkConfig, NodeId, SimError, SimOutcome};

/// Configuration of a database-search array.
#[derive(Debug, Clone)]
pub struct DbSearchConfig {
    /// Grid width (≥ 2).
    pub width: usize,
    /// Grid height (≥ 2).
    pub height: usize,
    /// Records held by each transputer (the paper: 200).
    pub records_per_node: usize,
    /// Number of pipelined search requests to issue.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// Key space size (controls expected match counts).
    pub key_space: u32,
    /// Network configuration.
    pub net: NetworkConfig,
}

impl DbSearchConfig {
    /// Figure 8: 16 transputers in a square array.
    pub fn figure8() -> DbSearchConfig {
        DbSearchConfig {
            width: 4,
            height: 4,
            records_per_node: 200,
            requests: 4,
            seed: 1985,
            key_space: 500,
            net: NetworkConfig::default(),
        }
    }

    /// §4.2: the 128-transputer board holding 25 600 records.
    pub fn board128() -> DbSearchConfig {
        DbSearchConfig {
            width: 16,
            height: 8,
            records_per_node: 200,
            requests: 4,
            seed: 1985,
            key_space: 2000,
            net: NetworkConfig::default(),
        }
    }

    /// Total records in the array.
    pub fn total_records(&self) -> usize {
        self.width * self.height * self.records_per_node
    }

    /// The longest request path in links: across the top row plus down
    /// column 0, then the answer path back along the bottom row and down
    /// the last column is symmetric. (§4.2's "longest path across the
    /// system".)
    pub fn longest_path_links(&self) -> usize {
        (self.width - 1) + (self.height - 1)
    }
}

/// Configuration of a database-search machine shaped as a hypercube of
/// grid clusters ([`transputer_net::topology::hypercube`]): `2^dim`
/// `side` × `side` arrays joined by one wire per hypercube edge. The
/// same per-node occam runs as on the flat grid — only the two spanning
/// trees change shape — which is §2.1's point that system structure is a
/// wiring choice, not a programming one.
#[derive(Debug, Clone)]
pub struct HypercubeConfig {
    /// Hypercube dimension (`2^dim` clusters, ≤ 4 on a four-link part).
    pub dim: usize,
    /// Cluster side length (≥ 2).
    pub side: usize,
    /// Records held by each transputer.
    pub records_per_node: usize,
    /// Number of pipelined search requests to issue.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// Key space size (controls expected match counts).
    pub key_space: u32,
    /// Network configuration.
    pub net: NetworkConfig,
}

impl HypercubeConfig {
    /// The RTNN-style 256-node machine: a dimension-4 hypercube of 4×4
    /// clusters holding 51 200 records.
    pub fn hypercube256() -> HypercubeConfig {
        HypercubeConfig {
            dim: 4,
            side: 4,
            records_per_node: 200,
            requests: 4,
            seed: 1985,
            key_space: 4000,
            net: NetworkConfig::default(),
        }
    }

    /// Number of transputers in the machine.
    pub fn node_count(&self) -> usize {
        (1usize << self.dim) * self.side * self.side
    }

    /// Total records in the machine.
    pub fn total_records(&self) -> usize {
        self.node_count() * self.records_per_node
    }

    /// The longest request path in links: the BFS depth of the farthest
    /// node from the request corner on the intact machine.
    pub fn longest_path_links(&self) -> usize {
        let adj = hypercube_adjacency(self.dim, self.side);
        bfs_dist(&adj, 0, &HashSet::new())
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0) as usize
    }
}

/// Parent preference for the request tree rooted at the north-west
/// corner: prefer the classic west-to-east, north-to-south flood.
const REQ_PARENT_PREF: [usize; 4] = [PORT_WEST, PORT_NORTH, PORT_EAST, PORT_SOUTH];
/// Forwarding order for request children (east first, as in the classic
/// row flood).
const REQ_CHILD_ORDER: [usize; 4] = [PORT_EAST, PORT_SOUTH, PORT_WEST, PORT_NORTH];
/// Parent preference for the answer tree rooted at the south-east
/// corner: prefer the classic east-along-rows, south-down-last-column
/// merge.
const ANS_PARENT_PREF: [usize; 4] = [PORT_EAST, PORT_SOUTH, PORT_WEST, PORT_NORTH];
/// Gathering order for answer children (west first, as in the classic
/// row merge).
const ANS_CHILD_ORDER: [usize; 4] = [PORT_WEST, PORT_NORTH, PORT_EAST, PORT_SOUTH];

/// One node's position in the request and answer spanning trees.
#[derive(Debug, Clone, Default)]
struct NodeRoutes {
    /// Whether the node participates in the search at all (it is cut
    /// off when boot-dead wires separate it from either corner).
    included: bool,
    /// Port requests arrive on (the host link for the origin corner).
    req_parent: usize,
    /// Ports requests are forwarded to, in forwarding order.
    req_children: Vec<usize>,
    /// Ports partial answers arrive on, in gathering order.
    ans_children: Vec<usize>,
    /// Port the merged answer leaves on (the host link for the exit
    /// corner).
    ans_parent: usize,
}

/// Compute both spanning trees over the links of an arbitrary machine
/// that are alive at boot. Requests flood down a BFS tree rooted at
/// `origin` (whose host attaches on `origin_host_port`), answers merge
/// up a second BFS tree rooted at `exit` (host on `exit_host_port`);
/// the preference arrays keep tie-breaks deterministic. Nodes outside
/// the component containing both roots are marked excluded.
fn plan_routes_over(
    adj: &Adjacency,
    origin: usize,
    origin_host_port: usize,
    exit: usize,
    exit_host_port: usize,
    dead: &HashSet<usize>,
) -> Vec<NodeRoutes> {
    let n = adj.len();
    let from_origin = bfs_dist(adj, origin, dead);
    let from_exit = bfs_dist(adj, exit, dead);
    // The alive-link graph is undirected, so when the two roots share
    // a component the intersection below is exactly that component;
    // otherwise no node can both receive a request and deliver an
    // answer, and everything is excluded.
    let mut routes: Vec<NodeRoutes> = (0..n)
        .map(|i| NodeRoutes {
            included: from_origin[i].is_some() && from_exit[i].is_some(),
            ..NodeRoutes::default()
        })
        .collect();
    let mut pick_parents = |dist: &[Option<u32>], pref: [usize; 4], root: usize, request: bool| {
        for i in 0..n {
            if !routes[i].included || i == root {
                continue;
            }
            let d = dist[i].unwrap();
            let parent = pref
                .into_iter()
                .find(|&port| {
                    adj[i][port].is_some_and(|(peer, _, wire)| {
                        !dead.contains(&wire) && routes[peer].included && dist[peer] == Some(d - 1)
                    })
                })
                .expect("a BFS-reachable node has a parent one step closer");
            let (peer, peer_port, _) = adj[i][parent].unwrap();
            if request {
                routes[i].req_parent = parent;
                routes[peer].req_children.push(peer_port);
            } else {
                routes[i].ans_parent = parent;
                routes[peer].ans_children.push(peer_port);
            }
        }
    };
    pick_parents(&from_origin, REQ_PARENT_PREF, origin, true);
    pick_parents(&from_exit, ANS_PARENT_PREF, exit, false);
    // The roots talk to the hosts over their free edge ports.
    routes[origin].req_parent = origin_host_port;
    routes[exit].ans_parent = exit_host_port;
    let order_of = |order: [usize; 4]| move |p: &usize| order.iter().position(|o| o == p);
    for r in &mut routes {
        r.req_children.sort_by_key(order_of(REQ_CHILD_ORDER));
        r.ans_children.sort_by_key(order_of(ANS_CHILD_ORDER));
    }
    routes
}

/// Compute both spanning trees over the grid links that are alive at
/// boot (the corners host the sender and collector, as in Figure 8).
fn plan_routes(w: usize, h: usize, dead: &HashSet<usize>) -> Vec<NodeRoutes> {
    plan_routes_over(
        &grid_adjacency(w, h),
        0,
        PORT_NORTH,
        w * h - 1,
        PORT_SOUTH,
        dead,
    )
}

/// Wires declared dead from boot by the configured fault plan; wires
/// that die later degrade the run instead of being routed around.
fn boot_dead(net: &NetworkConfig) -> HashSet<usize> {
    net.fault
        .as_ref()
        .map(|plan| {
            plan.dead
                .iter()
                .filter(|d| d.from_ns == 0)
                .map(|d| d.wire)
                .collect()
        })
        .unwrap_or_default()
}

/// A built, loaded search machine ready to run — a flat grid
/// ([`DbSearch::build`]) or a hypercube of clusters
/// ([`DbSearch::build_hypercube`]); the run loop is shape-blind.
#[derive(Debug)]
pub struct DbSearch {
    net: Network,
    requests: usize,
    faulted: bool,
    longest_path_links: usize,
    total_records: usize,
    collector: NodeId,
    collector_word: WordLength,
    answers_addr: u32,
    expected: Vec<u32>,
    node_ids: Vec<NodeId>,
    excluded: usize,
    /// Wire bytes one answer message occupies on the collector's wire
    /// (a bare word on a planned machine, a framed packet on a routed
    /// one).
    bytes_per_answer: u64,
    /// Messages that make up one complete answer (one merged count on a
    /// planned machine; one per participating node on a routed one,
    /// where the collector does the merging).
    msgs_per_answer: u64,
}

/// The shape-specific half of a build: a wired network whose last wire
/// is the collector's, the array nodes in route order, the two hosts,
/// and the per-node occam already specialised for the routing scheme
/// (spanning trees on a planned machine, a uniform program on a routed
/// one).
struct ArrayBuild {
    net: Network,
    node_ids: Vec<NodeId>,
    sender: NodeId,
    collector: NodeId,
    node_srcs: Vec<String>,
    included: Vec<bool>,
    sender_src: String,
    collector_src: String,
    msgs_per_answer: u64,
    routed: bool,
}

/// The shape-independent build parameters, with the two derived facts
/// (`longest_path_links`, `total_records`) each shape computes its own
/// way.
struct SearchParams {
    records_per_node: usize,
    requests: usize,
    seed: u64,
    key_space: u32,
    faulted: bool,
    longest_path_links: usize,
    total_records: usize,
}

/// Results of a search run.
#[derive(Debug, Clone)]
pub struct DbSearchReport {
    /// Match counts received at the output corner, in request order
    /// (truncated to the answers that actually arrived).
    pub answers: Vec<u32>,
    /// Reference answers computed in Rust from the records of every
    /// participating node.
    pub expected: Vec<u32>,
    /// Answers that arrived before the run ended (equals `requests` on
    /// a clean run).
    pub received: usize,
    /// Whether the result is degraded: boot-dead links excluded nodes
    /// from the search, or the run ended (link declared failed mid-run,
    /// simulation budget spent under faults) before every answer
    /// arrived.
    pub degraded: bool,
    /// Nodes cut off from the corners by boot-dead links and excluded
    /// from the search.
    pub excluded_nodes: usize,
    /// Simulated nanoseconds at which each received answer arrived.
    pub answer_times_ns: Vec<u64>,
    /// Time of the first answer: request propagation + one search wave +
    /// answer merge (the paper's ~1.3 ms for 25 000 records).
    pub first_answer_ns: u64,
    /// Mean gap between consecutive answers once the pipeline is full —
    /// the reciprocal of the search throughput.
    pub pipeline_interval_ns: u64,
    /// Total simulated time.
    pub total_ns: u64,
    /// Longest request path in links.
    pub longest_path_links: usize,
    /// Total records searched per request.
    pub total_records: usize,
    /// Instructions executed across all array nodes.
    pub total_instructions: u64,
}

impl DbSearchReport {
    /// Whether every received answer matched the reference count: all of
    /// them on a clean run, the received prefix on a degraded one.
    pub fn all_correct(&self) -> bool {
        if !self.degraded && self.answers.len() != self.expected.len() {
            return false;
        }
        self.answers.len() <= self.expected.len()
            && self.answers[..] == self.expected[..self.answers.len()]
    }

    /// Searches per second once the pipeline is full.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.pipeline_interval_ns == 0 {
            0.0
        } else {
            1e9 / self.pipeline_interval_ns as f64
        }
    }
}

impl DbSearch {
    /// Build the array: plan the spanning trees around any boot-dead
    /// wires, generate per-node occam, compile, wire, load, and poke the
    /// synthetic database into each participating node's memory.
    ///
    /// # Errors
    ///
    /// Propagates compile and load failures.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 2×2.
    pub fn build(config: DbSearchConfig) -> Result<DbSearch, Box<dyn std::error::Error>> {
        assert!(
            config.width >= 2 && config.height >= 2,
            "grid must be at least 2x2"
        );
        let (w, h) = (config.width, config.height);
        let mut b = NetworkBuilder::new(config.net.clone());
        let node_ids: Vec<NodeId> = (0..w * h).map(|_| b.add_node()).collect();
        let at = |x: usize, y: usize| node_ids[y * w + x];
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.connect((at(x, y), PORT_EAST), (at(x + 1, y), PORT_WEST));
                }
                if y + 1 < h {
                    b.connect((at(x, y), PORT_SOUTH), (at(x, y + 1), PORT_NORTH));
                }
            }
        }
        let sender = b.add_node();
        let collector = b.add_node();
        b.connect((sender, PORT_SOUTH), (at(0, 0), PORT_NORTH));
        b.connect((at(w - 1, h - 1), PORT_SOUTH), (collector, PORT_NORTH));
        let net = b.build();

        let routes = plan_routes(w, h, &boot_dead(&config.net));
        Self::finish_build(
            ArrayBuild {
                net,
                node_ids,
                sender,
                collector,
                node_srcs: routes
                    .iter()
                    .map(|r| node_source(config.records_per_node, r))
                    .collect(),
                included: routes.iter().map(|r| r.included).collect(),
                sender_src: sender_source(config.requests),
                collector_src: collector_source(config.requests),
                msgs_per_answer: 1,
                routed: false,
            },
            &SearchParams {
                records_per_node: config.records_per_node,
                requests: config.requests,
                seed: config.seed,
                key_space: config.key_space,
                faulted: config.net.fault.is_some(),
                longest_path_links: config.longest_path_links(),
                total_records: config.total_records(),
            },
        )
    }

    /// Build the routed array: the same grid, hosts and workload as
    /// [`DbSearch::build`], but no spanning trees — every request and
    /// every answer travels a virtual channel through the packet
    /// router, so all array nodes run one uniform occam program and the
    /// wiring needs no per-topology planning. The sender round-robins
    /// each key across one request channel per participating node; each
    /// node answers the collector directly with its request index and
    /// local count packed into one word; the collector merges.
    ///
    /// # Errors
    ///
    /// Propagates compile and load failures.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 2×2.
    pub fn build_routed(config: DbSearchConfig) -> Result<DbSearch, Box<dyn std::error::Error>> {
        assert!(
            config.width >= 2 && config.height >= 2,
            "grid must be at least 2x2"
        );
        let (w, h) = (config.width, config.height);
        let n = w * h;
        let mut adj = grid_adjacency(w, h);
        let host_wire = (w - 1) * h + w * (h - 1);
        adjacency_add_wire(&mut adj, (n, PORT_SOUTH), (0, PORT_NORTH), host_wire);
        adjacency_add_wire(
            &mut adj,
            (n - 1, PORT_SOUTH),
            (n + 1, PORT_NORTH),
            host_wire + 1,
        );
        Self::routed_build(adj, None, config.net.clone(), n, &{
            SearchParams {
                records_per_node: config.records_per_node,
                requests: config.requests,
                seed: config.seed,
                key_space: config.key_space,
                faulted: config.net.fault.is_some(),
                longest_path_links: config.longest_path_links(),
                total_records: config.total_records(),
            }
        })
    }

    /// Build a hypercube-of-clusters search machine: `2^dim` grid
    /// clusters wired by [`wire_hypercube`], the request host on the
    /// north port of cluster 0's `(0, 0)` and the answer host on the
    /// south port of the last cluster's far corner (the two ports the
    /// dimension anchors leave free in every cluster).
    ///
    /// # Errors
    ///
    /// Propagates compile and load failures.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not in `1..=4` or `side < 2`.
    pub fn build_hypercube(
        config: HypercubeConfig,
    ) -> Result<DbSearch, Box<dyn std::error::Error>> {
        let (dim, side) = (config.dim, config.side);
        let n = config.node_count();
        let mut b = NetworkBuilder::new(config.net.clone());
        let node_ids: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
        wire_hypercube(&mut b, &node_ids, dim, side);
        let sender = b.add_node();
        let collector = b.add_node();
        let (origin, exit) = (0, n - 1);
        b.connect((sender, PORT_SOUTH), (node_ids[origin], PORT_NORTH));
        b.connect((node_ids[exit], PORT_SOUTH), (collector, PORT_NORTH));
        let net = b.build();

        let routes = plan_routes_over(
            &hypercube_adjacency(dim, side),
            origin,
            PORT_NORTH,
            exit,
            PORT_SOUTH,
            &boot_dead(&config.net),
        );
        Self::finish_build(
            ArrayBuild {
                net,
                node_ids,
                sender,
                collector,
                node_srcs: routes
                    .iter()
                    .map(|r| node_source(config.records_per_node, r))
                    .collect(),
                included: routes.iter().map(|r| r.included).collect(),
                sender_src: sender_source(config.requests),
                collector_src: collector_source(config.requests),
                msgs_per_answer: 1,
                routed: false,
            },
            &SearchParams {
                records_per_node: config.records_per_node,
                requests: config.requests,
                seed: config.seed,
                key_space: config.key_space,
                faulted: config.net.fault.is_some(),
                longest_path_links: config.longest_path_links(),
                total_records: config.total_records(),
            },
        )
    }

    /// Build the routed hypercube machine: the clusters of
    /// [`DbSearch::build_hypercube`] under the closed-form e-cube
    /// tables, with every node running the same uniform routed program.
    ///
    /// # Errors
    ///
    /// Propagates compile and load failures.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not in `1..=4` or `side < 2`.
    pub fn build_routed_hypercube(
        config: HypercubeConfig,
    ) -> Result<DbSearch, Box<dyn std::error::Error>> {
        let (dim, side) = (config.dim, config.side);
        let n = config.node_count();
        let mut adj = hypercube_adjacency(dim, side);
        let host_wire = adj
            .iter()
            .flatten()
            .flatten()
            .map(|link| link.2)
            .max()
            .expect("a hypercube has wires")
            + 1;
        adjacency_add_wire(&mut adj, (n, PORT_SOUTH), (0, PORT_NORTH), host_wire);
        adjacency_add_wire(
            &mut adj,
            (n - 1, PORT_SOUTH),
            (n + 1, PORT_NORTH),
            host_wire + 1,
        );
        Self::routed_build(adj, Some((dim, side)), config.net.clone(), n, &{
            SearchParams {
                records_per_node: config.records_per_node,
                requests: config.requests,
                seed: config.seed,
                key_space: config.key_space,
                faulted: config.net.fault.is_some(),
                longest_path_links: config.longest_path_links(),
                total_records: config.total_records(),
            }
        })
    }

    /// The routed variant's shape-independent build: the adjacency
    /// already includes the two host wires (sender then collector, in
    /// that order, so the collector's wire is the machine's last);
    /// `cube` selects the e-cube tables. Nodes the router cannot join
    /// to both hosts over the boot-alive wires are excluded exactly as
    /// the planned variant excludes nodes cut from a corner.
    fn routed_build(
        adj: Adjacency,
        cube: Option<(usize, usize)>,
        net_config: NetworkConfig,
        n: usize,
        p: &SearchParams,
    ) -> Result<DbSearch, Box<dyn std::error::Error>> {
        let dead = boot_dead(&net_config);
        let from_sender = bfs_dist(&adj, n, &dead);
        let from_collector = bfs_dist(&adj, n + 1, &dead);
        let included: Vec<bool> = (0..n)
            .map(|i| from_sender[i].is_some() && from_collector[i].is_some())
            .collect();
        let nlive = included.iter().filter(|&&inc| inc).count();

        let mut b = NetworkBuilder::new(net_config);
        let node_ids: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
        let sender = b.add_node();
        let collector = b.add_node();
        match cube {
            Some((dim, side)) => b.enable_router_hypercube(adj, dim, side),
            None => b.enable_router(adj),
        };
        // Request channels in node order — the sender's round-robin
        // then deals key `k` of round `r` to participant `k mod nlive`.
        // Each participant also gets its own answer channel into the
        // collector.
        for (i, &inc) in included.iter().enumerate() {
            if inc {
                b.add_vc((sender, 0), (node_ids[i], 0));
                b.add_vc((node_ids[i], 1), (collector, 0));
            }
        }
        let net = b.build();

        Self::finish_build(
            ArrayBuild {
                net,
                node_ids,
                sender,
                collector,
                node_srcs: included
                    .iter()
                    .map(|&inc| routed_node_source(p.records_per_node, inc))
                    .collect(),
                included,
                sender_src: routed_sender_source(p.requests, nlive),
                collector_src: routed_collector_source(p.requests, nlive),
                msgs_per_answer: nlive.max(1) as u64,
                routed: true,
            },
            p,
        )
    }

    /// The shape-independent half of a build: generate and load every
    /// program, poke the databases and keys, and compute the reference
    /// answers.
    fn finish_build(
        build: ArrayBuild,
        p: &SearchParams,
    ) -> Result<DbSearch, Box<dyn std::error::Error>> {
        let ArrayBuild {
            mut net,
            node_ids,
            sender,
            collector,
            node_srcs,
            included,
            sender_src,
            collector_src,
            msgs_per_answer,
            routed,
        } = build;
        let excluded = included.iter().filter(|&&inc| !inc).count();

        // Per-node programs and databases. Excluded nodes still consume
        // their workload draw so the records of every other node match
        // the intact-machine run record for record.
        let mut workload = Workload::new(p.seed, p.key_space);
        let mut live_records: Vec<Vec<u32>> = Vec::new();
        for (i, src) in node_srcs.iter().enumerate() {
            let program = occam::compile(src)
                .map_err(|e| format!("node {i} source failed to compile: {e}\n{src}"))?;
            let cpu = net.node_mut(node_ids[i]);
            let word = cpu.word_length();
            let wptr = program.load(cpu)?;
            let records = workload.records(p.records_per_node);
            if !included[i] {
                continue;
            }
            let db_addr = program
                .global_addr(word, wptr, "db")
                .ok_or("node program lacks a db vector")?;
            for (j, v) in records.iter().enumerate() {
                cpu.poke_word(word.index_word(db_addr, j as u32), *v)?;
            }
            // Reference counting respects the node's word width.
            let records = records.iter().map(|v| word.mask(*v)).collect();
            live_records.push(records);
        }

        // Keys (plus the poison terminator) into the sender.
        let keys = workload.keys(p.requests);
        let sender_prog = occam::compile(&sender_src)?;
        let cpu = net.node_mut(sender);
        let word = cpu.word_length();
        let wptr = sender_prog.load(cpu)?;
        let keys_addr = sender_prog
            .global_addr(word, wptr, "keys")
            .ok_or("sender lacks keys vector")?;
        for (i, k) in keys.iter().enumerate() {
            cpu.poke_word(word.index_word(keys_addr, i as u32), *k)?;
        }
        cpu.poke_word(
            word.index_word(keys_addr, p.requests as u32),
            word.mask(u32::MAX), // poison = -1
        )?;

        // Collector.
        let collector_prog = occam::compile(&collector_src)?;
        let cpu = net.node_mut(collector);
        let collector_word = cpu.word_length();
        let cwptr = collector_prog.load(cpu)?;
        let answers_addr = collector_prog
            .global_addr(word, cwptr, "answers")
            .ok_or("collector lacks answers vector")?;

        // Reference answers: each request key against every record held
        // by a participating node.
        let expected = keys
            .iter()
            .map(|k| {
                live_records
                    .iter()
                    .map(|r| Workload::count_matches(r, *k))
                    .sum()
            })
            .collect();

        // A routed answer crosses the collector's wire as one framed
        // packet; a planned answer as one bare word.
        let bytes_per_answer = if routed {
            (transputer_link::vc::HEADER_BYTES + 4) as u64
        } else {
            u64::from(collector_word.bytes_per_word())
        };

        Ok(DbSearch {
            net,
            requests: p.requests,
            faulted: p.faulted,
            longest_path_links: p.longest_path_links,
            total_records: p.total_records,
            collector,
            collector_word,
            answers_addr,
            expected,
            node_ids,
            excluded,
            bytes_per_answer,
            msgs_per_answer,
        })
    }

    /// Access the underlying network (for instrumentation).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the underlying network (for driving the
    /// simulation in custom increments).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Nodes excluded from the search by boot-dead links.
    pub fn excluded_nodes(&self) -> usize {
        self.excluded
    }

    /// Run the search to completion.
    ///
    /// Under an injected fault plan a run that deadlocks (a link
    /// exhausted its retries and was declared failed) or exhausts its
    /// budget yields a *degraded* report carrying the answers received
    /// so far, rather than an error.
    ///
    /// # Errors
    ///
    /// Propagates simulation faults, and budget exhaustion when no
    /// fault plan is injected.
    pub fn run(&mut self, budget_ns: u64) -> Result<DbSearchReport, SimError> {
        let n = self.requests;
        let mut answer_times = vec![0u64; n];
        let mut seen = 0usize;
        // Answers are observed as delivered bytes on the collector's
        // wire (the last wire built, collector at end 1). Wire counters
        // advance at exact packet-delivery events in every engine, so
        // the recorded answer times are engine-independent — unlike
        // polling collector memory, which the sliced engines only expose
        // at slice boundaries.
        let answer_wire = self.net.wire_count() - 1;
        // One complete answer: `msgs_per_answer` messages of
        // `bytes_per_answer` wire bytes each (a routed machine's answer
        // is a whole wave of per-node packets, merged by the collector).
        let bytes_per_answer = self.bytes_per_answer * self.msgs_per_answer;
        let result = self.net.run_until(budget_ns, |net| {
            let (_, to_collector) = net.wire_delivered(answer_wire);
            let got = (to_collector / bytes_per_answer) as usize;
            while seen < got.min(n) {
                answer_times[seen] = net.time_ns();
                seen += 1;
            }
            if net.all_halted() {
                Some(SimOutcome::AllHalted)
            } else {
                None
            }
        });
        let outcome = match result {
            Ok(out) => out,
            // Under injected faults, running out of budget is one more
            // way the array degrades, not a caller error.
            Err(SimError::Budget { .. }) if self.faulted => SimOutcome::TimeLimit,
            Err(e) => return Err(e),
        };

        let received = seen;
        let degraded = self.excluded > 0 || received < n || outcome != SimOutcome::AllHalted;
        let word = self.collector_word;
        let answers: Vec<u32> = (0..received)
            .map(|i| {
                self.net
                    .node(self.collector)
                    .inspect_word(word.index_word(self.answers_addr, i as u32))
                    .unwrap_or(u32::MAX)
            })
            .collect();
        answer_times.truncate(received);
        let first = answer_times.first().copied().unwrap_or(0);
        let pipeline_interval = if received >= 2 {
            (answer_times[received - 1] - answer_times[0]) / (received as u64 - 1)
        } else {
            0
        };
        let total_instructions = self
            .node_ids
            .iter()
            .map(|id| self.net.node(*id).stats().instructions)
            .sum();
        Ok(DbSearchReport {
            answers,
            expected: self.expected.clone(),
            received,
            degraded,
            excluded_nodes: self.excluded,
            answer_times_ns: answer_times,
            first_answer_ns: first,
            pipeline_interval_ns: pipeline_interval,
            total_ns: self.net.time_ns(),
            longest_path_links: self.longest_path_links,
            total_records: self.total_records,
            total_instructions,
        })
    }
}

/// Channel name for a request forwarded out of `port` (the classic
/// grid's names for its east and south forwards, extended to the other
/// directions for rerouted trees).
fn req_chan(port: usize) -> &'static str {
    match port {
        PORT_NORTH => "northreq",
        PORT_EAST => "east",
        PORT_SOUTH => "southreq",
        PORT_WEST => "westreq",
        _ => unreachable!("not a grid port: {port}"),
    }
}

/// Channel name for a partial answer arriving on `port`.
fn ans_chan(port: usize) -> &'static str {
    match port {
        PORT_NORTH => "northin",
        PORT_EAST => "eastin",
        PORT_SOUTH => "southin",
        PORT_WEST => "westin",
        _ => unreachable!("not a grid port: {port}"),
    }
}

/// Occam source for an array node with the given tree position. On the
/// intact grid this emits byte-for-byte the classic Figure 8 program for
/// the node's coordinates; excluded nodes get a trivial program that
/// halts immediately.
fn node_source(nrec: usize, r: &NodeRoutes) -> String {
    if !r.included {
        return "SEQ\n  SKIP\n".to_string();
    }
    let mut s = String::new();
    let words = nrec * RECORD_WORDS;
    s.push_str(&format!("DEF nrec = {nrec}:\n"));
    s.push_str(&format!("VAR db[{words}]:\n"));
    s.push_str("VAR going, key, count, partial:\n");
    s.push_str("CHAN reqin:\n");
    s.push_str(&format!(
        "PLACE reqin AT {}:\n",
        places::link_in(r.req_parent as u32)
    ));
    for &port in &r.req_children {
        s.push_str(&format!("CHAN {}:\n", req_chan(port)));
        s.push_str(&format!(
            "PLACE {} AT {}:\n",
            req_chan(port),
            places::link_out(port as u32)
        ));
    }
    // An answer child on the request-parent link shares the reqin
    // channel: the parent interleaves keys and its merged count on the
    // same wire, exactly as in the classic row flood/merge.
    for &port in &r.ans_children {
        if port == r.req_parent {
            continue;
        }
        s.push_str(&format!("CHAN {}:\n", ans_chan(port)));
        s.push_str(&format!(
            "PLACE {} AT {}:\n",
            ans_chan(port),
            places::link_in(port as u32)
        ));
    }
    // Likewise the answer parent shares the forwarding channel when it
    // is also a request child.
    let ans_out = if r.req_children.contains(&r.ans_parent) {
        req_chan(r.ans_parent).to_string()
    } else {
        s.push_str("CHAN ansout:\n");
        s.push_str(&format!(
            "PLACE ansout AT {}:\n",
            places::link_out(r.ans_parent as u32)
        ));
        "ansout".to_string()
    };
    s.push_str("SEQ\n");
    s.push_str("  going := TRUE\n");
    s.push_str("  WHILE going\n");
    s.push_str("    SEQ\n");
    s.push_str("      reqin ? key\n");
    s.push_str("      IF\n");
    s.push_str("        key = -1\n");
    s.push_str("          SEQ\n");
    for &port in &r.req_children {
        s.push_str(&format!("            {} ! -1\n", req_chan(port)));
    }
    s.push_str("            going := FALSE\n");
    s.push_str("        TRUE\n");
    s.push_str("          SEQ\n");
    // Forward the request before searching, so the flood proceeds while
    // the local search runs (§4.2).
    for &port in &r.req_children {
        s.push_str(&format!("            {} ! key\n", req_chan(port)));
    }
    s.push_str("            count := 0\n");
    s.push_str("            SEQ i = [0 FOR nrec]\n");
    s.push_str("              IF\n");
    s.push_str("                db[i * 4] = key\n");
    s.push_str("                  count := count + 1\n");
    s.push_str("                TRUE\n");
    s.push_str("                  SKIP\n");
    for &port in &r.ans_children {
        let chan = if port == r.req_parent {
            "reqin"
        } else {
            ans_chan(port)
        };
        s.push_str(&format!("            {chan} ? partial\n"));
        s.push_str("            count := count + partial\n");
    }
    s.push_str(&format!("            {ans_out} ! count\n"));
    s
}

/// The occam program texts a Figure 8 database-search array runs: one
/// per grid position plus the request injector and answer collector,
/// each paired with a descriptive name. Exposed so the corpus lint
/// gate can run the static checks over every generated node program.
pub fn array_sources(config: &DbSearchConfig) -> Vec<(String, String)> {
    let routes = plan_routes(config.width, config.height, &HashSet::new());
    let mut out = Vec::with_capacity(routes.len() + 2);
    for (i, r) in routes.iter().enumerate() {
        let (x, y) = (i % config.width, i / config.width);
        out.push((
            format!("dbsearch-node-{x}-{y}"),
            node_source(config.records_per_node, r),
        ));
    }
    out.push(("dbsearch-sender".into(), sender_source(config.requests)));
    out.push((
        "dbsearch-collector".into(),
        collector_source(config.requests),
    ));
    out
}

/// The occam program texts a hypercube search machine runs, deduplicated
/// by text: nodes sharing a tree position shape (same parents and
/// children) run byte-identical programs, so the lint gate checks each
/// distinct program once instead of 256 times. Each text is named after
/// the first `(cluster, x, y)` that runs it.
pub fn hypercube_sources(config: &HypercubeConfig) -> Vec<(String, String)> {
    let n = config.node_count();
    let routes = plan_routes_over(
        &hypercube_adjacency(config.dim, config.side),
        0,
        PORT_NORTH,
        n - 1,
        PORT_SOUTH,
        &HashSet::new(),
    );
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (i, r) in routes.iter().enumerate() {
        let src = node_source(config.records_per_node, r);
        if !seen.insert(src.clone()) {
            continue;
        }
        let (c, rem) = (
            i / (config.side * config.side),
            i % (config.side * config.side),
        );
        let (x, y) = (rem % config.side, rem / config.side);
        out.push((format!("dbsearch-cube-node-{c}-{x}-{y}"), src));
    }
    out.push((
        "dbsearch-cube-sender".into(),
        sender_source(config.requests),
    ));
    out.push((
        "dbsearch-cube-collector".into(),
        collector_source(config.requests),
    ));
    out
}

/// Occam source for the request-injecting host.
fn sender_source(nreq: usize) -> String {
    format!(
        "VAR keys[{size}]:\n\
         CHAN out:\n\
         PLACE out AT {place}:\n\
         SEQ k = [0 FOR {count}]\n\
         \x20 out ! keys[k]\n",
        size = nreq + 1,
        place = places::link_out(PORT_SOUTH as u32),
        count = nreq + 1,
    )
}

/// Occam source for the answer-collecting host.
fn collector_source(nreq: usize) -> String {
    format!(
        "VAR answers[{nreq}]:\n\
         VAR got:\n\
         CHAN in:\n\
         PLACE in AT {place}:\n\
         SEQ\n\
         \x20 got := 0\n\
         \x20 SEQ k = [0 FOR {nreq}]\n\
         \x20\x20\x20 SEQ\n\
         \x20\x20\x20\x20\x20 in ? answers[k]\n\
         \x20\x20\x20\x20\x20 got := got + 1\n",
        place = places::link_in(PORT_NORTH as u32),
    )
}

/// Occam source for a routed array node. Every participating node runs
/// this same program regardless of its position — the router, not the
/// program, knows the topology. Requests arrive in order on the node's
/// request channel (virtual channels deliver in order), so the node
/// counts them locally and answers the collector with the request index
/// and its match count packed into one word.
fn routed_node_source(nrec: usize, included: bool) -> String {
    if !included {
        return "SEQ\n  SKIP\n".to_string();
    }
    let words = nrec * RECORD_WORDS;
    format!(
        "DEF nrec = {nrec}:\n\
         VAR db[{words}]:\n\
         VAR going, key, count, k:\n\
         CHAN reqin:\n\
         PLACE reqin AT {req}:\n\
         CHAN ansout:\n\
         PLACE ansout AT {ans}:\n\
         SEQ\n\
         \x20 k := 0\n\
         \x20 going := TRUE\n\
         \x20 WHILE going\n\
         \x20\x20\x20 SEQ\n\
         \x20\x20\x20\x20\x20 reqin ? key\n\
         \x20\x20\x20\x20\x20 IF\n\
         \x20\x20\x20\x20\x20\x20\x20 key = -1\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20 going := FALSE\n\
         \x20\x20\x20\x20\x20\x20\x20 TRUE\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20 SEQ\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 count := 0\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 SEQ i = [0 FOR nrec]\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 IF\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 db[i * 4] = key\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 count := count + 1\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 TRUE\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 SKIP\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 ansout ! ((k * 65536) + count)\n\
         \x20\x20\x20\x20\x20\x20\x20\x20\x20\x20\x20 k := k + 1\n",
        req = places::link_in(0),
        ans = places::link_out(1),
    )
}

/// Occam source for the routed request host: each key (and the poison
/// round) is sent once per participating node; consecutive sends on the
/// one placed channel round-robin across the node-ordered request
/// channels, so participant `i` sees every key exactly once, in order.
fn routed_sender_source(nreq: usize, nlive: usize) -> String {
    format!(
        "VAR keys[{size}]:\n\
         CHAN out:\n\
         PLACE out AT {place}:\n\
         SEQ k = [0 FOR {rounds}]\n\
         \x20 SEQ i = [0 FOR {nlive}]\n\
         \x20\x20\x20 out ! keys[k]\n",
        size = nreq + 1,
        place = places::link_out(0),
        rounds = nreq + 1,
    )
}

/// Occam source for the routed answer collector: every participant's
/// per-request answers arrive interleaved on one channel, each packed
/// as `(request * 65536) + count`; unpacking makes the merge
/// order-independent, so the final counts equal the planned variant's.
fn routed_collector_source(nreq: usize, nlive: usize) -> String {
    format!(
        "VAR answers[{size}]:\n\
         VAR got, w, idx:\n\
         CHAN in:\n\
         PLACE in AT {place}:\n\
         SEQ\n\
         \x20 SEQ k = [0 FOR {size}]\n\
         \x20\x20\x20 answers[k] := 0\n\
         \x20 got := 0\n\
         \x20 SEQ j = [0 FOR {total}]\n\
         \x20\x20\x20 SEQ\n\
         \x20\x20\x20\x20\x20 in ? w\n\
         \x20\x20\x20\x20\x20 idx := w / 65536\n\
         \x20\x20\x20\x20\x20 answers[idx] := answers[idx] + (w \\ 65536)\n\
         \x20\x20\x20\x20\x20 got := got + 1\n",
        size = nreq.max(1),
        place = places::link_in(0),
        total = nreq * nlive,
    )
}

/// The occam program texts a routed search machine runs — one uniform
/// node program, the round-robin sender and the merging collector — for
/// the corpus lint gate. The routed machine's whole point is that this
/// list does not grow with the topology.
pub fn routed_sources(config: &DbSearchConfig) -> Vec<(String, String)> {
    let nlive = config.width * config.height;
    vec![
        (
            "dbsearch-routed-node".into(),
            routed_node_source(config.records_per_node, true),
        ),
        (
            "dbsearch-routed-sender".into(),
            routed_sender_source(config.requests, nlive),
        ),
        (
            "dbsearch-routed-collector".into(),
            routed_collector_source(config.requests, nlive),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use transputer_link::FaultPlan;
    use transputer_net::topology::grid_edge_wire;

    #[test]
    fn small_array_answers_correctly() {
        let config = DbSearchConfig {
            width: 2,
            height: 2,
            records_per_node: 12,
            requests: 3,
            seed: 7,
            key_space: 20,
            net: NetworkConfig::default(),
        };
        let mut sim = DbSearch::build(config).expect("builds");
        let report = sim.run(2_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        assert!(!report.degraded);
        assert_eq!(report.received, 3);
        assert!(report.first_answer_ns > 0);
        assert_eq!(report.total_records, 48);
    }

    #[test]
    fn three_by_three_pipeline() {
        let config = DbSearchConfig {
            width: 3,
            height: 3,
            records_per_node: 10,
            requests: 4,
            seed: 11,
            key_space: 15,
            net: NetworkConfig::default(),
        };
        let mut sim = DbSearch::build(config).expect("builds");
        let report = sim.run(5_000_000_000).expect("runs");
        assert!(report.all_correct());
        // With pipelining the inter-answer gap is much smaller than the
        // first-answer latency (propagation + search).
        assert!(report.pipeline_interval_ns > 0);
        assert!(report.pipeline_interval_ns < report.first_answer_ns);
    }

    #[test]
    fn intact_grid_routes_match_the_classic_flood() {
        // On an undamaged 4x4 the spanning trees must reproduce the
        // paper's figure: requests east along rows and south down
        // column 0, answers east along rows and south down the last
        // column.
        let routes = plan_routes(4, 4, &HashSet::new());
        for y in 0..4usize {
            for x in 0..4usize {
                let r = &routes[y * 4 + x];
                assert!(r.included);
                let want_req_parent = if x > 0 { PORT_WEST } else { PORT_NORTH };
                assert_eq!(r.req_parent, want_req_parent, "({x},{y})");
                let mut want_children = Vec::new();
                if x + 1 < 4 {
                    want_children.push(PORT_EAST);
                }
                if x == 0 && y + 1 < 4 {
                    want_children.push(PORT_SOUTH);
                }
                assert_eq!(r.req_children, want_children, "({x},{y})");
                let want_ans_parent = if x + 1 < 4 { PORT_EAST } else { PORT_SOUTH };
                assert_eq!(r.ans_parent, want_ans_parent, "({x},{y})");
                let mut want_ans = Vec::new();
                if x > 0 {
                    want_ans.push(PORT_WEST);
                }
                if x == 3 && y > 0 {
                    want_ans.push(PORT_NORTH);
                }
                assert_eq!(r.ans_children, want_ans, "({x},{y})");
            }
        }
    }

    #[test]
    fn dead_link_reroutes_without_degrading() {
        // Kill the wire from (0,0) to (1,0) at boot: the top row must be
        // re-parented through row 1, but the grid stays connected, so
        // nothing is excluded and every answer arrives.
        let dead_wire = grid_edge_wire(3, 3, 0, 0, true);
        let config = DbSearchConfig {
            width: 3,
            height: 3,
            records_per_node: 8,
            requests: 3,
            seed: 13,
            key_space: 16,
            net: NetworkConfig {
                fault: Some(FaultPlan::uniform(5, 0.0).with_dead_link(dead_wire, 0)),
                ..NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build(config).expect("builds");
        assert_eq!(sim.excluded_nodes(), 0);
        let report = sim.run(5_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        assert!(!report.degraded);
        assert_eq!(report.received, 3);
    }

    #[test]
    fn severed_corner_is_excluded_and_flagged() {
        // Kill both wires of the north-east corner of a 3x3: the corner
        // cannot be reached, its records drop out of the expected
        // counts, and the remaining eight nodes still answer correctly
        // under a degraded flag.
        let cut_w = grid_edge_wire(3, 3, 1, 0, true);
        let cut_s = grid_edge_wire(3, 3, 2, 0, false);
        let plan = FaultPlan::uniform(5, 0.0)
            .with_dead_link(cut_w, 0)
            .with_dead_link(cut_s, 0);
        let config = DbSearchConfig {
            width: 3,
            height: 3,
            records_per_node: 8,
            requests: 3,
            seed: 17,
            key_space: 16,
            net: NetworkConfig {
                fault: Some(plan),
                ..NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build(config).expect("builds");
        assert_eq!(sim.excluded_nodes(), 1);
        let report = sim.run(5_000_000_000).expect("runs");
        assert!(report.degraded);
        assert_eq!(report.excluded_nodes, 1);
        assert_eq!(report.received, 3);
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
    }

    #[test]
    fn mid_run_link_death_degrades_instead_of_erroring() {
        // The sender's wire (the first host wire, built right after the
        // four grid wires of a 2x2) dies just after boot — from_ns > 0,
        // so no re-planning happens. The first key is never delivered,
        // the sender exhausts its retries, and the run degrades to an
        // empty but well-formed report.
        let config = DbSearchConfig {
            width: 2,
            height: 2,
            records_per_node: 6,
            requests: 2,
            seed: 19,
            key_space: 10,
            net: NetworkConfig {
                fault: Some(FaultPlan::uniform(5, 0.0).with_dead_link(4, 1)),
                ..NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build(config).expect("builds");
        let report = sim.run(2_000_000_000).expect("degrades, not errors");
        assert!(report.degraded);
        assert_eq!(report.received, 0);
        assert!(report.answers.is_empty());
        assert!(report.all_correct(), "an empty prefix is vacuously correct");
        assert!(sim.network().any_link_failed());
    }

    #[test]
    fn search_survives_link_faults() {
        // A small array under a light uniform fault plan: retransmission
        // hides every fault and the search completes cleanly.
        let config = DbSearchConfig {
            width: 2,
            height: 2,
            records_per_node: 8,
            requests: 2,
            seed: 23,
            key_space: 12,
            net: NetworkConfig {
                fault: Some(FaultPlan::uniform(9, 0.002)),
                ..NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build(config).expect("builds");
        let report = sim.run(5_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        assert!(!report.degraded);
    }

    #[test]
    fn node_source_compiles_for_all_positions() {
        let routes = plan_routes(4, 4, &HashSet::new());
        for (x, y) in [
            (0, 0),
            (1, 0),
            (3, 0),
            (0, 1),
            (3, 1),
            (0, 3),
            (3, 3),
            (2, 2),
        ] {
            let src = node_source(5, &routes[y * 4 + x]);
            occam::compile(&src).unwrap_or_else(|e| panic!("({x},{y}): {e}\n{src}"));
        }
        // The excluded-node stub compiles too.
        let stub = node_source(5, &NodeRoutes::default());
        occam::compile(&stub).expect("excluded-node stub compiles");
    }

    #[test]
    fn search_array_of_16_bit_parts() {
        // §3.3's word-length independence at application level: the same
        // generated occam runs the search on a grid of T222s.
        let config = DbSearchConfig {
            width: 2,
            height: 2,
            records_per_node: 8,
            requests: 2,
            seed: 21,
            key_space: 12,
            net: transputer_net::NetworkConfig {
                cpu: transputer::CpuConfig::t222(),
                ..transputer_net::NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build(config).expect("builds");
        let report = sim.run(2_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
    }

    #[test]
    fn longest_path_matches_grid() {
        assert_eq!(DbSearchConfig::figure8().longest_path_links(), 6);
        assert_eq!(DbSearchConfig::board128().longest_path_links(), 22);
        assert_eq!(DbSearchConfig::board128().total_records(), 25_600);
    }

    #[test]
    fn small_hypercube_answers_correctly() {
        // Two 2x2 clusters joined by one dimension link: the smallest
        // machine whose spanning trees cross a cluster boundary.
        let config = HypercubeConfig {
            dim: 1,
            side: 2,
            records_per_node: 10,
            requests: 3,
            seed: 29,
            key_space: 24,
            net: NetworkConfig::default(),
        };
        let mut sim = DbSearch::build_hypercube(config).expect("builds");
        assert_eq!(sim.excluded_nodes(), 0);
        let report = sim.run(5_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        assert!(!report.degraded);
        assert_eq!(report.received, 3);
        assert_eq!(report.total_records, 80);
    }

    #[test]
    fn four_cluster_hypercube_pipeline() {
        // Dimension 2: requests cross two kinds of dimension anchor.
        let config = HypercubeConfig {
            dim: 2,
            side: 2,
            records_per_node: 6,
            requests: 4,
            seed: 31,
            key_space: 18,
            net: NetworkConfig::default(),
        };
        let mut sim = DbSearch::build_hypercube(config).expect("builds");
        let report = sim.run(10_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        assert!(!report.degraded);
        assert!(report.pipeline_interval_ns < report.first_answer_ns);
    }

    #[test]
    fn hypercube_survives_link_faults() {
        let config = HypercubeConfig {
            dim: 1,
            side: 2,
            records_per_node: 6,
            requests: 2,
            seed: 37,
            key_space: 12,
            net: NetworkConfig {
                fault: Some(FaultPlan::uniform(9, 0.002)),
                ..NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build_hypercube(config).expect("builds");
        let report = sim.run(10_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        assert!(!report.degraded);
    }

    #[test]
    fn hypercube_dead_dimension_link_reroutes() {
        // Kill the single dim-0 link of a dim-1 machine... that would
        // split it. Use dim 2, where killing one dimension link leaves
        // every cluster reachable the long way around.
        let side = 2;
        let grid_wires_per_cluster = 2 * side * (side - 1);
        // Dimension links follow all four clusters' grid wires; the
        // first is cluster 0 <-> cluster 1 (dim 0).
        let first_dim_wire = 4 * grid_wires_per_cluster;
        let config = HypercubeConfig {
            dim: 2,
            side,
            records_per_node: 5,
            requests: 2,
            seed: 41,
            key_space: 10,
            net: NetworkConfig {
                fault: Some(FaultPlan::uniform(5, 0.0).with_dead_link(first_dim_wire, 0)),
                ..NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build_hypercube(config).expect("builds");
        assert_eq!(sim.excluded_nodes(), 0);
        let report = sim.run(10_000_000_000).expect("runs");
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
        assert!(!report.degraded);
    }

    #[test]
    fn hypercube256_config_shape() {
        let c = HypercubeConfig::hypercube256();
        assert_eq!(c.node_count(), 256);
        assert_eq!(c.total_records(), 51_200);
        // Longest request path: the BFS depth from cluster 0's (0,0)
        // over 16 clusters of 4x4. A flat 16x16 board of the same 256
        // nodes needs 30 links corner to corner; the hypercube needs 16.
        assert_eq!(c.longest_path_links(), 16);
    }

    #[test]
    fn routed_array_matches_planned_answers() {
        // The tentpole cross-check: the routed machine — no spanning
        // trees, uniform node program, packets hopping the router —
        // must compute exactly the answers of the planned machine over
        // the same workload.
        let config = DbSearchConfig {
            width: 3,
            height: 3,
            records_per_node: 8,
            requests: 3,
            seed: 7,
            key_space: 16,
            net: NetworkConfig::default(),
        };
        let planned = DbSearch::build(config.clone())
            .expect("builds")
            .run(5_000_000_000)
            .expect("runs");
        let mut sim = DbSearch::build_routed(config).expect("builds routed");
        let routed = sim.run(5_000_000_000).expect("runs routed");
        assert!(!routed.degraded);
        assert_eq!(routed.received, 3);
        assert_eq!(routed.answers, planned.answers);
        assert_eq!(routed.expected, planned.expected);
        assert!(routed.all_correct());
        let stats = sim.network().router_stats().expect("routed");
        assert_eq!(stats.packets_dropped, 0);
        assert!(stats.packets_delivered > 0);
    }

    #[test]
    fn routed_hypercube_matches_planned_answers() {
        let config = HypercubeConfig {
            dim: 2,
            side: 2,
            records_per_node: 6,
            requests: 3,
            seed: 31,
            key_space: 18,
            net: NetworkConfig::default(),
        };
        let planned = DbSearch::build_hypercube(config.clone())
            .expect("builds")
            .run(10_000_000_000)
            .expect("runs");
        let routed = DbSearch::build_routed_hypercube(config)
            .expect("builds routed")
            .run(10_000_000_000)
            .expect("runs routed");
        assert!(!routed.degraded);
        assert_eq!(routed.answers, planned.answers);
        assert!(routed.all_correct());
    }

    #[test]
    fn routed_boot_dead_wire_reroutes_without_degrading() {
        // The wire from (0,0) to (1,0) is dead at boot: the router's
        // tables route around it, nothing is excluded, every answer
        // arrives and the dead wire carries no traffic.
        let dead_wire = grid_edge_wire(3, 3, 0, 0, true);
        let config = DbSearchConfig {
            width: 3,
            height: 3,
            records_per_node: 6,
            requests: 2,
            seed: 13,
            key_space: 12,
            net: NetworkConfig {
                fault: Some(FaultPlan::uniform(5, 0.0).with_dead_link(dead_wire, 0)),
                ..NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build_routed(config).expect("builds");
        assert_eq!(sim.excluded_nodes(), 0);
        let report = sim.run(20_000_000_000).expect("runs");
        assert!(!report.degraded, "rerouting must not degrade the search");
        assert!(report.all_correct());
        let (a, b) = sim.network().wire_delivered(dead_wire);
        assert_eq!((a, b), (0, 0), "the dead wire must carry nothing");
    }

    #[test]
    fn routed_severed_corner_is_excluded_and_flagged() {
        // Both wires of the north-east corner dead at boot: the routed
        // machine excludes the unreachable node exactly as the planned
        // one does, and the rest still answers correctly.
        let cut_w = grid_edge_wire(3, 3, 1, 0, true);
        let cut_s = grid_edge_wire(3, 3, 2, 0, false);
        let plan = FaultPlan::uniform(5, 0.0)
            .with_dead_link(cut_w, 0)
            .with_dead_link(cut_s, 0);
        let config = DbSearchConfig {
            width: 3,
            height: 3,
            records_per_node: 6,
            requests: 2,
            seed: 17,
            key_space: 12,
            net: NetworkConfig {
                fault: Some(plan),
                ..NetworkConfig::default()
            },
        };
        let mut sim = DbSearch::build_routed(config).expect("builds");
        assert_eq!(sim.excluded_nodes(), 1);
        let report = sim.run(20_000_000_000).expect("runs");
        assert!(report.degraded);
        assert_eq!(report.excluded_nodes, 1);
        assert!(
            report.all_correct(),
            "answers {:?} != expected {:?}",
            report.answers,
            report.expected
        );
    }

    #[test]
    fn routed_midrun_interior_death_is_engine_invariant() {
        // An interior hop dies mid-run. The router rebuilds its tables
        // from the surviving adjacency and the search still completes —
        // and the whole outcome (answers, arrival times, every wire's
        // byte counters) is bit-identical on all three engines.
        let dead_wire = grid_edge_wire(3, 3, 0, 0, true);
        let mut reference: Option<(DbSearchReport, Vec<(u64, u64)>)> = None;
        for engine in [
            transputer_net::Engine::Event,
            transputer_net::Engine::Sliced,
            transputer_net::Engine::Parallel,
        ] {
            let config = DbSearchConfig {
                width: 3,
                height: 3,
                records_per_node: 6,
                requests: 2,
                seed: 13,
                key_space: 12,
                net: NetworkConfig {
                    engine,
                    fault: Some(FaultPlan::uniform(5, 0.0).with_dead_link(dead_wire, 40_000)),
                    ..NetworkConfig::default()
                },
            };
            let mut sim = DbSearch::build_routed(config).expect("builds");
            let report = sim.run(60_000_000_000).expect("runs");
            assert!(
                sim.network().any_link_failed(),
                "{engine:?}: the wire must die while traffic is flowing"
            );
            assert!(!report.degraded, "{engine:?}: reroute, not degrade");
            assert!(report.all_correct(), "{engine:?}");
            let wires: Vec<(u64, u64)> = (0..sim.network().wire_count())
                .map(|w| sim.network().wire_delivered(w))
                .collect();
            match &reference {
                None => reference = Some((report, wires)),
                Some((want, want_wires)) => {
                    assert_eq!(report.answers, want.answers, "{engine:?}");
                    assert_eq!(
                        report.answer_times_ns, want.answer_times_ns,
                        "{engine:?} arrival times diverged"
                    );
                    assert_eq!(&wires, want_wires, "{engine:?} wire counters diverged");
                }
            }
        }
    }

    #[test]
    fn routed_sources_compile() {
        for (name, src) in routed_sources(&DbSearchConfig::figure8()) {
            occam::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}\n{src}"));
        }
    }

    #[test]
    fn hypercube_sources_dedupe_and_compile() {
        let config = HypercubeConfig {
            dim: 2,
            side: 3,
            records_per_node: 4,
            requests: 2,
            seed: 5,
            key_space: 9,
            net: NetworkConfig::default(),
        };
        let sources = hypercube_sources(&config);
        // Deduplicated well below one-per-node, plus the two hosts.
        assert!(sources.len() < 4 * 9);
        assert!(sources.len() > 2);
        let mut texts = HashSet::new();
        for (name, src) in &sources {
            assert!(texts.insert(src.clone()), "{name} duplicates another text");
            occam::compile(src).unwrap_or_else(|e| panic!("{name}: {e}\n{src}"));
        }
    }
}
