//! Expression evaluation onto the three-register stack.
//!
//! "If there is insufficient room to evaluate an expression on the stack,
//! then the compiler introduces the necessary temporary variables in the
//! local workspace. However, expressions of such complexity are, in
//! practice, rarely encountered. Three registers provide a good balance
//! between code compactness and implementation complexity" (§3.2.9).

use super::{Binding, Cg, Slot, TEMP_SLOTS};
use crate::ast::{BinOp, ChanRef, Expr, Lvalue, UnOp};
use crate::error::CompileError;
use transputer::instr::{Direct, Op};

/// How a vector's base address is obtained: declared vectors live in a
/// workspace (`ldlp`-style), vector *parameters* hold their base address
/// in a parameter word (`ldl`-style).
#[derive(Debug, Clone, Copy)]
pub(crate) enum VecBase {
    /// The vector's storage is at this slot.
    Direct(Slot),
    /// The slot holds a pointer to the vector.
    Indirect(Slot),
}

/// A resolved vector: how to reach it, its length if known (parameters
/// carry none — occam 1 vector parameters are unbounded), and whether
/// stores are allowed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VectorRef {
    pub base: VecBase,
    pub len: Option<i64>,
    pub writable: bool,
}

impl Cg {
    /// Registers the evaluation of `e` would need on an empty stack.
    pub(crate) fn depth(&self, e: &Expr) -> u32 {
        match e {
            Expr::Literal(_) | Expr::True | Expr::False => 1,
            Expr::Name(_) => 1,
            Expr::Index(name, idx) => {
                if self.const_eval(idx).is_some() && self.vector_indexes_in_one(name) {
                    1
                } else {
                    let d = (self.depth(idx) + 1).max(2);
                    // A bounds check pushes the limit constant too.
                    if self.options.bounds_checks {
                        d.max(3)
                    } else {
                        d
                    }
                }
            }
            Expr::ByteIndex(_, idx) => {
                let d = (self.depth(idx) + 1).max(2);
                if self.options.bounds_checks {
                    d.max(3)
                } else {
                    d
                }
            }
            Expr::Un(UnOp::Neg, inner) => (self.depth(inner) + 1).min(4),
            Expr::Un(_, inner) => self.depth(inner),
            Expr::Bin(op, l, r) => {
                if matches!(op, BinOp::Add | BinOp::Sub) && self.const_eval(r).is_some() {
                    return self.depth(l);
                }
                if matches!(op, BinOp::Add) && self.const_eval(l).is_some() {
                    return self.depth(r);
                }
                let (first, second) = if matches!(op, BinOp::Lt | BinOp::Ge) {
                    (r, l)
                } else {
                    (l, r)
                };
                let d2 = self.depth(second);
                if d2 >= 3 {
                    // Spill path: `second` is evaluated first and needs
                    // the whole stack, so the expression as a whole does
                    // too — any enclosing operand must itself be
                    // spilled around it.
                    (self.depth(first) + 1).max(d2).min(4)
                } else {
                    self.depth(first).max(d2 + 1)
                }
            }
        }
    }

    /// Whether a constant subscript of this vector compiles to a single
    /// one-deep access (same-level declared vector: `ldl base+k`;
    /// same-level vector parameter: `ldl p; ldnl k`).
    fn vector_indexes_in_one(&self, name: &str) -> bool {
        matches!(
            self.lookup(name),
            Some(Binding::Vec(slot, _)) | Some(Binding::VecParam(slot, _))
                if slot.level == self.level()
        )
    }

    /// Take a spill temporary; returns its operand (current-context
    /// relative).
    fn take_temp(&mut self, line: u32) -> Result<i64, CompileError> {
        let ctx = self.ctx();
        if ctx.temps_used >= i64::from(TEMP_SLOTS as u32) {
            return Err(CompileError::codegen(
                line,
                "expression too complex: spill temporaries exhausted",
            ));
        }
        let t = ctx.temps_base + ctx.temps_used;
        ctx.temps_used += 1;
        Ok(t)
    }

    fn release_temp(&mut self) {
        self.ctx().temps_used -= 1;
    }

    /// Operand for a slot accessed from the current context.
    pub(crate) fn slot_operand(&self, slot: Slot) -> i64 {
        debug_assert_eq!(slot.level, self.level(), "same-frame access only");
        slot.offset + (self.ctx_ref().adjust - slot.adjust)
    }

    /// Emit the static-link chase from the current frame down to `level`,
    /// leaving that frame's base pointer in A.
    pub(crate) fn emit_chain_to(&mut self, level: usize, line: u32) -> Result<(), CompileError> {
        let my_level = self.level();
        debug_assert!(level < my_level);
        // Our own static link is a parameter of the current frame.
        let root = self
            .contexts
            .iter()
            .rev()
            .find(|c| c.is_frame_root)
            .expect("inside a frame");
        let sl = root
            .static_link_offset
            .ok_or_else(|| CompileError::codegen(line, "internal: frame has no static link"))?;
        self.emit
            .insn(Direct::LoadLocal, sl + self.ctx_ref().adjust);
        // Each intermediate frame's static link is at a known offset in
        // that frame.
        let mut at = my_level - 1;
        while at > level {
            let sl_at = self
                .frame_static_link_offset(at)
                .ok_or_else(|| CompileError::codegen(line, "internal: missing static link"))?;
            self.emit.insn(Direct::LoadNonLocal, sl_at);
            at -= 1;
        }
        Ok(())
    }

    /// Static-link offset (frame-base relative) of the frame at `level`.
    fn frame_static_link_offset(&self, level: usize) -> Option<i64> {
        self.contexts
            .iter()
            .find(|c| c.is_frame_root && c.level == level)
            .and_then(|c| c.static_link_offset)
    }

    /// Load a slot's value into A (local `ldl` or chained `ldnl`).
    fn emit_slot_value(&mut self, slot: Slot, line: u32) -> Result<(), CompileError> {
        if slot.level == self.level() {
            self.emit.insn(Direct::LoadLocal, self.slot_operand(slot));
        } else {
            self.emit_chain_to(slot.level, line)?;
            self.emit
                .insn(Direct::LoadNonLocal, slot.offset - slot.adjust);
        }
        Ok(())
    }

    /// Put a slot's address in A (local `ldlp` or chained `ldnlp`).
    fn emit_slot_addr(&mut self, slot: Slot, line: u32) -> Result<(), CompileError> {
        if slot.level == self.level() {
            self.emit
                .insn(Direct::LoadLocalPointer, self.slot_operand(slot));
        } else {
            self.emit_chain_to(slot.level, line)?;
            self.emit
                .insn(Direct::LoadNonLocalPointer, slot.offset - slot.adjust);
        }
        Ok(())
    }

    /// Put a vector's base address in A.
    fn emit_vec_base(&mut self, base: VecBase, line: u32) -> Result<(), CompileError> {
        match base {
            VecBase::Direct(slot) => self.emit_slot_addr(slot, line),
            VecBase::Indirect(slot) => self.emit_slot_value(slot, line),
        }
    }

    /// Resolve a name as a (value) vector.
    pub(crate) fn resolve_vector(&self, name: &str, line: u32) -> Result<VectorRef, CompileError> {
        match self.lookup(name) {
            Some(Binding::Vec(slot, len)) => Ok(VectorRef {
                base: VecBase::Direct(*slot),
                len: Some(*len),
                writable: true,
            }),
            Some(Binding::VecParam(slot, writable)) => Ok(VectorRef {
                base: VecBase::Indirect(*slot),
                len: None,
                writable: *writable,
            }),
            Some(_) => Err(CompileError::check(
                line,
                format!("`{name}` is not a vector"),
            )),
            None => Err(CompileError::check(
                line,
                format!("`{name}` is not defined"),
            )),
        }
    }

    /// Evaluate an expression, leaving its value in A.
    pub(crate) fn gen_expr(&mut self, e: &Expr, line: u32) -> Result<(), CompileError> {
        // Whole-expression constant folding.
        if let Some(v) = self.const_eval(e) {
            self.emit.insn(Direct::LoadConstant, v);
            return Ok(());
        }
        match e {
            Expr::Literal(_) | Expr::True | Expr::False => unreachable!("folded above"),
            Expr::Name(name) => self.gen_load_name(name, line),
            Expr::Index(name, idx) => self.gen_load_index(name, idx, line),
            Expr::ByteIndex(name, idx) => self.gen_load_byte_index(name, idx, line),
            Expr::Un(op, inner) => match op {
                UnOp::Neg => {
                    // 0 - e, checked.
                    if self.depth(inner) >= 3 {
                        self.gen_expr(inner, line)?;
                        let t = self.take_temp(line)?;
                        self.emit.insn(Direct::StoreLocal, t);
                        self.emit.insn(Direct::LoadConstant, 0);
                        self.emit.insn(Direct::LoadLocal, t);
                        self.release_temp();
                    } else {
                        self.emit.insn(Direct::LoadConstant, 0);
                        self.gen_expr(inner, line)?;
                    }
                    self.emit.op(Op::Subtract);
                    Ok(())
                }
                UnOp::Not => {
                    self.gen_expr(inner, line)?;
                    self.emit.insn(Direct::EqualsConstant, 0);
                    Ok(())
                }
                UnOp::BitNot => {
                    self.gen_expr(inner, line)?;
                    self.emit.op(Op::Not);
                    Ok(())
                }
            },
            Expr::Bin(op, l, r) => self.gen_bin(*op, l, r, line),
        }
    }

    fn gen_bin(&mut self, op: BinOp, l: &Expr, r: &Expr, line: u32) -> Result<(), CompileError> {
        // `x + 2` compiles to `ldl x; adc 2` — exactly the paper's
        // §3.2.9 table.
        if matches!(op, BinOp::Add | BinOp::Sub) {
            if let Some(c) = self.const_eval(r) {
                self.gen_expr(l, line)?;
                let c = if op == BinOp::Sub { -c } else { c };
                if c != 0 {
                    self.emit.insn(Direct::AddConstant, c);
                }
                return Ok(());
            }
        }
        if op == BinOp::Add {
            if let Some(c) = self.const_eval(l) {
                self.gen_expr(r, line)?;
                if c != 0 {
                    self.emit.insn(Direct::AddConstant, c);
                }
                return Ok(());
            }
        }
        // `<` and `>=` evaluate the right operand first so a single
        // `gt` (B > A) computes the result.
        let (first, second) = if matches!(op, BinOp::Lt | BinOp::Ge) {
            (r, l)
        } else {
            (l, r)
        };
        self.gen_operands(first, second, line)?;
        match op {
            BinOp::Add => self.emit.op(Op::Add),
            BinOp::Sub => self.emit.op(Op::Subtract),
            BinOp::Mul => self.emit.op(Op::Multiply),
            BinOp::Div => self.emit.op(Op::Divide),
            BinOp::Rem => self.emit.op(Op::Remainder),
            BinOp::Eq => {
                self.emit.op(Op::Difference);
                self.emit.insn(Direct::EqualsConstant, 0);
            }
            BinOp::Ne => {
                self.emit.op(Op::Difference);
                self.emit.insn(Direct::EqualsConstant, 0);
                self.emit.insn(Direct::EqualsConstant, 0);
            }
            BinOp::Gt | BinOp::Lt => self.emit.op(Op::GreaterThan),
            BinOp::Le | BinOp::Ge => {
                self.emit.op(Op::GreaterThan);
                self.emit.insn(Direct::EqualsConstant, 0);
            }
            BinOp::And | BinOp::BitAnd => self.emit.op(Op::And),
            BinOp::Or | BinOp::BitOr => self.emit.op(Op::Or),
            BinOp::BitXor => self.emit.op(Op::ExclusiveOr),
            BinOp::Shl => self.emit.op(Op::ShiftLeft),
            BinOp::Shr => self.emit.op(Op::ShiftRight),
            BinOp::After => {
                // l AFTER r  ⇔  (l - r) > 0 in modulo arithmetic (§2.2.2).
                self.emit.op(Op::Difference);
                self.emit.insn(Direct::LoadConstant, 0);
                self.emit.op(Op::GreaterThan);
            }
        }
        Ok(())
    }

    /// Evaluate `first` then `second` so that B = first, A = second,
    /// spilling through a temporary when `second` needs the whole stack.
    fn gen_operands(&mut self, first: &Expr, second: &Expr, line: u32) -> Result<(), CompileError> {
        if self.depth(second) >= 3 {
            self.gen_expr(second, line)?;
            let t = self.take_temp(line)?;
            self.emit.insn(Direct::StoreLocal, t);
            self.gen_expr(first, line)?;
            self.emit.insn(Direct::LoadLocal, t);
            self.release_temp();
        } else {
            self.gen_expr(first, line)?;
            self.gen_expr(second, line)?;
        }
        Ok(())
    }

    /// Load a named value.
    fn gen_load_name(&mut self, name: &str, line: u32) -> Result<(), CompileError> {
        if name == "TIME" {
            self.emit.op(Op::LoadTimer);
            return Ok(());
        }
        let b = self
            .lookup(name)
            .cloned()
            .ok_or_else(|| CompileError::check(line, format!("`{name}` is not defined")))?;
        match b {
            Binding::Const(v) => self.emit.insn(Direct::LoadConstant, v),
            Binding::Var(slot) | Binding::ValueParam(slot) => {
                self.emit_slot_value(slot, line)?;
            }
            Binding::VarParam(slot) => {
                self.emit_slot_value(slot, line)?;
                self.emit.insn(Direct::LoadNonLocal, 0);
            }
            Binding::Vec(..)
            | Binding::ChanVec(..)
            | Binding::VecParam(..)
            | Binding::ChanVecParam(_) => {
                return Err(CompileError::check(
                    line,
                    format!("`{name}` is a vector and needs a subscript"),
                ))
            }
            Binding::Chan(_) | Binding::PlacedChan(_) | Binding::ChanParam(_) => {
                return Err(CompileError::check(
                    line,
                    format!("`{name}` is a channel, not a value"),
                ))
            }
            Binding::Proc(_) => {
                return Err(CompileError::check(
                    line,
                    format!("`{name}` is a PROC, not a value"),
                ))
            }
        }
        Ok(())
    }

    /// Load a vector element.
    fn gen_load_index(&mut self, name: &str, idx: &Expr, line: u32) -> Result<(), CompileError> {
        let v = self.resolve_vector(name, line)?;
        if let Some(k) = self.const_eval(idx) {
            self.check_const_subscript(name, k, v.len, line)?;
            match v.base {
                VecBase::Direct(slot) => {
                    if slot.level == self.level() {
                        self.emit
                            .insn(Direct::LoadLocal, self.slot_operand(slot) + k);
                    } else {
                        self.emit_chain_to(slot.level, line)?;
                        self.emit
                            .insn(Direct::LoadNonLocal, slot.offset - slot.adjust + k);
                    }
                }
                VecBase::Indirect(slot) => {
                    self.emit_slot_value(slot, line)?;
                    self.emit.insn(Direct::LoadNonLocal, k);
                }
            }
            return Ok(());
        }
        self.gen_vector_element_addr(v, idx, line)?;
        self.emit.insn(Direct::LoadNonLocal, 0);
        Ok(())
    }

    fn check_const_subscript(
        &self,
        name: &str,
        k: i64,
        len: Option<i64>,
        line: u32,
    ) -> Result<(), CompileError> {
        if k < 0 {
            return Err(CompileError::check(
                line,
                format!("negative subscript {k} on `{name}`"),
            ));
        }
        if let Some(len) = len {
            if k >= len {
                return Err(CompileError::check(
                    line,
                    format!("subscript {k} outside `{name}[{len}]`"),
                ));
            }
        }
        Ok(())
    }

    /// Leave the address of `vec[idx]` in A.
    pub(crate) fn gen_vector_element_addr(
        &mut self,
        v: VectorRef,
        idx: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        self.emit_vec_base(v.base, line)?;
        // Index (one stack entry is occupied by the base).
        if self.depth(idx) >= 3 {
            let t = self.take_temp(line)?;
            self.emit.insn(Direct::StoreLocal, t);
            self.gen_expr(idx, line)?;
            let t2 = self.take_temp(line)?;
            self.emit.insn(Direct::StoreLocal, t2);
            self.emit.insn(Direct::LoadLocal, t);
            self.emit.insn(Direct::LoadLocal, t2);
            self.release_temp();
            self.release_temp();
        } else {
            self.gen_expr(idx, line)?;
        }
        if self.options.bounds_checks {
            if let Some(len) = v.len {
                self.emit.insn(Direct::LoadConstant, len);
                self.emit.op(Op::CheckSubscriptFromZero);
            }
        }
        self.emit.op(Op::WordSubscript);
        Ok(())
    }

    /// Load a byte element (`v[BYTE i]`), zero-extended into A.
    fn gen_load_byte_index(
        &mut self,
        name: &str,
        idx: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        let v = self.resolve_vector(name, line)?;
        self.gen_byte_element_addr(v, idx, line)?;
        self.emit.op(Op::LoadByte);
        Ok(())
    }

    /// Leave the address of byte `idx` of a vector in A.
    fn gen_byte_element_addr(
        &mut self,
        v: VectorRef,
        idx: &Expr,
        line: u32,
    ) -> Result<(), CompileError> {
        self.emit_vec_base(v.base, line)?;
        if self.depth(idx) >= 3 {
            let t = self.take_temp(line)?;
            self.emit.insn(Direct::StoreLocal, t);
            self.gen_expr(idx, line)?;
            let t2 = self.take_temp(line)?;
            self.emit.insn(Direct::StoreLocal, t2);
            self.emit.insn(Direct::LoadLocal, t);
            self.emit.insn(Direct::LoadLocal, t2);
            self.release_temp();
            self.release_temp();
        } else {
            self.gen_expr(idx, line)?;
        }
        if self.options.bounds_checks {
            if let Some(len) = v.len {
                self.emit
                    .insn(Direct::LoadConstant, len * self.bytes_per_word());
                self.emit.op(Op::CheckSubscriptFromZero);
            }
        }
        self.emit.op(Op::ByteSubscript);
        Ok(())
    }

    /// Store A into an lvalue. (Callers must have the value on top.)
    pub(crate) fn gen_store(&mut self, lv: &Lvalue, line: u32) -> Result<(), CompileError> {
        match lv {
            Lvalue::Name(name) => {
                let b = self
                    .lookup(name)
                    .cloned()
                    .ok_or_else(|| CompileError::check(line, format!("`{name}` is not defined")))?;
                match b {
                    Binding::Var(slot) => {
                        if slot.level == self.level() {
                            self.emit.insn(Direct::StoreLocal, self.slot_operand(slot));
                        } else {
                            // The paper's §3.2.6 static-link sequence:
                            // `ldl staticlink; stnl z`.
                            self.emit_chain_to(slot.level, line)?;
                            self.emit
                                .insn(Direct::StoreNonLocal, slot.offset - slot.adjust);
                        }
                    }
                    Binding::VarParam(slot) => {
                        self.emit_slot_value(slot, line)?;
                        self.emit.insn(Direct::StoreNonLocal, 0);
                    }
                    Binding::ValueParam(_) => {
                        return Err(CompileError::check(
                            line,
                            format!("cannot assign to VALUE parameter `{name}`"),
                        ))
                    }
                    Binding::Const(_) => {
                        return Err(CompileError::check(
                            line,
                            format!("cannot assign to constant `{name}`"),
                        ))
                    }
                    _ => {
                        return Err(CompileError::check(
                            line,
                            format!("`{name}` is not an assignable variable"),
                        ))
                    }
                }
            }
            Lvalue::ByteIndex(name, idx) => {
                let v = self.resolve_vector(name, line)?;
                self.require_writable(name, &v, line)?;
                if self.depth(idx) >= 2 || self.options.bounds_checks {
                    let t = self.take_temp(line)?;
                    self.emit.insn(Direct::StoreLocal, t);
                    self.gen_byte_element_addr(v, idx, line)?;
                    self.emit.insn(Direct::LoadLocal, t);
                    self.emit.op(Op::Reverse);
                    self.emit.op(Op::StoreByte);
                    self.release_temp();
                } else {
                    self.gen_byte_element_addr(v, idx, line)?;
                    self.emit.op(Op::StoreByte);
                }
            }
            Lvalue::Index(name, idx) => {
                let v = self.resolve_vector(name, line)?;
                self.require_writable(name, &v, line)?;
                if let Some(k) = self.const_eval(idx) {
                    self.check_const_subscript(name, k, v.len, line)?;
                    match v.base {
                        VecBase::Direct(slot) => {
                            if slot.level == self.level() {
                                self.emit
                                    .insn(Direct::StoreLocal, self.slot_operand(slot) + k);
                            } else {
                                self.emit_chain_to(slot.level, line)?;
                                self.emit
                                    .insn(Direct::StoreNonLocal, slot.offset - slot.adjust + k);
                            }
                        }
                        VecBase::Indirect(slot) => {
                            self.emit_slot_value(slot, line)?;
                            self.emit.insn(Direct::StoreNonLocal, k);
                        }
                    }
                } else if self.depth(idx) >= 2 || self.options.bounds_checks {
                    // The value occupies a register; an index this deep
                    // (or a bounds check) would push it off the stack.
                    // Park the value in a temporary while computing the
                    // element address.
                    let t = self.take_temp(line)?;
                    self.emit.insn(Direct::StoreLocal, t);
                    self.gen_vector_element_addr(v, idx, line)?;
                    self.emit.insn(Direct::LoadLocal, t);
                    self.emit.op(Op::Reverse);
                    self.emit.insn(Direct::StoreNonLocal, 0);
                    self.release_temp();
                } else {
                    // Value is in A; the address fits above it.
                    self.gen_vector_element_addr(v, idx, line)?;
                    self.emit.insn(Direct::StoreNonLocal, 0);
                }
            }
        }
        Ok(())
    }

    fn require_writable(&self, name: &str, v: &VectorRef, line: u32) -> Result<(), CompileError> {
        if v.writable {
            Ok(())
        } else {
            Err(CompileError::check(
                line,
                format!("cannot assign into VALUE vector parameter `{name}`"),
            ))
        }
    }

    /// Leave the address of an lvalue in A (for `VAR` actuals and
    /// message input).
    pub(crate) fn gen_lvalue_addr(&mut self, lv: &Lvalue, line: u32) -> Result<(), CompileError> {
        match lv {
            Lvalue::Name(name) => {
                let b = self
                    .lookup(name)
                    .cloned()
                    .ok_or_else(|| CompileError::check(line, format!("`{name}` is not defined")))?;
                match b {
                    Binding::Var(slot) => self.emit_slot_addr(slot, line)?,
                    Binding::VarParam(slot) => self.emit_slot_value(slot, line)?,
                    _ => {
                        return Err(CompileError::check(
                            line,
                            format!("`{name}` is not a variable"),
                        ))
                    }
                }
            }
            Lvalue::ByteIndex(..) => {
                return Err(CompileError::check(
                    line,
                    "a BYTE element cannot receive a whole-word message or act as a VAR argument",
                ))
            }
            Lvalue::Index(name, idx) => {
                let v = self.resolve_vector(name, line)?;
                self.require_writable(name, &v, line)?;
                self.gen_vector_element_addr(v, idx, line)?;
            }
        }
        Ok(())
    }

    /// Put a whole vector's base address in A (for vector actuals).
    pub(crate) fn gen_vector_base_addr(
        &mut self,
        name: &str,
        line: u32,
    ) -> Result<(), CompileError> {
        let v = self.resolve_vector(name, line)?;
        self.emit_vec_base(v.base, line)
    }

    /// Leave a channel's address in A.
    pub(crate) fn gen_chan_addr(&mut self, c: &ChanRef, line: u32) -> Result<(), CompileError> {
        let name = match c {
            ChanRef::Name(n) | ChanRef::Index(n, _) => n.clone(),
        };
        let b = self
            .lookup(&name)
            .cloned()
            .ok_or_else(|| CompileError::check(line, format!("`{name}` is not defined")))?;
        match (c, b) {
            (ChanRef::Name(_), Binding::Chan(slot)) => self.emit_slot_addr(slot, line)?,
            (ChanRef::Name(_), Binding::ChanParam(slot)) => self.emit_slot_value(slot, line)?,
            (ChanRef::Name(_), Binding::PlacedChan(word)) => {
                // Address = MostNeg + word * bytes-per-word: the link
                // channel words at the bottom of the address space.
                self.emit.op(Op::MinimumInteger);
                if word != 0 {
                    self.emit.insn(Direct::LoadNonLocalPointer, word);
                }
            }
            (ChanRef::Index(_, idx), Binding::ChanVec(slot, len)) => {
                let v = VectorRef {
                    base: VecBase::Direct(slot),
                    len: Some(len),
                    writable: true,
                };
                self.gen_vector_element_addr(v, idx, line)?;
            }
            (ChanRef::Index(_, idx), Binding::ChanVecParam(slot)) => {
                let v = VectorRef {
                    base: VecBase::Indirect(slot),
                    len: None,
                    writable: true,
                };
                self.gen_vector_element_addr(v, idx, line)?;
            }
            (ChanRef::Index(..), _) => {
                return Err(CompileError::check(
                    line,
                    format!("`{name}` is not a channel vector"),
                ))
            }
            (ChanRef::Name(_), _) => {
                return Err(CompileError::check(
                    line,
                    format!("`{name}` is not a channel"),
                ))
            }
        }
        Ok(())
    }

    /// Registers needed to put a channel's address in A.
    pub(crate) fn chan_depth(&self, c: &ChanRef) -> u32 {
        match c {
            ChanRef::Name(_) => 1,
            ChanRef::Index(_, idx) => {
                let d = (self.depth(idx) + 1).max(2);
                if self.options.bounds_checks {
                    d.max(3)
                } else {
                    d
                }
            }
        }
    }

    /// Park the value in A in a spill temporary; returns the operand to
    /// reload it with. The caller must call [`Cg::temp_done`] after.
    pub(crate) fn park_a(&mut self, line: u32) -> Result<i64, CompileError> {
        let t = self.take_temp(line)?;
        self.emit.insn(Direct::StoreLocal, t);
        Ok(t)
    }

    /// Release the most recently taken spill temporary.
    pub(crate) fn temp_done(&mut self) {
        self.release_temp();
    }

    /// Emit the byte count for a one-word message: a constant, or the
    /// word-length independent `ldc 1; bcnt` (§3.3).
    pub(crate) fn gen_word_count(&mut self) {
        if self.options.word_independent {
            self.emit.insn(Direct::LoadConstant, 1);
            self.emit.op(Op::ByteCount);
        } else {
            self.emit.insn(Direct::LoadConstant, self.bytes_per_word());
        }
    }
}
