//! PAR usage checking.
//!
//! Occam's rules make concurrent programs checkable (§2.2.1: "the
//! designer [can] increase his confidence that his design is correct"):
//! a variable assigned in one component of a `PAR` may not be used in
//! any other component. This pass enforces the scalar-variable part of
//! that rule conservatively at compile time:
//!
//! * a free scalar variable written by one branch must not be read or
//!   written by another;
//! * a replicated `PAR` must not write any free scalar at all (every
//!   copy would);
//! * vector elements are exempt (checking subscript disjointness needs
//!   value analysis; historical compilers checked what they could and
//!   trusted `[i]` partitioning — so do we);
//! * `PRI PAR` keeps the historical permissiveness — a violation is
//!   reported as a *warning*, not an error: prioritised components were
//!   commonly used for exactly the device-handler patterns that share a
//!   word with the low-priority process, but the sharing still defeats
//!   the usage rule's non-interference guarantee.
//!
//! The check is syntactic but scope-aware: names declared inside a
//! branch shadow outer bindings, and `PROC` calls contribute the reads
//! and writes implied by their parameter modes.

use std::collections::HashSet;

use super::{Binding, Cg, Warning};
use crate::ast::{Actual, AltKind, Decl, Expr, Lvalue, ParamMode, Process};
use crate::error::CompileError;

/// Free-variable usage of one `PAR` branch.
#[derive(Debug, Default)]
pub(crate) struct Usage {
    pub reads: HashSet<String>,
    pub writes: HashSet<String>,
}

/// Scope tracker for names declared locally within the branch.
#[derive(Debug, Default)]
struct Locals {
    scopes: Vec<HashSet<String>>,
}

impl Locals {
    fn push(&mut self) {
        self.scopes.push(HashSet::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name.to_string());
        }
    }

    fn contains(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| s.contains(name))
    }
}

impl Cg {
    /// Check a `PAR`'s components for scalar write conflicts.
    pub(crate) fn par_usage_check(
        &self,
        branches: &[&Process],
        replicated: bool,
        line: u32,
    ) -> Result<(), CompileError> {
        if !self.options.par_checks {
            return Ok(());
        }
        match self.par_usage_conflict(branches, replicated) {
            Some(message) => Err(CompileError::check(line, message)),
            None => Ok(()),
        }
    }

    /// Check a `PRI PAR`'s components for the same conflicts, but report
    /// a violation as a warning: the prioritised form stays compilable,
    /// as in the historical compilers.
    pub(crate) fn pri_par_usage_check(&mut self, branches: &[&Process], line: u32) {
        if !self.options.par_checks {
            return;
        }
        if let Some(message) = self.par_usage_conflict(branches, false) {
            self.warnings.push(Warning {
                line,
                message: format!("PRI PAR: {message}"),
            });
        }
    }

    /// The first scalar-sharing violation among `branches`, if any.
    fn par_usage_conflict(&self, branches: &[&Process], replicated: bool) -> Option<String> {
        let usages: Vec<Usage> = branches
            .iter()
            .map(|b| {
                let mut u = Usage::default();
                let mut locals = Locals::default();
                locals.push();
                self.collect(b, &mut locals, &mut u);
                u
            })
            .collect();
        if replicated {
            for u in &usages {
                if let Some(name) = u.writes.iter().min() {
                    return Some(format!(
                        "replicated PAR: every copy would assign `{name}`; occam \
                         forbids shared writable variables between parallel \
                         processes (use a vector element per copy, or channels)"
                    ));
                }
            }
            return None;
        }
        for i in 0..usages.len() {
            for j in 0..usages.len() {
                if i == j {
                    continue;
                }
                for name in &usages[i].writes {
                    if usages[j].writes.contains(name) || usages[j].reads.contains(name) {
                        return Some(format!(
                            "`{name}` is assigned in one component of this PAR and \
                             used in another; occam forbids shared variables \
                             between parallel processes (communicate over a \
                             channel instead)"
                        ));
                    }
                }
            }
        }
        None
    }

    /// Whether `name` is a free scalar variable (the kind the rule
    /// covers) in the current compile-time scope.
    fn is_checked_scalar(&self, name: &str) -> bool {
        matches!(
            self.lookup(name),
            Some(Binding::Var(_)) | Some(Binding::VarParam(_)) | Some(Binding::ValueParam(_))
        )
    }

    fn read_expr(&self, e: &Expr, locals: &Locals, u: &mut Usage) {
        match e {
            Expr::Literal(_) | Expr::True | Expr::False => {}
            Expr::Name(n) => {
                if !locals.contains(n) && self.is_checked_scalar(n) {
                    u.reads.insert(n.clone());
                }
            }
            Expr::Index(_, idx) | Expr::ByteIndex(_, idx) => self.read_expr(idx, locals, u),
            Expr::Bin(_, a, b) => {
                self.read_expr(a, locals, u);
                self.read_expr(b, locals, u);
            }
            Expr::Un(_, a) => self.read_expr(a, locals, u),
        }
    }

    fn write_lvalue(&self, lv: &Lvalue, locals: &Locals, u: &mut Usage) {
        match lv {
            Lvalue::Name(n) => {
                if !locals.contains(n) && self.is_checked_scalar(n) {
                    u.writes.insert(n.clone());
                }
            }
            Lvalue::Index(_, idx) | Lvalue::ByteIndex(_, idx) => {
                // Vector elements are exempt; the subscript is read.
                self.read_expr(idx, locals, u);
            }
        }
    }

    fn collect(&self, p: &Process, locals: &mut Locals, u: &mut Usage) {
        match p {
            Process::Skip | Process::Stop => {}
            Process::Assign(lv, e, _) => {
                self.read_expr(e, locals, u);
                self.write_lvalue(lv, locals, u);
            }
            Process::Output(c, e, _) => {
                if let crate::ast::ChanRef::Index(_, idx) = c {
                    self.read_expr(idx, locals, u);
                }
                self.read_expr(e, locals, u);
            }
            Process::Input(c, lv, _) => {
                if let crate::ast::ChanRef::Index(_, idx) = c {
                    self.read_expr(idx, locals, u);
                }
                self.write_lvalue(lv, locals, u);
            }
            Process::ReadTime(lv, _) => self.write_lvalue(lv, locals, u),
            Process::Delay(e, _) => self.read_expr(e, locals, u),
            Process::Seq(repl, ps, _) | Process::Par(repl, ps, _) => {
                locals.push();
                if let Some(r) = repl {
                    self.read_expr(&r.base, locals, u);
                    self.read_expr(&r.count, locals, u);
                    locals.declare(&r.var);
                }
                for child in ps {
                    self.collect(child, locals, u);
                }
                locals.pop();
            }
            Process::PriPar(ps, _) => {
                for child in ps {
                    self.collect(child, locals, u);
                }
            }
            Process::Alt(repl, alts, _) | Process::PriAlt(repl, alts, _) => {
                locals.push();
                if let Some(r) = repl {
                    self.read_expr(&r.base, locals, u);
                    self.read_expr(&r.count, locals, u);
                    locals.declare(&r.var);
                }
                for alt in alts {
                    if let Some(g) = &alt.guard {
                        self.read_expr(g, locals, u);
                    }
                    match &alt.kind {
                        AltKind::Input(c, lv) => {
                            if let crate::ast::ChanRef::Index(_, idx) = c {
                                self.read_expr(idx, locals, u);
                            }
                            self.write_lvalue(lv, locals, u);
                        }
                        AltKind::Timeout(e) => self.read_expr(e, locals, u),
                        AltKind::Skip => {}
                    }
                    self.collect(&alt.body, locals, u);
                }
                locals.pop();
            }
            Process::If(conds, _) => {
                for c in conds {
                    self.read_expr(&c.cond, locals, u);
                    self.collect(&c.body, locals, u);
                }
            }
            Process::While(cond, body, _) => {
                self.read_expr(cond, locals, u);
                self.collect(body, locals, u);
            }
            Process::Declared(decls, body, _) => {
                locals.push();
                for d in decls {
                    match d {
                        Decl::Var(items) | Decl::Chan(items) => {
                            for (name, size) in items {
                                if let Some(e) = size {
                                    self.read_expr(e, locals, u);
                                }
                                locals.declare(name);
                            }
                        }
                        Decl::Def(name, e) => {
                            self.read_expr(e, locals, u);
                            locals.declare(name);
                        }
                        Decl::Place(..) => {}
                        Decl::Proc(name, _, _) => {
                            // A nested PROC's body runs only when called;
                            // calls inside this branch are analysed at
                            // their call sites via parameter modes, and
                            // free-variable effects inside nested PROCs
                            // are beyond this conservative check.
                            locals.declare(name);
                        }
                    }
                }
                self.collect(body, locals, u);
                locals.pop();
            }
            Process::Call(name, actuals, _) => {
                let formals: Vec<super::Formal> = match self.lookup(name) {
                    Some(Binding::Proc(info)) => info.params.clone(),
                    _ => Vec::new(),
                };
                for (i, actual) in actuals.iter().enumerate() {
                    let formal = formals.get(i).copied().unwrap_or(super::Formal {
                        mode: ParamMode::Value,
                        is_vector: false,
                    });
                    if formal.is_vector {
                        // Whole-vector arguments: exempt like vectors.
                        continue;
                    }
                    let mode = formal.mode;
                    match (mode, actual) {
                        (ParamMode::Value, Actual::Expr(e)) => self.read_expr(e, locals, u),
                        (ParamMode::Var, Actual::Expr(Expr::Name(n)))
                            if !locals.contains(n) && self.is_checked_scalar(n) =>
                        {
                            u.writes.insert(n.clone());
                        }
                        (ParamMode::Var, Actual::Expr(Expr::Index(_, idx))) => {
                            self.read_expr(idx, locals, u);
                        }
                        (ParamMode::Var, Actual::Var(lv)) => self.write_lvalue(lv, locals, u),
                        _ => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;

    #[test]
    fn par_scalar_conflict_is_an_error() {
        let err = compile(
            "VAR x:\n\
             PAR\n\
             \x20 x := 1\n\
             \x20 x := 2",
        )
        .unwrap_err();
        assert!(err.to_string().contains("shared variables"), "{err}");
    }

    #[test]
    fn pri_par_scalar_conflict_is_a_warning() {
        let program = compile(
            "VAR x:\n\
             PRI PAR\n\
             \x20 x := 1\n\
             \x20 x := 2",
        )
        .expect("PRI PAR violation still compiles");
        assert_eq!(program.warnings.len(), 1, "{:?}", program.warnings);
        let w = &program.warnings[0];
        assert_eq!(w.line, 2);
        assert!(w.message.starts_with("PRI PAR:"), "{w}");
        assert!(w.message.contains("`x`"), "{w}");
    }

    #[test]
    fn clean_pri_par_has_no_warnings() {
        let program = compile(
            "VAR x, y:\n\
             PRI PAR\n\
             \x20 x := 1\n\
             \x20 y := 2",
        )
        .expect("compiles");
        assert!(program.warnings.is_empty(), "{:?}", program.warnings);
    }
}
