//! Static workspace measurement.
//!
//! This pass computes, for any process, how much workspace it needs
//! above its workspace pointer (`locals`) and below it (`down`). The
//! results drive `PAR` branch layout and `PROC` frame sizes — "the occam
//! compiler is able to perform the allocation of space to concurrent
//! processes. ... There is also no need for the hardware to perform
//! access checking on every memory reference" (§3.2.4).
//!
//! Measurement runs against the live binding environment (for constant
//! evaluation and `PROC` sizes) but never emits code. The code generator
//! performs the identical allocations, so the two stay in lock step; a
//! debug assertion in `compile_process` guards the invariant.

use super::{Binding, Cg, SCHED_SLOTS, TEMP_SLOTS};

/// The binding a formal parameter introduces at `slot`.
pub(crate) fn param_binding(p: &crate::ast::Param, slot: super::Slot) -> Binding {
    use crate::ast::ParamMode;
    match (p.mode, p.is_vector) {
        (ParamMode::Value, false) => Binding::ValueParam(slot),
        (ParamMode::Var, false) => Binding::VarParam(slot),
        (ParamMode::Chan, false) => Binding::ChanParam(slot),
        (ParamMode::Value, true) => Binding::VecParam(slot, false),
        (ParamMode::Var, true) => Binding::VecParam(slot, true),
        (ParamMode::Chan, true) => Binding::ChanVecParam(slot),
    }
}
use crate::ast::{AltKind, BinOp, Decl, Expr, Process, UnOp};
use crate::error::CompileError;

/// Measurement of a process *within* a frame context. Scalars and
/// vectors are tracked separately: scalars (and replication control
/// blocks) are packed at low offsets so the hottest accesses use
/// single-byte instructions (§3.2.6: "the first 16 locations can be
/// accessed using a single byte instruction"); vectors sit above them.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Measure {
    /// Scalar words (variables, control blocks).
    pub scalars: i64,
    /// Vector words.
    pub vectors: i64,
    /// Words needed below the pointer (≥ the scheduling slots).
    pub down: i64,
    /// Outgoing call arguments beyond the three register-passed ones.
    pub extra_args: i64,
}

impl Measure {
    fn leaf() -> Measure {
        Measure {
            scalars: 0,
            vectors: 0,
            down: SCHED_SLOTS,
            extra_args: 0,
        }
    }

    fn join(self, other: Measure) -> Measure {
        Measure {
            scalars: self.scalars.max(other.scalars),
            vectors: self.vectors.max(other.vectors),
            down: self.down.max(other.down),
            extra_args: self.extra_args.max(other.extra_args),
        }
    }
}

/// Measurement of a complete frame (a `PROC` body, the main program, or
/// a `PAR` branch).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameMeasure {
    /// Reserved outgoing-argument words (≥ 1: offset 0 is scratch).
    pub reserved_args: i64,
    /// Scalar words above the reserved area and temps.
    pub scalars: i64,
    /// Vector words, placed above the scalar zone.
    pub vectors: i64,
    /// Downward requirement.
    pub down: i64,
}

impl FrameMeasure {
    /// Total words at and above the frame's workspace pointer.
    pub fn locals_total(&self) -> i64 {
        self.reserved_args + i64::from(TEMP_SLOTS as u32) + self.scalars + self.vectors
    }

    /// Frame offset where the vector zone begins.
    pub fn vector_base(&self) -> i64 {
        self.reserved_args + i64::from(TEMP_SLOTS as u32) + self.scalars
    }

    /// Words a `PAR` branch chunk occupies: its frame plus its downward
    /// requirement (which includes the scheduling slots).
    pub fn chunk(&self) -> i64 {
        self.locals_total() + self.down
    }
}

impl Cg {
    /// Measure a process as a standalone frame. `extra_local` reserves
    /// one extra declared word (the replicator variable of a replicated
    /// `PAR` branch).
    pub(crate) fn measure_frame(
        &mut self,
        p: &Process,
        extra_local: bool,
    ) -> Result<FrameMeasure, CompileError> {
        let m = self.measure(p)?;
        Ok(FrameMeasure {
            reserved_args: m.extra_args.max(1),
            scalars: m.scalars + i64::from(extra_local),
            vectors: m.vectors,
            down: m.down,
        })
    }

    /// Measure a process within the current frame.
    pub(crate) fn measure(&mut self, p: &Process) -> Result<Measure, CompileError> {
        Ok(match p {
            Process::Skip
            | Process::Stop
            | Process::Assign(..)
            | Process::Output(..)
            | Process::Input(..)
            | Process::ReadTime(..)
            | Process::Delay(..) => Measure::leaf(),

            Process::Seq(None, ps, _) => {
                let mut m = Measure::leaf();
                for child in ps {
                    m = m.join(self.measure(child)?);
                }
                m
            }
            Process::Seq(Some(_), ps, _) => {
                let mut body = Measure::leaf();
                for child in ps {
                    body = body.join(self.measure(child)?);
                }
                // Two words for the replication control block, live
                // across the body.
                Measure {
                    scalars: 2 + body.scalars,
                    ..body
                }
            }

            Process::Par(repl, branches, pos) => {
                let mut region = 2i64; // control block: join Iptr, count
                match repl {
                    None => {
                        for b in branches {
                            region += self.measure_frame(b, false)?.chunk();
                        }
                    }
                    Some(r) => {
                        if branches.len() != 1 {
                            return Err(CompileError::codegen(
                                pos.line,
                                "a replicated PAR has exactly one component",
                            ));
                        }
                        let count =
                            self.require_const(&r.count, pos.line, "PAR replication count")?;
                        if !(1..=256).contains(&count) {
                            return Err(CompileError::codegen(
                                pos.line,
                                format!("PAR replication count must be 1..=256, got {count}"),
                            ));
                        }
                        let chunk = self.measure_frame(&branches[0], true)?.chunk();
                        region += count * chunk;
                    }
                }
                Measure {
                    scalars: 0,
                    vectors: 0,
                    down: region.max(SCHED_SLOTS),
                    extra_args: 0,
                }
            }

            Process::PriPar(branches, pos) => {
                if branches.len() != 2 {
                    return Err(CompileError::codegen(
                        pos.line,
                        "PRI PAR takes exactly two components (high then low)",
                    ));
                }
                let mut region = 3i64; // join, count, original priority
                for b in branches {
                    region += self.measure_frame(b, false)?.chunk();
                }
                Measure {
                    scalars: 0,
                    vectors: 0,
                    down: region.max(SCHED_SLOTS),
                    extra_args: 0,
                }
            }

            Process::Alt(repl, alts, _) | Process::PriAlt(repl, alts, _) => {
                let mut m = Measure::leaf();
                for a in alts {
                    m = m.join(self.measure(&a.body)?);
                    if let AltKind::Input(..) | AltKind::Timeout(_) = a.kind {
                        // waiting uses the five scheduling slots only
                    }
                }
                if repl.is_some() {
                    // Replication control block (2 words), the selected
                    // index, and the loop-scoped replicator live across
                    // the body.
                    m.scalars += 3;
                }
                m
            }

            Process::If(conds, _) => {
                let mut m = Measure::leaf();
                for c in conds {
                    m = m.join(self.measure(&c.body)?);
                }
                m
            }
            Process::While(_, body, _) => Measure::leaf().join(self.measure(body)?),

            Process::Declared(decls, body, pos) => {
                // Bindings matter during measurement too: DEF constants
                // size vectors, and PROC sizes feed call-site depths.
                self.scopes.push(super::Scope::default());
                let result = (|| -> Result<Measure, CompileError> {
                    let mut scalars = 0i64;
                    let mut vectors = 0i64;
                    for d in decls {
                        let (s, v) = self.measure_decl(d, pos.line)?;
                        scalars += s;
                        vectors += v;
                    }
                    let m = self.measure(body)?;
                    Ok(Measure {
                        scalars: scalars + m.scalars,
                        vectors: vectors + m.vectors,
                        ..m
                    })
                })();
                self.scopes.pop();
                result?
            }

            Process::Call(name, actuals, pos) => {
                let info = match self.lookup(name) {
                    Some(Binding::Proc(info)) => info.clone(),
                    Some(_) => {
                        return Err(CompileError::check(
                            pos.line,
                            format!("`{name}` is not a PROC"),
                        ))
                    }
                    None => {
                        return Err(CompileError::check(
                            pos.line,
                            format!(
                                "call of undefined PROC `{name}` (note: occam forbids recursion — \
                                 workspace is allocated statically)"
                            ),
                        ))
                    }
                };
                if actuals.len() != info.params.len() {
                    return Err(CompileError::check(
                        pos.line,
                        format!(
                            "`{name}` takes {} arguments, {} given",
                            info.params.len(),
                            actuals.len()
                        ),
                    ));
                }
                Measure {
                    scalars: 0,
                    vectors: 0,
                    down: info.call_depth().max(SCHED_SLOTS),
                    extra_args: (info.total_args() as i64 - 3).max(0),
                }
            }
        })
    }

    /// (scalar, vector) words of a declaration, binding what later
    /// measurement needs (constants, vector shapes, PROC sizes).
    fn measure_decl(&mut self, d: &Decl, line: u32) -> Result<(i64, i64), CompileError> {
        use super::{Binding, Slot};
        let dummy = Slot {
            level: usize::MAX,
            offset: 0,
            adjust: 0,
        };
        Ok(match d {
            Decl::Var(items) | Decl::Chan(items) => {
                let is_chan = matches!(d, Decl::Chan(_));
                let mut scalars = 0i64;
                let mut vectors = 0i64;
                for (name, size) in items {
                    match size {
                        None => {
                            self.bind(
                                name,
                                if is_chan {
                                    Binding::Chan(dummy)
                                } else {
                                    Binding::Var(dummy)
                                },
                            );
                            scalars += 1;
                        }
                        Some(e) => {
                            let n = self.require_const(e, line, "vector size")?;
                            if n <= 0 {
                                return Err(CompileError::codegen(
                                    line,
                                    format!("vector `{name}` must have positive size, got {n}"),
                                ));
                            }
                            self.bind(
                                name,
                                if is_chan {
                                    Binding::ChanVec(dummy, n)
                                } else {
                                    Binding::Vec(dummy, n)
                                },
                            );
                            vectors += n;
                        }
                    };
                }
                (scalars, vectors)
            }
            Decl::Def(name, e) => {
                let v = self.require_const(e, line, "DEF value")?;
                self.bind(name, Binding::Const(v));
                (0, 0)
            }
            Decl::Place(..) => (0, 0),
            Decl::Proc(name, params, body) => {
                // Size the PROC's frame so calls in the scoped body can
                // be measured; the real (labelled, offset-bearing) info
                // is rebuilt identically during code generation.
                self.scopes.push(super::Scope::default());
                for p in params {
                    let b = param_binding(p, dummy);
                    self.bind(&p.name, b);
                }
                let fm = self.measure_frame(body, false);
                self.scopes.pop();
                let fm = fm?;
                let info = std::rc::Rc::new(super::ProcInfo {
                    label: self.emit.new_label(),
                    params: params
                        .iter()
                        .map(|p| super::Formal {
                            mode: p.mode,
                            is_vector: p.is_vector,
                        })
                        .collect(),
                    frame_locals: fm.locals_total(),
                    down: fm.down,
                    level: usize::MAX, // placeholder: measurement only
                    static_link: true,
                });
                self.bind(name, Binding::Proc(info));
                (0, 0)
            }
        })
    }

    /// Evaluate a compile-time constant expression.
    pub(crate) fn const_eval(&self, e: &Expr) -> Option<i64> {
        Some(match e {
            Expr::Literal(n) => *n,
            Expr::True => 1,
            Expr::False => 0,
            Expr::Name(n) => match self.lookup(n)? {
                Binding::Const(v) => *v,
                _ => return None,
            },
            Expr::Index(..) | Expr::ByteIndex(..) => return None,
            Expr::Un(op, e) => {
                let v = self.const_eval(e)?;
                match op {
                    UnOp::Neg => v.checked_neg()?,
                    UnOp::Not => i64::from(v == 0),
                    UnOp::BitNot => !v,
                }
            }
            Expr::Bin(op, l, r) => {
                let a = self.const_eval(l)?;
                let b = self.const_eval(r)?;
                match op {
                    BinOp::Add => a.checked_add(b)?,
                    BinOp::Sub => a.checked_sub(b)?,
                    BinOp::Mul => a.checked_mul(b)?,
                    BinOp::Div => a.checked_div(b)?,
                    BinOp::Rem => a.checked_rem(b)?,
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Ge => i64::from(a >= b),
                    BinOp::And => i64::from(a != 0 && b != 0),
                    BinOp::Or => i64::from(a != 0 || b != 0),
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::Shl => {
                        if (0..64).contains(&b) {
                            a.checked_shl(b as u32)?
                        } else {
                            return None;
                        }
                    }
                    BinOp::Shr => {
                        if (0..64).contains(&b) {
                            ((a as u64) >> b) as i64
                        } else {
                            return None;
                        }
                    }
                    BinOp::After => return None,
                }
            }
        })
    }

    /// A constant expression or an error naming what needed one.
    pub(crate) fn require_const(
        &self,
        e: &Expr,
        line: u32,
        what: &str,
    ) -> Result<i64, CompileError> {
        self.const_eval(e).ok_or_else(|| {
            CompileError::codegen(line, format!("{what} must be a compile-time constant"))
        })
    }
}
