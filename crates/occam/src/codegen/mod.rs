//! Code generation: occam processes to I1 instruction sequences.
//!
//! The paper's design goals drive this module: "the occam compiler is
//! able to perform the allocation of space to concurrent processes"
//! (§3.2.4) — all workspace is laid out statically (no dynamic
//! allocation); code is position independent (§3.1); and the emitted
//! sequences for the paper's example fragments match the printed tables
//! (experiments E1–E4).
//!
//! ## Workspace discipline
//!
//! Every `PROC` body (and the main program) is a *frame*. Within a frame,
//! workspace offsets are assigned statically:
//!
//! ```text
//!   0 .. ra      outgoing-argument area; offset 0 doubles as the
//!                scratch word used by ALT selection and `outword`
//!   ra .. ra+4   expression spill temporaries
//!   ra+4 ..      declared variables, channels, replicator blocks
//! ```
//!
//! Call frames grow *downwards*: a call to `f` occupies
//! `4 + L(f) + D(f)` words below the caller's workspace pointer, where
//! `L` is `f`'s frame size and `D` its own downward requirement. `PAR`
//! lowers the workspace pointer by the statically computed size of its
//! branch workspaces (each branch gets scheduling slots, its own frame
//! area, and its own downward space).

mod expr;
mod gen;
mod measure;
mod usage;

use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::{ParamMode, Process};
use crate::emit::{Emitter, Label};
use crate::error::CompileError;
use transputer::word::WordLength;
use transputer::{Cpu, CpuError, Priority};

/// Compiler options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Emit word-length independent code (§3.3): byte counts for word
    /// transfers computed with `ldc 1; bcnt` instead of a constant. The
    /// same binary then runs identically on 16- and 32-bit parts.
    pub word_independent: bool,
    /// When not word-independent, the target word length.
    pub word_length: WordLength,
    /// Emit `csub0` range checks on vector subscripts.
    pub bounds_checks: bool,
    /// Reject `PAR`s whose components share writable scalar variables
    /// (occam's usage rule, §2.2.1).
    pub par_checks: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            word_independent: true,
            word_length: WordLength::Bits32,
            bounds_checks: false,
            par_checks: true,
        }
    }
}

/// Number of expression spill temporaries reserved in every frame.
pub(crate) const TEMP_SLOTS: i32 = 4;

/// Scheduling slots every concurrent process needs below its workspace.
pub(crate) const SCHED_SLOTS: i64 = 5;

/// A non-fatal finding produced during compilation (e.g. a `PRI PAR`
/// sharing a scalar between its components, which the historical
/// compilers permitted but which defeats the usage rule's guarantee).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// Source line (1-based).
    pub line: u32,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "warning: line {}: {}", self.line, self.message)
    }
}

/// Compiler-recorded shape of one counted loop: a replicated `SEQ`
/// whose replication count is a compile-time constant. The static
/// cycle-cost model (`transputer-analysis`) consumes these to bound
/// block execution frequencies without running the dataflow through
/// the `lend` back edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopInfo {
    /// Byte offset of the first body instruction (the `lend` back-edge
    /// target).
    pub head: u32,
    /// Byte offset just past the `lend` — where the zero-trip guard
    /// jumps and where the final iteration falls out.
    pub end: u32,
    /// Compile-time replication count; the body runs exactly this many
    /// times per entry (0 when the count is not positive).
    pub count: u32,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Position-independent code. Load anywhere; enter at byte 0.
    pub code: Vec<u8>,
    /// Frame words needed at and above the initial workspace pointer.
    pub locals: u32,
    /// Words needed below the initial workspace pointer (call frames,
    /// `PAR` regions, scheduling slots).
    pub depth: u32,
    /// Offsets (in words, relative to the initial workspace pointer) of
    /// the top-level variables, for result inspection by harnesses.
    pub globals: HashMap<String, i32>,
    /// Non-fatal findings collected during compilation.
    pub warnings: Vec<Warning>,
    /// Counted loops (replicated `SEQ`s with constant counts), sorted by
    /// head offset, for the static cycle-cost model.
    pub loops: Vec<LoopInfo>,
}

impl Program {
    /// Word offset of a top-level variable.
    pub fn global_offset(&self, name: &str) -> Option<i32> {
        self.globals.get(name).copied()
    }

    /// Load the program into a CPU at its first user address, place the
    /// workspace below the top of memory, and schedule it at low
    /// priority. Returns the initial workspace pointer.
    ///
    /// # Errors
    ///
    /// Fails if the code plus workspace does not fit in memory.
    pub fn load(&self, cpu: &mut Cpu) -> Result<u32, CpuError> {
        self.load_at_priority(cpu, Priority::Low)
    }

    /// As [`Program::load`] with an explicit priority.
    ///
    /// # Errors
    ///
    /// Fails if the code plus workspace does not fit in memory.
    pub fn load_at_priority(&self, cpu: &mut Cpu, pri: Priority) -> Result<u32, CpuError> {
        let entry = cpu.memory().mem_start();
        let bpw = cpu.word_length().bytes_per_word();
        let limit = cpu.memory().limit();
        let wptr = cpu
            .word_length()
            .align_word(limit.wrapping_sub((self.locals + 2) * bpw));
        let floor = wptr.wrapping_sub(self.depth * bpw);
        let code_end = entry.wrapping_add(self.code.len() as u32);
        if cpu.word_length().to_signed(floor) <= cpu.word_length().to_signed(code_end) {
            return Err(CpuError::ProgramTooLarge {
                program: self.code.len() + ((self.locals + self.depth) * bpw) as usize,
                memory: cpu.memory().size() as usize,
            });
        }
        cpu.load(entry, &self.code)?;
        cpu.spawn(wptr, entry, pri);
        Ok(wptr)
    }

    /// Read a top-level variable after a run.
    ///
    /// # Errors
    ///
    /// Fails if the name is unknown or the address is out of range.
    pub fn read_global(&self, cpu: &mut Cpu, wptr: u32, name: &str) -> Result<u32, CpuError> {
        let off = self
            .global_offset(name)
            .ok_or(CpuError::AddressOutOfRange { address: 0 })?;
        let bpw = cpu.word_length().bytes_per_word();
        cpu.peek_word(wptr.wrapping_add((off as u32).wrapping_mul(bpw)))
    }

    /// Absolute address of a top-level variable (element 0 for vectors).
    pub fn global_addr(&self, word: WordLength, wptr: u32, name: &str) -> Option<u32> {
        let off = self.global_offset(name)?;
        Some(word.index_word(wptr, off as u32))
    }
}

/// A formal parameter's shape, as calls need it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Formal {
    pub mode: ParamMode,
    pub is_vector: bool,
}

/// Information about a compiled `PROC`.
#[derive(Debug)]
pub(crate) struct ProcInfo {
    pub label: Label,
    pub params: Vec<Formal>,
    /// Frame size (words at and above its adjusted workspace pointer).
    pub frame_locals: i64,
    /// Downward requirement of the body.
    pub down: i64,
    /// Lexical level of the body (declaring frame's level + 1).
    pub level: usize,
    /// Whether an implicit static-link argument is appended (all
    /// non-top-level procs, supporting the paper's `staticlink` scheme).
    pub static_link: bool,
}

impl ProcInfo {
    /// Total number of actuals at a call site.
    pub fn total_args(&self) -> usize {
        self.params.len() + usize::from(self.static_link)
    }

    /// Words a call occupies below the caller's workspace pointer.
    pub fn call_depth(&self) -> i64 {
        4 + self.frame_locals + self.down
    }

    /// Frame-base-relative offset of parameter `i`.
    pub fn param_offset(&self, i: usize) -> i64 {
        if i < 3 {
            self.frame_locals + 1 + i as i64
        } else {
            self.frame_locals + 4 + (i as i64 - 3)
        }
    }
}

/// What a name denotes.
#[derive(Debug, Clone)]
pub(crate) enum Binding {
    /// A scalar variable in some frame.
    Var(Slot),
    /// A vector of `len` words.
    Vec(Slot, i64),
    /// A channel word.
    Chan(Slot),
    /// A vector of channel words.
    ChanVec(Slot, i64),
    /// A channel placed on a reserved word (link interface).
    PlacedChan(i64),
    /// A compile-time constant.
    Const(i64),
    /// A `VALUE` parameter (a word in the parameter area).
    ValueParam(Slot),
    /// A `VAR` parameter (the word holds the variable's address).
    VarParam(Slot),
    /// A vector parameter (the word holds the vector's base address);
    /// the flag records whether it may be written (`VAR v[]`).
    VecParam(Slot, bool),
    /// A `CHAN` parameter (the word holds the channel's address).
    ChanParam(Slot),
    /// A channel-vector parameter (the word holds the base address of
    /// the channel words).
    ChanVecParam(Slot),
    /// A named process.
    Proc(Rc<ProcInfo>),
}

/// A storage slot: frame level, context-relative offset, and the
/// workspace adjustment in force where it was bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Slot {
    pub level: usize,
    /// Offset relative to the workspace pointer of the binding context.
    pub offset: i64,
    /// Workspace displacement (below frame base) of the binding context.
    pub adjust: i64,
}

/// One lexical scope of bindings.
#[derive(Debug, Default)]
pub(crate) struct Scope {
    pub names: HashMap<String, Binding>,
}

/// An allocation context: a `PROC` frame or a `PAR` branch frame.
#[derive(Debug)]
pub(crate) struct Context {
    /// Lexical level (shared by branch contexts of the same frame).
    pub level: usize,
    /// True for `PROC`/main frames; false for `PAR` branch contexts.
    pub is_frame_root: bool,
    /// Current workspace displacement below the frame base.
    pub adjust: i64,
    /// Next free scalar word (starts above args + temps).
    pub alloc: i64,
    /// High-water mark of `alloc`.
    pub high: i64,
    /// Next free vector word (the vector zone sits above the scalar
    /// zone so scalars keep single-byte offsets, §3.2.6).
    pub vec_alloc: i64,
    /// High-water mark of `vec_alloc`.
    pub vec_high: i64,
    /// Start of the temp region (= reserved argument words).
    pub temps_base: i64,
    /// Temps currently in use.
    pub temps_used: i64,
    /// Static link parameter offset (frame-base relative), if any.
    pub static_link_offset: Option<i64>,
}

impl Context {
    /// Allocate `n` contiguous scalar words; returns the first offset.
    pub fn alloc_words(&mut self, n: i64) -> i64 {
        let at = self.alloc;
        self.alloc += n;
        self.high = self.high.max(self.alloc);
        at
    }

    /// Allocate `n` contiguous vector words; returns the first offset.
    pub fn alloc_vector(&mut self, n: i64) -> i64 {
        let at = self.vec_alloc;
        self.vec_alloc += n;
        self.vec_high = self.vec_high.max(self.vec_alloc);
        at
    }
}

/// The code generator.
pub(crate) struct Cg {
    pub emit: Emitter,
    pub scopes: Vec<Scope>,
    pub contexts: Vec<Context>,
    pub options: Options,
    pub globals: HashMap<String, i32>,
    pub warnings: Vec<Warning>,
    /// Counted loops awaiting label resolution: (head, end, count).
    pub counted_loops: Vec<(Label, Label, u32)>,
}

impl Cg {
    pub fn new(options: Options) -> Cg {
        Cg {
            emit: Emitter::new(),
            scopes: vec![Scope::default()],
            contexts: Vec::new(),
            options,
            globals: HashMap::new(),
            warnings: Vec::new(),
            counted_loops: Vec::new(),
        }
    }

    pub fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.names.get(name))
    }

    pub fn bind(&mut self, name: &str, b: Binding) {
        // Record top-level variables for harness inspection.
        if let Binding::Var(slot) | Binding::Vec(slot, _) = &b {
            if slot.level == 0 && slot.adjust == 0 {
                self.globals
                    .entry(name.to_string())
                    .or_insert(slot.offset as i32);
            }
        }
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .names
            .insert(name.to_string(), b);
    }

    pub fn ctx(&mut self) -> &mut Context {
        self.contexts.last_mut().expect("inside a context")
    }

    pub fn ctx_ref(&self) -> &Context {
        self.contexts.last().expect("inside a context")
    }

    /// The current lexical level.
    pub fn level(&self) -> usize {
        self.ctx_ref().level
    }

    /// Bytes per word for emitted counts (`in`/`out` lengths).
    pub fn bytes_per_word(&self) -> i64 {
        i64::from(self.options.word_length.bytes_per_word())
    }
}

/// Compile a parsed process into a program.
///
/// # Errors
///
/// Returns the first semantic or code-generation error.
pub fn compile_process(program: &Process, options: Options) -> Result<Program, CompileError> {
    let mut cg = Cg::new(options);
    // Measure the main frame.
    let fm = cg.measure_frame(program, false)?;
    let scalar_base = fm.reserved_args + TEMP_SLOTS as i64;
    cg.contexts.push(Context {
        level: 0,
        is_frame_root: true,
        adjust: 0,
        alloc: scalar_base,
        high: scalar_base,
        vec_alloc: fm.vector_base(),
        vec_high: fm.vector_base(),
        temps_base: fm.reserved_args,
        temps_used: 0,
        static_link_offset: None,
    });
    cg.scopes.push(Scope::default());
    cg.gen_process(program)?;
    cg.emit.op(transputer::instr::Op::HaltSimulation);
    debug_assert!(
        cg.ctx_ref().high <= fm.vector_base() && cg.ctx_ref().vec_high <= fm.locals_total(),
        "codegen allocation exceeded measurement"
    );
    let counted_loops = std::mem::take(&mut cg.counted_loops);
    let (code, labels) = cg.emit.assemble_with_labels();
    let mut loops: Vec<LoopInfo> = counted_loops
        .into_iter()
        .map(|(head, end, count)| LoopInfo {
            head: labels[head.index()] as u32,
            end: labels[end.index()] as u32,
            count,
        })
        .collect();
    loops.sort_by_key(|l| (l.head, l.end));
    Ok(Program {
        code,
        locals: fm.locals_total() as u32,
        depth: fm.down as u32,
        globals: cg.globals,
        warnings: cg.warnings,
        loops,
    })
}
